//! Device projection: estimate Llama-2-7B decode throughput and energy on
//! every edge device from the paper's Tables 2/6, per bit-width and
//! framework — the "which device can run my model, and at how many
//! tokens/s?" planning question the paper's evaluation answers.
//!
//! Run with `cargo run --release --example device_projection`.

use tmac::devices::energy::{self, intensity};
use tmac::devices::{profiles, project};

fn main() {
    let shape = project::LLAMA2_7B;
    println!(
        "{:<18} {:>4} {:>14} {:>14} {:>9} {:>9}",
        "device", "bits", "T-MAC tok/s", "dequant tok/s", "T-MAC W", "J/token"
    );
    for dev in &profiles::ALL_CPUS {
        for bits in [4u8, 2, 1] {
            let tmac_cost = shape.tmac_cost(bits, &tmac::core::KernelOpts::tmac());
            let deq_cost = shape.dequant_cost(bits);
            let tmac_tps = project::cpu_tokens_per_sec(
                dev,
                &tmac_cost,
                dev.cores,
                project::Calibration::default_tmac(),
                0.25,
            );
            let deq_tps = project::cpu_tokens_per_sec(
                dev,
                &deq_cost,
                dev.cores,
                project::Calibration::default_dequant(),
                0.25,
            );
            let p = energy::cpu_power_w(dev, dev.cores, intensity::TMAC);
            println!(
                "{:<18} {:>4} {:>14.1} {:>14.1} {:>9.1} {:>9.2}",
                dev.name,
                bits,
                tmac_tps,
                deq_tps,
                p,
                energy::joules_per_token(p, tmac_tps)
            );
        }
    }
    println!(
        "\nProjections from calibrated rooflines (see DESIGN.md §2); the paper's\n\
         measured anchors: 71 tok/s BitNet-3B on M2-Ultra, 11 tok/s on RPi 5,\n\
         15.6 tok/s Llama-2-7B-2bit on AGX Orin at 10.4 W."
    );
}
