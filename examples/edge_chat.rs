//! Edge "chat" scenario: the paper's motivating workload — running a
//! low-bit LLM on a CPU-only device. Builds a small llama-architecture
//! model with 2-bit weights, generates a continuation with T-MAC kernels,
//! and reports tokens/s against the dequantization baseline.
//!
//! Run with `cargo run --release --example edge_chat`.

use tmac::core::ExecCtx;
use tmac::llm::{BackendKind, Engine, Model, ModelConfig, WeightQuant};

fn main() {
    // A laptop-scale model: real llama wiring (RoPE, GQA, SwiGLU), scaled
    // dimensions so the demo runs in seconds.
    let cfg = ModelConfig {
        name: "edge-chat-demo".into(),
        dim: 512,
        n_layers: 4,
        n_heads: 8,
        n_kv_heads: 4,
        ffn_dim: 1376,
        vocab: 2048,
        seq_max: 128,
        rope_theta: 10000.0,
    };
    let ctx = ExecCtx::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let prompt = [1u32, 42, 7, 100];

    for (label, kind) in [
        ("llama.cpp-style dequant", BackendKind::Dequant),
        (
            "T-MAC LUT kernels",
            BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        ),
    ] {
        let model = Model::synthetic(&cfg, WeightQuant::Rtn(2), kind, 1234).expect("build model");
        let mut engine = Engine::new(model);
        let tokens = engine.generate(&prompt, 24, &ctx).expect("generate");
        let stats = engine.measure_decode(24, &ctx).expect("measure");
        println!("{label}:");
        println!("  generated: {tokens:?}");
        println!(
            "  decode throughput: {:.1} tokens/s\n",
            stats.tokens_per_sec()
        );
    }
    println!(
        "Both backends run the same 2-bit weights; T-MAC replaces the\n\
         dequantize-multiply inner loop with table lookups (paper Figure 1)."
    );
}
