//! Edge "chat" scenario: the paper's motivating workload — running a
//! low-bit LLM on a CPU-only device. Builds a small llama-architecture
//! model with 2-bit weights, generates a continuation with T-MAC kernels,
//! and reports tokens/s against the dequantization baseline — then flips
//! the KV cache to `i8` to show the long-context attention knob.
//!
//! Run with `cargo run --release --example edge_chat`.

use tmac::core::ExecCtx;
use tmac::llm::{BackendKind, Engine, KvCache, KvPrecision, Model, ModelConfig, WeightQuant};

fn main() {
    // A laptop-scale model: real llama wiring (RoPE, GQA, SwiGLU), scaled
    // dimensions so the demo runs in seconds.
    let cfg = ModelConfig {
        name: "edge-chat-demo".into(),
        dim: 512,
        n_layers: 4,
        n_heads: 8,
        n_kv_heads: 4,
        ffn_dim: 1376,
        vocab: 2048,
        seq_max: 128,
        rope_theta: 10000.0,
        kv_precision: KvPrecision::F32,
    };
    let ctx = ExecCtx::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let prompt = [1u32, 42, 7, 100];

    for (label, kind) in [
        ("llama.cpp-style dequant", BackendKind::Dequant),
        (
            "T-MAC LUT kernels",
            BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        ),
    ] {
        let model = Model::synthetic(&cfg, WeightQuant::Rtn(2), kind, 1234).expect("build model");
        let mut engine = Engine::new(model);
        let tokens = engine.generate(&prompt, 24, &ctx).expect("generate");
        let stats = engine.measure_decode(24, &ctx).expect("measure");
        println!("{label}:");
        println!("  generated: {tokens:?}");
        println!(
            "  decode throughput: {:.1} tokens/s\n",
            stats.tokens_per_sec()
        );
    }

    // The KV-precision knob: the same T-MAC model with the cache quantized
    // to i8 — the attention stream shrinks 4x and score/value accumulation
    // runs on the maddubs i8 kernels (fused streaming softmax).
    for precision in [KvPrecision::F32, KvPrecision::I8] {
        let kv_cfg = cfg.clone().with_kv(precision);
        let model = Model::synthetic(
            &kv_cfg,
            WeightQuant::Rtn(2),
            BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
            1234,
        )
        .expect("build model");
        let mut engine = Engine::new(model);
        let tokens = engine.generate(&prompt, 24, &ctx).expect("generate");
        let kv_bytes = {
            // A standalone cache filled like the engine's shows residency.
            let mut probe = KvCache::new(&kv_cfg);
            let kv = kv_cfg.kv_dim();
            probe.store(0, prompt.len() + 23, &vec![0.5; kv], &vec![0.5; kv]);
            probe.resident_bytes()
        };
        println!(
            "T-MAC + {:7}  first tokens {:?}  kv resident ~{} KiB",
            precision.label(),
            &tokens[..4.min(tokens.len())],
            kv_bytes / 1024
        );
    }
    println!(
        "\nBoth backends run the same 2-bit weights; T-MAC replaces the\n\
         dequantize-multiply inner loop with table lookups (paper Figure 1).\n\
         The i8 KV cache extends the same bandwidth argument to attention."
    );
}
