//! Edge "chat" scenario: the paper's motivating workload — running a
//! low-bit LLM on a CPU-only device. Builds a small llama-architecture
//! model with 2-bit weights, generates a continuation with T-MAC kernels,
//! and reports tokens/s against the dequantization baseline — then flips
//! the KV cache to `i8` to show the long-context attention knob.
//!
//! Run with `cargo run --release --example edge_chat`. Pass
//! `--save-model chat.tmac` to persist the prepacked 2-bit model, and
//! `--model chat.tmac` to serve from the container (mmap zero-copy load)
//! instead of re-quantizing at startup — the two-step convert/run flow.

use tmac::core::ExecCtx;
use tmac::llm::{
    BackendKind, Engine, GenRequest, KvCache, KvPrecision, LoadMode, Model, ModelConfig,
    WeightQuant,
};

/// `--key value` flag (examples avoid the eval-crate dependency).
fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    // A laptop-scale model: real llama wiring (RoPE, GQA, SwiGLU), scaled
    // dimensions so the demo runs in seconds.
    let cfg = ModelConfig {
        name: "edge-chat-demo".into(),
        dim: 512,
        n_layers: 4,
        n_heads: 8,
        n_kv_heads: 4,
        ffn_dim: 1376,
        vocab: 2048,
        seq_max: 128,
        rope_theta: 10000.0,
        kv_precision: KvPrecision::F32,
    };
    let ctx = ExecCtx::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let prompt = [1u32, 42, 7, 100];

    // The container workflow: `--model file` serves from a prepacked
    // `.tmac` (or `.gguf`) container; `--save-model file` writes one.
    let model_file = flag("model");
    let build = |kind: BackendKind| -> Model {
        match &model_file {
            Some(path) => {
                let t0 = std::time::Instant::now();
                let m = Model::from_file(std::path::Path::new(path), &kind, LoadMode::Mmap)
                    .expect("load model container");
                println!(
                    "[loaded {} from {path} in {:.3}s]",
                    m.cfg.name,
                    t0.elapsed().as_secs_f64()
                );
                m
            }
            None => Model::synthetic(&cfg, WeightQuant::Rtn(2), kind, 1234).expect("build model"),
        }
    };
    if let Some(path) = flag("save-model") {
        let m = build(BackendKind::Tmac(tmac::core::KernelOpts::tmac()));
        m.save_file(std::path::Path::new(&path))
            .expect("save model container");
        println!("[saved prepacked model to {path}]\n");
    }

    for (label, kind) in [
        ("llama.cpp-style dequant", BackendKind::Dequant),
        (
            "T-MAC LUT kernels",
            BackendKind::Tmac(tmac::core::KernelOpts::tmac()),
        ),
    ] {
        let model = build(kind);
        let mut engine = Engine::new(model);
        let tokens = engine
            .generate(&GenRequest::greedy(&prompt, 24), &ctx)
            .expect("generate")
            .tokens;
        let stats = engine.measure_decode(24, &ctx).expect("measure");
        println!("{label}:");
        println!("  generated: {tokens:?}");
        println!(
            "  decode throughput: {:.1} tokens/s\n",
            stats.tokens_per_sec()
        );
    }

    // The KV-precision knob: the same T-MAC model with the cache quantized
    // to i8 — the attention stream shrinks 4x and score/value accumulation
    // runs on the maddubs i8 kernels (fused streaming softmax).
    for precision in [KvPrecision::F32, KvPrecision::I8] {
        let mut model = build(BackendKind::Tmac(tmac::core::KernelOpts::tmac()));
        model.cfg.kv_precision = precision;
        let kv_cfg = model.cfg.clone();
        let mut engine = Engine::new(model);
        let tokens = engine
            .generate(&GenRequest::greedy(&prompt, 24), &ctx)
            .expect("generate")
            .tokens;
        let kv_bytes = {
            // A standalone cache filled like the engine's shows residency.
            let mut probe = KvCache::new(&kv_cfg);
            let kv = kv_cfg.kv_dim();
            probe.store(0, prompt.len() + 23, &vec![0.5; kv], &vec![0.5; kv]);
            probe.resident_bytes()
        };
        println!(
            "T-MAC + {:7}  first tokens {:?}  kv resident ~{} KiB",
            precision.label(),
            &tokens[..4.min(tokens.len())],
            kv_bytes / 1024
        );
    }
    println!(
        "\nBoth backends run the same 2-bit weights; T-MAC replaces the\n\
         dequantize-multiply inner loop with table lookups (paper Figure 1).\n\
         The i8 KV cache extends the same bandwidth argument to attention."
    );
}
