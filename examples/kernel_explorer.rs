//! Kernel explorer: walks the paper's Figure 10 optimization ladder on a
//! user-chosen shape, printing latency and table-storage footprint per
//! stage, plus the tuner's pick.
//!
//! Run with `cargo run --release --example kernel_explorer -- [M] [K] [bits]`.

use std::time::Instant;
use tmac::core::ExecCtx;
use tmac::core::{gemv, tune, ActTables, KernelOpts, WeightPlan};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let m: usize = args.get(1).map(|s| s.parse().expect("M")).unwrap_or(2048);
    let k: usize = args.get(2).map(|s| s.parse().expect("K")).unwrap_or(2048);
    let bits: u8 = args.get(3).map(|s| s.parse().expect("bits")).unwrap_or(2);
    let ctx = ExecCtx::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );

    let weights: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.23).sin()).collect();
    let qm = tmac::quant::rtn::quantize(&weights, m, k, bits, 32).expect("quantize");
    let act: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.17).cos()).collect();
    let mut out = vec![0f32; m];

    println!("shape {m}x{k}, {bits}-bit, {} threads\n", ctx.threads());
    println!(
        "{:<10} {:>12} {:>16}",
        "stage", "latency (ms)", "table bytes"
    );
    for (name, opts) in KernelOpts::breakdown_ladder() {
        let plan = WeightPlan::new(&qm, opts).expect("plan");
        let tables = ActTables::build(&act, 32, &opts).expect("tables");
        // Warm-up + best-of-5.
        gemv::mpgemv_with_tables(&plan, &tables, &mut out, &ctx).expect("gemv");
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            gemv::mpgemv_with_tables(&plan, &tables, &mut out, &ctx).expect("gemv");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        println!(
            "{name:<10} {:>12.3} {:>16}",
            best * 1e3,
            tables.table_bytes()
        );
    }

    let tuned = tune::tune(&qm, &ctx, 3).expect("tune");
    println!(
        "\ntuner pick: tile_k = {} ({:.3} ms per GEMV)",
        tuned.opts.tile_k,
        tuned.gemv_seconds * 1e3
    );
}
