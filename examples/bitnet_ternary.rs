//! BitNet b1.58 scenario: ternary weights `{-1, 0, +1}` interpreted as
//! 2-bit codes and decomposed into two one-bit matrices (paper §5.1), the
//! configuration that reaches 11 tokens/s on a Raspberry Pi 5.
//!
//! Run with `cargo run --release --example bitnet_ternary`.

use tmac::core::ExecCtx;
use tmac::core::{KernelOpts, TmacLinear};
use tmac::quant::bitnet;

fn main() {
    let (m, k) = (512usize, 1024usize);
    let weights: Vec<f32> = (0..m * k)
        .map(|i| ((i as f32) * 0.71).sin() * 0.8 + ((i % 3) as f32 - 1.0) * 0.1)
        .collect();

    // BitNet's absmean quantizer: per-group scale = mean |w|, codes in
    // {-1, 0, +1} stored as 2-bit.
    let qm = bitnet::quantize(&weights, m, k, 32).expect("ternary quantize");
    let ternary_counts = qm.codes.iter().fold([0usize; 3], |mut acc, &c| {
        acc[(c - 1) as usize] += 1;
        acc
    });
    println!(
        "ternary distribution: -1: {}  0: {}  +1: {}",
        ternary_counts[0], ternary_counts[1], ternary_counts[2]
    );

    // The same T-MAC pipeline runs unmodified: 2 one-bit planes, LUT GEMV.
    let layer = TmacLinear::new(&qm, KernelOpts::tmac()).expect("plan");
    let act: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.05).sin()).collect();
    let ctx = ExecCtx::new(2);
    let mut out = vec![0f32; m];
    layer.gemv(&act, &mut out, &ctx).expect("gemv");

    let reference = tmac::core::kernel::scalar::gemv_reference(&qm, &act);
    let nmse = tmac::simd::f32ops::nmse(&out, &reference);
    println!("BitNet GEMV NMSE vs reference: {nmse:.2e}");
    // Table quantization is the only error source; ~1e-2 NMSE is the
    // expected magnitude for i8 tables over ternary weights at group 32.
    assert!(nmse < 1e-2);

    // Cost scales with the 2-bit interpretation: exactly two bit-planes.
    let cost = layer.gemv_cost();
    println!(
        "lookups per token for this layer: {} ({} per weight bit-plane)",
        cost.lookups,
        cost.lookups / 2
    );
    println!("ok");
}
