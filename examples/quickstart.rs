//! Quickstart: quantize a weight matrix to 2 bits and multiply it with
//! T-MAC's LUT kernels — no dequantization anywhere.
//!
//! Run with `cargo run --release --example quickstart`.

use tmac::core::ExecCtx;
use tmac::core::{KernelOpts, TmacLinear};
use tmac::quant::rtn;

fn main() {
    // A toy linear layer: 256 outputs, 512 inputs.
    let (m, k) = (256usize, 512usize);
    let weights: Vec<f32> = (0..m * k)
        .map(|i| ((i as f32) * 0.37).sin() * 0.2)
        .collect();

    // Offline: quantize to 2 bits (per-32 group scales), then preprocess
    // into T-MAC's bit-serial, tiled, permuted, interleaved layout.
    let qm = rtn::quantize(&weights, m, k, 2, 32).expect("quantize");
    println!(
        "quantized {}x{k} to 2 bits: {} KiB packed (f32 would be {} KiB)",
        m,
        qm.packed_bytes() / 1024,
        m * k * 4 / 1024
    );
    let layer = TmacLinear::new(&qm, KernelOpts::tmac()).expect("plan");

    // Online: one GEMV. Activations stay in f32; the kernel builds 16-entry
    // lookup tables from them and replaces every multiply with a table
    // lookup plus an add.
    let act: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.11).cos()).collect();
    let ctx = ExecCtx::new(2);
    let mut out = vec![0f32; m];
    layer.gemv(&act, &mut out, &ctx).expect("gemv");

    // Compare against the dequantized reference.
    let reference = tmac::core::kernel::scalar::gemv_reference(&qm, &act);
    let nmse = tmac::simd::f32ops::nmse(&out, &reference);
    println!("out[0..4] = {:?}", &out[..4]);
    println!("NMSE vs dequantized reference: {nmse:.2e} (table quantization only)");
    assert!(nmse < 1e-3);
    println!("ok");
}
