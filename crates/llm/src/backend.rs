//! Pluggable linear-layer backends behind the [`LinearBackend`] trait.
//!
//! Every projection in the model forwards through a [`Linear`], so one model
//! definition serves all the frameworks compared in the paper's evaluation —
//! T-MAC (LUT kernels), the llama.cpp-style dequant baseline, and the
//! unquantized `f32` reference — *and* any backend registered after the
//! fact: a new implementation plugs in through [`LinearBackend`] +
//! [`BackendRegistry`] without touching the model or engine code.
//!
//! All forwarding goes through an [`ExecCtx`]: the context supplies the
//! thread pool and the per-token activation-table cache, which is how the
//! T-MAC backend shares one table build across every projection that
//! consumes the same activation (QKV, gate/up — see `tmac_core::exec`).

use std::collections::BTreeMap;
use std::sync::Arc;
use tmac_baseline::DequantLinear;
use tmac_core::{ExecCtx, KernelOpts, TmacLinear};
use tmac_quant::QuantizedMatrix;

/// Which built-in compute backend a model's linear layers use.
///
/// This is the convenience selector for the three backends the paper
/// compares; arbitrary backends go through [`BackendRegistry`] /
/// [`BackendBuilder`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// T-MAC LUT kernels with the given options.
    Tmac(KernelOpts),
    /// llama.cpp-style dequantization kernels.
    Dequant,
    /// Unquantized `f32` reference (ground truth for quality metrics).
    F32,
}

impl BackendKind {
    /// Display name used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Tmac(o) if o.fast_aggregation => "T-MAC (+FA)",
            BackendKind::Tmac(_) => "T-MAC",
            BackendKind::Dequant => "llama.cpp",
            BackendKind::F32 => "f32",
        }
    }
}

/// Errors from backend construction or execution.
#[derive(Debug, Clone)]
pub enum BackendError {
    /// T-MAC error.
    Tmac(tmac_core::TmacError),
    /// Quantization/baseline error.
    Quant(tmac_quant::QuantError),
    /// Dimension mismatch at forward time.
    Shape(String),
    /// A backend name not present in the registry.
    UnknownBackend(String),
    /// The scheduler's bounded pending queue is at capacity — admission
    /// backpressure (see [`crate::batch::SchedulerConfig::max_pending`]).
    /// Callers should shed load (HTTP 429) or retry later.
    QueueFull {
        /// Requests already queued (== the configured bound).
        pending: usize,
    },
    /// A panic unwound out of a model forward and was caught by the
    /// scheduler's quarantine (`catch_unwind`); the payload is the panic
    /// message. The offending sequence is retired, the process survives.
    Panic(String),
    /// A numeric fault surfaced at the sampling boundary (non-finite
    /// logits); sampling from such a row would be garbage, so the
    /// sequence errors instead.
    Numeric(String),
    /// A fault injected by an armed failpoint (`failpoints` builds only;
    /// the variant always exists so matching code is feature-independent).
    Injected(String),
    /// The paged KV pool's page budget is exhausted and nothing is
    /// evictable — the memory-pressure twin of `QueueFull`. Callers shed
    /// load or retry once sequences retire.
    OutOfPages {
        /// Pages the allocation needed.
        needed: usize,
        /// The pool's configured budget.
        budget: usize,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Tmac(e) => write!(f, "tmac: {e}"),
            BackendError::Quant(e) => write!(f, "quant: {e}"),
            BackendError::Shape(m) => write!(f, "shape: {m}"),
            BackendError::UnknownBackend(n) => write!(f, "unknown backend: {n:?}"),
            BackendError::QueueFull { pending } => {
                write!(f, "queue full: {pending} requests pending")
            }
            BackendError::Panic(m) => write!(f, "panic: {m}"),
            BackendError::Numeric(m) => write!(f, "numeric: {m}"),
            BackendError::Injected(m) => write!(f, "injected fault: {m}"),
            BackendError::OutOfPages { needed, budget } => {
                write!(f, "kv pool out of pages: need {needed} of budget {budget}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

impl From<tmac_core::TmacError> for BackendError {
    fn from(e: tmac_core::TmacError) -> Self {
        BackendError::Tmac(e)
    }
}

impl From<tmac_quant::QuantError> for BackendError {
    fn from(e: tmac_quant::QuantError) -> Self {
        BackendError::Quant(e)
    }
}

impl From<crate::kv::KvError> for BackendError {
    fn from(e: crate::kv::KvError) -> Self {
        match e {
            crate::kv::KvError::OutOfPages { needed, budget } => {
                BackendError::OutOfPages { needed, budget }
            }
            crate::kv::KvError::Injected(site) => {
                BackendError::Injected(format!("kv failpoint {site}"))
            }
        }
    }
}

/// A linear-layer compute backend.
///
/// Implementations own their packed weights and execute `out = act × W^T`
/// under the caller's [`ExecCtx`]. Shape validation is done by the
/// [`Linear`] wrapper before dispatch, so implementations may assume
/// `act.len() == cols()` and `out.len() == rows()` (and the `n`-row
/// equivalents for batches).
pub trait LinearBackend: std::fmt::Debug + Send + Sync {
    /// Output features `M`.
    fn rows(&self) -> usize;

    /// Input features `K`.
    fn cols(&self) -> usize;

    /// Display name used in experiment tables.
    fn label(&self) -> String;

    /// Packed weight bytes (what streams from DRAM per token).
    fn packed_bytes(&self) -> usize;

    /// `out = act × W^T` for one activation row.
    ///
    /// # Errors
    ///
    /// Backend-specific kernel failures.
    fn forward(&self, act: &[f32], out: &mut [f32], ctx: &ExecCtx) -> Result<(), BackendError>;

    /// The batch-row granularity this backend's GEMM path blocks on
    /// (T-MAC's `n_block`), if it has one. Callers sizing batch chunks
    /// (prefill) should use a multiple of this so no ragged row block is
    /// left at every chunk boundary. `None` = no preference.
    fn preferred_rows(&self) -> Option<usize> {
        None
    }

    /// The offline-prepacked weight plan, if this backend owns one (the
    /// T-MAC backend does). Model containers (`tmac-llm::io`) serialize
    /// this layout verbatim, so a saved model loads without re-packing.
    fn tmac_plan(&self) -> Option<&tmac_core::WeightPlan> {
        None
    }

    /// The canonical quantized matrix, if this backend can recover it
    /// *exactly* (codes, scales and zero bit-for-bit). Backends that only
    /// hold derived or lossy state return `None`, and models built on them
    /// cannot be saved to a container.
    fn export_quantized(&self) -> Option<QuantizedMatrix> {
        None
    }

    /// `out[n][m] = Σ_k act[n][k] · W[m][k]` for `n` activation rows
    /// (prefill). The default loops [`LinearBackend::forward`] per row;
    /// backends with a real GEMM path override it.
    ///
    /// # Errors
    ///
    /// Backend-specific kernel failures.
    fn forward_batch(
        &self,
        act: &[f32],
        n: usize,
        out: &mut [f32],
        ctx: &ExecCtx,
    ) -> Result<(), BackendError> {
        let (k, m) = (self.cols(), self.rows());
        for ni in 0..n {
            // Each row is a distinct activation; keep the table cache honest.
            ctx.next_activation();
            self.forward(
                &act[ni * k..(ni + 1) * k],
                &mut out[ni * m..(ni + 1) * m],
                ctx,
            )?;
        }
        Ok(())
    }
}

/// The T-MAC LUT backend: forwards through the context's activation-table
/// cache, so projections sharing an activation share one table build.
#[derive(Debug, Clone)]
pub struct TmacBackend {
    linear: TmacLinear,
}

impl TmacBackend {
    /// Plans `qm` under `opts`.
    ///
    /// # Errors
    ///
    /// Propagates plan-construction failures.
    pub fn new(qm: &QuantizedMatrix, opts: KernelOpts) -> Result<Self, BackendError> {
        Ok(TmacBackend {
            linear: TmacLinear::new(qm, opts)?,
        })
    }

    /// Wraps an already-prepacked plan without re-running the offline
    /// transform — the container load path. A plan whose segments borrow
    /// from a file mapping executes zero-copy.
    pub fn from_plan(plan: tmac_core::WeightPlan) -> Self {
        TmacBackend {
            linear: TmacLinear::from_plan(plan),
        }
    }

    /// The planned layer.
    pub fn linear(&self) -> &TmacLinear {
        &self.linear
    }
}

impl LinearBackend for TmacBackend {
    fn rows(&self) -> usize {
        self.linear.rows()
    }

    fn cols(&self) -> usize {
        self.linear.cols()
    }

    fn label(&self) -> String {
        if self.linear.plan().opts.fast_aggregation {
            "T-MAC (+FA)".into()
        } else {
            "T-MAC".into()
        }
    }

    fn packed_bytes(&self) -> usize {
        self.linear.plan().index_bytes()
    }

    fn preferred_rows(&self) -> Option<usize> {
        Some(self.linear.plan().opts.n_block.max(1))
    }

    fn tmac_plan(&self) -> Option<&tmac_core::WeightPlan> {
        Some(self.linear.plan())
    }

    fn export_quantized(&self) -> Option<QuantizedMatrix> {
        Some(self.linear.plan().to_quantized())
    }

    fn forward(&self, act: &[f32], out: &mut [f32], ctx: &ExecCtx) -> Result<(), BackendError> {
        // The cached path IS the hot path: tables_for() + gemv_with_tables.
        Ok(self.linear.gemv_cached(act, out, ctx)?)
    }

    fn forward_batch(
        &self,
        act: &[f32],
        n: usize,
        out: &mut [f32],
        ctx: &ExecCtx,
    ) -> Result<(), BackendError> {
        if n == 1 {
            // A one-row batch IS a decode step: take the gemv path so it
            // shares the scalar table cache with single-token forwards.
            Ok(self.linear.gemv_cached(act, out, ctx)?)
        } else {
            // mpGEMM through the batched table cache: projections sharing
            // this activation batch (QKV, gate/up) share the per-row builds.
            Ok(self.linear.gemm_cached(act, n, out, ctx)?)
        }
    }
}

/// The llama.cpp-style dequantization baseline backend.
#[derive(Debug, Clone)]
pub struct DequantBackend {
    linear: DequantLinear,
}

impl DequantBackend {
    /// Packs `qm` into the baseline block formats.
    ///
    /// # Errors
    ///
    /// Propagates packing failures.
    pub fn new(qm: &QuantizedMatrix) -> Result<Self, BackendError> {
        Ok(DequantBackend {
            linear: DequantLinear::new(qm)?,
        })
    }

    /// The packed layer.
    pub fn linear(&self) -> &DequantLinear {
        &self.linear
    }
}

impl LinearBackend for DequantBackend {
    fn rows(&self) -> usize {
        self.linear.rows()
    }

    fn cols(&self) -> usize {
        self.linear.cols()
    }

    fn label(&self) -> String {
        "llama.cpp".into()
    }

    fn packed_bytes(&self) -> usize {
        self.linear.quantized().packed_bytes()
    }

    fn export_quantized(&self) -> Option<QuantizedMatrix> {
        Some(self.linear.quantized().clone())
    }

    fn forward(&self, act: &[f32], out: &mut [f32], ctx: &ExecCtx) -> Result<(), BackendError> {
        Ok(self.linear.gemv(act, out, ctx)?)
    }

    fn forward_batch(
        &self,
        act: &[f32],
        n: usize,
        out: &mut [f32],
        ctx: &ExecCtx,
    ) -> Result<(), BackendError> {
        Ok(self.linear.gemm_mixed(act, n, out, ctx)?)
    }
}

/// The unquantized `f32` reference backend.
#[derive(Debug, Clone)]
pub struct F32Backend {
    w: Vec<f32>,
    rows: usize,
    cols: usize,
}

/// Shared-output wrapper for the `f32` path.
struct OutPtr(*mut f32);
// SAFETY: row chunks are disjoint and the output outlives the dispatch.
unsafe impl Sync for OutPtr {}

impl F32Backend {
    /// Wraps row-major `rows × cols` weights.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Shape`] if the length does not match.
    pub fn new(w: &[f32], rows: usize, cols: usize) -> Result<Self, BackendError> {
        if w.len() != rows * cols {
            return Err(BackendError::Shape(format!(
                "f32 weights len {} != {rows}x{cols}",
                w.len()
            )));
        }
        Ok(F32Backend {
            w: w.to_vec(),
            rows,
            cols,
        })
    }
}

impl LinearBackend for F32Backend {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn label(&self) -> String {
        "f32".into()
    }

    fn packed_bytes(&self) -> usize {
        self.w.len() * 4
    }

    fn forward(&self, act: &[f32], out: &mut [f32], ctx: &ExecCtx) -> Result<(), BackendError> {
        let (w, cols) = (&self.w, self.cols);
        let out_ptr = OutPtr(out.as_mut_ptr());
        let out_ref = &out_ptr;
        ctx.pool().chunks(self.rows, 8, |range| {
            for m in range {
                let v = tmac_simd::f32ops::dot(&w[m * cols..(m + 1) * cols], act);
                // SAFETY: row ranges disjoint; out outlives dispatch.
                unsafe { *out_ref.0.add(m) = v };
            }
        });
        Ok(())
    }
}

/// A linear layer bound to one backend: a cheaply clonable handle that
/// validates shapes before dispatching to the [`LinearBackend`].
#[derive(Debug, Clone)]
pub struct Linear {
    backend: Arc<dyn LinearBackend>,
}

impl Linear {
    /// Wraps any backend implementation.
    pub fn from_backend(backend: impl LinearBackend + 'static) -> Self {
        Linear {
            backend: Arc::new(backend),
        }
    }

    /// Builds a layer on one of the built-in backends from a quantized
    /// matrix (plus the original `f32` weights for the reference backend).
    ///
    /// # Errors
    ///
    /// Propagates plan/packing failures.
    pub fn build(
        kind: BackendKind,
        qm: &QuantizedMatrix,
        f32_weights: &[f32],
    ) -> Result<Self, BackendError> {
        match kind {
            BackendKind::Tmac(opts) => Ok(Self::from_backend(TmacBackend::new(qm, opts)?)),
            BackendKind::Dequant => Ok(Self::from_backend(DequantBackend::new(qm)?)),
            BackendKind::F32 => Ok(Self::from_backend(F32Backend::new(
                f32_weights,
                qm.rows,
                qm.cols,
            )?)),
        }
    }

    /// The underlying backend (downcast-free introspection: label, sizes).
    pub fn backend(&self) -> &dyn LinearBackend {
        self.backend.as_ref()
    }

    /// Output features.
    pub fn rows(&self) -> usize {
        self.backend.rows()
    }

    /// Input features.
    pub fn cols(&self) -> usize {
        self.backend.cols()
    }

    /// Display name of the backend.
    pub fn label(&self) -> String {
        self.backend.label()
    }

    /// Packed size in bytes (what streams from DRAM per token).
    pub fn packed_bytes(&self) -> usize {
        self.backend.packed_bytes()
    }

    /// The backend's preferred batch-row granularity (see
    /// [`LinearBackend::preferred_rows`]).
    pub fn preferred_rows(&self) -> Option<usize> {
        self.backend.preferred_rows()
    }

    /// `out = act × W^T`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Shape`] on length mismatches.
    pub fn forward(&self, act: &[f32], out: &mut [f32], ctx: &ExecCtx) -> Result<(), BackendError> {
        if act.len() != self.cols() || out.len() != self.rows() {
            return Err(BackendError::Shape(format!(
                "forward: act {} out {} vs {}x{}",
                act.len(),
                out.len(),
                self.rows(),
                self.cols()
            )));
        }
        self.backend.forward(act, out, ctx)
    }

    /// Batched forward over `n` activation rows (row-major).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Shape`] on length mismatches.
    pub fn forward_batch(
        &self,
        act: &[f32],
        n: usize,
        out: &mut [f32],
        ctx: &ExecCtx,
    ) -> Result<(), BackendError> {
        if n == 0 || act.len() != n * self.cols() || out.len() != n * self.rows() {
            return Err(BackendError::Shape(format!(
                "forward_batch: act {} out {} vs n={} of {}x{}",
                act.len(),
                out.len(),
                n,
                self.rows(),
                self.cols()
            )));
        }
        self.backend.forward_batch(act, n, out, ctx)
    }
}

/// Builds [`Linear`] layers for a model: the extension point that lets new
/// backends plug in without touching `Model` or `Engine`.
pub trait BackendBuilder: Send + Sync {
    /// Builds one layer from the quantized matrix (and the original `f32`
    /// weights, for reference-style backends).
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    fn build(&self, qm: &QuantizedMatrix, f32_weights: &[f32]) -> Result<Linear, BackendError>;

    /// Builds one layer directly from an offline-prepacked weight plan
    /// (the container load path). `None` — the default — means this
    /// builder cannot consume the prepacked layout; the loader then falls
    /// back to materializing the canonical quantized matrix per layer
    /// ([`tmac_core::WeightPlan::to_quantized`]) and calling
    /// [`BackendBuilder::build`]. Builders that *can* consume it (the
    /// T-MAC kinds) take the plan as-is — zero-copy when its segments
    /// borrow from the container mapping.
    fn build_prepacked(
        &self,
        plan: &tmac_core::WeightPlan,
    ) -> Option<Result<Linear, BackendError>> {
        let _ = plan;
        None
    }

    /// Display name used in experiment tables.
    fn label(&self) -> String;
}

impl BackendBuilder for BackendKind {
    fn build(&self, qm: &QuantizedMatrix, f32_weights: &[f32]) -> Result<Linear, BackendError> {
        Linear::build(*self, qm, f32_weights)
    }

    fn build_prepacked(
        &self,
        plan: &tmac_core::WeightPlan,
    ) -> Option<Result<Linear, BackendError>> {
        let BackendKind::Tmac(opts) = self else {
            return None;
        };
        // Same options: share the stored plan (cheap — borrowed segments
        // clone by Arc). Layout-compatible options (e.g. requesting +FA on
        // a stock T-MAC pack): rebind the same segments under the new
        // options. Layout-incompatible requests fall back to repacking
        // from the materialized matrix.
        let plan = if *opts == plan.opts {
            plan.clone()
        } else {
            match plan.with_opts(*opts) {
                Ok(p) => p,
                Err(_) => return None,
            }
        };
        Some(Ok(Linear::from_backend(TmacBackend::from_plan(plan))))
    }

    fn label(&self) -> String {
        BackendKind::label(self).into()
    }
}

/// A name → [`BackendBuilder`] registry.
///
/// [`BackendRegistry::with_defaults`] pre-registers the paper's three
/// systems; experiment drivers resolve backends by name so a new backend
/// is one `register` call away from every figure/table binary.
///
/// # Examples
///
/// ```
/// use tmac_llm::backend::BackendRegistry;
///
/// let reg = BackendRegistry::with_defaults();
/// assert!(reg.get("tmac").is_some());
/// assert!(reg.names().contains(&"dequant".to_string()));
/// ```
pub struct BackendRegistry {
    builders: BTreeMap<String, Arc<dyn BackendBuilder>>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BackendRegistry {
            builders: BTreeMap::new(),
        }
    }

    /// A registry with the built-in backends: `tmac`, `tmac-fa`,
    /// `tmac-mirror`, `dequant`, `f32`.
    pub fn with_defaults() -> Self {
        let mut r = Self::new();
        r.register("tmac", Arc::new(BackendKind::Tmac(KernelOpts::tmac())));
        r.register(
            "tmac-fa",
            Arc::new(BackendKind::Tmac(KernelOpts::tmac_fast_aggregation())),
        );
        r.register(
            "tmac-mirror",
            Arc::new(BackendKind::Tmac(KernelOpts::tmac_mirror())),
        );
        r.register("dequant", Arc::new(BackendKind::Dequant));
        r.register("f32", Arc::new(BackendKind::F32));
        r
    }

    /// Registers (or replaces) a builder under `name`.
    pub fn register(&mut self, name: &str, builder: Arc<dyn BackendBuilder>) {
        self.builders.insert(name.to_string(), builder);
    }

    /// Looks up a builder by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn BackendBuilder>> {
        self.builders.get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.builders.keys().cloned().collect()
    }

    /// Builds a layer on the named backend.
    ///
    /// # Errors
    ///
    /// [`BackendError::UnknownBackend`] if `name` is not registered;
    /// otherwise the builder's failures.
    pub fn build(
        &self,
        name: &str,
        qm: &QuantizedMatrix,
        f32_weights: &[f32],
    ) -> Result<Linear, BackendError> {
        self.get(name)
            .ok_or_else(|| BackendError::UnknownBackend(name.to_string()))?
            .build(qm, f32_weights)
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmac_quant::rtn;

    fn setup() -> (QuantizedMatrix, Vec<f32>, Vec<f32>) {
        let (m, k) = (64, 96);
        let w: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32) * 0.21).sin() * 0.4)
            .collect();
        let act: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.13).cos()).collect();
        (rtn::quantize(&w, m, k, 4, 32).unwrap(), w, act)
    }

    #[test]
    fn all_backends_agree() {
        let (qm, w, act) = setup();
        let ctx = ExecCtx::new(2);
        let mut outs = Vec::new();
        for kind in [
            BackendKind::F32,
            BackendKind::Dequant,
            BackendKind::Tmac(KernelOpts::tmac()),
        ] {
            let lin = Linear::build(kind, &qm, &w).unwrap();
            assert_eq!((lin.rows(), lin.cols()), (64, 96));
            let mut out = vec![0f32; 64];
            ctx.next_activation();
            lin.forward(&act, &mut out, &ctx).unwrap();
            outs.push(out);
        }
        // Quantized backends track the f32 reference within quant error.
        for q in &outs[1..] {
            let nmse = tmac_simd::f32ops::nmse(q, &outs[0]);
            assert!(nmse < 5e-2, "nmse {nmse}");
        }
        // And track each other tightly (same quantized weights).
        let nmse = tmac_simd::f32ops::nmse(&outs[2], &outs[1]);
        assert!(nmse < 1e-3, "tmac vs dequant nmse {nmse}");
    }

    #[test]
    fn labels() {
        assert_eq!(BackendKind::F32.label(), "f32");
        assert_eq!(BackendKind::Dequant.label(), "llama.cpp");
        assert_eq!(BackendKind::Tmac(KernelOpts::tmac()).label(), "T-MAC");
        assert_eq!(
            BackendKind::Tmac(KernelOpts::tmac_fast_aggregation()).label(),
            "T-MAC (+FA)"
        );
        // Trait-object labels match the kind labels.
        let (qm, w, _) = setup();
        for kind in [
            BackendKind::F32,
            BackendKind::Dequant,
            BackendKind::Tmac(KernelOpts::tmac()),
            BackendKind::Tmac(KernelOpts::tmac_fast_aggregation()),
        ] {
            let lin = Linear::build(kind, &qm, &w).unwrap();
            assert_eq!(lin.label(), kind.label());
        }
    }

    #[test]
    fn forward_rejects_bad_lengths() {
        let (qm, w, act) = setup();
        let ctx = ExecCtx::new(1);
        let lin = Linear::build(BackendKind::F32, &qm, &w).unwrap();
        let mut out = vec![0f32; 63];
        assert!(lin.forward(&act, &mut out, &ctx).is_err());
    }

    #[test]
    fn build_rejects_wrong_f32_len() {
        let (qm, w, _) = setup();
        assert!(Linear::build(BackendKind::F32, &qm, &w[..10]).is_err());
    }

    #[test]
    fn tmac_forward_uses_the_table_cache() {
        let (qm, w, act) = setup();
        let ctx = ExecCtx::new(1);
        let lin = Linear::build(BackendKind::Tmac(KernelOpts::tmac()), &qm, &w).unwrap();
        let mut out = vec![0f32; 64];
        ctx.next_activation();
        lin.forward(&act, &mut out, &ctx).unwrap();
        lin.forward(&act, &mut out, &ctx).unwrap();
        let s = ctx.table_stats();
        assert_eq!((s.hits, s.misses), (1, 1), "second forward must hit");
    }

    #[test]
    fn forward_batch_default_and_override_agree() {
        let (qm, w, _) = setup();
        let (n, k, m) = (3, 96, 64);
        let acts: Vec<f32> = (0..n * k).map(|i| ((i as f32) * 0.07).sin()).collect();
        let ctx = ExecCtx::new(1);
        let tmac = Linear::build(BackendKind::Tmac(KernelOpts::tmac()), &qm, &w).unwrap();
        // Batched (real GEMM path) vs row-by-row forwards.
        let mut batched = vec![0f32; n * m];
        tmac.forward_batch(&acts, n, &mut batched, &ctx).unwrap();
        let mut rowwise = vec![0f32; n * m];
        for ni in 0..n {
            ctx.next_activation();
            tmac.forward(
                &acts[ni * k..(ni + 1) * k],
                &mut rowwise[ni * m..(ni + 1) * m],
                &ctx,
            )
            .unwrap();
        }
        assert_eq!(batched, rowwise);
        // The f32 backend exercises the trait's default batch loop.
        let f = Linear::build(BackendKind::F32, &qm, &w).unwrap();
        let mut fb = vec![0f32; n * m];
        f.forward_batch(&acts, n, &mut fb, &ctx).unwrap();
        let mut fr = vec![0f32; m];
        f.forward(&acts[..k], &mut fr, &ctx).unwrap();
        assert_eq!(&fb[..m], &fr[..]);
        // Shape errors are caught at the wrapper.
        assert!(f.forward_batch(&acts, 0, &mut fb, &ctx).is_err());
        assert!(f.forward_batch(&acts[..k], n, &mut fb, &ctx).is_err());
    }

    #[test]
    fn registry_builds_by_name_and_rejects_unknown() {
        let (qm, w, act) = setup();
        let reg = BackendRegistry::with_defaults();
        assert_eq!(reg.names().len(), 5);
        let ctx = ExecCtx::new(1);
        for name in ["tmac", "dequant", "f32", "tmac-fa", "tmac-mirror"] {
            let lin = reg.build(name, &qm, &w).unwrap();
            let mut out = vec![0f32; 64];
            ctx.next_activation();
            lin.forward(&act, &mut out, &ctx).unwrap();
            assert!(out.iter().all(|x| x.is_finite()), "{name}");
        }
        assert!(matches!(
            reg.build("cuda", &qm, &w),
            Err(BackendError::UnknownBackend(_))
        ));
    }

    #[test]
    fn custom_backend_plugs_in_through_the_registry() {
        /// A toy backend: scales the f32 reference by 2 (easy to verify).
        #[derive(Debug)]
        struct Doubled(F32Backend);
        impl LinearBackend for Doubled {
            fn rows(&self) -> usize {
                self.0.rows()
            }
            fn cols(&self) -> usize {
                self.0.cols()
            }
            fn label(&self) -> String {
                "doubled".into()
            }
            fn packed_bytes(&self) -> usize {
                self.0.packed_bytes()
            }
            fn forward(
                &self,
                act: &[f32],
                out: &mut [f32],
                ctx: &ExecCtx,
            ) -> Result<(), BackendError> {
                self.0.forward(act, out, ctx)?;
                for x in out.iter_mut() {
                    *x *= 2.0;
                }
                Ok(())
            }
        }
        struct DoubledBuilder;
        impl BackendBuilder for DoubledBuilder {
            fn build(
                &self,
                qm: &QuantizedMatrix,
                f32_weights: &[f32],
            ) -> Result<Linear, BackendError> {
                Ok(Linear::from_backend(Doubled(F32Backend::new(
                    f32_weights,
                    qm.rows,
                    qm.cols,
                )?)))
            }
            fn label(&self) -> String {
                "doubled".into()
            }
        }

        let (qm, w, act) = setup();
        let mut reg = BackendRegistry::with_defaults();
        reg.register("doubled", Arc::new(DoubledBuilder));
        let ctx = ExecCtx::new(1);
        let base = reg.build("f32", &qm, &w).unwrap();
        let doubled = reg.build("doubled", &qm, &w).unwrap();
        let (mut a, mut b) = (vec![0f32; 64], vec![0f32; 64]);
        base.forward(&act, &mut a, &ctx).unwrap();
        doubled.forward(&act, &mut b, &ctx).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((2.0 * x - y).abs() < 1e-6);
        }
        assert_eq!(doubled.label(), "doubled");
    }
}
