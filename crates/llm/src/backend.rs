//! Pluggable linear-layer backends.
//!
//! Every projection in the model forwards through a [`Linear`], so one model
//! definition serves all the frameworks compared in the paper's evaluation:
//! T-MAC (LUT kernels), the llama.cpp-style dequant baseline, and the
//! unquantized `f32` reference.

use tmac_baseline::DequantLinear;
use tmac_core::{KernelOpts, TmacLinear};
use tmac_quant::QuantizedMatrix;
use tmac_threadpool::ThreadPool;

/// Which compute backend a model's linear layers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// T-MAC LUT kernels with the given options.
    Tmac(KernelOpts),
    /// llama.cpp-style dequantization kernels.
    Dequant,
    /// Unquantized `f32` reference (ground truth for quality metrics).
    F32,
}

impl BackendKind {
    /// Display name used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Tmac(o) if o.fast_aggregation => "T-MAC (+FA)",
            BackendKind::Tmac(_) => "T-MAC",
            BackendKind::Dequant => "llama.cpp",
            BackendKind::F32 => "f32",
        }
    }
}

/// Errors from backend construction or execution.
#[derive(Debug, Clone)]
pub enum BackendError {
    /// T-MAC error.
    Tmac(tmac_core::TmacError),
    /// Quantization/baseline error.
    Quant(tmac_quant::QuantError),
    /// Dimension mismatch at forward time.
    Shape(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Tmac(e) => write!(f, "tmac: {e}"),
            BackendError::Quant(e) => write!(f, "quant: {e}"),
            BackendError::Shape(m) => write!(f, "shape: {m}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<tmac_core::TmacError> for BackendError {
    fn from(e: tmac_core::TmacError) -> Self {
        BackendError::Tmac(e)
    }
}

impl From<tmac_quant::QuantError> for BackendError {
    fn from(e: tmac_quant::QuantError) -> Self {
        BackendError::Quant(e)
    }
}

/// A linear layer bound to one backend.
#[derive(Debug, Clone)]
pub enum Linear {
    /// T-MAC planned weights.
    Tmac(TmacLinear),
    /// Packed dequant-baseline weights.
    Dequant(DequantLinear),
    /// Row-major `f32` weights.
    F32 {
        /// Row-major `rows × cols` weights.
        w: Vec<f32>,
        /// Output features.
        rows: usize,
        /// Input features.
        cols: usize,
    },
}

/// Shared-output wrapper for the `f32` path.
struct OutPtr(*mut f32);
// SAFETY: row chunks are disjoint and the output outlives the dispatch.
unsafe impl Sync for OutPtr {}

impl Linear {
    /// Builds a layer from a quantized matrix (plus the original `f32`
    /// weights for the reference backend).
    ///
    /// # Errors
    ///
    /// Propagates plan/packing failures.
    pub fn build(
        kind: BackendKind,
        qm: &QuantizedMatrix,
        f32_weights: &[f32],
    ) -> Result<Self, BackendError> {
        match kind {
            BackendKind::Tmac(opts) => Ok(Linear::Tmac(TmacLinear::new(qm, opts)?)),
            BackendKind::Dequant => Ok(Linear::Dequant(DequantLinear::new(qm)?)),
            BackendKind::F32 => {
                if f32_weights.len() != qm.rows * qm.cols {
                    return Err(BackendError::Shape(format!(
                        "f32 weights len {} != {}x{}",
                        f32_weights.len(),
                        qm.rows,
                        qm.cols
                    )));
                }
                Ok(Linear::F32 {
                    w: f32_weights.to_vec(),
                    rows: qm.rows,
                    cols: qm.cols,
                })
            }
        }
    }

    /// Output features.
    pub fn rows(&self) -> usize {
        match self {
            Linear::Tmac(l) => l.rows(),
            Linear::Dequant(l) => l.rows(),
            Linear::F32 { rows, .. } => *rows,
        }
    }

    /// Input features.
    pub fn cols(&self) -> usize {
        match self {
            Linear::Tmac(l) => l.cols(),
            Linear::Dequant(l) => l.cols(),
            Linear::F32 { cols, .. } => *cols,
        }
    }

    /// `out = act × W^T`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Shape`] on length mismatches.
    pub fn forward(
        &self,
        act: &[f32],
        out: &mut [f32],
        pool: &ThreadPool,
    ) -> Result<(), BackendError> {
        if act.len() != self.cols() || out.len() != self.rows() {
            return Err(BackendError::Shape(format!(
                "forward: act {} out {} vs {}x{}",
                act.len(),
                out.len(),
                self.rows(),
                self.cols()
            )));
        }
        match self {
            Linear::Tmac(l) => l.gemv(act, out, pool)?,
            Linear::Dequant(l) => l.gemv(act, out, pool)?,
            Linear::F32 { w, rows, cols } => {
                let out_ptr = OutPtr(out.as_mut_ptr());
                let out_ref = &out_ptr;
                pool.chunks(*rows, 8, |range| {
                    for m in range {
                        let v = tmac_simd::f32ops::dot(&w[m * cols..(m + 1) * cols], act);
                        // SAFETY: row ranges disjoint; out outlives dispatch.
                        unsafe { *out_ref.0.add(m) = v };
                    }
                });
            }
        }
        Ok(())
    }

    /// Packed size in bytes (what streams from DRAM per token).
    pub fn packed_bytes(&self) -> usize {
        match self {
            Linear::Tmac(l) => l.plan().index_bytes(),
            Linear::Dequant(l) => l.quantized().packed_bytes(),
            Linear::F32 { w, .. } => w.len() * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmac_quant::rtn;

    fn setup() -> (QuantizedMatrix, Vec<f32>, Vec<f32>) {
        let (m, k) = (64, 96);
        let w: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.21).sin() * 0.4).collect();
        let act: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.13).cos()).collect();
        (rtn::quantize(&w, m, k, 4, 32).unwrap(), w, act)
    }

    #[test]
    fn all_backends_agree() {
        let (qm, w, act) = setup();
        let pool = ThreadPool::new(2);
        let mut outs = Vec::new();
        for kind in [
            BackendKind::F32,
            BackendKind::Dequant,
            BackendKind::Tmac(KernelOpts::tmac()),
        ] {
            let lin = Linear::build(kind, &qm, &w).unwrap();
            assert_eq!((lin.rows(), lin.cols()), (64, 96));
            let mut out = vec![0f32; 64];
            lin.forward(&act, &mut out, &pool).unwrap();
            outs.push(out);
        }
        // Quantized backends track the f32 reference within quant error.
        for q in &outs[1..] {
            let nmse = tmac_simd::f32ops::nmse(q, &outs[0]);
            assert!(nmse < 5e-2, "nmse {nmse}");
        }
        // And track each other tightly (same quantized weights).
        let nmse = tmac_simd::f32ops::nmse(&outs[2], &outs[1]);
        assert!(nmse < 1e-3, "tmac vs dequant nmse {nmse}");
    }

    #[test]
    fn labels() {
        assert_eq!(BackendKind::F32.label(), "f32");
        assert_eq!(BackendKind::Dequant.label(), "llama.cpp");
        assert_eq!(BackendKind::Tmac(KernelOpts::tmac()).label(), "T-MAC");
        assert_eq!(
            BackendKind::Tmac(KernelOpts::tmac_fast_aggregation()).label(),
            "T-MAC (+FA)"
        );
    }

    #[test]
    fn forward_rejects_bad_lengths() {
        let (qm, w, act) = setup();
        let pool = ThreadPool::new(1);
        let lin = Linear::build(BackendKind::F32, &qm, &w).unwrap();
        let mut out = vec![0f32; 63];
        assert!(lin.forward(&act, &mut out, &pool).is_err());
    }

    #[test]
    fn build_rejects_wrong_f32_len() {
        let (qm, w, _) = setup();
        assert!(Linear::build(BackendKind::F32, &qm, &w[..10]).is_err());
    }
}
