//! Synthetic structured weight generation.
//!
//! Real checkpoints are unavailable offline, so models are populated with
//! seeded synthetic weights that preserve the properties quantization and
//! throughput experiments depend on: (a) exact matrix shapes, (b) smooth
//! low-rank structure plus noise (so per-group scales vary realistically and
//! error-feedback quantization has something to exploit), and (c) per-row
//! magnitude variation (outlier rows, as real LLMs exhibit).
//!
//! Generation is deterministic in `(seed, rows, cols)`, so every backend of
//! a comparison builds from bit-identical `f32` weights.

use tmac_rng::Rng;

/// Rank of the structured component.
const RANK: usize = 4;

/// Generates a row-major `rows × cols` weight matrix.
///
/// The distribution is `scale * (low_rank + 0.5 * noise) * row_gain`, where
/// `row_gain` varies ±50% across rows.
pub fn gen_matrix(rows: usize, cols: usize, seed: u64, scale: f32) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed);
    let u: Vec<f32> = (0..rows * RANK).map(|_| rng.f32_range(-1.0, 1.0)).collect();
    let v: Vec<f32> = (0..cols * RANK).map(|_| rng.f32_range(-1.0, 1.0)).collect();
    let row_gain: Vec<f32> = (0..rows).map(|_| rng.f32_range(0.5, 1.5)).collect();
    let mut w = vec![0f32; rows * cols];
    let norm = scale / (RANK as f32).sqrt();
    for r in 0..rows {
        let ur = &u[r * RANK..(r + 1) * RANK];
        let g = row_gain[r] * norm;
        // One cheap per-row noise stream keeps generation O(rows*cols).
        let mut nrng = Rng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37_79B9));
        for c in 0..cols {
            let mut s = 0f32;
            for (j, &uj) in ur.iter().enumerate() {
                s += uj * v[c * RANK + j];
            }
            let noise: f32 = nrng.f32_range(-0.5, 0.5);
            w[r * cols + c] = g * (s + noise);
        }
    }
    w
}

/// Generates an RMS-norm gain vector (near 1.0 with small variation).
pub fn gen_gain(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| 1.0 + rng.f32_range(-0.1, 0.1)).collect()
}

/// Stable per-tensor seed derived from a base seed, layer and tensor name.
pub fn tensor_seed(base: u64, layer: usize, name: &str) -> u64 {
    let mut h = base ^ (layer as u64).wrapping_mul(0x517C_C1B7_2722_0A95);
    for b in name.bytes() {
        h = h.wrapping_mul(0x100_0000_01B3) ^ b as u64;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(gen_matrix(8, 16, 5, 0.1), gen_matrix(8, 16, 5, 0.1));
        assert_ne!(gen_matrix(8, 16, 5, 0.1), gen_matrix(8, 16, 6, 0.1));
    }

    #[test]
    fn has_row_scale_variation() {
        let w = gen_matrix(32, 256, 11, 0.1);
        let norms: Vec<f32> = (0..32)
            .map(|r| {
                w[r * 256..(r + 1) * 256]
                    .iter()
                    .map(|x| x * x)
                    .sum::<f32>()
                    .sqrt()
            })
            .collect();
        let max = norms.iter().fold(0f32, |m, &x| m.max(x));
        let min = norms.iter().fold(f32::INFINITY, |m, &x| m.min(x));
        assert!(max / min > 1.2, "rows too uniform: {min}..{max}");
    }

    #[test]
    fn magnitude_tracks_scale() {
        let a = gen_matrix(16, 64, 3, 0.1);
        let b = gen_matrix(16, 64, 3, 0.2);
        let na: f32 = a.iter().map(|x| x.abs()).sum();
        let nb: f32 = b.iter().map(|x| x.abs()).sum();
        assert!((nb / na - 2.0).abs() < 1e-3);
    }

    #[test]
    fn tensor_seeds_distinct() {
        let s1 = tensor_seed(1, 0, "wq");
        let s2 = tensor_seed(1, 0, "wk");
        let s3 = tensor_seed(1, 1, "wq");
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(s1, tensor_seed(1, 0, "wq"));
    }
}
