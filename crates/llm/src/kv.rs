//! Head-major, optionally quantized KV cache.
//!
//! Decode-time attention at long contexts is a pure memory stream: every
//! token reads all previous positions' K and V rows. The seed stored the
//! cache `[layer][seq][kv_dim]` in `f32`, so each head's sweep was *strided*
//! (one `head_dim` slice per `kv_dim` row) and streamed 8 bytes per cached
//! element (K + V). This module re-lays the cache **head-major** —
//! `[layer][kv_head][seq][head_dim]` — so one head's whole history is a
//! single contiguous run, and optionally stores it quantized to `i8` with
//! one `f32` scale per `(position, head)` row ([`KvPrecision::I8`]): 4× less
//! attention traffic and 4× smaller KV residency, the same bandwidth
//! argument T-MAC makes for weights (§2) applied to the KV stream.
//!
//! Storage is allocated **lazily and grown in fixed-position chunks**: a
//! fresh cache owns no buffers, and capacity follows the filled length in
//! [`KV_GROW_POSITIONS`]-sized steps up to `seq_max`. A continuous-batching
//! scheduler holding `max_batch` slots therefore pays for the contexts it
//! actually serves, not `max_batch · seq_max` up front (which at f32
//! dwarfed the quantized model weights).

use crate::config::{KvPrecision, ModelConfig};
use tmac_simd::i8ops;

/// Positions added per capacity growth step. Each growth re-lays every
/// `(layer, head)` stream into its new stride, so the chunk trades copy
/// amortization (larger = fewer copies) against over-allocation on short
/// sequences (smaller = tighter).
pub const KV_GROW_POSITIONS: usize = 128;

/// Precision-specific storage. Both variants share the head-major layout:
/// codes/values at `((layer · n_kv_heads + head) · seq_cap + pos) · head_dim`,
/// scales (i8 only) at `(layer · n_kv_heads + head) · seq_cap + pos`.
#[derive(Debug, Clone)]
enum Store {
    F32 {
        k: Vec<f32>,
        v: Vec<f32>,
    },
    I8 {
        k: Vec<i8>,
        v: Vec<i8>,
        k_scale: Vec<f32>,
        v_scale: Vec<f32>,
    },
}

/// KV cache for one generation stream (head-major; see the module docs).
#[derive(Debug, Clone)]
pub struct KvCache {
    n_layers: usize,
    n_kv_heads: usize,
    head_dim: usize,
    seq_max: usize,
    /// Allocated positions per `(layer, head)` stream (`<= seq_max`).
    seq_cap: usize,
    /// High-water mark of positions ever stored since the last reset.
    /// `len` only advances when a forward pass *completes*, but a growth
    /// mid-batch must preserve the rows the batch has already written —
    /// this watermark is what capacity growth copies.
    stored: usize,
    store: Store,
    /// Filled positions.
    pub len: usize,
}

/// Grows a `[stream][cap][per_pos]` buffer to a new capacity, copying the
/// `filled` leading positions of every stream into the new stride.
fn regrow<T: Copy + Default>(
    data: &[T],
    streams: usize,
    old_cap: usize,
    new_cap: usize,
    per_pos: usize,
    filled: usize,
) -> Vec<T> {
    let mut out = vec![T::default(); streams * new_cap * per_pos];
    for s in 0..streams {
        let src = &data[s * old_cap * per_pos..s * old_cap * per_pos + filled * per_pos];
        out[s * new_cap * per_pos..s * new_cap * per_pos + filled * per_pos].copy_from_slice(src);
    }
    out
}

impl KvCache {
    /// Creates an (empty, unallocated) cache for `cfg`, at the precision the
    /// configuration selects ([`ModelConfig::kv_precision`]).
    pub fn new(cfg: &ModelConfig) -> Self {
        Self::with_precision(cfg, cfg.kv_precision)
    }

    /// [`KvCache::new`] with an explicit precision override.
    pub fn with_precision(cfg: &ModelConfig, precision: KvPrecision) -> Self {
        KvCache {
            n_layers: cfg.n_layers,
            n_kv_heads: cfg.n_kv_heads,
            head_dim: cfg.head_dim(),
            seq_max: cfg.seq_max,
            seq_cap: 0,
            stored: 0,
            store: match precision {
                KvPrecision::F32 => Store::F32 {
                    k: Vec::new(),
                    v: Vec::new(),
                },
                KvPrecision::I8 => Store::I8 {
                    k: Vec::new(),
                    v: Vec::new(),
                    k_scale: Vec::new(),
                    v_scale: Vec::new(),
                },
            },
            len: 0,
        }
    }

    /// The storage precision.
    pub fn precision(&self) -> KvPrecision {
        match self.store {
            Store::F32 { .. } => KvPrecision::F32,
            Store::I8 { .. } => KvPrecision::I8,
        }
    }

    /// Maximum positions the cache can ever hold.
    pub fn seq_max(&self) -> usize {
        self.seq_max
    }

    /// KV heads per layer.
    pub fn n_kv_heads(&self) -> usize {
        self.n_kv_heads
    }

    /// Elements per `(position, head)` row.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Currently allocated positions per stream (lazy; grows in
    /// [`KV_GROW_POSITIONS`] chunks as positions are stored).
    pub fn seq_capacity(&self) -> usize {
        self.seq_cap
    }

    /// Bytes currently resident in the cache's buffers.
    pub fn resident_bytes(&self) -> usize {
        match &self.store {
            Store::F32 { k, v } => (k.len() + v.len()) * 4,
            Store::I8 {
                k,
                v,
                k_scale,
                v_scale,
            } => k.len() + v.len() + (k_scale.len() + v_scale.len()) * 4,
        }
    }

    /// Clears the cache (allocation is retained for reuse).
    pub fn reset(&mut self) {
        self.len = 0;
        self.stored = 0;
    }

    /// Grows storage so positions `0..need` are addressable.
    fn ensure_capacity(&mut self, need: usize) {
        if need <= self.seq_cap {
            return;
        }
        assert!(need <= self.seq_max, "position beyond seq_max");
        let new_cap = need
            .div_ceil(KV_GROW_POSITIONS)
            .saturating_mul(KV_GROW_POSITIONS)
            .min(self.seq_max);
        let streams = self.n_layers * self.n_kv_heads;
        let filled = self.len.max(self.stored).min(self.seq_cap);
        let (old_cap, hd) = (self.seq_cap, self.head_dim);
        match &mut self.store {
            Store::F32 { k, v } => {
                *k = regrow(k, streams, old_cap, new_cap, hd, filled);
                *v = regrow(v, streams, old_cap, new_cap, hd, filled);
            }
            Store::I8 {
                k,
                v,
                k_scale,
                v_scale,
            } => {
                *k = regrow(k, streams, old_cap, new_cap, hd, filled);
                *v = regrow(v, streams, old_cap, new_cap, hd, filled);
                *k_scale = regrow(k_scale, streams, old_cap, new_cap, 1, filled);
                *v_scale = regrow(v_scale, streams, old_cap, new_cap, 1, filled);
            }
        }
        self.seq_cap = new_cap;
    }

    /// Stores one position's K/V rows (`kv_dim = n_kv_heads · head_dim`
    /// each) for `layer`, splitting them per head into the head-major
    /// streams; the `I8` store quantizes each head row symmetrically
    /// (`max|x| / 127`) and records the scale.
    ///
    /// Public so benches and serving code can populate long contexts
    /// directly; [`crate::Model::forward`] calls it once per layer.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range `layer`/`pos` or mis-sized rows.
    pub fn store(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        let hd = self.head_dim;
        assert!(layer < self.n_layers, "kv store: layer out of range");
        assert!(pos < self.seq_max, "kv store: position beyond seq_max");
        assert_eq!(k.len(), self.n_kv_heads * hd, "kv store: k row size");
        assert_eq!(v.len(), self.n_kv_heads * hd, "kv store: v row size");
        self.ensure_capacity(pos + 1);
        self.stored = self.stored.max(pos + 1);
        let cap = self.seq_cap;
        for h in 0..self.n_kv_heads {
            let stream = layer * self.n_kv_heads + h;
            let o = (stream * cap + pos) * hd;
            match &mut self.store {
                Store::F32 { k: ks, v: vs } => {
                    ks[o..o + hd].copy_from_slice(&k[h * hd..(h + 1) * hd]);
                    vs[o..o + hd].copy_from_slice(&v[h * hd..(h + 1) * hd]);
                }
                Store::I8 {
                    k: ks,
                    v: vs,
                    k_scale,
                    v_scale,
                } => {
                    let so = stream * cap + pos;
                    k_scale[so] = i8ops::quantize(&k[h * hd..(h + 1) * hd], &mut ks[o..o + hd]);
                    v_scale[so] = i8ops::quantize(&v[h * hd..(h + 1) * hd], &mut vs[o..o + hd]);
                }
            }
        }
    }

    /// One head's contiguous `f32` K and V streams for `layer` (position
    /// `t`'s row at `t * head_dim`). Only positions `< len` hold data.
    ///
    /// # Panics
    ///
    /// Panics if the cache is quantized or indices are out of range.
    pub(crate) fn f32_streams(&self, layer: usize, kv_head: usize) -> (&[f32], &[f32]) {
        let (cap, hd) = (self.seq_cap, self.head_dim);
        let stream = layer * self.n_kv_heads + kv_head;
        let o = stream * cap * hd;
        match &self.store {
            Store::F32 { k, v } => (&k[o..o + cap * hd], &v[o..o + cap * hd]),
            Store::I8 { .. } => panic!("f32_streams on an i8 cache"),
        }
    }

    /// One head's contiguous `i8` K/V code streams and their per-position
    /// scale rows for `layer`: `(k_codes, k_scales, v_codes, v_scales)`.
    ///
    /// # Panics
    ///
    /// Panics if the cache is `f32` or indices are out of range.
    pub(crate) fn i8_streams(
        &self,
        layer: usize,
        kv_head: usize,
    ) -> (&[i8], &[f32], &[i8], &[f32]) {
        let (cap, hd) = (self.seq_cap, self.head_dim);
        let stream = layer * self.n_kv_heads + kv_head;
        let o = stream * cap * hd;
        let so = stream * cap;
        match &self.store {
            Store::I8 {
                k,
                v,
                k_scale,
                v_scale,
            } => (
                &k[o..o + cap * hd],
                &k_scale[so..so + cap],
                &v[o..o + cap * hd],
                &v_scale[so..so + cap],
            ),
            Store::F32 { .. } => panic!("i8_streams on an f32 cache"),
        }
    }

    /// Dequantizes one stored K row back to `f32` (test/diagnostic helper;
    /// the hot path consumes codes directly).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len` or indices are out of range.
    pub fn k_row_f32(&self, layer: usize, kv_head: usize, pos: usize) -> Vec<f32> {
        assert!(pos < self.len, "k_row_f32: position not filled");
        let hd = self.head_dim;
        match self.precision() {
            KvPrecision::F32 => {
                let (k, _) = self.f32_streams(layer, kv_head);
                k[pos * hd..(pos + 1) * hd].to_vec()
            }
            KvPrecision::I8 => {
                let (k, ks, _, _) = self.i8_streams(layer, kv_head);
                k[pos * hd..(pos + 1) * hd]
                    .iter()
                    .map(|&c| ks[pos] * c as f32)
                    .collect()
            }
        }
    }

    /// The V-side twin of [`KvCache::k_row_f32`].
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len` or indices are out of range.
    pub fn v_row_f32(&self, layer: usize, kv_head: usize, pos: usize) -> Vec<f32> {
        assert!(pos < self.len, "v_row_f32: position not filled");
        let hd = self.head_dim;
        match self.precision() {
            KvPrecision::F32 => {
                let (_, v) = self.f32_streams(layer, kv_head);
                v[pos * hd..(pos + 1) * hd].to_vec()
            }
            KvPrecision::I8 => {
                let (_, _, v, vs) = self.i8_streams(layer, kv_head);
                v[pos * hd..(pos + 1) * hd]
                    .iter()
                    .map(|&c| vs[pos] * c as f32)
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelConfig {
        ModelConfig::tiny()
    }

    fn row(seed: usize, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((seed * 31 + i * 7) as f32 * 0.13).sin() * 1.7)
            .collect()
    }

    #[test]
    fn allocation_is_lazy_and_chunked() {
        let mut cfg = cfg();
        cfg.seq_max = 1024;
        let mut c = KvCache::with_precision(&cfg, KvPrecision::F32);
        assert_eq!(c.resident_bytes(), 0, "fresh cache owns no buffers");
        assert_eq!(c.seq_capacity(), 0);
        let kv = cfg.kv_dim();
        c.store(0, 0, &row(1, kv), &row(2, kv));
        assert_eq!(c.seq_capacity(), KV_GROW_POSITIONS);
        let after_one = c.resident_bytes();
        assert!(after_one > 0);
        // Staying inside the chunk does not grow...
        c.store(0, KV_GROW_POSITIONS - 1, &row(3, kv), &row(4, kv));
        assert_eq!(c.resident_bytes(), after_one);
        // ...crossing it adds exactly one chunk.
        c.store(0, KV_GROW_POSITIONS, &row(5, kv), &row(6, kv));
        assert_eq!(c.seq_capacity(), 2 * KV_GROW_POSITIONS);
        assert_eq!(c.resident_bytes(), 2 * after_one);
    }

    #[test]
    fn capacity_clamps_to_seq_max() {
        let cfg = cfg(); // seq_max = 64 < one growth chunk
        let mut c = KvCache::new(&cfg);
        let kv = cfg.kv_dim();
        c.store(0, cfg.seq_max - 1, &row(1, kv), &row(2, kv));
        assert_eq!(c.seq_capacity(), cfg.seq_max);
    }

    #[test]
    fn growth_preserves_stored_rows() {
        let mut cfg = cfg();
        cfg.seq_max = 1024;
        for prec in [KvPrecision::F32, KvPrecision::I8] {
            let mut c = KvCache::with_precision(&cfg, prec);
            let kv = cfg.kv_dim();
            let hd = cfg.head_dim();
            for pos in 0..KV_GROW_POSITIONS {
                c.store(1, pos, &row(pos, kv), &row(pos + 1000, kv));
                c.len = pos + 1;
            }
            let before: Vec<Vec<f32>> = (0..KV_GROW_POSITIONS)
                .map(|p| c.k_row_f32(1, 1, p))
                .collect();
            // Force a growth and verify every earlier row survived the
            // re-lay bit-for-bit.
            c.store(1, KV_GROW_POSITIONS, &row(7, kv), &row(8, kv));
            c.len = KV_GROW_POSITIONS + 1;
            for (p, want) in before.iter().enumerate() {
                assert_eq!(&c.k_row_f32(1, 1, p), want, "{prec:?} pos {p}");
                assert_eq!(want.len(), hd);
            }
        }
    }

    #[test]
    fn i8_store_roundtrips_within_quant_error() {
        let cfg = cfg();
        let mut c = KvCache::with_precision(&cfg, KvPrecision::I8);
        let kv = cfg.kv_dim();
        let hd = cfg.head_dim();
        let k = row(42, kv);
        c.store(0, 3, &k, &row(43, kv));
        c.len = 4;
        for h in 0..cfg.n_kv_heads {
            let got = c.k_row_f32(0, h, 3);
            let want = &k[h * hd..(h + 1) * hd];
            let amax = want.iter().fold(0f32, |m, x| m.max(x.abs()));
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() <= amax / 127.0 * 0.5 + 1e-6, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn i8_cache_is_about_4x_smaller() {
        // Realistic head_dim (64): the ratio is 8·hd / (2·hd + 8) — one f32
        // scale per (position, head) row next to hd 1-byte codes. Tiny's
        // 16-wide heads would overstate the scale overhead.
        let mut cfg = cfg();
        cfg.dim = 256;
        cfg.seq_max = 1024;
        let kv = cfg.kv_dim();
        let mut f = KvCache::with_precision(&cfg, KvPrecision::F32);
        let mut q = KvCache::with_precision(&cfg, KvPrecision::I8);
        f.store(0, 200, &row(1, kv), &row(2, kv));
        q.store(0, 200, &row(1, kv), &row(2, kv));
        let ratio = f.resident_bytes() as f64 / q.resident_bytes() as f64;
        // 4x codes, minus one f32 scale per (position, head) row.
        assert!(ratio > 3.5, "f32/i8 resident ratio {ratio}");
    }

    #[test]
    fn reset_keeps_allocation() {
        let cfg = cfg();
        let mut c = KvCache::new(&cfg);
        let kv = cfg.kv_dim();
        c.store(0, 5, &row(1, kv), &row(2, kv));
        c.len = 6;
        let bytes = c.resident_bytes();
        c.reset();
        assert_eq!(c.len, 0);
        assert_eq!(c.resident_bytes(), bytes);
    }
}
