//! Paged KV cache with radix-prefix sharing and copy-on-write forking.
//!
//! Decode-time attention at long contexts is a pure memory stream: every
//! token reads all previous positions' K and V rows. Earlier revisions gave
//! every sequence a private dense head-major region; this module re-lays the
//! cache as a **global pool of fixed-size pages** ([`PAGE_POSITIONS`]
//! positions each) with a per-sequence *block table* mapping position ranges
//! to pages. Within a page the layout stays head-major — one `(layer, head)`
//! stream is a contiguous `PAGE_POSITIONS × head_dim` run — so attention
//! sweeps page-by-page with the same contiguous inner loop, in both the
//! bit-exact `f32` and quantized `i8` precisions.
//!
//! Paging buys three things dense slots cannot offer:
//!
//! * **Prefix sharing.** A radix/trie index keyed on token ids maps cached
//!   prompt prefixes to page chains. [`KvCache::prefix_match`] attaches the
//!   longest cached prefix to a fresh sequence by bumping page refcounts —
//!   causal attention means identical token prefixes produce identical KV
//!   rows, so sharing is bit-exact and the matched positions skip prefill
//!   entirely.
//! * **Copy-on-write forking.** The first store into a page with refcount
//!   `> 1` forks it: the page is copied whole (all layers/heads) into a
//!   private page and the block-table entry swapped, so divergent tails
//!   never disturb the shared prefix.
//! * **Bounded residency.** An optional page budget caps the pool; when it
//!   is exhausted, least-recently-used *childless* trie nodes whose page no
//!   live sequence references are evicted until a page frees, else the
//!   allocation fails with [`KvError::OutOfPages`] (the scheduler turns
//!   this into per-sequence quarantine, not a crash).
//!
//! Allocation stays lazy: a fresh cache owns no pages, and the arena grows
//! one page at a time as positions are stored. Failure injection hooks
//! (`kv/page_alloc`, `kv/cow`) let the chaos suite drive allocation and
//! fork failures deterministically.

use crate::config::{KvPrecision, ModelConfig};
use tmac_core::failpoint::{self, FailAction};
use tmac_simd::i8ops;

/// Positions per page. Pages are the unit of sharing, COW and eviction;
/// 64 positions balances sharing granularity (a prefix shares only whole
/// pages) against per-sequence overhead (a lone decode tail still pins one
/// page).
pub const PAGE_POSITIONS: usize = 64;

/// Two pages' worth of positions — the growth-boundary span long-context
/// tests size against (capacity now advances page-at-a-time, so any context
/// longer than this has crossed at least two page boundaries).
pub const KV_GROW_POSITIONS: usize = 2 * PAGE_POSITIONS;

/// Sentinel for "no radix node" (root parents).
const NO_NODE: u32 = u32::MAX;

/// Allocation failures surfaced by the paged cache. Geometry violations
/// (bad layer/position/row sizes) stay panics, as before; only resource
/// exhaustion and injected faults are recoverable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The page pool is at its budget and nothing is evictable.
    OutOfPages {
        /// Pages the failed operation needed.
        needed: usize,
        /// The configured budget (total pool pages).
        budget: usize,
    },
    /// A failpoint at the named site injected this failure.
    Injected(&'static str),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::OutOfPages { needed, budget } => {
                write!(f, "kv pool out of pages (need {needed}, budget {budget})")
            }
            KvError::Injected(site) => write!(f, "injected kv failure at {site}"),
        }
    }
}

impl std::error::Error for KvError {}

/// A point-in-time snapshot of pool, sharing and eviction counters
/// (`/metrics` gauges and the prefix-prefill perf gate read these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Pages the arena has ever allocated (resident).
    pub pages_allocated: usize,
    /// Allocated pages currently on the free list.
    pub pages_free: usize,
    /// Allocated pages referenced by sequences or the radix index.
    pub pages_in_use: usize,
    /// Configured pool cap in pages (`0` = unbounded).
    pub page_budget: usize,
    /// `prefix_match` calls that attached at least one cached position.
    pub prefix_hits: u64,
    /// Total positions served from the radix index (prefill skipped).
    pub prefix_hit_positions: u64,
    /// Pages forked by copy-on-write.
    pub cow_forks: u64,
    /// Radix nodes evicted under page-budget pressure.
    pub evictions: u64,
    /// Live radix nodes.
    pub radix_nodes: usize,
    /// Bytes resident in the pooled arena.
    pub resident_bytes: usize,
}

/// Precision-specific page arena. Both variants share the page-major,
/// head-major layout: codes/values for `(page, layer, head, pos)` at
/// `((page · streams + layer · n_kv_heads + head) · PAGE_POSITIONS + pos) ·
/// head_dim`, scales (i8 only) at the same index without the `head_dim`
/// factor.
#[derive(Debug, Clone)]
enum Store {
    F32 {
        k: Vec<f32>,
        v: Vec<f32>,
    },
    I8 {
        k: Vec<i8>,
        v: Vec<i8>,
        k_scale: Vec<f32>,
        v_scale: Vec<f32>,
    },
}

/// One sequence's view of the pool: its block table plus filled length.
#[derive(Debug, Clone, Default)]
struct SeqKv {
    /// Page per `PAGE_POSITIONS`-aligned position range, in order.
    pages: Vec<u32>,
    /// Filled positions.
    len: usize,
}

/// One radix-index node: a run of up to [`PAGE_POSITIONS`] token ids and
/// the page holding their KV rows. Children always start at page
/// boundaries, so a node with fewer than `PAGE_POSITIONS` tokens is a leaf.
#[derive(Debug, Clone)]
struct RadixNode {
    tokens: Vec<u32>,
    page: u32,
    parent: u32,
    children: Vec<u32>,
    last_used: u64,
}

/// Paged, prefix-shared KV cache (see the module docs).
#[derive(Debug, Clone)]
pub struct KvCache {
    n_layers: usize,
    n_kv_heads: usize,
    head_dim: usize,
    seq_max: usize,
    /// Pool cap in pages (`0` = unbounded).
    page_budget: usize,
    /// Pages the arena holds storage for.
    pages: usize,
    store: Store,
    free_pages: Vec<u32>,
    refcnt: Vec<u32>,
    seqs: Vec<SeqKv>,
    nodes: Vec<Option<RadixNode>>,
    roots: Vec<u32>,
    free_nodes: Vec<u32>,
    /// LRU clock for radix touches.
    tick: u64,
    prefix_hits: u64,
    prefix_hit_positions: u64,
    cow_forks: u64,
    evictions: u64,
}

impl KvCache {
    /// Creates an (empty, unallocated) single-sequence cache for `cfg`, at
    /// the precision the configuration selects
    /// ([`ModelConfig::kv_precision`]).
    pub fn new(cfg: &ModelConfig) -> Self {
        Self::with_precision(cfg, cfg.kv_precision)
    }

    /// [`KvCache::new`] with an explicit precision override.
    pub fn with_precision(cfg: &ModelConfig, precision: KvPrecision) -> Self {
        Self::build(cfg, precision, 1)
    }

    /// A pooled cache serving `n_seqs` sequences over one shared page pool
    /// (the scheduler's slots index into this).
    ///
    /// # Panics
    ///
    /// Panics if `n_seqs == 0`.
    pub fn multi(cfg: &ModelConfig, n_seqs: usize) -> Self {
        Self::build(cfg, cfg.kv_precision, n_seqs)
    }

    fn build(cfg: &ModelConfig, precision: KvPrecision, n_seqs: usize) -> Self {
        assert!(n_seqs > 0, "kv cache needs at least one sequence");
        KvCache {
            n_layers: cfg.n_layers,
            n_kv_heads: cfg.n_kv_heads,
            head_dim: cfg.head_dim(),
            seq_max: cfg.seq_max,
            page_budget: 0,
            pages: 0,
            store: match precision {
                KvPrecision::F32 => Store::F32 {
                    k: Vec::new(),
                    v: Vec::new(),
                },
                KvPrecision::I8 => Store::I8 {
                    k: Vec::new(),
                    v: Vec::new(),
                    k_scale: Vec::new(),
                    v_scale: Vec::new(),
                },
            },
            free_pages: Vec::new(),
            refcnt: Vec::new(),
            seqs: vec![SeqKv::default(); n_seqs],
            nodes: Vec::new(),
            roots: Vec::new(),
            free_nodes: Vec::new(),
            tick: 0,
            prefix_hits: 0,
            prefix_hit_positions: 0,
            cow_forks: 0,
            evictions: 0,
        }
    }

    /// Caps the pool at `pages` total pages (builder style; `0` keeps the
    /// pool unbounded). Allocation beyond the cap evicts LRU radix leaves
    /// or fails with [`KvError::OutOfPages`].
    #[must_use]
    pub fn with_budget(mut self, pages: usize) -> Self {
        self.page_budget = pages;
        self
    }

    /// The storage precision.
    pub fn precision(&self) -> KvPrecision {
        match self.store {
            Store::F32 { .. } => KvPrecision::F32,
            Store::I8 { .. } => KvPrecision::I8,
        }
    }

    /// Maximum positions any sequence can hold.
    pub fn seq_max(&self) -> usize {
        self.seq_max
    }

    /// KV heads per layer.
    pub fn n_kv_heads(&self) -> usize {
        self.n_kv_heads
    }

    /// Elements per `(position, head)` row.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Sequences this pool serves.
    pub fn n_seqs(&self) -> usize {
        self.seqs.len()
    }

    /// The configured pool cap in pages (`0` = unbounded).
    pub fn page_budget(&self) -> usize {
        self.page_budget
    }

    /// Filled positions of sequence 0 (the single-stream view).
    pub fn len(&self) -> usize {
        self.seqs[0].len
    }

    /// `true` when sequence 0 holds no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks sequence 0 as filled up to `n` positions (single-stream view
    /// of [`KvCache::set_seq_len`]).
    pub fn set_len(&mut self, n: usize) {
        self.set_seq_len(0, n);
    }

    /// Filled positions of sequence `seq`.
    pub fn seq_len(&self, seq: usize) -> usize {
        self.seqs[seq].len
    }

    /// Marks sequence `seq` as filled up to `n` positions.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the sequence's paged capacity or `seq_max`.
    pub fn set_seq_len(&mut self, seq: usize, n: usize) {
        assert!(n <= self.seq_max, "kv len beyond seq_max");
        assert!(
            n <= self.seqs[seq].pages.len() * PAGE_POSITIONS,
            "kv len beyond paged capacity"
        );
        self.seqs[seq].len = n;
    }

    /// Positions sequence 0's block table currently addresses (page-granular
    /// and lazy: grows as positions are stored).
    pub fn seq_capacity(&self) -> usize {
        self.seqs[0].pages.len() * PAGE_POSITIONS
    }

    /// Bytes resident in the pooled page arena (shared across every
    /// sequence — this is the number `/metrics` KV gauges report).
    pub fn resident_bytes(&self) -> usize {
        match &self.store {
            Store::F32 { k, v } => (k.len() + v.len()) * 4,
            Store::I8 {
                k,
                v,
                k_scale,
                v_scale,
            } => k.len() + v.len() + (k_scale.len() + v_scale.len()) * 4,
        }
    }

    /// Pool, sharing and eviction counters.
    pub fn stats(&self) -> KvStats {
        KvStats {
            pages_allocated: self.pages,
            pages_free: self.free_pages.len(),
            pages_in_use: self.pages - self.free_pages.len(),
            page_budget: self.page_budget,
            prefix_hits: self.prefix_hits,
            prefix_hit_positions: self.prefix_hit_positions,
            cow_forks: self.cow_forks,
            evictions: self.evictions,
            radix_nodes: self.nodes.iter().filter(|n| n.is_some()).count(),
            resident_bytes: self.resident_bytes(),
        }
    }

    /// Clears all sequences and the radix index; every page returns to the
    /// free list (arena allocation is retained for reuse, counters keep
    /// accumulating).
    pub fn reset(&mut self) {
        for s in &mut self.seqs {
            s.pages.clear();
            s.len = 0;
        }
        self.nodes.clear();
        self.roots.clear();
        self.free_nodes.clear();
        for r in &mut self.refcnt {
            *r = 0;
        }
        self.free_pages = (0..self.pages as u32).rev().collect();
    }

    /// Releases sequence `seq`: drops its page references (pages whose
    /// refcount reaches zero return to the free list) and zeroes its
    /// length. Pages still referenced by the radix index or other
    /// sequences survive.
    pub fn release_seq(&mut self, seq: usize) {
        let pages = std::mem::take(&mut self.seqs[seq].pages);
        for p in pages {
            self.dec_ref(p);
        }
        self.seqs[seq].len = 0;
    }

    fn streams(&self) -> usize {
        self.n_layers * self.n_kv_heads
    }

    fn page_elems(&self) -> usize {
        self.streams() * PAGE_POSITIONS * self.head_dim
    }

    fn page_scales(&self) -> usize {
        self.streams() * PAGE_POSITIONS
    }

    /// Appends storage for one more page to the arena.
    fn push_page_storage(&mut self) {
        let pe = self.page_elems();
        let ps = self.page_scales();
        match &mut self.store {
            Store::F32 { k, v } => {
                k.resize(k.len() + pe, 0.0);
                v.resize(v.len() + pe, 0.0);
            }
            Store::I8 {
                k,
                v,
                k_scale,
                v_scale,
            } => {
                k.resize(k.len() + pe, 0);
                v.resize(v.len() + pe, 0);
                k_scale.resize(k_scale.len() + ps, 0.0);
                v_scale.resize(v_scale.len() + ps, 0.0);
            }
        }
        self.refcnt.push(0);
        self.pages += 1;
    }

    /// Allocates one page with refcount 1: free list first, then fresh
    /// arena growth under the budget, then LRU radix eviction.
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfPages`] when the budget is exhausted and nothing is
    /// evictable; [`KvError::Injected`] from the `kv/page_alloc` failpoint.
    fn alloc_page(&mut self) -> Result<u32, KvError> {
        match failpoint::fire("kv/page_alloc") {
            Some(FailAction::Panic) => panic!("failpoint kv/page_alloc"),
            Some(FailAction::Delay(_)) | None => {}
            Some(_) => return Err(KvError::Injected("kv/page_alloc")),
        }
        if let Some(p) = self.free_pages.pop() {
            self.refcnt[p as usize] = 1;
            return Ok(p);
        }
        if self.page_budget == 0 || self.pages < self.page_budget {
            self.push_page_storage();
            let p = (self.pages - 1) as u32;
            self.refcnt[p as usize] = 1;
            return Ok(p);
        }
        while self.free_pages.is_empty() && self.evict_one() {}
        match self.free_pages.pop() {
            Some(p) => {
                self.refcnt[p as usize] = 1;
                Ok(p)
            }
            None => Err(KvError::OutOfPages {
                needed: 1,
                budget: self.page_budget,
            }),
        }
    }

    fn dec_ref(&mut self, page: u32) {
        let r = &mut self.refcnt[page as usize];
        debug_assert!(*r > 0, "kv refcount underflow");
        *r -= 1;
        if *r == 0 {
            self.free_pages.push(page);
        }
    }

    /// Evicts the least-recently-used childless radix node whose page no
    /// sequence references, freeing exactly one page. Returns `false` when
    /// nothing is evictable.
    fn evict_one(&mut self) -> bool {
        let mut best: Option<(u32, u64)> = None;
        for (i, slot) in self.nodes.iter().enumerate() {
            if let Some(n) = slot {
                if n.children.is_empty()
                    && self.refcnt[n.page as usize] == 1
                    && best.is_none_or(|(_, t)| n.last_used < t)
                {
                    best = Some((i as u32, n.last_used));
                }
            }
        }
        let Some((id, _)) = best else {
            return false;
        };
        let node = self.nodes[id as usize].take().expect("picked a live node");
        if node.parent == NO_NODE {
            self.roots.retain(|&r| r != id);
        } else if let Some(p) = self.nodes[node.parent as usize].as_mut() {
            p.children.retain(|&c| c != id);
        }
        self.free_nodes.push(id);
        self.dec_ref(node.page);
        self.evictions += 1;
        tmac_trace::instant("kv", "evict", u64::from(node.page), 0);
        true
    }

    fn add_node(&mut self, node: RadixNode) -> u32 {
        if let Some(id) = self.free_nodes.pop() {
            self.nodes[id as usize] = Some(node);
            id
        } else {
            self.nodes.push(Some(node));
            (self.nodes.len() - 1) as u32
        }
    }

    fn touch(&mut self, id: u32) {
        self.tick += 1;
        if let Some(n) = self.nodes[id as usize].as_mut() {
            n.last_used = self.tick;
        }
    }

    /// Forks sequence `seq`'s `page_idx`-th page: copies the whole page
    /// (all layers and heads — later layers of the same positions then see
    /// refcount 1) into a private page and swaps the block-table entry.
    fn cow_fork(&mut self, seq: usize, page_idx: usize) -> Result<u32, KvError> {
        match failpoint::fire("kv/cow") {
            Some(FailAction::Panic) => panic!("failpoint kv/cow"),
            Some(FailAction::Delay(_)) | None => {}
            Some(_) => return Err(KvError::Injected("kv/cow")),
        }
        let old = self.seqs[seq].pages[page_idx];
        let new = self.alloc_page()?;
        let pe = self.page_elems();
        let ps = self.page_scales();
        let (ob, nb) = (old as usize * pe, new as usize * pe);
        let (osb, nsb) = (old as usize * ps, new as usize * ps);
        match &mut self.store {
            Store::F32 { k, v } => {
                k.copy_within(ob..ob + pe, nb);
                v.copy_within(ob..ob + pe, nb);
            }
            Store::I8 {
                k,
                v,
                k_scale,
                v_scale,
            } => {
                k.copy_within(ob..ob + pe, nb);
                v.copy_within(ob..ob + pe, nb);
                k_scale.copy_within(osb..osb + ps, nsb);
                v_scale.copy_within(osb..osb + ps, nsb);
            }
        }
        self.seqs[seq].pages[page_idx] = new;
        self.dec_ref(old);
        self.cow_forks += 1;
        tmac_trace::instant("kv", "cow_fork", seq as u64, u64::from(new));
        Ok(new)
    }

    /// Stores one position's K/V rows (`kv_dim = n_kv_heads · head_dim`
    /// each) for sequence 0 — the single-stream twin of
    /// [`KvCache::store_seq`], kept panicking for engine/bench callers
    /// whose unbounded pool cannot legitimately fail.
    ///
    /// # Panics
    ///
    /// Panics on geometry violations or (failpoint-injected/budgeted)
    /// allocation failure.
    pub fn store(&mut self, layer: usize, pos: usize, k: &[f32], v: &[f32]) {
        if let Err(e) = self.store_seq(0, layer, pos, k, v) {
            panic!("kv store: {e}");
        }
    }

    /// Stores one position's K/V rows for sequence `seq`, allocating pages
    /// up to the position's page (sparse stores pin every intermediate
    /// page) and copy-on-write forking a shared page on first write. The
    /// `I8` store quantizes each head row symmetrically (`max|x| / 127`)
    /// and records the scale.
    ///
    /// # Errors
    ///
    /// [`KvError::OutOfPages`] under budget pressure,
    /// [`KvError::Injected`] from the `kv/page_alloc` / `kv/cow`
    /// failpoints. The sequence keeps the pages it already held.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range `seq`/`layer`/`pos` or mis-sized rows.
    pub fn store_seq(
        &mut self,
        seq: usize,
        layer: usize,
        pos: usize,
        k: &[f32],
        v: &[f32],
    ) -> Result<(), KvError> {
        let hd = self.head_dim;
        assert!(seq < self.seqs.len(), "kv store: sequence out of range");
        assert!(layer < self.n_layers, "kv store: layer out of range");
        assert!(pos < self.seq_max, "kv store: position beyond seq_max");
        assert_eq!(k.len(), self.n_kv_heads * hd, "kv store: k row size");
        assert_eq!(v.len(), self.n_kv_heads * hd, "kv store: v row size");
        let page_idx = pos / PAGE_POSITIONS;
        while self.seqs[seq].pages.len() <= page_idx {
            let p = self.alloc_page()?;
            self.seqs[seq].pages.push(p);
        }
        let mut page = self.seqs[seq].pages[page_idx];
        if self.refcnt[page as usize] > 1 {
            page = self.cow_fork(seq, page_idx)?;
        }
        let pp = pos % PAGE_POSITIONS;
        let streams = self.streams();
        for h in 0..self.n_kv_heads {
            let stream = layer * self.n_kv_heads + h;
            let row = (page as usize * streams + stream) * PAGE_POSITIONS + pp;
            let o = row * hd;
            match &mut self.store {
                Store::F32 { k: ks, v: vs } => {
                    ks[o..o + hd].copy_from_slice(&k[h * hd..(h + 1) * hd]);
                    vs[o..o + hd].copy_from_slice(&v[h * hd..(h + 1) * hd]);
                }
                Store::I8 {
                    k: ks,
                    v: vs,
                    k_scale,
                    v_scale,
                } => {
                    k_scale[row] = i8ops::quantize(&k[h * hd..(h + 1) * hd], &mut ks[o..o + hd]);
                    v_scale[row] = i8ops::quantize(&v[h * hd..(h + 1) * hd], &mut vs[o..o + hd]);
                }
            }
        }
        Ok(())
    }

    /// Attaches the longest cached prefix of `tokens` to the fresh
    /// sequence `seq`: every fully-matched radix node's page is
    /// refcount-shared into the sequence's block table and its length set
    /// to the matched position count, so prefill resumes *after* the
    /// match. Returns the matched positions (0 = cold).
    ///
    /// Matching may end inside a node (a partial-page hit still shares the
    /// page bit-exactly — causality means the extra positions beyond the
    /// match are simply never read, and the first divergent store forks
    /// the page).
    ///
    /// # Panics
    ///
    /// Panics if `seq` already holds pages (match is an admission-time
    /// operation on an empty sequence).
    pub fn prefix_match(&mut self, seq: usize, tokens: &[u32]) -> usize {
        assert!(
            self.seqs[seq].pages.is_empty() && self.seqs[seq].len == 0,
            "prefix_match needs a fresh sequence"
        );
        let mut matched = 0usize;
        let mut children: Vec<u32> = self.roots.clone();
        while matched < tokens.len() {
            let rest = &tokens[matched..];
            let mut best: Option<(u32, usize)> = None;
            for &c in &children {
                let n = self.nodes[c as usize].as_ref().expect("live child");
                let common = n
                    .tokens
                    .iter()
                    .zip(rest)
                    .take_while(|(a, b)| a == b)
                    .count();
                if common > 0 && best.is_none_or(|(_, bc)| common > bc) {
                    best = Some((c, common));
                }
            }
            let Some((id, common)) = best else { break };
            self.touch(id);
            let (page, node_len, kids) = {
                let n = self.nodes[id as usize].as_ref().expect("live child");
                (n.page, n.tokens.len(), n.children.clone())
            };
            self.refcnt[page as usize] += 1;
            self.seqs[seq].pages.push(page);
            matched += common;
            if common == node_len && node_len == PAGE_POSITIONS {
                children = kids;
            } else {
                break;
            }
        }
        if matched > 0 {
            self.prefix_hits += 1;
            self.prefix_hit_positions += matched as u64;
            self.seqs[seq].len = matched;
            tmac_trace::instant("kv", "prefix_hit", seq as u64, matched as u64);
        }
        matched
    }

    /// Publishes sequence `seq`'s filled prefix of `tokens` into the radix
    /// index so later requests can share it. Walks the trie page-chunk by
    /// page-chunk: exact matches descend (LRU touch), a partial leaf that
    /// this prompt extends is upgraded in place to the longer run, and
    /// anything uncovered becomes a new node holding a reference to the
    /// sequence's page.
    pub fn prefix_insert(&mut self, seq: usize, tokens: &[u32]) {
        let usable = tokens.len().min(self.seqs[seq].len);
        let mut at = 0usize;
        let mut parent = NO_NODE;
        while at < usable {
            let chunk_idx = at / PAGE_POSITIONS;
            let end = (at + PAGE_POSITIONS).min(usable);
            let chunk = &tokens[at..end];
            let child_ids: Vec<u32> = if parent == NO_NODE {
                self.roots.clone()
            } else {
                self.nodes[parent as usize]
                    .as_ref()
                    .expect("live parent")
                    .children
                    .clone()
            };
            // Decide without holding node borrows, then mutate.
            enum Step {
                Descend(u32),
                Upgrade(u32),
                Covered(u32),
                New,
            }
            let mut step = Step::New;
            for &c in &child_ids {
                let n = self.nodes[c as usize].as_ref().expect("live child");
                let common = n
                    .tokens
                    .iter()
                    .zip(chunk.iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                if common == n.tokens.len() && common == chunk.len() {
                    step = Step::Descend(c);
                    break;
                }
                if common == n.tokens.len() && common < chunk.len() && n.children.is_empty() {
                    step = Step::Upgrade(c);
                    break;
                }
                if common == chunk.len() && common < n.tokens.len() {
                    step = Step::Covered(c);
                    break;
                }
            }
            let id = match step {
                Step::Descend(c) => {
                    self.touch(c);
                    c
                }
                Step::Upgrade(c) => {
                    // The leaf's page holds only its shorter run; ours holds
                    // the full chunk (COW guarantees they differ once we
                    // wrote past the shared run). Swap the node onto ours.
                    let old = self.nodes[c as usize].as_ref().expect("live child").page;
                    let newp = self.seqs[seq].pages[chunk_idx];
                    if newp != old {
                        self.refcnt[newp as usize] += 1;
                        let n = self.nodes[c as usize].as_mut().expect("live child");
                        n.tokens = chunk.to_vec();
                        n.page = newp;
                        self.dec_ref(old);
                    } else {
                        self.nodes[c as usize].as_mut().expect("live child").tokens =
                            chunk.to_vec();
                    }
                    self.touch(c);
                    c
                }
                Step::Covered(c) => {
                    // An existing node already covers this (final, partial)
                    // chunk; nothing new to publish.
                    self.touch(c);
                    break;
                }
                Step::New => {
                    let pg = self.seqs[seq].pages[chunk_idx];
                    self.refcnt[pg as usize] += 1;
                    self.tick += 1;
                    let id = self.add_node(RadixNode {
                        tokens: chunk.to_vec(),
                        page: pg,
                        parent,
                        children: Vec::new(),
                        last_used: self.tick,
                    });
                    if parent == NO_NODE {
                        self.roots.push(id);
                    } else {
                        self.nodes[parent as usize]
                            .as_mut()
                            .expect("live parent")
                            .children
                            .push(id);
                    }
                    id
                }
            };
            parent = id;
            at = end;
        }
    }

    /// Sequence `seq`'s block table (one page per position range).
    pub(crate) fn seq_pages(&self, seq: usize) -> &[u32] {
        &self.seqs[seq].pages
    }

    /// One head's contiguous `f32` K and V streams for one page of `layer`
    /// (position `t` *within the page* at `t * head_dim`).
    ///
    /// # Panics
    ///
    /// Panics if the cache is quantized or indices are out of range.
    pub(crate) fn f32_page(&self, page: u32, layer: usize, kv_head: usize) -> (&[f32], &[f32]) {
        let hd = self.head_dim;
        let stream = layer * self.n_kv_heads + kv_head;
        let o = (page as usize * self.streams() + stream) * PAGE_POSITIONS * hd;
        let n = PAGE_POSITIONS * hd;
        match &self.store {
            Store::F32 { k, v } => (&k[o..o + n], &v[o..o + n]),
            Store::I8 { .. } => panic!("f32_page on an i8 cache"),
        }
    }

    /// One head's contiguous `i8` K/V code streams and their per-position
    /// scale rows for one page of `layer`:
    /// `(k_codes, k_scales, v_codes, v_scales)`.
    ///
    /// # Panics
    ///
    /// Panics if the cache is `f32` or indices are out of range.
    pub(crate) fn i8_page(
        &self,
        page: u32,
        layer: usize,
        kv_head: usize,
    ) -> (&[i8], &[f32], &[i8], &[f32]) {
        let hd = self.head_dim;
        let stream = layer * self.n_kv_heads + kv_head;
        let row = page as usize * self.streams() + stream;
        let o = row * PAGE_POSITIONS * hd;
        let so = row * PAGE_POSITIONS;
        let n = PAGE_POSITIONS * hd;
        match &self.store {
            Store::I8 {
                k,
                v,
                k_scale,
                v_scale,
            } => (
                &k[o..o + n],
                &k_scale[so..so + PAGE_POSITIONS],
                &v[o..o + n],
                &v_scale[so..so + PAGE_POSITIONS],
            ),
            Store::F32 { .. } => panic!("i8_page on an f32 cache"),
        }
    }

    /// One stored K row of sequence 0 as `f32`, borrowed: the `f32` cache
    /// returns the page slice directly, the `i8` cache dequantizes into
    /// `buf` (which must hold at least `head_dim` elements). No per-call
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`, indices are out of range, or `buf` is too
    /// small for an `i8` cache.
    pub fn k_row_f32<'a>(
        &'a self,
        layer: usize,
        kv_head: usize,
        pos: usize,
        buf: &'a mut [f32],
    ) -> &'a [f32] {
        self.row_f32(layer, kv_head, pos, buf, true)
    }

    /// The V-side twin of [`KvCache::k_row_f32`].
    ///
    /// # Panics
    ///
    /// Same contract as [`KvCache::k_row_f32`].
    pub fn v_row_f32<'a>(
        &'a self,
        layer: usize,
        kv_head: usize,
        pos: usize,
        buf: &'a mut [f32],
    ) -> &'a [f32] {
        self.row_f32(layer, kv_head, pos, buf, false)
    }

    fn row_f32<'a>(
        &'a self,
        layer: usize,
        kv_head: usize,
        pos: usize,
        buf: &'a mut [f32],
        key: bool,
    ) -> &'a [f32] {
        assert!(pos < self.seqs[0].len, "kv row: position not filled");
        let hd = self.head_dim;
        let page = self.seqs[0].pages[pos / PAGE_POSITIONS];
        let pp = pos % PAGE_POSITIONS;
        match self.precision() {
            KvPrecision::F32 => {
                let (k, v) = self.f32_page(page, layer, kv_head);
                let s = if key { k } else { v };
                &s[pp * hd..(pp + 1) * hd]
            }
            KvPrecision::I8 => {
                assert!(buf.len() >= hd, "kv row: buf smaller than head_dim");
                let (k, ks, v, vs) = self.i8_page(page, layer, kv_head);
                let (codes, scale) = if key { (k, ks[pp]) } else { (v, vs[pp]) };
                for (i, b) in buf[..hd].iter_mut().enumerate() {
                    *b = scale * codes[pp * hd + i] as f32;
                }
                &buf[..hd]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelConfig {
        ModelConfig::tiny()
    }

    fn row(seed: usize, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((seed * 31 + i * 7) as f32 * 0.13).sin() * 1.7)
            .collect()
    }

    #[test]
    fn allocation_is_lazy_and_paged() {
        let mut cfg = cfg();
        cfg.seq_max = 1024;
        let mut c = KvCache::with_precision(&cfg, KvPrecision::F32);
        assert_eq!(c.resident_bytes(), 0, "fresh cache owns no pages");
        assert_eq!(c.seq_capacity(), 0);
        let kv = cfg.kv_dim();
        c.store(0, 0, &row(1, kv), &row(2, kv));
        assert_eq!(c.seq_capacity(), PAGE_POSITIONS);
        let after_one = c.resident_bytes();
        assert!(after_one > 0);
        // Staying inside the page does not grow...
        c.store(0, PAGE_POSITIONS - 1, &row(3, kv), &row(4, kv));
        assert_eq!(c.resident_bytes(), after_one);
        // ...crossing it adds exactly one page.
        c.store(0, PAGE_POSITIONS, &row(5, kv), &row(6, kv));
        assert_eq!(c.seq_capacity(), 2 * PAGE_POSITIONS);
        assert_eq!(c.resident_bytes(), 2 * after_one);
        assert_eq!(c.stats().pages_in_use, 2);
    }

    #[test]
    fn sparse_store_pins_intermediate_pages() {
        let mut cfg = cfg();
        cfg.seq_max = 1024;
        let mut c = KvCache::new(&cfg);
        let kv = cfg.kv_dim();
        c.store(0, 3 * PAGE_POSITIONS + 5, &row(1, kv), &row(2, kv));
        assert_eq!(c.seq_capacity(), 4 * PAGE_POSITIONS);
        assert_eq!(c.stats().pages_in_use, 4);
    }

    #[test]
    fn page_boundary_preserves_stored_rows() {
        let mut cfg = cfg();
        cfg.seq_max = 1024;
        for prec in [KvPrecision::F32, KvPrecision::I8] {
            let mut c = KvCache::with_precision(&cfg, prec);
            let kv = cfg.kv_dim();
            let hd = cfg.head_dim();
            let mut buf = vec![0f32; hd];
            for pos in 0..PAGE_POSITIONS {
                c.store(1, pos, &row(pos, kv), &row(pos + 1000, kv));
                c.set_len(pos + 1);
            }
            let before: Vec<Vec<f32>> = (0..PAGE_POSITIONS)
                .map(|p| c.k_row_f32(1, 1, p, &mut buf).to_vec())
                .collect();
            // Cross a page boundary and verify every earlier row survives
            // bit-for-bit (pages never re-lay).
            c.store(1, PAGE_POSITIONS, &row(7, kv), &row(8, kv));
            c.set_len(PAGE_POSITIONS + 1);
            for (p, want) in before.iter().enumerate() {
                assert_eq!(
                    &c.k_row_f32(1, 1, p, &mut buf).to_vec(),
                    want,
                    "{prec:?} pos {p}"
                );
                assert_eq!(want.len(), hd);
            }
        }
    }

    #[test]
    fn i8_store_roundtrips_within_quant_error() {
        let cfg = cfg();
        let mut c = KvCache::with_precision(&cfg, KvPrecision::I8);
        let kv = cfg.kv_dim();
        let hd = cfg.head_dim();
        let k = row(42, kv);
        c.store(0, 3, &k, &row(43, kv));
        c.set_len(4);
        let mut buf = vec![0f32; hd];
        for h in 0..cfg.n_kv_heads {
            let got = c.k_row_f32(0, h, 3, &mut buf).to_vec();
            let want = &k[h * hd..(h + 1) * hd];
            let amax = want.iter().fold(0f32, |m, x| m.max(x.abs()));
            for (g, w) in got.iter().zip(want) {
                assert!((g - w).abs() <= amax / 127.0 * 0.5 + 1e-6, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn i8_cache_is_about_4x_smaller() {
        // Realistic head_dim (64): the ratio is 8·hd / (2·hd + 8) — one f32
        // scale per (position, head) row next to hd 1-byte codes. Tiny's
        // 16-wide heads would overstate the scale overhead.
        let mut cfg = cfg();
        cfg.dim = 256;
        cfg.seq_max = 1024;
        let kv = cfg.kv_dim();
        let mut f = KvCache::with_precision(&cfg, KvPrecision::F32);
        let mut q = KvCache::with_precision(&cfg, KvPrecision::I8);
        f.store(0, 200, &row(1, kv), &row(2, kv));
        q.store(0, 200, &row(1, kv), &row(2, kv));
        let ratio = f.resident_bytes() as f64 / q.resident_bytes() as f64;
        assert!(ratio > 3.5, "f32/i8 resident ratio {ratio}");
    }

    #[test]
    fn reset_keeps_allocation() {
        let cfg = cfg();
        let mut c = KvCache::new(&cfg);
        let kv = cfg.kv_dim();
        c.store(0, 5, &row(1, kv), &row(2, kv));
        c.set_len(6);
        let bytes = c.resident_bytes();
        c.reset();
        assert_eq!(c.len(), 0);
        assert_eq!(c.resident_bytes(), bytes);
        assert_eq!(c.stats().pages_in_use, 0);
    }

    /// Prefill `seq` with `tokens` via direct stores (layer-0 rows derived
    /// from the token id so shared prefixes share content).
    fn fill_seq(c: &mut KvCache, cfg: &ModelConfig, seq: usize, tokens: &[u32]) {
        let kv = cfg.kv_dim();
        let from = c.seq_len(seq);
        for (i, &t) in tokens.iter().enumerate().skip(from) {
            for l in 0..cfg.n_layers {
                c.store_seq(
                    seq,
                    l,
                    i,
                    &row(t as usize + l, kv),
                    &row(t as usize + 7 + l, kv),
                )
                .unwrap();
            }
        }
        c.set_seq_len(seq, tokens.len());
    }

    #[test]
    fn prefix_match_shares_pages_and_refcounts() {
        let mut cfg = cfg();
        cfg.seq_max = 512;
        let mut c = KvCache::multi(&cfg, 3);
        let prompt: Vec<u32> = (0..150).map(|i| i % 90).collect();
        fill_seq(&mut c, &cfg, 0, &prompt);
        c.prefix_insert(0, &prompt);
        let used_before = c.stats().pages_in_use;

        // A second sequence with the same prompt matches everything cached.
        let matched = c.prefix_match(1, &prompt);
        assert_eq!(matched, prompt.len(), "full prompt is indexed");
        assert_eq!(c.seq_len(1), matched);
        // Sharing allocates nothing.
        assert_eq!(c.stats().pages_in_use, used_before);
        assert_eq!(c.stats().prefix_hits, 1);
        assert_eq!(c.stats().prefix_hit_positions, matched as u64);

        // A diverging prompt matches only the common whole pages + the
        // partial tail page.
        let mut other = prompt.clone();
        other[100] = 91; // diverges inside page 1
        let m2 = c.prefix_match(2, &other);
        assert_eq!(m2, 100, "match stops at the divergent token");
        assert_eq!(c.seq_len(2), 100);
    }

    #[test]
    fn cow_fork_diverges_without_disturbing_the_shared_page() {
        let mut cfg = cfg();
        cfg.seq_max = 512;
        let mut c = KvCache::multi(&cfg, 2);
        let prompt: Vec<u32> = (0..100).map(|i| i % 90).collect();
        fill_seq(&mut c, &cfg, 0, &prompt);
        c.prefix_insert(0, &prompt);
        let matched = c.prefix_match(1, &prompt[..99]);
        assert_eq!(matched, 99);
        let hd = cfg.head_dim();
        let mut buf = vec![0f32; hd];
        let kv = cfg.kv_dim();
        // Seq 1 writes a *different* row at position 99 (inside the shared
        // second page) — the first store must fork.
        let forks_before = c.stats().cow_forks;
        c.store_seq(1, 0, 99, &row(999, kv), &row(998, kv)).unwrap();
        assert_eq!(c.stats().cow_forks, forks_before + 1);
        c.set_seq_len(1, 100);
        // Seq 0's row at 99 is untouched...
        let s0: Vec<f32> = c.k_row_f32(0, 0, 99, &mut buf).to_vec();
        assert_eq!(s0, row(prompt[99] as usize, kv)[..hd].to_vec());
        // ...and the sequences now own different pages for that range.
        assert_ne!(c.seq_pages(0)[1], c.seq_pages(1)[1]);
        // Only the written page forked; the first page stays shared.
        assert_eq!(c.seq_pages(0)[0], c.seq_pages(1)[0]);
    }

    #[test]
    fn eviction_frees_lru_unreferenced_nodes_under_budget() {
        let mut cfg = cfg();
        cfg.seq_max = 512;
        // Budget of 2 pages: each 64-token prompt fills exactly one page.
        let mut c = KvCache::multi(&cfg, 1).with_budget(2);
        let p1: Vec<u32> = (0..64).map(|i| i % 90).collect();
        let p2: Vec<u32> = (0..64).map(|i| (i + 1) % 90).collect();
        let p3: Vec<u32> = (0..64).map(|i| (i + 2) % 90).collect();
        for p in [&p1, &p2] {
            fill_seq(&mut c, &cfg, 0, p);
            c.prefix_insert(0, p);
            c.release_seq(0);
        }
        assert_eq!(c.stats().pages_in_use, 2);
        assert_eq!(c.stats().radix_nodes, 2);
        // Touch p2 so p1 is the LRU entry.
        assert_eq!(c.prefix_match(0, &p2), 64);
        c.release_seq(0);
        // A third prompt needs a page: p1's node must be evicted.
        fill_seq(&mut c, &cfg, 0, &p3);
        assert_eq!(c.stats().evictions, 1);
        c.release_seq(0);
        assert_eq!(c.prefix_match(0, &p1), 0, "p1 was evicted");
        assert_eq!(c.prefix_match(0, &p2), 64, "p2 survived as the MRU entry");
    }

    #[test]
    fn out_of_pages_when_everything_is_referenced() {
        let cfg = cfg(); // seq_max 64 = one page
        let mut c = KvCache::multi(&cfg, 2).with_budget(1);
        let kv = cfg.kv_dim();
        c.store_seq(0, 0, 0, &row(1, kv), &row(2, kv)).unwrap();
        // The only page is pinned by seq 0; seq 1 cannot allocate.
        let err = c.store_seq(1, 0, 0, &row(3, kv), &row(4, kv)).unwrap_err();
        assert_eq!(
            err,
            KvError::OutOfPages {
                needed: 1,
                budget: 1
            }
        );
        // Releasing seq 0 frees the page for seq 1.
        c.release_seq(0);
        c.store_seq(1, 0, 0, &row(3, kv), &row(4, kv)).unwrap();
    }

    #[test]
    fn partial_leaf_is_upgraded_in_place_by_a_longer_prompt() {
        let mut cfg = cfg();
        cfg.seq_max = 512;
        let mut c = KvCache::multi(&cfg, 2);
        let short: Vec<u32> = (0..20).map(|i| i % 90).collect();
        let long: Vec<u32> = (0..40).map(|i| i % 90).collect();
        fill_seq(&mut c, &cfg, 0, &short);
        c.prefix_insert(0, &short);
        assert_eq!(c.stats().radix_nodes, 1);
        // The longer prompt matches the partial leaf, extends it, and the
        // insert upgrades the node instead of adding a sibling.
        let m = c.prefix_match(1, &long[..39]);
        assert_eq!(m, 20);
        fill_seq(&mut c, &cfg, 1, &long);
        c.prefix_insert(1, &long);
        assert_eq!(c.stats().radix_nodes, 1, "leaf upgraded, not duplicated");
        c.release_seq(0);
        c.release_seq(1);
        let mut c2 = c.clone();
        assert_eq!(c2.prefix_match(0, &long), long.len());
    }
}
