//! Model persistence: the convert→serve workflow.
//!
//! Two formats, one naming convention (llama.cpp tensor names):
//!
//! * **`.tmac`** ([`tmac_io::container`]) — weights stored *already in the
//!   offline-transformed T-MAC layout*. [`Model::from_tmac`] hands each
//!   prepacked plan to the backend builder
//!   ([`crate::backend::BackendBuilder::build_prepacked`]); the T-MAC
//!   kinds consume it zero-copy straight from the file mapping, other
//!   backends lazily materialize the canonical quantized matrix per layer
//!   and build from that. Cold start is a header parse + checksum sweep
//!   instead of generate+quantize+pack.
//! * **GGUF** ([`tmac_io::gguf`]) — the interchange form: quantization
//!   codes as `I8` tensors (`<name>.codes`) plus `F32` scales
//!   (`<name>.scales`), norms/embeddings as plain `F32` tensors.
//!   Loading re-runs the offline pack (that is the point of `.tmac`).
//!
//! Both round-trip exactly: codes, scales and zero are preserved
//! bit-for-bit, so a reloaded model produces bit-identical logits on the
//! quantized backends (asserted in `tests/model_io.rs`).

use crate::backend::{BackendBuilder, BackendError, Linear};
use crate::config::{KvPrecision, ModelConfig, WeightQuant};
use crate::model::{LayerWeights, Model};
use crate::ops;
use std::path::Path;
use tmac_core::{KernelOpts, WeightPlan};
use tmac_io::{
    write_container, GgmlType, GgufFile, GgufValue, GgufWriter, IoError, TensorSource, TensorSpec,
    TmacContainer,
};
use tmac_quant::QuantizedMatrix;

pub use tmac_io::LoadMode;

/// Errors from model save/load.
#[derive(Debug)]
pub enum ModelIoError {
    /// Container-level failure (filesystem, parse, checksum...).
    Io(IoError),
    /// Backend construction failure.
    Backend(BackendError),
    /// The model cannot be serialized from its current backend.
    Unsupported(String),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "{e}"),
            ModelIoError::Backend(e) => write!(f, "{e}"),
            ModelIoError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<IoError> for ModelIoError {
    fn from(e: IoError) -> Self {
        ModelIoError::Io(e)
    }
}

impl From<BackendError> for ModelIoError {
    fn from(e: BackendError) -> Self {
        ModelIoError::Backend(e)
    }
}

/// llama.cpp-style tensor name of layer `l`'s projection `what`.
fn blk(l: usize, what: &str) -> String {
    format!("blk.{l}.{what}.weight")
}

/// The seven projections of one layer, with their `(rows, cols)` shapes.
fn layer_linears(cfg: &ModelConfig, l: usize) -> Vec<(String, usize, usize)> {
    let (d, kv, f) = (cfg.dim, cfg.kv_dim(), cfg.ffn_dim);
    vec![
        (blk(l, "attn_q"), d, d),
        (blk(l, "attn_k"), kv, d),
        (blk(l, "attn_v"), kv, d),
        (blk(l, "attn_output"), d, d),
        (blk(l, "ffn_gate"), f, d),
        (blk(l, "ffn_down"), d, f),
        (blk(l, "ffn_up"), f, d),
    ]
}

fn kv_label(p: KvPrecision) -> &'static str {
    match p {
        KvPrecision::F32 => "f32",
        KvPrecision::I8 => "i8",
    }
}

/// The model/quant configuration as container metadata.
fn cfg_meta(cfg: &ModelConfig, quant: WeightQuant) -> Vec<(String, GgufValue)> {
    let (qkind, qbits) = match quant {
        WeightQuant::Rtn(b) => ("rtn", b),
        WeightQuant::BitnetTernary => ("bitnet", 2),
    };
    vec![
        (
            "general.architecture".into(),
            GgufValue::String("llama".into()),
        ),
        ("general.name".into(), GgufValue::String(cfg.name.clone())),
        ("tmac.cfg.dim".into(), GgufValue::U64(cfg.dim as u64)),
        (
            "tmac.cfg.n_layers".into(),
            GgufValue::U64(cfg.n_layers as u64),
        ),
        (
            "tmac.cfg.n_heads".into(),
            GgufValue::U64(cfg.n_heads as u64),
        ),
        (
            "tmac.cfg.n_kv_heads".into(),
            GgufValue::U64(cfg.n_kv_heads as u64),
        ),
        (
            "tmac.cfg.ffn_dim".into(),
            GgufValue::U64(cfg.ffn_dim as u64),
        ),
        ("tmac.cfg.vocab".into(), GgufValue::U64(cfg.vocab as u64)),
        (
            "tmac.cfg.seq_max".into(),
            GgufValue::U64(cfg.seq_max as u64),
        ),
        ("tmac.cfg.rope_theta".into(), GgufValue::F32(cfg.rope_theta)),
        (
            "tmac.cfg.kv_precision".into(),
            GgufValue::String(kv_label(cfg.kv_precision).into()),
        ),
        ("tmac.quant.kind".into(), GgufValue::String(qkind.into())),
        ("tmac.quant.bits".into(), GgufValue::U64(qbits as u64)),
    ]
}

/// Parses the model/quant configuration back from metadata.
fn cfg_from_meta(
    get: &dyn Fn(&str) -> Option<GgufValue>,
) -> Result<(ModelConfig, WeightQuant), ModelIoError> {
    let want_u64 = |key: &str| -> Result<usize, ModelIoError> {
        get(key)
            .and_then(|v| v.as_u64())
            .map(|v| v as usize)
            .ok_or_else(|| ModelIoError::Io(IoError::MissingMeta(key.into())))
    };
    let want_str = |key: &str| -> Result<String, ModelIoError> {
        get(key)
            .and_then(|v| v.as_str().map(str::to_string))
            .ok_or_else(|| ModelIoError::Io(IoError::MissingMeta(key.into())))
    };
    let kv = match want_str("tmac.cfg.kv_precision")?.as_str() {
        "f32" => KvPrecision::F32,
        "i8" => KvPrecision::I8,
        other => {
            return Err(ModelIoError::Io(IoError::Corrupt(format!(
                "unknown kv precision {other:?}"
            ))))
        }
    };
    let cfg = ModelConfig {
        name: want_str("general.name")?,
        dim: want_u64("tmac.cfg.dim")?,
        n_layers: want_u64("tmac.cfg.n_layers")?,
        n_heads: want_u64("tmac.cfg.n_heads")?,
        n_kv_heads: want_u64("tmac.cfg.n_kv_heads")?,
        ffn_dim: want_u64("tmac.cfg.ffn_dim")?,
        vocab: want_u64("tmac.cfg.vocab")?,
        seq_max: want_u64("tmac.cfg.seq_max")?,
        rope_theta: get("tmac.cfg.rope_theta")
            .and_then(|v| v.as_f32())
            .ok_or_else(|| ModelIoError::Io(IoError::MissingMeta("tmac.cfg.rope_theta".into())))?,
        kv_precision: kv,
    };
    cfg.validate()
        .map_err(|m| ModelIoError::Io(IoError::ShapeMismatch(m)))?;
    let bits = want_u64("tmac.quant.bits")? as u8;
    let quant = match want_str("tmac.quant.kind")?.as_str() {
        "rtn" => WeightQuant::Rtn(bits),
        "bitnet" => WeightQuant::BitnetTernary,
        other => {
            return Err(ModelIoError::Io(IoError::Corrupt(format!(
                "unknown quantizer {other:?}"
            ))))
        }
    };
    if !(1..=4).contains(&quant.bits()) {
        return Err(ModelIoError::Io(IoError::Corrupt(format!(
            "bad weight bit-width {}",
            quant.bits()
        ))));
    }
    Ok((cfg, quant))
}

/// A linear's prepacked plan for serialization: borrowed from the backend
/// when it owns one, else re-packed from the exported quantized matrix.
enum PlanSrc<'a> {
    Backend(&'a WeightPlan),
    Packed(Box<WeightPlan>),
}

impl PlanSrc<'_> {
    fn plan(&self) -> &WeightPlan {
        match self {
            PlanSrc::Backend(p) => p,
            PlanSrc::Packed(p) => p,
        }
    }
}

fn plan_src<'a>(lin: &'a Linear, name: &str) -> Result<PlanSrc<'a>, ModelIoError> {
    if let Some(p) = lin.backend().tmac_plan() {
        return Ok(PlanSrc::Backend(p));
    }
    let qm = lin.backend().export_quantized().ok_or_else(|| {
        ModelIoError::Unsupported(format!(
            "tensor {name}: backend {:?} cannot be serialized (no prepacked plan and no exact \
             quantized export — e.g. the f32 reference backend)",
            lin.label()
        ))
    })?;
    let plan = WeightPlan::new(&qm, KernelOpts::tmac())
        .map_err(|e| ModelIoError::Io(IoError::ShapeMismatch(e.to_string())))?;
    Ok(PlanSrc::Packed(Box::new(plan)))
}

/// Walks every linear of a model with its tensor name and expected shape.
fn model_linears(model: &Model) -> Vec<(String, usize, usize, &Linear)> {
    let cfg = &model.cfg;
    let mut out = Vec::new();
    for (l, lw) in model.layers.iter().enumerate() {
        let lins = [&lw.wq, &lw.wk, &lw.wv, &lw.wo, &lw.w1, &lw.w2, &lw.w3];
        for ((name, rows, cols), lin) in layer_linears(cfg, l).into_iter().zip(lins) {
            out.push((name, rows, cols, lin));
        }
    }
    out.push(("output.weight".into(), cfg.vocab, cfg.dim, &model.head));
    out
}

impl Model {
    /// Saves this model as a prepacked `.tmac` container.
    ///
    /// Weights are written in the exact offline-transformed layout the
    /// kernels consume (the backend's own plan when it has one), so
    /// [`Model::from_tmac`] restores them without re-packing.
    ///
    /// # Errors
    ///
    /// [`ModelIoError::Unsupported`] when a layer's backend can export
    /// neither a prepacked plan nor an exact quantized matrix (the `f32`
    /// reference backend); [`ModelIoError::Io`] on container failures.
    pub fn save_tmac(&self, path: &Path) -> Result<(), ModelIoError> {
        let cfg = &self.cfg;
        let linears = model_linears(self);
        let mut srcs = Vec::with_capacity(linears.len());
        for (name, rows, cols, lin) in &linears {
            if (lin.rows(), lin.cols()) != (*rows, *cols) {
                return Err(ModelIoError::Io(IoError::ShapeMismatch(format!(
                    "{name}: layer is {}x{}, config says {rows}x{cols}",
                    lin.rows(),
                    lin.cols()
                ))));
            }
            srcs.push(plan_src(lin, name)?);
        }
        let mut tensors = Vec::new();
        tensors.push(TensorSpec {
            name: "token_embd.weight".into(),
            source: TensorSource::F32 {
                dims: vec![cfg.vocab as u64, cfg.dim as u64],
                data: &self.embed,
            },
        });
        tensors.push(TensorSpec {
            name: "output_norm.weight".into(),
            source: TensorSource::F32 {
                dims: vec![cfg.dim as u64],
                data: &self.rms_final,
            },
        });
        for (l, lw) in self.layers.iter().enumerate() {
            tensors.push(TensorSpec {
                name: blk(l, "attn_norm"),
                source: TensorSource::F32 {
                    dims: vec![cfg.dim as u64],
                    data: &lw.rms_attn,
                },
            });
            tensors.push(TensorSpec {
                name: blk(l, "ffn_norm"),
                source: TensorSource::F32 {
                    dims: vec![cfg.dim as u64],
                    data: &lw.rms_ffn,
                },
            });
        }
        for ((name, ..), src) in linears.iter().zip(&srcs) {
            tensors.push(TensorSpec {
                name: name.clone(),
                source: TensorSource::Plan(src.plan()),
            });
        }
        write_container(path, &cfg_meta(cfg, self.quant), &tensors)?;
        Ok(())
    }

    /// Loads a model from a `.tmac` container.
    ///
    /// The container is opened under `mode` ([`LoadMode::Mmap`] borrows
    /// weight tiles zero-copy from the mapping) and fully
    /// integrity-checked. Each prepacked plan is offered to `builder` via
    /// [`BackendBuilder::build_prepacked`]; builders that decline get the
    /// lazily materialized canonical matrix instead.
    ///
    /// # Errors
    ///
    /// Typed [`IoError`]s for corrupt/truncated/mismatched containers;
    /// backend build failures.
    pub fn from_tmac(
        path: &Path,
        builder: &dyn BackendBuilder,
        mode: LoadMode,
    ) -> Result<Model, ModelIoError> {
        let c = TmacContainer::open(path, mode)?;
        Self::from_container(&c, builder)
    }

    /// [`Model::from_tmac`] over an already-open container.
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::from_tmac`].
    pub fn from_container(
        c: &TmacContainer,
        builder: &dyn BackendBuilder,
    ) -> Result<Model, ModelIoError> {
        let (cfg, quant) = cfg_from_meta(&|k| c.meta(k).cloned())?;
        let build = |name: &str, rows: usize, cols: usize| -> Result<Linear, ModelIoError> {
            let plan = c.plan(name)?;
            if (plan.m, plan.k) != (rows, cols) {
                return Err(ModelIoError::Io(IoError::ShapeMismatch(format!(
                    "{name}: container tensor is {}x{}, config says {rows}x{cols}",
                    plan.m, plan.k
                ))));
            }
            if plan.bits != quant.bits() as usize {
                return Err(ModelIoError::Io(IoError::ShapeMismatch(format!(
                    "{name}: {}-bit tensor in a {}-bit model",
                    plan.bits,
                    quant.bits()
                ))));
            }
            if let Some(lin) = builder.build_prepacked(&plan) {
                return Ok(lin?);
            }
            // Lazy per-layer materialization for backends that do not
            // consume the prepacked layout: transient canonical matrix
            // (and its dequantized f32 twin for reference backends),
            // dropped as soon as the layer is built.
            let qm = plan.to_quantized();
            let f32w = qm.dequantize();
            Ok(builder.build(&qm, &f32w)?)
        };
        let f32_vec = |name: &str, expect: usize| -> Result<Vec<f32>, ModelIoError> {
            let data = c.f32_tensor(name)?;
            if data.len() != expect {
                return Err(ModelIoError::Io(IoError::ShapeMismatch(format!(
                    "{name}: {} elements, expected {expect}",
                    data.len()
                ))));
            }
            Ok(data.to_vec())
        };

        let mut layers = Vec::with_capacity(cfg.n_layers);
        for l in 0..cfg.n_layers {
            let mut lins = Vec::with_capacity(7);
            for (name, rows, cols) in layer_linears(&cfg, l) {
                lins.push(build(&name, rows, cols)?);
            }
            let mut it = lins.into_iter();
            layers.push(LayerWeights {
                wq: it.next().expect("7 linears"),
                wk: it.next().expect("7 linears"),
                wv: it.next().expect("7 linears"),
                wo: it.next().expect("7 linears"),
                w1: it.next().expect("7 linears"),
                w2: it.next().expect("7 linears"),
                w3: it.next().expect("7 linears"),
                rms_attn: f32_vec(&blk(l, "attn_norm"), cfg.dim)?,
                rms_ffn: f32_vec(&blk(l, "ffn_norm"), cfg.dim)?,
            });
        }
        Ok(Model {
            embed: f32_vec("token_embd.weight", cfg.vocab * cfg.dim)?,
            rms_final: f32_vec("output_norm.weight", cfg.dim)?,
            head: build("output.weight", cfg.vocab, cfg.dim)?,
            rope: ops::RopeTable::new(cfg.head_dim(), cfg.rope_theta),
            quant,
            layers,
            cfg,
        })
    }

    /// Saves this model as GGUF: quantization codes as `I8` tensors
    /// (`<name>.codes`, GGUF dims `[cols, rows]`), scales as `F32`
    /// (`<name>.scales`), norms/embeddings as plain `F32`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::save_tmac`].
    pub fn save_gguf(&self, path: &Path) -> Result<(), ModelIoError> {
        let cfg = &self.cfg;
        let mut w = GgufWriter::new();
        for (k, v) in cfg_meta(cfg, self.quant) {
            w.meta(&k, v);
        }
        w.tensor_f32(
            "token_embd.weight",
            &[cfg.dim as u64, cfg.vocab as u64],
            &self.embed,
        )?;
        w.tensor_f32("output_norm.weight", &[cfg.dim as u64], &self.rms_final)?;
        for (l, lw) in self.layers.iter().enumerate() {
            w.tensor_f32(&blk(l, "attn_norm"), &[cfg.dim as u64], &lw.rms_attn)?;
            w.tensor_f32(&blk(l, "ffn_norm"), &[cfg.dim as u64], &lw.rms_ffn)?;
        }
        let mut zero_written = false;
        for (name, _, _, lin) in model_linears(self) {
            let qm = lin.backend().export_quantized().ok_or_else(|| {
                ModelIoError::Unsupported(format!(
                    "tensor {name}: backend {:?} cannot export its quantized weights",
                    lin.label()
                ))
            })?;
            if !zero_written {
                w.meta("tmac.quant.zero", GgufValue::F32(qm.zero));
                w.meta(
                    "tmac.quant.group_size",
                    GgufValue::U64(qm.group_size as u64),
                );
                zero_written = true;
            }
            w.tensor(
                &format!("{name}.codes"),
                &[qm.cols as u64, qm.rows as u64],
                GgmlType::I8,
                qm.codes.clone(),
            )?;
            w.tensor_f32(
                &format!("{name}.scales"),
                &[qm.groups_per_row() as u64, qm.rows as u64],
                &qm.scales,
            )?;
        }
        w.write(path)?;
        Ok(())
    }

    /// Loads a model from a GGUF file written by [`Model::save_gguf`].
    ///
    /// Codes/scales/zero are restored bit-exactly; the offline pack
    /// (`WeightPlan`) is re-run per layer — the convert-once-to-`.tmac`
    /// path exists precisely to avoid this cost at serve time.
    ///
    /// # Errors
    ///
    /// Typed [`IoError`]s and backend build failures.
    pub fn from_gguf(
        path: &Path,
        builder: &dyn BackendBuilder,
        mode: LoadMode,
    ) -> Result<Model, ModelIoError> {
        let f = GgufFile::open(path, mode)?;
        let (cfg, quant) = cfg_from_meta(&|k| f.meta(k).cloned())?;
        let zero = f
            .meta("tmac.quant.zero")
            .and_then(|v| v.as_f32())
            .ok_or_else(|| ModelIoError::Io(IoError::MissingMeta("tmac.quant.zero".into())))?;
        let group_size = f
            .meta("tmac.quant.group_size")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| ModelIoError::Io(IoError::MissingMeta("tmac.quant.group_size".into())))?
            as usize;
        let build = |name: &str, rows: usize, cols: usize| -> Result<Linear, ModelIoError> {
            let codes = f.tensor_bytes(&format!("{name}.codes"))?;
            let scales = f.tensor_f32(&format!("{name}.scales"))?;
            let qm = QuantizedMatrix {
                rows,
                cols,
                bits: quant.bits(),
                group_size,
                codes: codes.to_vec(),
                scales,
                zero,
            };
            qm.validate()
                .map_err(|e| ModelIoError::Io(IoError::ShapeMismatch(e.to_string())))?;
            let f32w = qm.dequantize();
            Ok(builder.build(&qm, &f32w)?)
        };
        let f32_vec = |name: &str, expect: usize| -> Result<Vec<f32>, ModelIoError> {
            let data = f.tensor_f32(name)?;
            if data.len() != expect {
                return Err(ModelIoError::Io(IoError::ShapeMismatch(format!(
                    "{name}: {} elements, expected {expect}",
                    data.len()
                ))));
            }
            Ok(data)
        };
        let mut layers = Vec::with_capacity(cfg.n_layers);
        for l in 0..cfg.n_layers {
            let mut lins = Vec::with_capacity(7);
            for (name, rows, cols) in layer_linears(&cfg, l) {
                lins.push(build(&name, rows, cols)?);
            }
            let mut it = lins.into_iter();
            layers.push(LayerWeights {
                wq: it.next().expect("7 linears"),
                wk: it.next().expect("7 linears"),
                wv: it.next().expect("7 linears"),
                wo: it.next().expect("7 linears"),
                w1: it.next().expect("7 linears"),
                w2: it.next().expect("7 linears"),
                w3: it.next().expect("7 linears"),
                rms_attn: f32_vec(&blk(l, "attn_norm"), cfg.dim)?,
                rms_ffn: f32_vec(&blk(l, "ffn_norm"), cfg.dim)?,
            });
        }
        Ok(Model {
            embed: f32_vec("token_embd.weight", cfg.vocab * cfg.dim)?,
            rms_final: f32_vec("output_norm.weight", cfg.dim)?,
            head: build("output.weight", cfg.vocab, cfg.dim)?,
            rope: ops::RopeTable::new(cfg.head_dim(), cfg.rope_theta),
            quant,
            layers,
            cfg,
        })
    }

    /// Loads from either format by extension (`.gguf` → GGUF, anything
    /// else → `.tmac`).
    ///
    /// # Errors
    ///
    /// Same contracts as [`Model::from_tmac`] / [`Model::from_gguf`].
    pub fn from_file(
        path: &Path,
        builder: &dyn BackendBuilder,
        mode: LoadMode,
    ) -> Result<Model, ModelIoError> {
        if path.extension().is_some_and(|e| e == "gguf") {
            Model::from_gguf(path, builder, mode)
        } else {
            Model::from_tmac(path, builder, mode)
        }
    }

    /// Saves to either format by extension (`.gguf` → GGUF, anything else
    /// → `.tmac`).
    ///
    /// # Errors
    ///
    /// Same contracts as [`Model::save_tmac`] / [`Model::save_gguf`].
    pub fn save_file(&self, path: &Path) -> Result<(), ModelIoError> {
        if path.extension().is_some_and(|e| e == "gguf") {
            self.save_gguf(path)
        } else {
            self.save_tmac(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tmac-llm-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn cfg_meta_roundtrip() {
        let cfg = ModelConfig::tiny().with_kv(KvPrecision::I8);
        for quant in [WeightQuant::Rtn(3), WeightQuant::BitnetTernary] {
            let meta = cfg_meta(&cfg, quant);
            let get = |k: &str| -> Option<GgufValue> {
                meta.iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v.clone())
            };
            let (back, q) = cfg_from_meta(&get).unwrap();
            assert_eq!(back, cfg);
            assert_eq!(q, quant);
        }
    }

    #[test]
    fn cfg_from_meta_requires_keys() {
        let cfg = ModelConfig::tiny();
        let meta = cfg_meta(&cfg, WeightQuant::Rtn(2));
        for omit in ["tmac.cfg.dim", "tmac.quant.kind", "general.name"] {
            let get = |k: &str| -> Option<GgufValue> {
                if k == omit {
                    return None;
                }
                meta.iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v.clone())
            };
            assert!(
                matches!(
                    cfg_from_meta(&get),
                    Err(ModelIoError::Io(IoError::MissingMeta(_)))
                ),
                "{omit}"
            );
        }
    }

    #[test]
    fn f32_models_cannot_be_saved() {
        let m = Model::synthetic(
            &ModelConfig::tiny(),
            WeightQuant::Rtn(2),
            BackendKind::F32,
            3,
        )
        .unwrap();
        let err = m.save_tmac(&tmp("f32.tmac"));
        assert!(matches!(err, Err(ModelIoError::Unsupported(_))));
    }

    #[test]
    fn dequant_models_save_via_quantized_export() {
        let path = tmp("dequant.tmac");
        let m = Model::synthetic(
            &ModelConfig::tiny(),
            WeightQuant::Rtn(2),
            BackendKind::Dequant,
            3,
        )
        .unwrap();
        m.save_tmac(&path).unwrap();
        let back = Model::from_tmac(
            &path,
            &BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
            LoadMode::Mmap,
        )
        .unwrap();
        assert_eq!(back.cfg, m.cfg);
        assert_eq!(back.quant, m.quant);
        std::fs::remove_file(&path).unwrap();
    }
}
