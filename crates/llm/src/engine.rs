//! Generation engine: decode loops, throughput measurement, and full-depth
//! extrapolation from scaled models.
//!
//! The paper measures end-to-end throughput by repeatedly generating 64
//! tokens (§5.1, "Measurement approach"). Full 7B/13B models do not fit the
//! evaluation host, so experiments run *scaled* configurations with the
//! exact per-layer shapes and extrapolate: per-token time is measured as
//! `layers + other` and the layer part scales linearly in depth (decode is
//! memory-bound weight streaming; attention's KV share at these sequence
//! lengths is small). The substitution is recorded in `DESIGN.md`.

use crate::backend::BackendError;
use crate::batch::FinishReason;
use crate::model::{BatchScratch, KvCache, Model, Scratch};
use crate::ops;
use crate::sampling::{self, GenRequest, Sampler};
use tmac_core::ExecCtx;

/// *Target* rows per prefill [`Model::forward_batch`] call: long prompts
/// are split into chunks of about this many positions, bounding
/// batch-scratch memory (the dominant term is `chunk × vocab` logits)
/// while keeping the prompt on the mpGEMM path. The chunk a model actually
/// uses is [`Model::prefill_chunk`] — this target rounded to the backend's
/// batch blocking (`n_block`), so prefill chunking follows the kernel's
/// real row blocking instead of a hardcoded 16.
pub const PREFILL_CHUNK: usize = 16;

/// A model plus its generation state.
pub struct Engine {
    /// The model.
    pub model: Model,
    cache: KvCache,
    scratch: Scratch,
    /// Lazily sized buffers for [`Engine::prefill`] (absent until the first
    /// prefill; reused across calls).
    batch_scratch: Option<BatchScratch>,
}

/// The result of one [`Engine::generate`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenOutput {
    /// All generated tokens in order (a matched stop sequence is
    /// included).
    pub tokens: Vec<u32>,
    /// [`FinishReason::Length`] when all `max_new` tokens were generated,
    /// [`FinishReason::Stop`] when a stop sequence ended the request.
    pub reason: FinishReason,
}

/// Decode-loop measurement result.
#[derive(Debug, Clone, Copy)]
pub struct DecodeStats {
    /// Average seconds per generated token.
    pub seconds_per_token: f64,
    /// Seconds spent in transformer layers per token.
    pub layer_seconds: f64,
    /// Seconds outside the layers (embedding, final norm, LM head).
    pub other_seconds: f64,
    /// Tokens generated during measurement.
    pub tokens: usize,
}

impl DecodeStats {
    /// Tokens per second.
    pub fn tokens_per_sec(&self) -> f64 {
        1.0 / self.seconds_per_token
    }

    /// Extrapolates to a model with `full_layers` layers, given that the
    /// measurement ran `measured_layers` of identical shape.
    pub fn extrapolate_layers(&self, measured_layers: usize, full_layers: usize) -> DecodeStats {
        let per_layer = self.layer_seconds / measured_layers.max(1) as f64;
        let layer_seconds = per_layer * full_layers as f64;
        DecodeStats {
            seconds_per_token: layer_seconds + self.other_seconds,
            layer_seconds,
            other_seconds: self.other_seconds,
            tokens: self.tokens,
        }
    }
}

impl Engine {
    /// Wraps a model with fresh generation state.
    pub fn new(model: Model) -> Self {
        let cache = KvCache::new(&model.cfg);
        let scratch = Scratch::new(&model.cfg);
        Engine {
            model,
            cache,
            scratch,
            batch_scratch: None,
        }
    }

    /// An engine over a model loaded from a container file (`.tmac`
    /// mmap-prepacked or `.gguf`, by extension — see
    /// [`Model::from_file`]).
    ///
    /// # Errors
    ///
    /// Propagates container-load failures.
    pub fn from_file(
        path: &std::path::Path,
        builder: &dyn crate::backend::BackendBuilder,
        mode: crate::io::LoadMode,
    ) -> Result<Self, crate::io::ModelIoError> {
        Ok(Engine::new(Model::from_file(path, builder, mode)?))
    }

    /// Clears all per-sequence state: the KV cache and any logits left from
    /// a previous prefill/step. (Multi-sequence serving state lives in
    /// [`crate::batch::Scheduler`], whose `reset` clears its sequences.)
    pub fn reset(&mut self) {
        self.cache.reset();
        self.scratch.logits.fill(0.0);
    }

    /// Runs one decode step and returns a copy of the logits.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn step(
        &mut self,
        token: u32,
        pos: usize,
        ctx: &ExecCtx,
    ) -> Result<Vec<f32>, BackendError> {
        self.model
            .forward(token, pos, &mut self.cache, &mut self.scratch, ctx)?;
        Ok(self.scratch.logits.clone())
    }

    /// Prefills `prompt` as batched mpGEMM chunks (every projection runs
    /// with `n = chunk` rows, so weight tiles stream once per row block
    /// instead of once per token) and returns the logits after the *last*
    /// prompt token — exactly what greedy decoding samples the first new
    /// token from, so nothing is computed and discarded.
    ///
    /// Resets the engine first; afterwards the KV cache holds all
    /// `prompt.len()` positions and decoding continues at `prompt.len()`.
    /// The returned logits are also left in the engine's single-step logits
    /// buffer (the one [`Engine::step`] fills).
    ///
    /// # Errors
    ///
    /// Fails on an empty prompt, a prompt longer than `seq_max`, or model
    /// failures.
    pub fn prefill(&mut self, prompt: &[u32], ctx: &ExecCtx) -> Result<Vec<f32>, BackendError> {
        if prompt.is_empty() {
            return Err(BackendError::Shape("empty prompt".into()));
        }
        if prompt.len() > self.model.cfg.seq_max {
            return Err(BackendError::Shape(format!(
                "prompt {} exceeds seq_max {}",
                prompt.len(),
                self.model.cfg.seq_max
            )));
        }
        self.reset();
        let chunk = self.model.prefill_chunk().min(prompt.len());
        if self
            .batch_scratch
            .as_ref()
            .is_none_or(|s| s.capacity() < chunk)
        {
            self.batch_scratch = Some(BatchScratch::new(&self.model.cfg, chunk));
        }
        let bs = self.batch_scratch.as_mut().expect("just ensured");
        let last_row = self
            .model
            .prefill_chunked(prompt, 0, &mut self.cache, bs, chunk, ctx)?;
        self.scratch.logits.copy_from_slice(bs.logits_row(last_row));
        Ok(self.scratch.logits.clone())
    }

    /// Single-stream generation: prefills the request's prompt as one
    /// mpGEMM batch, then decodes up to `max_new` tokens one at a time
    /// through the request's [`crate::sampling`] pipeline (the default
    /// [`GenRequest::greedy`] is bit-identical to argmax decoding).
    ///
    /// A hit on any of the request's stop sequences ends generation early
    /// with [`FinishReason::Stop`]; the matched tokens stay in the output.
    ///
    /// # Errors
    ///
    /// Fails on an empty prompt, a total length exceeding `seq_max`,
    /// invalid sampling params or stop sequences, or a step failure.
    pub fn generate(&mut self, req: &GenRequest, ctx: &ExecCtx) -> Result<GenOutput, BackendError> {
        if req.prompt.is_empty() {
            return Err(BackendError::Shape("empty prompt".into()));
        }
        if req.prompt.len() + req.max_new > self.model.cfg.seq_max {
            return Err(BackendError::Shape(format!(
                "sequence {} + {} exceeds seq_max {}",
                req.prompt.len(),
                req.max_new,
                self.model.cfg.seq_max
            )));
        }
        req.validate(self.model.cfg.vocab)?;
        let mut sampler = Sampler::new(&req.sampling, self.model.cfg.vocab);
        sampler.observe_all(&req.prompt);
        let logits = self.prefill(&req.prompt, ctx)?;
        let mut out = GenOutput {
            tokens: Vec::with_capacity(req.max_new),
            reason: FinishReason::Length,
        };
        if req.max_new == 0 {
            return Ok(out);
        }
        // The first new token comes straight from the prefill logits (the
        // final prompt token's forward pass is not discarded).
        let mut token = sampler.sample(&logits);
        out.tokens.push(token);
        for pos in req.prompt.len()..req.prompt.len() + req.max_new - 1 {
            if sampling::hits_stop(&out.tokens, &req.stop) {
                out.reason = FinishReason::Stop;
                return Ok(out);
            }
            self.model
                .forward(token, pos, &mut self.cache, &mut self.scratch, ctx)?;
            token = sampler.sample(&self.scratch.logits);
            out.tokens.push(token);
        }
        if sampling::hits_stop(&out.tokens, &req.stop) {
            out.reason = FinishReason::Stop;
        }
        Ok(out)
    }

    /// Measures decode throughput: generates `n_tokens` tokens from a fixed
    /// prompt, timing each forward pass (after one warm-up token).
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn measure_decode(
        &mut self,
        n_tokens: usize,
        ctx: &ExecCtx,
    ) -> Result<DecodeStats, BackendError> {
        self.reset();
        let mut layer_s = 0f64;
        let mut other_s = 0f64;
        let mut token = 1u32;
        // Warm-up token (paper: warm-up before measurement).
        self.model
            .forward(token, 0, &mut self.cache, &mut self.scratch, ctx)?;
        for i in 0..n_tokens {
            let pos = i + 1;
            if pos >= self.model.cfg.seq_max {
                break;
            }
            let (l, o) =
                self.model
                    .forward_timed(token, pos, &mut self.cache, &mut self.scratch, ctx)?;
            layer_s += l;
            other_s += o;
            token = (ops::argmax(&self.scratch.logits) as u32) % self.model.cfg.vocab as u32;
        }
        let n = n_tokens
            .min(self.model.cfg.seq_max.saturating_sub(1))
            .max(1);
        Ok(DecodeStats {
            seconds_per_token: (layer_s + other_s) / n as f64,
            layer_seconds: layer_s / n as f64,
            other_seconds: other_s / n as f64,
            tokens: n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::config::{ModelConfig, WeightQuant};

    fn engine(kind: BackendKind) -> Engine {
        Engine::new(Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(4), kind, 9).unwrap())
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let ctx = ExecCtx::new(1);
        let mut e = engine(BackendKind::F32);
        let req = GenRequest::greedy(&[1, 2, 3], 8);
        let a = e.generate(&req, &ctx).unwrap();
        let b = e.generate(&req, &ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.reason, FinishReason::Length);
        assert_eq!(a.tokens.len(), 8);
        assert!(a.tokens.iter().all(|&t| (t as usize) < e.model.cfg.vocab));
    }

    #[test]
    fn backends_generate_same_prefix() {
        // Quantization error may eventually diverge sequences, but the first
        // tokens should agree between T-MAC and the dequant baseline (same
        // quantized weights).
        let ctx = ExecCtx::new(1);
        let mut d = engine(BackendKind::Dequant);
        let mut t = engine(BackendKind::Tmac(tmac_core::KernelOpts::tmac()));
        let req = GenRequest::greedy(&[5, 6], 4);
        let gd = d.generate(&req, &ctx).unwrap().tokens;
        let gt = t.generate(&req, &ctx).unwrap().tokens;
        assert_eq!(gd[0], gt[0], "first generated token differs");
    }

    #[test]
    fn stop_sequence_ends_generation_with_matched_tokens_kept() {
        let ctx = ExecCtx::new(1);
        let mut e = engine(BackendKind::F32);
        let full = e
            .generate(&GenRequest::greedy(&[1, 2, 3], 8), &ctx)
            .unwrap()
            .tokens;
        // Stop on a 2-token window of the greedy stream: the output must be
        // the shortest prefix ending with it, stop tokens included.
        let stop_seq = full[1..3].to_vec();
        let hit = (1..=full.len())
            .find(|&n| full[..n].ends_with(&stop_seq))
            .expect("stop sequence is a window of full");
        let out = e
            .generate(
                &GenRequest::greedy(&[1, 2, 3], 8).with_stop(vec![stop_seq]),
                &ctx,
            )
            .unwrap();
        assert_eq!(out.reason, FinishReason::Stop);
        assert_eq!(out.tokens, full[..hit]);
        // A stop sequence that never occurs changes nothing.
        let absent = (0..e.model.cfg.vocab as u32)
            .find(|t| !full.contains(t))
            .expect("vocab larger than the output");
        let out = e
            .generate(
                &GenRequest::greedy(&[1, 2, 3], 8).with_stop(vec![vec![absent]]),
                &ctx,
            )
            .unwrap();
        assert_eq!(out.reason, FinishReason::Length);
        assert_eq!(out.tokens, full);
    }

    #[test]
    fn generation_rejects_invalid_sampling() {
        let ctx = ExecCtx::new(1);
        let mut e = engine(BackendKind::F32);
        let req = GenRequest::greedy(&[1], 2).with_sampling(crate::sampling::SamplingParams {
            top_p: 0.0,
            ..Default::default()
        });
        assert!(e.generate(&req, &ctx).is_err());
    }

    #[test]
    fn measure_decode_reports_sane_stats() {
        let ctx = ExecCtx::new(1);
        let mut e = engine(BackendKind::F32);
        let s = e.measure_decode(6, &ctx).unwrap();
        assert!(s.seconds_per_token > 0.0);
        assert!(s.layer_seconds > 0.0);
        assert!(s.tokens_per_sec() > 0.0);
        assert!((s.layer_seconds + s.other_seconds - s.seconds_per_token).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_scales_layers_only() {
        let s = DecodeStats {
            seconds_per_token: 0.3,
            layer_seconds: 0.2,
            other_seconds: 0.1,
            tokens: 10,
        };
        let full = s.extrapolate_layers(2, 32);
        assert!((full.layer_seconds - 3.2).abs() < 1e-9);
        assert!((full.seconds_per_token - 3.3).abs() < 1e-9);
        assert!((full.other_seconds - 0.1).abs() < 1e-9);
    }

    #[test]
    fn prefill_matches_token_by_token_forwards() {
        // The batched prefill must be bit-identical to feeding the prompt
        // one token at a time, including across chunk boundaries.
        for kind in [
            BackendKind::F32,
            BackendKind::Dequant,
            BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
        ] {
            let ctx = ExecCtx::new(1);
            let prompt: Vec<u32> = (0..(PREFILL_CHUNK as u32 + 3)).map(|i| i % 90).collect();
            let mut e = engine(kind);
            let batched = e.prefill(&prompt, &ctx).unwrap();

            let mut sequential = engine(kind);
            let mut logits = Vec::new();
            for (pos, &t) in prompt.iter().enumerate() {
                logits = sequential.step(t, pos, &ctx).unwrap();
            }
            assert_eq!(batched, logits, "{kind:?}");
        }
    }

    #[test]
    fn prefill_then_step_continues_the_sequence() {
        let ctx = ExecCtx::new(1);
        let mut e = engine(BackendKind::F32);
        let logits = e.prefill(&[1, 2, 3], &ctx).unwrap();
        let t0 = ops::argmax(&logits) as u32;
        let next = e.step(t0, 3, &ctx).unwrap();
        // Must equal generate's first two tokens.
        let mut f = engine(BackendKind::F32);
        let gen = f
            .generate(&GenRequest::greedy(&[1, 2, 3], 2), &ctx)
            .unwrap()
            .tokens;
        assert_eq!(gen[0], t0);
        assert_eq!(gen[1], ops::argmax(&next) as u32);
    }

    #[test]
    fn prefill_rejects_bad_prompts() {
        let ctx = ExecCtx::new(1);
        let mut e = engine(BackendKind::F32);
        assert!(e.prefill(&[], &ctx).is_err());
        let too_long = vec![1u32; e.model.cfg.seq_max + 1];
        assert!(e.prefill(&too_long, &ctx).is_err());
    }

    #[test]
    fn generation_rejects_overflow_and_empty() {
        let ctx = ExecCtx::new(1);
        let mut e = engine(BackendKind::F32);
        assert!(e.generate(&GenRequest::greedy(&[], 4), &ctx).is_err());
        let max = e.model.cfg.seq_max;
        assert!(e.generate(&GenRequest::greedy(&[1], max), &ctx).is_err());
    }
}
