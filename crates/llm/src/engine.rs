//! Generation engine: decode loops, throughput measurement, and full-depth
//! extrapolation from scaled models.
//!
//! The paper measures end-to-end throughput by repeatedly generating 64
//! tokens (§5.1, "Measurement approach"). Full 7B/13B models do not fit the
//! evaluation host, so experiments run *scaled* configurations with the
//! exact per-layer shapes and extrapolate: per-token time is measured as
//! `layers + other` and the layer part scales linearly in depth (decode is
//! memory-bound weight streaming; attention's KV share at these sequence
//! lengths is small). The substitution is recorded in `DESIGN.md`.

use crate::backend::BackendError;
use crate::model::{KvCache, Model, Scratch};
use crate::ops;
use tmac_core::ExecCtx;

/// A model plus its generation state.
pub struct Engine {
    /// The model.
    pub model: Model,
    cache: KvCache,
    scratch: Scratch,
}

/// Decode-loop measurement result.
#[derive(Debug, Clone, Copy)]
pub struct DecodeStats {
    /// Average seconds per generated token.
    pub seconds_per_token: f64,
    /// Seconds spent in transformer layers per token.
    pub layer_seconds: f64,
    /// Seconds outside the layers (embedding, final norm, LM head).
    pub other_seconds: f64,
    /// Tokens generated during measurement.
    pub tokens: usize,
}

impl DecodeStats {
    /// Tokens per second.
    pub fn tokens_per_sec(&self) -> f64 {
        1.0 / self.seconds_per_token
    }

    /// Extrapolates to a model with `full_layers` layers, given that the
    /// measurement ran `measured_layers` of identical shape.
    pub fn extrapolate_layers(&self, measured_layers: usize, full_layers: usize) -> DecodeStats {
        let per_layer = self.layer_seconds / measured_layers.max(1) as f64;
        let layer_seconds = per_layer * full_layers as f64;
        DecodeStats {
            seconds_per_token: layer_seconds + self.other_seconds,
            layer_seconds,
            other_seconds: self.other_seconds,
            tokens: self.tokens,
        }
    }
}

impl Engine {
    /// Wraps a model with fresh generation state.
    pub fn new(model: Model) -> Self {
        let cache = KvCache::new(&model.cfg);
        let scratch = Scratch::new(&model.cfg);
        Engine {
            model,
            cache,
            scratch,
        }
    }

    /// Clears the KV cache.
    pub fn reset(&mut self) {
        self.cache.reset();
    }

    /// Runs one decode step and returns a copy of the logits.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn step(
        &mut self,
        token: u32,
        pos: usize,
        ctx: &ExecCtx,
    ) -> Result<Vec<f32>, BackendError> {
        self.model
            .forward(token, pos, &mut self.cache, &mut self.scratch, ctx)?;
        Ok(self.scratch.logits.clone())
    }

    /// Greedy generation: feeds `prompt`, then generates `n_new` tokens.
    ///
    /// # Errors
    ///
    /// Fails if the total length exceeds `seq_max` or a step fails.
    pub fn generate(
        &mut self,
        prompt: &[u32],
        n_new: usize,
        ctx: &ExecCtx,
    ) -> Result<Vec<u32>, BackendError> {
        if prompt.is_empty() {
            return Err(BackendError::Shape("empty prompt".into()));
        }
        if prompt.len() + n_new > self.model.cfg.seq_max {
            return Err(BackendError::Shape(format!(
                "sequence {} + {} exceeds seq_max {}",
                prompt.len(),
                n_new,
                self.model.cfg.seq_max
            )));
        }
        self.reset();
        let mut pos = 0;
        for &t in &prompt[..prompt.len() - 1] {
            self.model
                .forward(t, pos, &mut self.cache, &mut self.scratch, ctx)?;
            pos += 1;
        }
        let mut out = Vec::with_capacity(n_new);
        let mut token = *prompt.last().expect("non-empty prompt");
        for _ in 0..n_new {
            self.model
                .forward(token, pos, &mut self.cache, &mut self.scratch, ctx)?;
            pos += 1;
            token = ops::argmax(&self.scratch.logits) as u32;
            out.push(token);
        }
        Ok(out)
    }

    /// Measures decode throughput: generates `n_tokens` tokens from a fixed
    /// prompt, timing each forward pass (after one warm-up token).
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn measure_decode(
        &mut self,
        n_tokens: usize,
        ctx: &ExecCtx,
    ) -> Result<DecodeStats, BackendError> {
        self.reset();
        let mut layer_s = 0f64;
        let mut other_s = 0f64;
        let mut token = 1u32;
        // Warm-up token (paper: warm-up before measurement).
        self.model
            .forward(token, 0, &mut self.cache, &mut self.scratch, ctx)?;
        for i in 0..n_tokens {
            let pos = i + 1;
            if pos >= self.model.cfg.seq_max {
                break;
            }
            let (l, o) =
                self.model
                    .forward_timed(token, pos, &mut self.cache, &mut self.scratch, ctx)?;
            layer_s += l;
            other_s += o;
            token = (ops::argmax(&self.scratch.logits) as u32) % self.model.cfg.vocab as u32;
        }
        let n = n_tokens
            .min(self.model.cfg.seq_max.saturating_sub(1))
            .max(1);
        Ok(DecodeStats {
            seconds_per_token: (layer_s + other_s) / n as f64,
            layer_seconds: layer_s / n as f64,
            other_seconds: other_s / n as f64,
            tokens: n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::config::{ModelConfig, WeightQuant};

    fn engine(kind: BackendKind) -> Engine {
        Engine::new(Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(4), kind, 9).unwrap())
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let ctx = ExecCtx::new(1);
        let mut e = engine(BackendKind::F32);
        let a = e.generate(&[1, 2, 3], 8, &ctx).unwrap();
        let b = e.generate(&[1, 2, 3], 8, &ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|&t| (t as usize) < e.model.cfg.vocab));
    }

    #[test]
    fn backends_generate_same_prefix() {
        // Quantization error may eventually diverge sequences, but the first
        // tokens should agree between T-MAC and the dequant baseline (same
        // quantized weights).
        let ctx = ExecCtx::new(1);
        let mut d = engine(BackendKind::Dequant);
        let mut t = engine(BackendKind::Tmac(tmac_core::KernelOpts::tmac()));
        let gd = d.generate(&[5, 6], 4, &ctx).unwrap();
        let gt = t.generate(&[5, 6], 4, &ctx).unwrap();
        assert_eq!(gd[0], gt[0], "first generated token differs");
    }

    #[test]
    fn measure_decode_reports_sane_stats() {
        let ctx = ExecCtx::new(1);
        let mut e = engine(BackendKind::F32);
        let s = e.measure_decode(6, &ctx).unwrap();
        assert!(s.seconds_per_token > 0.0);
        assert!(s.layer_seconds > 0.0);
        assert!(s.tokens_per_sec() > 0.0);
        assert!((s.layer_seconds + s.other_seconds - s.seconds_per_token).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_scales_layers_only() {
        let s = DecodeStats {
            seconds_per_token: 0.3,
            layer_seconds: 0.2,
            other_seconds: 0.1,
            tokens: 10,
        };
        let full = s.extrapolate_layers(2, 32);
        assert!((full.layer_seconds - 3.2).abs() < 1e-9);
        assert!((full.seconds_per_token - 3.3).abs() < 1e-9);
        assert!((full.other_seconds - 0.1).abs() < 1e-9);
    }

    #[test]
    fn generation_rejects_overflow_and_empty() {
        let ctx = ExecCtx::new(1);
        let mut e = engine(BackendKind::F32);
        assert!(e.generate(&[], 4, &ctx).is_err());
        let max = e.model.cfg.seq_max;
        assert!(e.generate(&[1], max, &ctx).is_err());
    }
}
