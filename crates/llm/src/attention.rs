//! Causal attention over the paged head-major KV cache, with the heads
//! fanned out across the execution context's thread pool.
//!
//! Two data paths share one entry point ([`attend`] / [`attend_seq`]):
//!
//! * **`f32` (reference)** — the seed's exact two-pass computation per head:
//!   a score sweep over K, in-place softmax, then a weighted-sum sweep over
//!   V. The sweeps walk the sequence's block table page by page *in
//!   position order*, so the operation sequence is identical to the dense
//!   formulation and `f32` results stay bit-exact regardless of paging,
//!   sharing, or thread count.
//! * **`i8` (fused)** — a *single* streaming pass per head in the
//!   flash-decoding style: the query is quantized to `i8` once per head,
//!   each position's score is one `i8ops::dot_maddubs` against the page's
//!   contiguous K code stream, and an online softmax
//!   ([`tmac_simd::f32ops::OnlineSoftmax`]) folds the matching V row into
//!   the output as the scores arrive (`i8ops::axpy` /
//!   [`tmac_simd::i8ops::scale_axpy`]). Pages chain in position order, so
//!   the fold sequence — and therefore the result — is identical to the
//!   dense stream. No `seq`-sized score buffer exists and V is never swept
//!   a second time; combined with 1-byte codes this cuts attention memory
//!   traffic ~4× against the f32 two-pass path.
//!
//! **Parallelism**: heads are independent (each writes its own
//! `head_dim`-slice of the output), so [`attend`] partitions the head range
//! across the pool with the same static chunking at every thread count —
//! per-head arithmetic never depends on the partition, making results
//! deterministic for any pool size (asserted by `tests/attention.rs`).

use crate::config::{KvPrecision, ModelConfig};
use crate::kv::{KvCache, PAGE_POSITIONS};
use tmac_core::ExecCtx;
use tmac_simd::f32ops::{self, OnlineSoftmax};
use tmac_simd::i8ops;

/// Reusable per-forward attention workspace.
///
/// Holds one score row per head (`n_heads × seq_max`, used only by the
/// two-pass `f32` path — heads running in parallel need disjoint rows) and
/// one quantized-query row per head (`n_heads × head_dim`, `i8` path).
#[derive(Debug, Clone)]
pub struct AttnScratch {
    scores: Vec<f32>,
    q_i8: Vec<i8>,
    seq_max: usize,
}

impl AttnScratch {
    /// Allocates workspace for `cfg`.
    pub fn new(cfg: &ModelConfig) -> Self {
        AttnScratch {
            scores: vec![0f32; cfg.n_heads * cfg.seq_max],
            q_i8: vec![0i8; cfg.n_heads * cfg.head_dim()],
            seq_max: cfg.seq_max,
        }
    }
}

/// Raw-pointer wrapper for disjoint per-head writes from pool threads.
struct SendPtr<T>(*mut T);
// SAFETY: every thread derives slices only for the heads its static
// partition owns, and head slices are disjoint by construction.
unsafe impl<T> Sync for SendPtr<T> {}

/// [`attend_seq`] over sequence 0 — the single-stream view used by
/// [`crate::Model::forward`] and standalone benches.
///
/// # Panics
///
/// Same contract as [`attend_seq`].
pub fn attend(
    q: &[f32],
    out: &mut [f32],
    cache: &KvCache,
    layer: usize,
    pos: usize,
    scratch: &mut AttnScratch,
    ctx: &ExecCtx,
) {
    attend_seq(q, out, cache, 0, layer, pos, scratch, ctx);
}

/// Computes `out = softmax(q Kᵀ / √d) V` for one token of sequence `seq`
/// over all heads, walking the sequence's block table page by page.
///
/// `q` is the RoPE-rotated query (`n_heads × head_dim`, row-major per
/// head); `out` receives the per-head attention outputs in the same layout.
/// Positions `0..=pos` of `cache` must already be stored (or
/// prefix-shared) for `layer` of `seq` — including `pos` itself; the store
/// happens before the attend in a forward pass. Grouped-query attention
/// maps query head `h` to KV head `h / (n_heads / n_kv_heads)`.
///
/// Heads are distributed over `ctx`'s thread pool; the result is identical
/// at every pool size (and, on the `f32` path, bit-exact against the
/// single-buffer dense sequential formulation).
///
/// # Panics
///
/// Panics if `q`/`out` disagree with the cache geometry, `pos` is outside
/// the sequence's paged capacity, or the scratch belongs to a smaller
/// configuration.
#[allow(clippy::too_many_arguments)] // the model's hot path; a struct would just rename the wiring
pub fn attend_seq(
    q: &[f32],
    out: &mut [f32],
    cache: &KvCache,
    seq: usize,
    layer: usize,
    pos: usize,
    scratch: &mut AttnScratch,
    ctx: &ExecCtx,
) {
    let hd = cache.head_dim();
    assert_eq!(q.len(), out.len(), "attend: q/out length mismatch");
    assert!(
        hd > 0 && q.len().is_multiple_of(hd),
        "attend: q not head-aligned"
    );
    let n_heads = q.len() / hd;
    assert!(
        n_heads.is_multiple_of(cache.n_kv_heads()) && n_heads >= cache.n_kv_heads(),
        "attend: query heads not a multiple of kv heads"
    );
    assert!(pos < cache.seq_max(), "attend: position beyond seq_max");
    let pages = cache.seq_pages(seq);
    assert!(
        pages.len() * PAGE_POSITIONS > pos,
        "attend: position beyond the sequence's paged capacity"
    );
    assert!(
        scratch.scores.len() >= n_heads * scratch.seq_max && scratch.seq_max > pos,
        "attend: scratch too small for position"
    );
    let kv_groups = n_heads / cache.n_kv_heads();
    let scale = 1.0 / (hd as f32).sqrt();
    let seq_stride = scratch.seq_max;
    let precision = cache.precision();

    let out_ptr = SendPtr(out.as_mut_ptr());
    let scores_ptr = SendPtr(scratch.scores.as_mut_ptr());
    let q8_ptr = SendPtr(scratch.q_i8.as_mut_ptr());
    // Capture the wrappers whole (a raw-pointer field alone is not `Sync`).
    let (out_ptr, scores_ptr, q8_ptr) = (&out_ptr, &scores_ptr, &q8_ptr);

    ctx.pool().run(|tid, n| {
        let heads = tmac_threadpool::chunk_range(n_heads, 1, tid, n);
        for h in heads {
            let kvh = h / kv_groups;
            let qh = &q[h * hd..(h + 1) * hd];
            // SAFETY: head `h` is owned by exactly one thread (disjoint
            // static chunks) and each derived slice covers only head `h`'s
            // rows; the underlying buffers outlive the dispatch (`run`
            // blocks until completion).
            let out_h = unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(h * hd), hd) };
            match precision {
                KvPrecision::F32 => {
                    // SAFETY: as above — score row `h` belongs to this head.
                    let scores = unsafe {
                        std::slice::from_raw_parts_mut(scores_ptr.0.add(h * seq_stride), pos + 1)
                    };
                    attend_head_f32(qh, cache, pages, layer, kvh, hd, pos, scale, scores, out_h);
                }
                KvPrecision::I8 => {
                    // SAFETY: as above — quantized-q row `h` belongs to this
                    // head.
                    let qbuf = unsafe { std::slice::from_raw_parts_mut(q8_ptr.0.add(h * hd), hd) };
                    attend_head_i8(qh, cache, pages, layer, kvh, hd, pos, scale, qbuf, out_h);
                }
            }
        }
    });
}

/// The exact two-pass reference path for one head (scores → softmax →
/// weighted sum), walking pages in position order so the operation
/// sequence — and the result — is bit-identical to the dense formulation.
#[allow(clippy::too_many_arguments)] // hot inner kernel; a struct would just rename the wiring
fn attend_head_f32(
    q: &[f32],
    cache: &KvCache,
    pages: &[u32],
    layer: usize,
    kvh: usize,
    hd: usize,
    pos: usize,
    scale: f32,
    scores: &mut [f32],
    out: &mut [f32],
) {
    let mut t0 = 0usize;
    for &pg in pages {
        if t0 > pos {
            break;
        }
        let take = (pos + 1 - t0).min(PAGE_POSITIONS);
        let (ks, _) = cache.f32_page(pg, layer, kvh);
        for t in 0..take {
            scores[t0 + t] = f32ops::dot(q, &ks[t * hd..(t + 1) * hd]) * scale;
        }
        t0 += take;
    }
    crate::ops::softmax(&mut scores[..=pos]);
    out.fill(0.0);
    let mut t0 = 0usize;
    for &pg in pages {
        if t0 > pos {
            break;
        }
        let take = (pos + 1 - t0).min(PAGE_POSITIONS);
        let (_, vs) = cache.f32_page(pg, layer, kvh);
        for t in 0..take {
            f32ops::axpy(out, scores[t0 + t], &vs[t * hd..(t + 1) * hd]);
        }
        t0 += take;
    }
}

/// The fused streaming path for one head: quantize q, then one pass of
/// `i8` score dot + online-softmax fold per position, chained across
/// pages in position order (the fold sequence matches the dense stream).
#[allow(clippy::too_many_arguments)] // hot inner kernel; a struct would just rename the wiring
fn attend_head_i8(
    q: &[f32],
    cache: &KvCache,
    pages: &[u32],
    layer: usize,
    kvh: usize,
    hd: usize,
    pos: usize,
    scale: f32,
    qbuf: &mut [i8],
    out: &mut [f32],
) {
    let q_scale = i8ops::quantize(q, qbuf);
    let qk_scale = q_scale * scale;
    out.fill(0.0);
    let mut sm = OnlineSoftmax::new();
    let mut t0 = 0usize;
    for &pg in pages {
        if t0 > pos {
            break;
        }
        let take = (pos + 1 - t0).min(PAGE_POSITIONS);
        let (k_codes, k_scales, v_codes, v_scales) = cache.i8_page(pg, layer, kvh);
        for t in 0..take {
            let dot = i8ops::dot_maddubs(qbuf, &k_codes[t * hd..(t + 1) * hd]);
            let s = dot as f32 * (qk_scale * k_scales[t]);
            let (w, c) = sm.push(s);
            let vt = &v_codes[t * hd..(t + 1) * hd];
            if c == 1.0 {
                // Common case: the running max stands; plain scaled
                // accumulate.
                i8ops::axpy(out, w * v_scales[t], vt);
            } else {
                // New maximum (w == 1.0): shrink history and fold the new
                // row.
                i8ops::scale_axpy(out, c, v_scales[t], vt);
            }
        }
        t0 += take;
    }
    f32ops::scale(out, 1.0 / sm.denom());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn fill_cache(cfg: &ModelConfig, precision: KvPrecision, seq: usize) -> KvCache {
        let mut cache = KvCache::with_precision(cfg, precision);
        let kv = cfg.kv_dim();
        for pos in 0..seq {
            let k: Vec<f32> = (0..kv)
                .map(|i| ((pos * 17 + i * 5) as f32 * 0.11).sin() * 1.3)
                .collect();
            let v: Vec<f32> = (0..kv)
                .map(|i| ((pos * 7 + i * 13) as f32 * 0.17).cos() * 0.9)
                .collect();
            cache.store(0, pos, &k, &v);
        }
        cache.set_len(seq);
        cache
    }

    fn query(cfg: &ModelConfig) -> Vec<f32> {
        (0..cfg.dim).map(|i| ((i as f32) * 0.23).sin()).collect()
    }

    /// The seed's attention formulation: strided two-pass over a
    /// `[seq][kv_dim]` view with one shared score row.
    fn seed_reference(cfg: &ModelConfig, cache: &KvCache, q: &[f32], pos: usize) -> Vec<f32> {
        let (hd, groups) = (cfg.head_dim(), cfg.n_heads / cfg.n_kv_heads);
        let mut out = vec![0f32; cfg.dim];
        let mut scores = vec![0f32; cfg.seq_max];
        let mut buf = vec![0f32; hd];
        let scale = 1.0 / (hd as f32).sqrt();
        for h in 0..cfg.n_heads {
            let kvh = h / groups;
            let qh = &q[h * hd..(h + 1) * hd];
            for (t, s) in scores.iter_mut().enumerate().take(pos + 1) {
                *s = f32ops::dot(qh, cache.k_row_f32(0, kvh, t, &mut buf)) * scale;
            }
            ops::softmax(&mut scores[..=pos]);
            for i in 0..hd {
                out[h * hd + i] = 0.0;
            }
            for (t, &w) in scores.iter().enumerate().take(pos + 1) {
                let vt = cache.v_row_f32(0, kvh, t, &mut buf).to_vec();
                f32ops::axpy(&mut out[h * hd..(h + 1) * hd], w, &vt);
            }
        }
        out
    }

    #[test]
    fn f32_path_bit_exact_vs_seed_formulation() {
        let cfg = ModelConfig::tiny();
        let seq = 19;
        let cache = fill_cache(&cfg, KvPrecision::F32, seq);
        let q = query(&cfg);
        let want = seed_reference(&cfg, &cache, &q, seq - 1);
        for threads in [1, 3] {
            let ctx = ExecCtx::new(threads);
            let mut scratch = AttnScratch::new(&cfg);
            let mut out = vec![0f32; cfg.dim];
            attend(&q, &mut out, &cache, 0, seq - 1, &mut scratch, &ctx);
            assert_eq!(out, want, "threads = {threads}");
        }
    }

    #[test]
    fn f32_path_bit_exact_across_page_boundaries() {
        // A context longer than one page must produce exactly what the
        // dense per-row reference computes (paging changes layout, never
        // values or operation order).
        let mut cfg = ModelConfig::tiny();
        cfg.seq_max = 3 * PAGE_POSITIONS;
        let seq = 2 * PAGE_POSITIONS + 7;
        let cache = fill_cache(&cfg, KvPrecision::F32, seq);
        let q = query(&cfg);
        let want = seed_reference(&cfg, &cache, &q, seq - 1);
        let ctx = ExecCtx::new(2);
        let mut scratch = AttnScratch::new(&cfg);
        let mut out = vec![0f32; cfg.dim];
        attend(&q, &mut out, &cache, 0, seq - 1, &mut scratch, &ctx);
        assert_eq!(out, want);
    }

    #[test]
    fn i8_path_tracks_f32_within_quant_error() {
        let cfg = ModelConfig::tiny();
        let seq = 33;
        let f = fill_cache(&cfg, KvPrecision::F32, seq);
        let i = fill_cache(&cfg, KvPrecision::I8, seq);
        let q = query(&cfg);
        let ctx = ExecCtx::new(1);
        let mut scratch = AttnScratch::new(&cfg);
        let mut of = vec![0f32; cfg.dim];
        let mut oi = vec![0f32; cfg.dim];
        attend(&q, &mut of, &f, 0, seq - 1, &mut scratch, &ctx);
        attend(&q, &mut oi, &i, 0, seq - 1, &mut scratch, &ctx);
        let nmse = f32ops::nmse(&oi, &of);
        assert!(nmse < 5e-4, "i8 attention NMSE {nmse}");
    }

    #[test]
    fn i8_path_deterministic_across_thread_counts() {
        let cfg = ModelConfig::tiny();
        let seq = 21;
        let cache = fill_cache(&cfg, KvPrecision::I8, seq);
        let q = query(&cfg);
        let mut outs = Vec::new();
        for threads in [1usize, 2, 5] {
            let ctx = ExecCtx::new(threads);
            let mut scratch = AttnScratch::new(&cfg);
            let mut out = vec![0f32; cfg.dim];
            attend(&q, &mut out, &cache, 0, seq - 1, &mut scratch, &ctx);
            outs.push(out);
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], outs[2]);
    }

    #[test]
    fn single_position_softmax_is_identity_weight() {
        // With one cached position both paths must return (a quantization
        // of) V's first row: softmax over one score is exactly 1.
        let cfg = ModelConfig::tiny();
        for prec in [KvPrecision::F32, KvPrecision::I8] {
            let cache = fill_cache(&cfg, prec, 1);
            let q = query(&cfg);
            let ctx = ExecCtx::new(1);
            let mut scratch = AttnScratch::new(&cfg);
            let mut out = vec![0f32; cfg.dim];
            attend(&q, &mut out, &cache, 0, 0, &mut scratch, &ctx);
            let hd = cfg.head_dim();
            let groups = cfg.n_heads / cfg.n_kv_heads;
            let mut buf = vec![0f32; hd];
            for h in 0..cfg.n_heads {
                let v0 = cache.v_row_f32(0, h / groups, 0, &mut buf).to_vec();
                for (a, b) in out[h * hd..(h + 1) * hd].iter().zip(&v0) {
                    assert!((a - b).abs() < 1e-5, "{prec:?}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn shared_prefix_attends_bit_exactly() {
        // Two sequences sharing prefix pages via the radix index must see
        // exactly the same attention output as a privately-filled cache.
        let mut cfg = ModelConfig::tiny();
        cfg.seq_max = 2 * PAGE_POSITIONS;
        let seq = PAGE_POSITIONS + 9;
        let private = fill_cache(&cfg, KvPrecision::F32, seq);
        let q = query(&cfg);
        let ctx = ExecCtx::new(1);
        let mut scratch = AttnScratch::new(&cfg);
        let mut want = vec![0f32; cfg.dim];
        attend(&q, &mut want, &private, 0, seq - 1, &mut scratch, &ctx);

        // Rebuild the same rows in a pooled cache, publish, share.
        let mut pool = KvCache::multi(&cfg, 2);
        let kv = cfg.kv_dim();
        let tokens: Vec<u32> = (0..seq as u32).collect();
        for pos in 0..seq {
            let k: Vec<f32> = (0..kv)
                .map(|i| ((pos * 17 + i * 5) as f32 * 0.11).sin() * 1.3)
                .collect();
            let v: Vec<f32> = (0..kv)
                .map(|i| ((pos * 7 + i * 13) as f32 * 0.17).cos() * 0.9)
                .collect();
            pool.store_seq(0, 0, pos, &k, &v).unwrap();
        }
        pool.set_seq_len(0, seq);
        pool.prefix_insert(0, &tokens);
        assert_eq!(pool.prefix_match(1, &tokens), seq);
        let mut got = vec![0f32; cfg.dim];
        attend_seq(&q, &mut got, &pool, 1, 0, seq - 1, &mut scratch, &ctx);
        assert_eq!(got, want);
    }
}
