//! Transformer math primitives (RMSNorm, softmax, RoPE, SwiGLU).
//!
//! These are the non-GEMM operators of the llama architecture. They are a
//! small fraction of decode-time cost (the paper attributes the residual
//! gap to them in §5.7) but must be numerically correct for the quality
//! experiments. The hot loops (`rmsnorm`, `softmax`'s max/scale passes,
//! `swiglu`'s combine, `add_assign`) run on the `tmac_simd::f32ops`
//! dispatchers; the elementwise ones are bit-compatible with their scalar
//! fallbacks (see the `scalar_path_bit_compat` test), so results do not
//! depend on the host's SIMD support.

use tmac_simd::f32ops;

/// RMS normalization: `out[i] = x[i] / rms(x) * gain[i]`.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn rmsnorm(out: &mut [f32], x: &[f32], gain: &[f32], eps: f32) {
    assert_eq!(x.len(), gain.len(), "rmsnorm gain length");
    assert_eq!(x.len(), out.len(), "rmsnorm out length");
    let ss = f32ops::dot(x, x) / x.len() as f32;
    let inv = 1.0 / (ss + eps).sqrt();
    f32ops::scaled_mul(out, x, gain, inv);
}

/// In-place numerically-stable softmax.
pub fn softmax(v: &mut [f32]) {
    if v.is_empty() {
        return;
    }
    let max = f32ops::max(v);
    let mut sum = 0f32;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    f32ops::scale(v, inv);
}

/// Log-softmax value of one index (for NLL/perplexity evaluation), computed
/// in `f64` for stability.
///
/// # Panics
///
/// Panics if `idx` is out of range.
pub fn log_softmax_at(logits: &[f32], idx: usize) -> f64 {
    assert!(idx < logits.len(), "log_softmax_at index");
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x)) as f64;
    let mut sum = 0f64;
    for &x in logits {
        sum += ((x as f64) - max).exp();
    }
    (logits[idx] as f64) - max - sum.ln()
}

/// Precomputed rotary-embedding frequency table.
///
/// The legacy [`rope`] recomputes `theta.powf(2i / d)` for every pair of
/// every head on every token — `n_heads · head_dim / 2` `powf` calls per
/// projection. This table computes each pair's inverse frequency **once**
/// at model build; per token, [`RopeTable::fill_sincos`] evaluates
/// `sin`/`cos` once per *pair* (not per head) into duplicated-pair tables,
/// and [`RopeTable::apply`] rotates every head with the vectorized
/// [`f32ops::rope_apply`]. The arithmetic per element is unchanged
/// (`a·cos − b·sin`, `a·sin + b·cos` with the same intermediate
/// roundings), so results are bit-identical to [`rope`] — asserted by the
/// `rope_table_bit_exact_vs_legacy` test.
#[derive(Debug, Clone)]
pub struct RopeTable {
    head_dim: usize,
    /// `1 / theta^{2i/d}`, one entry per rotation pair.
    inv_freq: Vec<f32>,
}

impl RopeTable {
    /// Builds the table for a head dimension and base frequency.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is odd or zero.
    pub fn new(head_dim: usize, theta: f32) -> Self {
        assert!(
            head_dim > 0 && head_dim.is_multiple_of(2),
            "rope needs a positive even head_dim"
        );
        // The exact expression the legacy scalar path evaluated per pair.
        let inv_freq = (0..head_dim / 2)
            .map(|i| 1.0 / theta.powf(2.0 * i as f32 / head_dim as f32))
            .collect();
        RopeTable { head_dim, inv_freq }
    }

    /// The head dimension the table was built for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Fills duplicated-pair rotation tables for `pos`: `cos_dup` holds each
    /// `cos θ_i` twice, `sin_dup` holds `[-sin θ_i, +sin θ_i]` per pair (the
    /// layout [`f32ops::rope_apply`] consumes). One `sin_cos` per pair — the
    /// tables are shared by every head and every projection at this
    /// position.
    ///
    /// # Panics
    ///
    /// Panics if either buffer is not exactly `head_dim` long.
    pub fn fill_sincos(&self, pos: usize, cos_dup: &mut [f32], sin_dup: &mut [f32]) {
        assert_eq!(cos_dup.len(), self.head_dim, "fill_sincos cos length");
        assert_eq!(sin_dup.len(), self.head_dim, "fill_sincos sin length");
        for (i, &f) in self.inv_freq.iter().enumerate() {
            let angle = pos as f32 * f;
            let (s, c) = angle.sin_cos();
            cos_dup[2 * i] = c;
            cos_dup[2 * i + 1] = c;
            sin_dup[2 * i] = -s;
            sin_dup[2 * i + 1] = s;
        }
    }

    /// Rotates every `head_dim` chunk of `v` with tables previously filled
    /// by [`RopeTable::fill_sincos`].
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` is not a multiple of `head_dim` or the tables
    /// have the wrong length.
    pub fn apply(&self, v: &mut [f32], cos_dup: &[f32], sin_dup: &[f32]) {
        assert_eq!(v.len() % self.head_dim, 0, "rope vector not head-aligned");
        for head in v.chunks_mut(self.head_dim) {
            f32ops::rope_apply(head, cos_dup, sin_dup);
        }
    }
}

/// Rotary position embedding applied in place to a `[n_heads × head_dim]`
/// vector at position `pos`.
///
/// This is the legacy scalar formulation (per-pair `powf` + `sin_cos` on
/// every call, for every head); the hot paths use [`RopeTable`], which is
/// bit-identical. Kept as the oracle for the table's exactness test and
/// for one-off uses that have no table.
///
/// # Panics
///
/// Panics if `v.len()` is not a multiple of `head_dim` or `head_dim` is odd.
pub fn rope(v: &mut [f32], head_dim: usize, pos: usize, theta: f32) {
    assert!(head_dim.is_multiple_of(2), "rope needs even head_dim");
    assert_eq!(v.len() % head_dim, 0, "rope vector not head-aligned");
    for head in v.chunks_mut(head_dim) {
        for i in 0..head_dim / 2 {
            let freq = 1.0 / theta.powf(2.0 * i as f32 / head_dim as f32);
            let angle = pos as f32 * freq;
            let (sin, cos) = angle.sin_cos();
            let (a, b) = (head[2 * i], head[2 * i + 1]);
            head[2 * i] = a * cos - b * sin;
            head[2 * i + 1] = a * sin + b * cos;
        }
    }
}

/// SwiGLU combine: `out[i] = silu(gate[i]) * up[i]`.
///
/// The transcendental `silu` stays scalar (`exp` has no SIMD lowering
/// here); the final elementwise product is vectorized. The value computed
/// per element — `(g / (1 + e^{-g})) · u`, one rounded multiply at the end
/// — is unchanged.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn swiglu(out: &mut [f32], gate: &[f32], up: &[f32]) {
    assert_eq!(gate.len(), up.len(), "swiglu length");
    assert_eq!(gate.len(), out.len(), "swiglu out length");
    for (o, &g) in out.iter_mut().zip(gate) {
        *o = g / (1.0 + (-g).exp());
    }
    f32ops::mul_assign(out, up);
}

/// `y += x` elementwise.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    f32ops::add(y, x);
}

/// Argmax index (greedy sampling). Returns 0 for an empty slice.
pub fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    let mut bv = f32::NEG_INFINITY;
    for (i, &x) in v.iter().enumerate() {
        if x > bv {
            bv = x;
            best = i;
        }
    }
    best
}

/// Indices of the two largest entries (for the choice-agreement task).
///
/// # Panics
///
/// Panics if `v.len() < 2`.
pub fn top2(v: &[f32]) -> (usize, usize) {
    assert!(v.len() >= 2, "top2 needs at least two entries");
    let mut i1 = 0;
    let mut i2 = 1;
    if v[1] > v[0] {
        (i1, i2) = (1, 0);
    }
    for (i, &x) in v.iter().enumerate().skip(2) {
        if x > v[i1] {
            i2 = i1;
            i1 = i;
        } else if x > v[i2] {
            i2 = i;
        }
    }
    (i1, i2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmsnorm_unit_gain() {
        let x = vec![3.0f32, 4.0];
        let gain = vec![1.0f32; 2];
        let mut out = vec![0f32; 2];
        rmsnorm(&mut out, &x, &gain, 0.0);
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert!((out[0] - 3.0 / rms).abs() < 1e-6);
        assert!((out[1] - 4.0 / rms).abs() < 1e-6);
    }

    /// The vectorized hot loops must agree *bitwise* with straightforward
    /// scalar formulations (reductions shared, elementwise parts
    /// re-derived), so enabling SIMD never changes model output.
    #[test]
    fn scalar_path_bit_compat() {
        let n = 101; // not a multiple of the SIMD width
        let x: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.43).sin() * 2.1).collect();
        let g: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.19).cos() + 1.1).collect();

        // rmsnorm == shared reduction + per-element (xi * inv) * gi.
        let mut got = vec![0f32; n];
        rmsnorm(&mut got, &x, &g, 1e-5);
        let ss = f32ops::dot(&x, &x) / n as f32;
        let inv = 1.0 / (ss + 1e-5).sqrt();
        let want: Vec<f32> = x.iter().zip(&g).map(|(&xi, &gi)| (xi * inv) * gi).collect();
        assert_eq!(got, want, "rmsnorm");

        // softmax == scalar max/exp/normalize.
        let mut got = x.clone();
        softmax(&mut got);
        let mut want = x.clone();
        let max = want.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0f32;
        for v in want.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in want.iter_mut() {
            *v *= inv;
        }
        assert_eq!(got, want, "softmax");

        // swiglu == per-element silu(g) * u.
        let mut got = vec![0f32; n];
        swiglu(&mut got, &x, &g);
        let want: Vec<f32> = x
            .iter()
            .zip(&g)
            .map(|(&gi, &ui)| (gi / (1.0 + (-gi).exp())) * ui)
            .collect();
        assert_eq!(got, want, "swiglu");

        // add_assign == per-element +=.
        let mut got = x.clone();
        add_assign(&mut got, &g);
        let want: Vec<f32> = x.iter().zip(&g).map(|(&a, &b)| a + b).collect();
        assert_eq!(got, want, "add_assign");
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0f32, 2.0, 3.0, -1000.0];
        softmax(&mut v);
        let s: f32 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(v[2] > v[1] && v[1] > v[0]);
        assert!(v[3] < 1e-6);
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let v = vec![0.5f32, -1.0, 2.0, 0.0];
        let mut s = v.clone();
        softmax(&mut s);
        for (i, &si) in s.iter().enumerate() {
            assert!((log_softmax_at(&v, i) - (si as f64).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn rope_preserves_norm_and_position_zero() {
        let mut v: Vec<f32> = (0..8).map(|i| i as f32 - 3.5).collect();
        let orig = v.clone();
        rope(&mut v, 8, 0, 10000.0);
        assert_eq!(v, orig, "position 0 must be identity");
        rope(&mut v, 8, 17, 10000.0);
        let n0: f32 = orig.iter().map(|x| x * x).sum();
        let n1: f32 = v.iter().map(|x| x * x).sum();
        assert!((n0 - n1).abs() < 1e-4, "rotation preserves norm");
        assert_ne!(v, orig);
    }

    /// The precomputed-table RoPE must reproduce the legacy per-call scalar
    /// form *bit-for-bit*: same `powf` expression evaluated once, same
    /// `sin_cos`, and a rotation whose per-element roundings match.
    #[test]
    fn rope_table_bit_exact_vs_legacy() {
        for head_dim in [2usize, 8, 16, 64, 128] {
            let table = RopeTable::new(head_dim, 10000.0);
            let n_heads = 3;
            let mut cos_dup = vec![0f32; head_dim];
            let mut sin_dup = vec![0f32; head_dim];
            for pos in [0usize, 1, 17, 500, 2047] {
                let v0: Vec<f32> = (0..n_heads * head_dim)
                    .map(|i| ((i as f32) * 0.29).sin() * 2.3 - 0.7)
                    .collect();
                let mut legacy = v0.clone();
                rope(&mut legacy, head_dim, pos, 10000.0);
                let mut tabled = v0;
                table.fill_sincos(pos, &mut cos_dup, &mut sin_dup);
                table.apply(&mut tabled, &cos_dup, &sin_dup);
                assert_eq!(tabled, legacy, "head_dim {head_dim} pos {pos}");
            }
        }
    }

    #[test]
    fn rope_is_relative() {
        // <rope(q, m), rope(k, n)> depends only on m - n for a single pair.
        let q = [1.0f32, 0.5];
        let k = [-0.3f32, 0.8];
        let pairs = [(3usize, 1usize), (7, 5), (12, 10)];
        let mut dots = Vec::new();
        for (m, n) in pairs {
            let mut qq = q;
            let mut kk = k;
            rope(&mut qq, 2, m, 10000.0);
            rope(&mut kk, 2, n, 10000.0);
            dots.push(qq[0] * kk[0] + qq[1] * kk[1]);
        }
        assert!((dots[0] - dots[1]).abs() < 1e-5);
        assert!((dots[1] - dots[2]).abs() < 1e-5);
    }

    #[test]
    fn swiglu_basics() {
        let gate = [0.0f32, 10.0, -10.0];
        let up = [2.0f32, 3.0, 5.0];
        let mut out = [0f32; 3];
        swiglu(&mut out, &gate, &up);
        assert_eq!(out[0], 0.0); // silu(0) = 0
        assert!((out[1] - 30.0).abs() < 0.01); // silu(10) ~ 10
        assert!(out[2].abs() < 0.01); // silu(-10) ~ 0
    }

    #[test]
    fn argmax_and_top2() {
        let v = [0.1f32, 0.9, 0.5, 0.8];
        assert_eq!(argmax(&v), 1);
        assert_eq!(top2(&v), (1, 3));
        let v2 = [5.0f32, 1.0];
        assert_eq!(top2(&v2), (0, 1));
    }
}
