//! Continuous-batching scheduler: the serving layer over
//! [`Model::forward_batch`].
//!
//! Many logical requests share each forward pass: sequences are admitted
//! into a bounded set of KV-cache slots, every scheduler step decodes one
//! token for *all* active sequences in a single batched forward (`n = B`
//! through every linear, so the T-MAC backend takes the mpGEMM path and
//! weight tiles stream once per row block instead of once per sequence),
//! and finished sequences are evicted between steps so queued requests can
//! take their slots — continuous batching in the vLLM/Orca sense, scaled to
//! this repo's synthetic-model serving scenario.
//!
//! ```text
//!  submit(request) ──► pending ──admit──► active ──retire──► finished
//!                       queue    (slot +   │  ▲               results
//!                                chunked   │  │
//!                                prefill)  ▼  │
//!                                    step_batch: one forward_batch over
//!                                    all active rows, sample each through
//!                                    its request's sampling pipeline
//! ```
//!
//! Each sequence owns a [`Sampler`] seeded from its request, so sampled
//! output is independent of batch composition: a request produces the same
//! tokens at any `max_batch` and thread count (forward logits are bit-exact
//! across both — the equivalence invariants of `tests/batch.rs`).

use crate::backend::BackendError;
use crate::model::{BatchScratch, KvCache, Model};
use crate::sampling::{self, Sampler};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use tmac_core::failpoint::{self, FailAction};
use tmac_core::ExecCtx;

/// Evaluates a scheduler failpoint site: `Panic` unwinds right here (to
/// be contained by the caller's `catch_unwind`, or — for step-level
/// sites — by the serving supervisor), `Error` surfaces as
/// [`BackendError::Injected`]. Other actions have no meaning at
/// scheduler sites and are ignored. Without the `failpoints` feature
/// [`failpoint::fire`] is a constant `None` and this folds to `Ok(())`.
fn scheduler_fault(site: &str) -> Result<(), BackendError> {
    match failpoint::fire(site) {
        Some(FailAction::Panic) => panic!("injected failpoint {site}"),
        Some(FailAction::Error) => Err(BackendError::Injected(format!("failpoint {site}"))),
        _ => Ok(()),
    }
}

/// Renders a caught panic payload (`&str` and `String` payloads keep
/// their message; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// The typed argument of [`Scheduler::submit`]: prompt, token budget,
/// sampling params, and stop sequences (one request struct shared with
/// [`crate::Engine::generate`]).
pub type SubmitRequest = crate::sampling::GenRequest;

/// Opaque handle for a submitted sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqId(pub u64);

/// Scheduler limits.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Maximum concurrently active sequences (KV-cache slots).
    pub max_batch: usize,
    /// Rows per prefill [`Model::forward_batch`] call (bounds batch-scratch
    /// memory while keeping prompts on the mpGEMM path). `0` (the default)
    /// derives the chunk from the model's kernel blocking at construction
    /// time ([`Model::prefill_chunk`]).
    pub prefill_chunk: usize,
    /// Maximum queued (submitted but not yet active) sequences. Further
    /// [`Scheduler::submit`] calls return [`BackendError::QueueFull`] — the
    /// admission-backpressure primitive a serving front-end's 429 path
    /// builds on. `0` = unbounded; the default is bounded (256).
    pub max_pending: usize,
    /// Cap on the pooled KV cache, in pages ([`crate::kv::PAGE_POSITIONS`]
    /// positions each). Allocation beyond the cap first evicts unreferenced
    /// radix prefix-cache entries LRU-first; if nothing is evictable the
    /// affected sequence retires with [`BackendError::OutOfPages`]. `0`
    /// (the default) leaves the pool unbounded.
    pub kv_page_budget: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 16,
            prefill_chunk: 0,
            max_pending: 256,
            kv_page_budget: 0,
        }
    }
}

/// One token emitted by a scheduler step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepToken {
    /// The sequence that produced the token.
    pub id: SeqId,
    /// The token sampled through the request's pipeline (greedy by
    /// default).
    pub token: u32,
    /// Whether this token completed the sequence.
    pub finished: bool,
}

/// Why a sequence left the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FinishReason {
    /// Generated all `max_new` tokens (normal completion).
    Length,
    /// The generated stream ended with one of the request's stop
    /// sequences (the matched tokens are kept in the output).
    Stop,
    /// Removed mid-flight by [`Scheduler::cancel`]; `tokens` hold the
    /// partial output and the KV slot went back to the pool.
    Cancelled,
    /// Retired early by a model failure (`tokens` are the partial output
    /// up to the failure).
    Error(String),
}

impl FinishReason {
    /// Wire-format name (the completions API's `finish_reason` field).
    pub fn as_str(&self) -> &'static str {
        match self {
            FinishReason::Length => "length",
            FinishReason::Stop => "stop",
            FinishReason::Cancelled => "cancelled",
            FinishReason::Error(_) => "error",
        }
    }

    /// True for [`FinishReason::Error`].
    pub fn is_error(&self) -> bool {
        matches!(self, FinishReason::Error(_))
    }
}

impl std::fmt::Display for FinishReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FinishReason::Error(msg) => write!(f, "error: {msg}"),
            other => f.write_str(other.as_str()),
        }
    }
}

/// Wall-clock phase breakdown of one sequence's life in the scheduler:
/// queue wait (submit → KV slot claimed), prefill (slot claimed → first
/// token sampled), decode (first token → retirement). Always measured —
/// the serving layer's per-request `timings` breakdown exists in every
/// build, independent of the `trace` feature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqTiming {
    /// Microseconds queued before a KV slot was claimed.
    pub queue_us: u64,
    /// Microseconds from slot claim to the first sampled token (0 if the
    /// sequence never reached prefill).
    pub prefill_us: u64,
    /// Microseconds from the first sampled token to retirement.
    pub decode_us: u64,
    /// Prompt positions served from the radix prefix cache at admission.
    pub prefix_hit_positions: u64,
}

/// A completed sequence with its generated tokens.
#[derive(Debug, Clone)]
pub struct FinishedSeq {
    /// The sequence handle returned by [`Scheduler::submit`].
    pub id: SeqId,
    /// The submitted prompt.
    pub prompt: Vec<u32>,
    /// All generated tokens, in order.
    pub tokens: Vec<u32>,
    /// How the sequence ended (normal length completion, cancellation, or
    /// an error with its message).
    pub reason: FinishReason,
    /// Phase timing breakdown (excluded from equality: wall-clock times
    /// differ between otherwise bit-exact runs).
    pub timing: SeqTiming,
}

impl PartialEq for FinishedSeq {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.prompt == other.prompt
            && self.tokens == other.tokens
            && self.reason == other.reason
    }
}

impl Eq for FinishedSeq {}

/// Per-sequence serving state.
#[derive(Debug)]
struct Sequence {
    id: SeqId,
    prompt: Vec<u32>,
    max_new: usize,
    generated: Vec<u32>,
    /// Next position to decode at (== tokens fed so far).
    pos: usize,
    /// Last fed or sampled token (input of the next decode row).
    last_token: u32,
    /// Index into the scheduler's cache pool; valid while active.
    slot: usize,
    /// The request's sampling pipeline (owns the per-request RNG).
    sampler: Sampler,
    /// Stop token-id sequences from the request.
    stop: Vec<Vec<u32>>,
    /// Set when `generated` ends with a stop sequence.
    stopped: bool,
    /// Whether this request participates in the radix prompt cache
    /// (serve its prefix from shared pages, publish its own).
    cache_prompt: bool,
    /// Wall-clock phase marks feeding [`SeqTiming`].
    queued_at: Instant,
    admitted_at: Option<Instant>,
    prefill_done_at: Option<Instant>,
    /// `queued_at` as a trace timestamp (for the retroactive queue-wait
    /// span recorded at admission; 0 when tracing is compiled out).
    queued_ns: u64,
    /// Prompt positions attached from the radix index at admission.
    prefix_hit_positions: u64,
}

impl Sequence {
    fn done(&self) -> bool {
        self.stopped || self.generated.len() >= self.max_new
    }

    /// How a naturally retiring sequence finished.
    fn finish_reason(&self) -> FinishReason {
        if self.stopped {
            FinishReason::Stop
        } else {
            FinishReason::Length
        }
    }

    /// Samples from a logits row and records the token, updating the
    /// stop state.
    fn advance(&mut self, logits: &[f32]) -> u32 {
        let token = self.sampler.sample(logits);
        self.generated.push(token);
        self.last_token = token;
        if !self.stop.is_empty() {
            self.stopped = sampling::hits_stop(&self.generated, &self.stop);
        }
        token
    }
}

/// Continuous-batching serving engine over one [`Model`].
///
/// # Examples
///
/// ```
/// use tmac_core::ExecCtx;
/// use tmac_llm::batch::{Scheduler, SchedulerConfig, SubmitRequest};
/// use tmac_llm::{BackendKind, Model, ModelConfig, WeightQuant};
///
/// let model = Model::synthetic(
///     &ModelConfig::tiny(),
///     WeightQuant::Rtn(2),
///     BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
///     7,
/// )
/// .unwrap();
/// let mut sched = Scheduler::new(model, SchedulerConfig::default());
/// let ctx = ExecCtx::new(1);
/// let a = sched.submit(SubmitRequest::greedy(&[1, 2, 3], 4)).unwrap();
/// let b = sched.submit(SubmitRequest::greedy(&[9, 8], 4)).unwrap();
/// while !sched.is_idle() {
///     sched.step_batch(&ctx).unwrap();
/// }
/// let done = sched.take_finished();
/// assert_eq!(done.len(), 2);
/// assert!(done.iter().any(|f| f.id == a && f.tokens.len() == 4));
/// assert!(done.iter().any(|f| f.id == b && f.tokens.len() == 4));
/// ```
pub struct Scheduler {
    model: Model,
    cfg: SchedulerConfig,
    /// One pooled paged KV cache with `max_batch` sequences; slots are
    /// sequence indices and pages are shared across them via the radix
    /// prefix index.
    cache: KvCache,
    /// High-water mark of slots ever claimed (page storage itself is
    /// allocated lazily by the pool).
    slots_hwm: usize,
    free_slots: Vec<usize>,
    pending: VecDeque<Sequence>,
    active: Vec<Sequence>,
    finished: Vec<FinishedSeq>,
    scratch: BatchScratch,
    /// Sequences retired with [`FinishReason::Error`] by the fault
    /// quarantine, ever (monotonic; survives [`Scheduler::reset`]).
    quarantined: u64,
    /// Steps run, ever (the `id` tag of `sched/step` trace spans).
    steps: u64,
    next_id: u64,
}

impl Scheduler {
    /// Wraps `model` with serving state for `cfg.max_batch` concurrent
    /// sequences.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.max_batch == 0`.
    pub fn new(model: Model, mut cfg: SchedulerConfig) -> Self {
        assert!(cfg.max_batch > 0, "scheduler needs max_batch >= 1");
        if cfg.prefill_chunk == 0 {
            // Auto: follow the kernel's batch blocking.
            cfg.prefill_chunk = model.prefill_chunk();
        }
        let scratch = BatchScratch::new(&model.cfg, cfg.max_batch.max(cfg.prefill_chunk));
        let cache = KvCache::multi(&model.cfg, cfg.max_batch).with_budget(cfg.kv_page_budget);
        Scheduler {
            model,
            cfg,
            cache,
            slots_hwm: 0,
            free_slots: Vec::new(),
            pending: VecDeque::new(),
            active: Vec::new(),
            finished: Vec::new(),
            scratch,
            quarantined: 0,
            steps: 0,
            next_id: 0,
        }
    }

    /// A scheduler serving a model loaded from a container file (`.tmac`
    /// mmap-prepacked or `.gguf`, by extension — see
    /// [`Model::from_file`]): the convert-once → serve-many workflow.
    ///
    /// # Errors
    ///
    /// Propagates container-load failures.
    pub fn from_file(
        path: &std::path::Path,
        builder: &dyn crate::backend::BackendBuilder,
        mode: crate::io::LoadMode,
        cfg: SchedulerConfig,
    ) -> Result<Self, crate::io::ModelIoError> {
        Ok(Scheduler::new(Model::from_file(path, builder, mode)?, cfg))
    }

    /// The served model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Queues a request: `req.max_new` tokens after `req.prompt`, sampled
    /// with `req.sampling` and ended early by any of `req.stop`
    /// (use [`SubmitRequest::greedy`] for the plain greedy case).
    ///
    /// The sequence starts decoding once a batch slot frees up; tokens
    /// appear in subsequent [`Scheduler::step_batch`] outputs.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Shape`] for an empty prompt, `max_new == 0`,
    /// a request longer than the model's `seq_max`, an out-of-vocab
    /// prompt token, or invalid sampling params / stop sequences
    /// ([`SubmitRequest::validate`]); [`BackendError::QueueFull`] when
    /// [`SchedulerConfig::max_pending`] queued sequences are already
    /// waiting (admission backpressure — shed load or retry later).
    pub fn submit(&mut self, req: SubmitRequest) -> Result<SeqId, BackendError> {
        if self.cfg.max_pending > 0 && self.pending.len() >= self.cfg.max_pending {
            return Err(BackendError::QueueFull {
                pending: self.pending.len(),
            });
        }
        if req.prompt.is_empty() {
            return Err(BackendError::Shape("empty prompt".into()));
        }
        if req.max_new == 0 {
            return Err(BackendError::Shape("max_new must be >= 1".into()));
        }
        if req.prompt.len() + req.max_new > self.model.cfg.seq_max {
            return Err(BackendError::Shape(format!(
                "sequence {} + {} exceeds seq_max {}",
                req.prompt.len(),
                req.max_new,
                self.model.cfg.seq_max
            )));
        }
        if let Some(&t) = req
            .prompt
            .iter()
            .find(|&&t| t as usize >= self.model.cfg.vocab)
        {
            return Err(BackendError::Shape(format!(
                "prompt token {t} out of vocab {}",
                self.model.cfg.vocab
            )));
        }
        req.validate(self.model.cfg.vocab)?;
        let id = SeqId(self.next_id);
        self.next_id += 1;
        let mut sampler = Sampler::new(&req.sampling, self.model.cfg.vocab);
        sampler.observe_all(&req.prompt);
        tmac_trace::instant("sched", "submit", id.0, req.prompt.len() as u64);
        self.pending.push_back(Sequence {
            id,
            prompt: req.prompt,
            max_new: req.max_new,
            generated: Vec::with_capacity(req.max_new),
            pos: 0,
            last_token: 0,
            slot: usize::MAX,
            sampler,
            stop: req.stop,
            stopped: false,
            cache_prompt: req.cache_prompt,
            queued_at: Instant::now(),
            admitted_at: None,
            prefill_done_at: None,
            queued_ns: tmac_trace::now_ns(),
            prefix_hit_positions: 0,
        });
        Ok(id)
    }

    /// Sequences currently holding a batch slot.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// The scheduler's limits (as resolved at construction: a zero
    /// `prefill_chunk` has been replaced by the model-derived chunk).
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// KV-cache slots claimed so far (grows lazily up to `max_batch`;
    /// cancellation must return slots here instead of leaking them).
    pub fn slots_allocated(&self) -> usize {
        self.slots_hwm
    }

    /// Pool, prefix-sharing and eviction counters of the paged KV cache
    /// (the feed for the serving layer's KV gauges).
    pub fn kv_stats(&self) -> crate::kv::KvStats {
        self.cache.stats()
    }

    /// Removes a sequence mid-flight, wherever it is.
    ///
    /// A pending sequence leaves the queue; an active one gives its KV slot
    /// back to the pool so the next admission reuses it. Either way the
    /// sequence retires into the finished list with
    /// [`FinishReason::Cancelled`] and its partial `tokens`. Returns `false`
    /// when `id` is not currently pending or active (already finished,
    /// cancelled, or never submitted) — cancellation is idempotent.
    pub fn cancel(&mut self, id: SeqId) -> bool {
        if let Some(i) = self.pending.iter().position(|s| s.id == id) {
            let seq = self.pending.remove(i).expect("position is in range");
            self.retire(seq, FinishReason::Cancelled);
            return true;
        }
        if let Some(i) = self.active.iter().position(|s| s.id == id) {
            let seq = self.active.remove(i);
            self.retire(seq, FinishReason::Cancelled);
            return true;
        }
        false
    }

    /// Sequences waiting for a slot.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Sequences ever retired with [`FinishReason::Error`] by the fault
    /// quarantine (monotonic across [`Scheduler::reset`] — the feed for
    /// the serving layer's `tmac_quarantined_total` metric).
    pub fn quarantined_total(&self) -> u64 {
        self.quarantined
    }

    /// True when no work remains (pending and active both empty).
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.active.is_empty()
    }

    /// Drains completed sequences collected so far.
    pub fn take_finished(&mut self) -> Vec<FinishedSeq> {
        std::mem::take(&mut self.finished)
    }

    /// Clears all per-sequence state — pending queue, active slots and
    /// their KV caches, finished results — keeping the model and the
    /// allocated cache pool for reuse.
    pub fn reset(&mut self) {
        self.pending.clear();
        self.active.clear();
        self.finished.clear();
        self.free_slots = (0..self.slots_hwm).collect();
        self.cache.reset();
    }

    /// Takes (or claims) a cache slot for an admitted sequence. The
    /// admission loop only runs while `active < max_batch`, so a slot is
    /// always available: every retired sequence returned its slot.
    fn claim_slot(&mut self) -> usize {
        if let Some(slot) = self.free_slots.pop() {
            slot
        } else {
            debug_assert!(self.slots_hwm < self.cfg.max_batch);
            self.slots_hwm += 1;
            self.slots_hwm - 1
        }
    }

    /// Runs one serving step: admits queued sequences into free slots
    /// (prefilling their prompts as mpGEMM chunks), then decodes one token
    /// for every active sequence in a single batched forward. Returns the
    /// tokens emitted this step (one per admitted sequence from its prefill
    /// logits, plus one per sequence in the decode batch).
    ///
    /// # Fault quarantine
    ///
    /// Model failures — a typed [`BackendError`], a panic unwinding out of
    /// a forward (caught here), or non-finite logits reaching the sampler —
    /// are contained to the sequences they hit: the offending sequence
    /// retires into the finished list with an error
    /// [`FinishedSeq::reason`], its KV slot returns to the pool, and every
    /// other sequence continues bit-exactly (re-running a row is exact
    /// because KV writes are position-indexed overwrites and a cache's
    /// length only advances when its forward completes). A failed *batched*
    /// decode is isolated by probing each row alone; rows that fail alone
    /// are quarantined, rows that pass advance normally.
    ///
    /// # Errors
    ///
    /// With quarantine containing per-sequence faults, the only `Err` left
    /// is an injected step-level fault from the `scheduler/step` failpoint
    /// (`failpoints` builds); it fails the step before any token is
    /// emitted, so retrying is always safe.
    pub fn step_batch(&mut self, ctx: &ExecCtx) -> Result<Vec<StepToken>, BackendError> {
        scheduler_fault("scheduler/step")?;
        self.steps += 1;
        let _step = tmac_trace::span("sched", "step", self.steps, self.active.len() as u64);
        let mut emitted = Vec::new();

        // Admission: fill free batch slots from the queue; each admitted
        // prompt prefills through forward_batch in chunks, yielding its
        // first generated token from the final chunk's last-row logits.
        while self.active.len() < self.cfg.max_batch && !self.pending.is_empty() {
            // The loop condition checked non-emptiness; pop cannot fail.
            let mut seq = self.pending.pop_front().expect("non-empty queue");
            if let Err(e) = scheduler_fault("scheduler/slot") {
                self.quarantine(seq, &e);
                continue;
            }
            seq.slot = self.claim_slot();
            seq.admitted_at = Some(Instant::now());
            tmac_trace::complete(
                "sched",
                "queue_wait",
                seq.id.0,
                0,
                seq.queued_ns,
                tmac_trace::now_ns(),
            );
            match self.prefill_active(&mut seq, ctx) {
                Ok(token) => {
                    emitted.push(StepToken {
                        id: seq.id,
                        token,
                        finished: seq.done(),
                    });
                    if seq.done() {
                        let reason = seq.finish_reason();
                        self.retire(seq, reason);
                    } else {
                        self.active.push(seq);
                    }
                }
                Err(e) => {
                    // Quarantine: only this admission fails; its slot goes
                    // back to the pool and admission moves on.
                    self.quarantine(seq, &e);
                }
            }
        }

        // Decode: one batched forward over all active rows.
        if !self.active.is_empty() {
            let _decode = tmac_trace::span("sched", "decode", self.steps, self.active.len() as u64);
            let tokens: Vec<u32> = self.active.iter().map(|s| s.last_token).collect();
            let positions: Vec<usize> = self.active.iter().map(|s| s.pos).collect();
            let slots: Vec<usize> = self.active.iter().map(|s| s.slot).collect();
            let batch = Self::forward_rows(
                &self.model,
                &tokens,
                &positions,
                &slots,
                &mut self.cache,
                &mut self.scratch,
                ctx,
            );
            match batch {
                Ok(()) => {
                    // Sample every row, quarantining rows whose logits fail
                    // the guard. Retirement is deferred past the sampling
                    // loop so logits rows stay aligned with active indices.
                    let mut failed: Vec<(usize, BackendError)> = Vec::new();
                    for (r, seq) in self.active.iter_mut().enumerate() {
                        match Self::guard_logits(self.scratch.logits_row(r)) {
                            Ok(()) => {
                                let token = seq.advance(self.scratch.logits_row(r));
                                seq.pos += 1;
                                emitted.push(StepToken {
                                    id: seq.id,
                                    token,
                                    finished: seq.done(),
                                });
                            }
                            Err(e) => failed.push((r, e)),
                        }
                    }
                    for (r, e) in failed.into_iter().rev() {
                        let seq = self.active.remove(r);
                        self.quarantine(seq, &e);
                    }
                }
                Err(_batch_err) => {
                    // The batch failed as a whole: isolate by probing each
                    // row alone. Survivors advance exactly as the batch
                    // would have advanced them (row-independent forwards,
                    // idempotent KV overwrites); rows that fail alone are
                    // quarantined. A transient fault that only hit the
                    // batched call quarantines nothing.
                    let mut r = 0;
                    while r < self.active.len() {
                        let (t, p, s) = {
                            let seq = &self.active[r];
                            ([seq.last_token], [seq.pos], [seq.slot])
                        };
                        let probe = Self::forward_rows(
                            &self.model,
                            &t,
                            &p,
                            &s,
                            &mut self.cache,
                            &mut self.scratch,
                            ctx,
                        )
                        .and_then(|()| Self::guard_logits(self.scratch.logits_row(0)));
                        match probe {
                            Ok(()) => {
                                let seq = &mut self.active[r];
                                let token = seq.advance(self.scratch.logits_row(0));
                                seq.pos += 1;
                                emitted.push(StepToken {
                                    id: seq.id,
                                    token,
                                    finished: seq.done(),
                                });
                                r += 1;
                            }
                            Err(e) => {
                                let seq = self.active.remove(r);
                                self.quarantine(seq, &e);
                            }
                        }
                    }
                }
            }
            // Eviction: retire finished sequences, freeing their slots for
            // the next step's admission.
            let mut r = 0;
            while r < self.active.len() {
                if self.active[r].done() {
                    let seq = self.active.remove(r);
                    let reason = seq.finish_reason();
                    self.retire(seq, reason);
                } else {
                    r += 1;
                }
            }
        }
        Ok(emitted)
    }

    /// One `forward_batch` call with panic containment and the
    /// `scheduler/forward` failpoint inside the contained region: a panic
    /// unwinding out of the model (or a worker thread, re-raised by the
    /// pool) surfaces as [`BackendError::Panic`] instead of killing the
    /// serving thread. `AssertUnwindSafe` is justified: on unwind the
    /// caller discards or re-runs this call's effects — scratch is fully
    /// overwritten by the next forward, KV writes are position-indexed
    /// overwrites, and a cache's length only advances on completion.
    fn forward_rows(
        model: &Model,
        tokens: &[u32],
        positions: &[usize],
        slots: &[usize],
        cache: &mut KvCache,
        scratch: &mut BatchScratch,
        ctx: &ExecCtx,
    ) -> Result<(), BackendError> {
        let run = catch_unwind(AssertUnwindSafe(|| {
            scheduler_fault("scheduler/forward")?;
            model.forward_batch(tokens, positions, slots, cache, scratch, ctx)
        }));
        match run {
            Ok(r) => r,
            Err(payload) => Err(BackendError::Panic(panic_message(&*payload))),
        }
    }

    /// The sampling-path guard: refuses to sample from a logits row
    /// containing non-finite values (the sequence errors instead of
    /// emitting garbage tokens), and hosts the `scheduler/logits`
    /// failpoint.
    fn guard_logits(logits: &[f32]) -> Result<(), BackendError> {
        scheduler_fault("scheduler/logits")?;
        if let Some(i) = logits.iter().position(|v| !v.is_finite()) {
            return Err(BackendError::Numeric(format!(
                "non-finite logit {} at index {i}",
                logits[i]
            )));
        }
        Ok(())
    }

    /// Error-retires a sequence through the quarantine, counting it.
    fn quarantine(&mut self, seq: Sequence, err: &BackendError) {
        self.quarantined += 1;
        tmac_trace::instant("sched", "quarantine", seq.id.0, self.quarantined);
        self.retire(seq, FinishReason::Error(err.to_string()));
    }

    /// Runs every step until all submitted sequences finish, returning them.
    ///
    /// # Errors
    ///
    /// Propagates the first step failure.
    pub fn run_to_completion(&mut self, ctx: &ExecCtx) -> Result<Vec<FinishedSeq>, BackendError> {
        while !self.is_idle() {
            self.step_batch(ctx)?;
        }
        Ok(self.take_finished())
    }

    /// Prefills an admitted sequence's prompt in mpGEMM chunks against its
    /// slot, samples the first generated token, and advances its state.
    ///
    /// When the request allows prompt caching, the longest radix-cached
    /// prefix is attached by reference first ([`KvCache::prefix_match`],
    /// capped at `len - 1` so the last prompt token always forwards to
    /// produce the sampling logits) and only the uncached suffix runs
    /// through the model; on success the full prompt is published back
    /// into the index ([`KvCache::prefix_insert`]) for later requests.
    ///
    /// Panics unwinding out of the prefill forwards are contained here
    /// (same unwind-safety argument as [`Scheduler::forward_rows`]) and
    /// surface as [`BackendError::Panic`] for the caller's quarantine;
    /// the retire path releases any pages the sequence attached.
    fn prefill_active(&mut self, seq: &mut Sequence, ctx: &ExecCtx) -> Result<u32, BackendError> {
        let _prefill = tmac_trace::span("sched", "prefill", seq.id.0, seq.prompt.len() as u64);
        let matched = if seq.cache_prompt && seq.prompt.len() > 1 {
            self.cache
                .prefix_match(seq.slot, &seq.prompt[..seq.prompt.len() - 1])
        } else {
            0
        };
        seq.prefix_hit_positions = matched as u64;
        let model = &self.model;
        let cache = &mut self.cache;
        let scratch = &mut self.scratch;
        let chunk = self.cfg.prefill_chunk;
        let run = catch_unwind(AssertUnwindSafe(|| {
            scheduler_fault("scheduler/prefill")?;
            model.prefill_chunked_from(&seq.prompt, matched, seq.slot, cache, scratch, chunk, ctx)
        }));
        let last_row = match run {
            Ok(r) => r?,
            Err(payload) => return Err(BackendError::Panic(panic_message(&*payload))),
        };
        Self::guard_logits(self.scratch.logits_row(last_row))?;
        // The last prompt token's logits sample the first generated token
        // (nothing is discarded).
        let token = seq.advance(self.scratch.logits_row(last_row));
        seq.pos = seq.prompt.len();
        seq.prefill_done_at = Some(Instant::now());
        if seq.cache_prompt {
            self.cache.prefix_insert(seq.slot, &seq.prompt);
        }
        Ok(token)
    }

    /// Moves a sequence to the finished list with the given reason and
    /// frees its slot (pages the radix index still references survive for
    /// future prefix hits; the rest return to the pool).
    fn retire(&mut self, seq: Sequence, reason: FinishReason) {
        if seq.slot != usize::MAX {
            self.cache.release_seq(seq.slot);
            self.free_slots.push(seq.slot);
        }
        let now = Instant::now();
        let us = |a: Instant, b: Instant| b.saturating_duration_since(a).as_micros() as u64;
        // Unreached phases contribute 0; a phase in progress at retirement
        // (e.g. cancelled mid-prefill) absorbs the time up to `now`.
        let timing = SeqTiming {
            queue_us: us(seq.queued_at, seq.admitted_at.unwrap_or(now)),
            prefill_us: seq
                .admitted_at
                .map_or(0, |a| us(a, seq.prefill_done_at.unwrap_or(now))),
            decode_us: seq.prefill_done_at.map_or(0, |p| us(p, now)),
            prefix_hit_positions: seq.prefix_hit_positions,
        };
        self.finished.push(FinishedSeq {
            id: seq.id,
            prompt: seq.prompt,
            tokens: seq.generated,
            reason,
            timing,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::config::{ModelConfig, WeightQuant};
    use crate::engine::Engine;

    fn model(kind: BackendKind) -> Model {
        Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(2), kind, 11).unwrap()
    }

    fn tmac_kind() -> BackendKind {
        BackendKind::Tmac(tmac_core::KernelOpts::tmac())
    }

    #[test]
    fn scheduler_matches_single_stream_generate() {
        // Continuous batching must not change any sequence's greedy tokens.
        let ctx = ExecCtx::new(1);
        let prompts: [&[u32]; 3] = [&[1, 2, 3], &[7], &[4, 5, 6, 8, 9]];
        let n_new = 6;

        let mut engine = Engine::new(model(tmac_kind()));
        let singles: Vec<Vec<u32>> = prompts
            .iter()
            .map(|p| {
                engine
                    .generate(&SubmitRequest::greedy(p, n_new), &ctx)
                    .unwrap()
                    .tokens
            })
            .collect();

        let mut sched = Scheduler::new(model(tmac_kind()), SchedulerConfig::default());
        let ids: Vec<SeqId> = prompts
            .iter()
            .map(|p| sched.submit(SubmitRequest::greedy(p, n_new)).unwrap())
            .collect();
        let done = sched.run_to_completion(&ctx).unwrap();
        assert_eq!(done.len(), 3);
        for (i, id) in ids.iter().enumerate() {
            let f = done.iter().find(|f| f.id == *id).unwrap();
            assert_eq!(f.tokens, singles[i], "sequence {i} diverged under batching");
            assert_eq!(f.prompt, prompts[i]);
        }
    }

    #[test]
    fn oversubscribed_queue_is_served_continuously() {
        // More requests than slots: eviction must hand slots to the queue.
        let ctx = ExecCtx::new(1);
        let cfg = SchedulerConfig {
            max_batch: 2,
            prefill_chunk: 4,
            ..SchedulerConfig::default()
        };
        let mut sched = Scheduler::new(model(tmac_kind()), cfg);
        for i in 0..5u32 {
            sched.submit(SubmitRequest::greedy(&[i + 1], 3)).unwrap();
        }
        assert_eq!(sched.pending_len(), 5);
        let first = sched.step_batch(&ctx).unwrap();
        // Two admitted (prefill token each) + two decode tokens.
        assert_eq!(first.len(), 4);
        assert_eq!(sched.active_len(), 2);
        assert_eq!(sched.pending_len(), 3);
        let done = sched.run_to_completion(&ctx).unwrap();
        assert_eq!(done.len(), 5);
        assert!(done.iter().all(|f| f.tokens.len() == 3));
        assert!(sched.is_idle());
    }

    #[test]
    fn step_tokens_stream_in_generation_order() {
        let ctx = ExecCtx::new(1);
        let mut sched = Scheduler::new(model(tmac_kind()), SchedulerConfig::default());
        let id = sched.submit(SubmitRequest::greedy(&[2, 3], 4)).unwrap();
        let mut streamed = Vec::new();
        while !sched.is_idle() {
            for t in sched.step_batch(&ctx).unwrap() {
                assert_eq!(t.id, id);
                streamed.push(t.token);
            }
        }
        let f = sched.take_finished().remove(0);
        assert_eq!(f.tokens, streamed, "streaming must match the final result");
    }

    #[test]
    fn reset_clears_per_sequence_state() {
        let ctx = ExecCtx::new(1);
        let mut sched = Scheduler::new(model(tmac_kind()), SchedulerConfig::default());
        sched.submit(SubmitRequest::greedy(&[1, 2], 8)).unwrap();
        sched.submit(SubmitRequest::greedy(&[3], 8)).unwrap();
        sched.step_batch(&ctx).unwrap();
        assert!(sched.active_len() > 0);
        sched.reset();
        assert!(sched.is_idle());
        assert_eq!(sched.take_finished().len(), 0);
        // The scheduler serves fresh requests identically after a reset.
        let a = sched.submit(SubmitRequest::greedy(&[1, 2], 3)).unwrap();
        let done = sched.run_to_completion(&ctx).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, a);
        assert_eq!(done[0].tokens.len(), 3);
    }

    #[test]
    fn failed_admission_is_quarantined_and_serving_continues() {
        use crate::backend::{BackendBuilder, F32Backend, Linear, LinearBackend};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        use tmac_quant::QuantizedMatrix;

        /// Fails exactly the `fail_at`-th linear dispatch model-wide, then
        /// recovers (wraps the f32 reference backend).
        #[derive(Debug)]
        struct FailOnce {
            inner: F32Backend,
            calls: Arc<AtomicU64>,
            fail_at: u64,
        }
        impl FailOnce {
            fn trip(&self) -> Result<(), BackendError> {
                if self.calls.fetch_add(1, Ordering::Relaxed) + 1 == self.fail_at {
                    return Err(BackendError::Shape("injected failure".into()));
                }
                Ok(())
            }
        }
        impl LinearBackend for FailOnce {
            fn rows(&self) -> usize {
                self.inner.rows()
            }
            fn cols(&self) -> usize {
                self.inner.cols()
            }
            fn label(&self) -> String {
                "fail-once".into()
            }
            fn packed_bytes(&self) -> usize {
                self.inner.packed_bytes()
            }
            fn forward(
                &self,
                act: &[f32],
                out: &mut [f32],
                ctx: &ExecCtx,
            ) -> Result<(), BackendError> {
                self.trip()?;
                self.inner.forward(act, out, ctx)
            }
            fn forward_batch(
                &self,
                act: &[f32],
                n: usize,
                out: &mut [f32],
                ctx: &ExecCtx,
            ) -> Result<(), BackendError> {
                self.trip()?;
                self.inner.forward_batch(act, n, out, ctx)
            }
        }
        struct FailBuilder {
            calls: Arc<AtomicU64>,
            fail_at: u64,
        }
        impl BackendBuilder for FailBuilder {
            fn build(&self, qm: &QuantizedMatrix, w: &[f32]) -> Result<Linear, BackendError> {
                Ok(Linear::from_backend(FailOnce {
                    inner: F32Backend::new(w, qm.rows, qm.cols)?,
                    calls: Arc::clone(&self.calls),
                    fail_at: self.fail_at,
                }))
            }
            fn label(&self) -> String {
                "fail-once".into()
            }
        }

        let ctx = ExecCtx::new(1);
        let cfg = ModelConfig::tiny();
        // 2 layers => 7*2 + 1 = 15 linear dispatches per forward pass; the
        // 20th call lands inside the SECOND admission's prefill.
        let builder = FailBuilder {
            calls: Arc::new(AtomicU64::new(0)),
            fail_at: 20,
        };
        let m = Model::synthetic_with(&cfg, WeightQuant::Rtn(4), &builder, 3).unwrap();
        let mut sched = Scheduler::new(m, SchedulerConfig::default());
        let a = sched.submit(SubmitRequest::greedy(&[1], 3)).unwrap();
        let b = sched.submit(SubmitRequest::greedy(&[2], 3)).unwrap();

        // The fault lands in B's prefill: B alone is quarantined, the step
        // still succeeds, and A prefills AND decodes in that same step.
        let first = sched.step_batch(&ctx).unwrap();
        assert!(first.iter().all(|t| t.id == a), "only A emits tokens");
        assert_eq!(first.len(), 2, "A's prefill token plus A's decode token");
        let failed = sched.take_finished();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].id, b);
        assert!(failed[0].reason.is_error());
        assert!(failed[0].tokens.is_empty());
        assert_eq!(sched.active_len(), 1);
        assert_eq!(sched.quarantined_total(), 1);

        // The backend has recovered; serving completes and the stream holds
        // every one of A's tokens exactly once, in order.
        let mut streamed: Vec<u32> = first.iter().map(|t| t.token).collect();
        while !sched.is_idle() {
            for t in sched.step_batch(&ctx).unwrap() {
                assert_eq!(t.id, a);
                streamed.push(t.token);
            }
        }
        let done = sched.take_finished();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, a);
        assert_eq!(done[0].reason, FinishReason::Length);
        assert_eq!(done[0].tokens, streamed);
        assert_eq!(done[0].tokens.len(), 3);
        // B's slot went back to the pool, not leaked.
        assert_eq!(sched.slots_allocated(), 2);
    }

    #[test]
    fn forward_panic_is_contained_and_survivors_are_bit_exact() {
        use crate::backend::{BackendBuilder, F32Backend, Linear, LinearBackend};
        use tmac_quant::QuantizedMatrix;

        // A backend that panics on every multi-row dispatch: each batched
        // decode unwinds, the per-row isolation probes (n == 1) all pass,
        // so serving degrades to row-at-a-time forwards with ZERO
        // quarantined sequences — and every token matches the reference.
        #[derive(Debug)]
        struct PanicOnBatch {
            inner: F32Backend,
        }
        impl LinearBackend for PanicOnBatch {
            fn rows(&self) -> usize {
                self.inner.rows()
            }
            fn cols(&self) -> usize {
                self.inner.cols()
            }
            fn label(&self) -> String {
                "panic-on-batch".into()
            }
            fn packed_bytes(&self) -> usize {
                self.inner.packed_bytes()
            }
            fn forward(
                &self,
                act: &[f32],
                out: &mut [f32],
                ctx: &ExecCtx,
            ) -> Result<(), BackendError> {
                self.inner.forward(act, out, ctx)
            }
            fn forward_batch(
                &self,
                act: &[f32],
                n: usize,
                out: &mut [f32],
                ctx: &ExecCtx,
            ) -> Result<(), BackendError> {
                assert!(n == 1, "injected panic on a {n}-row batch");
                self.inner.forward_batch(act, n, out, ctx)
            }
        }
        struct PanicBuilder;
        impl BackendBuilder for PanicBuilder {
            fn build(&self, qm: &QuantizedMatrix, w: &[f32]) -> Result<Linear, BackendError> {
                Ok(Linear::from_backend(PanicOnBatch {
                    inner: F32Backend::new(w, qm.rows, qm.cols)?,
                }))
            }
            fn label(&self) -> String {
                "panic-on-batch".into()
            }
        }

        let ctx = ExecCtx::new(1);
        let cfg = ModelConfig::tiny();
        // Reference tokens from the plain f32 backend (same quantized
        // weights: (cfg, quant, seed) determine them bit-exactly).
        let mut engine =
            Engine::new(Model::synthetic(&cfg, WeightQuant::Rtn(4), BackendKind::F32, 3).unwrap());
        let reference: Vec<Vec<u32>> = [[1u32], [2u32]]
            .iter()
            .map(|p| {
                engine
                    .generate(&SubmitRequest::greedy(p, 4), &ctx)
                    .unwrap()
                    .tokens
            })
            .collect();

        let m = Model::synthetic_with(&cfg, WeightQuant::Rtn(4), &PanicBuilder, 3).unwrap();
        let mut sched = Scheduler::new(m, SchedulerConfig::default());
        // Single-token prompts keep prefill on the n == 1 path; only the
        // two-row decode batches panic.
        let a = sched.submit(SubmitRequest::greedy(&[1], 4)).unwrap();
        let b = sched.submit(SubmitRequest::greedy(&[2], 4)).unwrap();
        let done = sched.run_to_completion(&ctx).unwrap();
        assert_eq!(sched.quarantined_total(), 0, "probes exonerate every row");
        for (id, want) in [(a, &reference[0]), (b, &reference[1])] {
            let f = done.iter().find(|f| f.id == id).unwrap();
            assert_eq!(f.reason, FinishReason::Length);
            assert_eq!(&f.tokens, want, "tokens diverged under panic isolation");
        }
    }

    #[test]
    fn non_finite_logits_quarantine_only_the_poisoned_row() {
        use crate::backend::{BackendBuilder, F32Backend, Linear, LinearBackend};
        use tmac_quant::QuantizedMatrix;

        // An lm-head wrapper that poisons row 1's logits with NaN on
        // multi-row batches: the sampling guard must error-retire exactly
        // the row-1 sequence and leave row 0 bit-exact.
        #[derive(Debug)]
        struct NanHead {
            inner: F32Backend,
        }
        impl LinearBackend for NanHead {
            fn rows(&self) -> usize {
                self.inner.rows()
            }
            fn cols(&self) -> usize {
                self.inner.cols()
            }
            fn label(&self) -> String {
                "nan-head".into()
            }
            fn packed_bytes(&self) -> usize {
                self.inner.packed_bytes()
            }
            fn forward(
                &self,
                act: &[f32],
                out: &mut [f32],
                ctx: &ExecCtx,
            ) -> Result<(), BackendError> {
                self.inner.forward(act, out, ctx)
            }
            fn forward_batch(
                &self,
                act: &[f32],
                n: usize,
                out: &mut [f32],
                ctx: &ExecCtx,
            ) -> Result<(), BackendError> {
                self.inner.forward_batch(act, n, out, ctx)?;
                if n > 1 {
                    out[self.inner.rows()] = f32::NAN;
                }
                Ok(())
            }
        }
        struct NanHeadBuilder {
            vocab: usize,
        }
        impl BackendBuilder for NanHeadBuilder {
            fn build(&self, qm: &QuantizedMatrix, w: &[f32]) -> Result<Linear, BackendError> {
                let inner = F32Backend::new(w, qm.rows, qm.cols)?;
                if qm.rows == self.vocab {
                    Ok(Linear::from_backend(NanHead { inner }))
                } else {
                    Ok(Linear::from_backend(inner))
                }
            }
            fn label(&self) -> String {
                "nan-head".into()
            }
        }

        let ctx = ExecCtx::new(1);
        let cfg = ModelConfig::tiny();
        let mut engine =
            Engine::new(Model::synthetic(&cfg, WeightQuant::Rtn(4), BackendKind::F32, 3).unwrap());
        let solo_a = engine
            .generate(&SubmitRequest::greedy(&[1], 4), &ctx)
            .unwrap()
            .tokens;

        let builder = NanHeadBuilder { vocab: cfg.vocab };
        let m = Model::synthetic_with(&cfg, WeightQuant::Rtn(4), &builder, 3).unwrap();
        let mut sched = Scheduler::new(m, SchedulerConfig::default());
        let a = sched.submit(SubmitRequest::greedy(&[1], 4)).unwrap();
        let b = sched.submit(SubmitRequest::greedy(&[2], 4)).unwrap();
        let done = sched.run_to_completion(&ctx).unwrap();
        assert_eq!(sched.quarantined_total(), 1);

        let fb = done.iter().find(|f| f.id == b).unwrap();
        assert!(fb.reason.is_error());
        assert!(
            fb.reason.to_string().contains("non-finite"),
            "got {:?}",
            fb.reason
        );
        assert_eq!(
            fb.tokens.len(),
            1,
            "prefill token only (n == 1, unpoisoned)"
        );

        let fa = done.iter().find(|f| f.id == a).unwrap();
        assert_eq!(fa.reason, FinishReason::Length);
        assert_eq!(fa.tokens, solo_a, "survivor diverged after quarantine");
        assert!(sched.is_idle());
        assert_eq!(sched.slots_allocated(), 2, "B's slot returned to the pool");
    }

    #[test]
    fn submit_validates_requests() {
        let mut sched = Scheduler::new(model(BackendKind::F32), SchedulerConfig::default());
        assert!(sched.submit(SubmitRequest::greedy(&[], 4)).is_err());
        assert!(sched.submit(SubmitRequest::greedy(&[1], 0)).is_err());
        assert!(sched.submit(SubmitRequest::greedy(&[10_000], 4)).is_err());
        let max = sched.model().cfg.seq_max;
        assert!(sched.submit(SubmitRequest::greedy(&[1], max)).is_err());
    }

    #[test]
    fn bounded_queue_rejects_with_queue_full() {
        let cfg = SchedulerConfig {
            max_batch: 1,
            max_pending: 2,
            ..SchedulerConfig::default()
        };
        let ctx = ExecCtx::new(1);
        let mut sched = Scheduler::new(model(tmac_kind()), cfg);
        sched.submit(SubmitRequest::greedy(&[1], 2)).unwrap();
        sched.submit(SubmitRequest::greedy(&[2], 2)).unwrap();
        match sched.submit(SubmitRequest::greedy(&[3], 2)) {
            Err(BackendError::QueueFull { pending }) => assert_eq!(pending, 2),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // One step admits a sequence out of the queue, making room again.
        sched.step_batch(&ctx).unwrap();
        assert_eq!(sched.pending_len(), 1);
        sched.submit(SubmitRequest::greedy(&[3], 2)).unwrap();
        // max_pending = 0 disables the bound.
        let unbounded = SchedulerConfig {
            max_pending: 0,
            ..SchedulerConfig::default()
        };
        let mut sched = Scheduler::new(model(BackendKind::F32), unbounded);
        for i in 0..600u32 {
            sched
                .submit(SubmitRequest::greedy(&[1 + i % 90], 1))
                .unwrap();
        }
    }

    #[test]
    fn cancel_pending_and_active_frees_state() {
        let ctx = ExecCtx::new(1);
        let cfg = SchedulerConfig {
            max_batch: 2,
            ..SchedulerConfig::default()
        };
        let mut sched = Scheduler::new(model(tmac_kind()), cfg);
        let a = sched.submit(SubmitRequest::greedy(&[1, 2], 8)).unwrap();
        let b = sched.submit(SubmitRequest::greedy(&[3], 8)).unwrap();
        let c = sched.submit(SubmitRequest::greedy(&[4, 5], 8)).unwrap();

        // Cancel C while still pending: it never takes a slot.
        assert!(sched.cancel(c));
        assert!(!sched.cancel(c), "cancel is idempotent");
        sched.step_batch(&ctx).unwrap();
        assert_eq!(sched.active_len(), 2);
        assert_eq!(sched.slots_allocated(), 2);

        // Cancel A while active: the slot returns to the pool, so admitting
        // a new request must NOT allocate a third cache.
        assert!(sched.cancel(a));
        assert_eq!(sched.active_len(), 1);
        let d = sched.submit(SubmitRequest::greedy(&[6], 4)).unwrap();
        sched.step_batch(&ctx).unwrap();
        assert_eq!(sched.active_len(), 2);
        assert_eq!(sched.slots_allocated(), 2, "cancelled slot was not reused");

        let done = sched.run_to_completion(&ctx).unwrap();
        let by_id = |id: SeqId| done.iter().find(|f| f.id == id).unwrap();
        assert_eq!(by_id(c).reason, FinishReason::Cancelled);
        assert!(by_id(c).tokens.is_empty());
        assert_eq!(by_id(a).reason, FinishReason::Cancelled);
        assert!(by_id(a).tokens.len() < 8, "partial output only");
        assert_eq!(by_id(b).reason, FinishReason::Length);
        assert_eq!(by_id(d).reason, FinishReason::Length);
        assert!(sched.is_idle());
        assert!(!sched.cancel(b), "finished sequences cannot be cancelled");
    }

    #[test]
    fn cancellation_leaves_survivors_bit_exact() {
        // Cancelling one sequence mid-batch must not perturb any other
        // sequence's tokens (rows shift in the batch, but forward_batch is
        // row-independent): survivors match an uncancelled reference run.
        let ctx = ExecCtx::new(1);
        let prompts: [&[u32]; 3] = [&[1, 2, 3], &[7, 8], &[4, 5, 6]];
        let n_new = 8;

        let mut reference = Scheduler::new(model(tmac_kind()), SchedulerConfig::default());
        let ref_ids: Vec<SeqId> = prompts
            .iter()
            .map(|p| reference.submit(SubmitRequest::greedy(p, n_new)).unwrap())
            .collect();
        let ref_done = reference.run_to_completion(&ctx).unwrap();

        let mut sched = Scheduler::new(model(tmac_kind()), SchedulerConfig::default());
        let ids: Vec<SeqId> = prompts
            .iter()
            .map(|p| sched.submit(SubmitRequest::greedy(p, n_new)).unwrap())
            .collect();
        // Let everyone produce a few tokens, then drop the middle sequence.
        sched.step_batch(&ctx).unwrap();
        sched.step_batch(&ctx).unwrap();
        assert!(sched.cancel(ids[1]));
        let done = sched.run_to_completion(&ctx).unwrap();

        for (i, id) in ids.iter().enumerate() {
            let f = done.iter().find(|f| f.id == *id).unwrap();
            let r = ref_done.iter().find(|f| f.id == ref_ids[i]).unwrap();
            if i == 1 {
                assert_eq!(f.reason, FinishReason::Cancelled);
                assert_eq!(f.tokens, r.tokens[..f.tokens.len()], "prefix must match");
            } else {
                assert_eq!(f.reason, FinishReason::Length);
                assert_eq!(f.tokens, r.tokens, "survivor {i} diverged after cancel");
            }
        }
    }

    #[test]
    fn drain_while_active_completes_without_new_admissions() {
        // Serving-style drain: stop submitting, keep stepping. Everything
        // in flight (active AND already-queued) finishes; nothing new is
        // admitted because nothing new is submitted.
        let ctx = ExecCtx::new(1);
        let cfg = SchedulerConfig {
            max_batch: 2,
            ..SchedulerConfig::default()
        };
        let mut sched = Scheduler::new(model(tmac_kind()), cfg);
        for i in 0..4u32 {
            sched.submit(SubmitRequest::greedy(&[i + 1], 3)).unwrap();
        }
        sched.step_batch(&ctx).unwrap();
        assert!(sched.active_len() > 0 && sched.pending_len() > 0);
        // Drain: no further submits. The loop must terminate with every
        // submitted sequence complete.
        let done = sched.run_to_completion(&ctx).unwrap();
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|f| f.reason == FinishReason::Length));
        assert!(sched.is_idle());
        assert_eq!(sched.slots_allocated(), 2);
    }

    #[test]
    fn long_prompt_prefills_across_chunks() {
        let ctx = ExecCtx::new(1);
        let cfg = SchedulerConfig {
            max_batch: 1,
            prefill_chunk: 3, // forces multi-chunk prefill for a 7-token prompt
            ..SchedulerConfig::default()
        };
        let prompt: Vec<u32> = (1..=7).collect();
        let mut engine = Engine::new(model(tmac_kind()));
        let single = engine
            .generate(&SubmitRequest::greedy(&prompt, 4), &ctx)
            .unwrap()
            .tokens;
        let mut sched = Scheduler::new(model(tmac_kind()), cfg);
        sched.submit(SubmitRequest::greedy(&prompt, 4)).unwrap();
        let done = sched.run_to_completion(&ctx).unwrap();
        assert_eq!(done[0].tokens, single);
    }
}
