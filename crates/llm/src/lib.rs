//! Llama-architecture transformer inference substrate.
//!
//! The end-to-end system of the paper's §5.3–§5.6: a from-scratch llama
//! decoder (RMSNorm, RoPE, GQA attention with KV cache, SwiGLU) whose every
//! projection runs on a pluggable mpGEMV backend — T-MAC LUT kernels, the
//! llama.cpp-style dequant baseline, or the unquantized `f32` reference —
//! plus a generation engine, throughput measurement with full-depth
//! extrapolation, and model-quality evaluators (perplexity, choice
//! agreement).
//!
//! Every forward runs under a [`tmac_core::ExecCtx`], whose activation-table
//! cache shares one LUT build across the projections that consume the same
//! activation (QKV; gate/up) — the T-MAC precompute amortization applied to
//! the whole decode stack. Backends implement [`backend::LinearBackend`] and
//! plug in through [`backend::BackendRegistry`] without touching the model.
//!
//! # Examples
//!
//! ```
//! use tmac_core::ExecCtx;
//! use tmac_llm::{BackendKind, Engine, Model, ModelConfig, WeightQuant};
//!
//! let cfg = ModelConfig::tiny();
//! let model = Model::synthetic(
//!     &cfg,
//!     WeightQuant::Rtn(2),
//!     BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
//!     42,
//! )
//! .unwrap();
//! let mut engine = Engine::new(model);
//! let ctx = ExecCtx::new(2);
//! let out = engine
//!     .generate(&tmac_llm::GenRequest::greedy(&[1, 2, 3], 8), &ctx)
//!     .unwrap();
//! assert_eq!(out.tokens.len(), 8);
//! // Table builds were shared across QKV and gate/up projections:
//! let stats = ctx.table_stats();
//! assert!(stats.hits > 0);
//! ```

pub mod attention;
pub mod backend;
pub mod batch;
pub mod config;
pub mod engine;
pub mod eval;
pub mod io;
pub mod kv;
pub mod model;
pub mod ops;
pub mod sampling;
pub mod weights;

pub use attention::AttnScratch;
pub use backend::{
    BackendBuilder, BackendError, BackendKind, BackendRegistry, DequantBackend, F32Backend, Linear,
    LinearBackend, TmacBackend,
};
pub use batch::{
    FinishReason, FinishedSeq, Scheduler, SchedulerConfig, SeqId, SeqTiming, StepToken,
    SubmitRequest,
};
pub use config::{KvPrecision, ModelConfig, WeightQuant};
pub use engine::{DecodeStats, Engine, GenOutput, PREFILL_CHUNK};
pub use io::{LoadMode, ModelIoError};
pub use kv::{KvCache, KvError, KvStats, PAGE_POSITIONS};
pub use model::{BatchScratch, Model, Scratch};
pub use sampling::{GenRequest, Sampler, SamplingParams};
pub use tmac_core::{ExecCtx, TableCacheStats};
