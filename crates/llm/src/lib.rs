//! Llama-architecture transformer inference substrate.
//!
//! The end-to-end system of the paper's §5.3–§5.6: a from-scratch llama
//! decoder (RMSNorm, RoPE, GQA attention with KV cache, SwiGLU) whose every
//! projection runs on a pluggable mpGEMV backend — T-MAC LUT kernels, the
//! llama.cpp-style dequant baseline, or the unquantized `f32` reference —
//! plus a generation engine, throughput measurement with full-depth
//! extrapolation, and model-quality evaluators (perplexity, choice
//! agreement).
//!
//! # Examples
//!
//! ```
//! use tmac_llm::{BackendKind, Engine, Model, ModelConfig, WeightQuant};
//! use tmac_threadpool::ThreadPool;
//!
//! let cfg = ModelConfig::tiny();
//! let model = Model::synthetic(
//!     &cfg,
//!     WeightQuant::Rtn(2),
//!     BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
//!     42,
//! )
//! .unwrap();
//! let mut engine = Engine::new(model);
//! let pool = ThreadPool::new(2);
//! let tokens = engine.generate(&[1, 2, 3], 8, &pool).unwrap();
//! assert_eq!(tokens.len(), 8);
//! ```

pub mod backend;
pub mod config;
pub mod engine;
pub mod eval;
pub mod model;
pub mod ops;
pub mod weights;

pub use backend::{BackendError, BackendKind, Linear};
pub use config::{ModelConfig, WeightQuant};
pub use engine::{DecodeStats, Engine};
pub use model::{KvCache, Model, Scratch};
