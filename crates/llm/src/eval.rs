//! Model-quality evaluation (paper Table 4).
//!
//! Real corpora (WikiText-2, lambada, WinoGrande) are unavailable offline,
//! so quality is measured as *divergence from the unquantized reference
//! model*, which is exactly the quantity the paper's PPL deltas express:
//!
//! * **Teacher-forced perplexity** — the `f32` reference model greedily
//!   generates sequences; each backend's perplexity is evaluated on those
//!   sequences. The reference model scores (near-)minimal PPL on its own
//!   output; kernel-induced error raises it.
//! * **Choice agreement** (WinoGrande-like) — two-way forced choice: for a
//!   random context the reference's top-2 next tokens are the "options";
//!   a backend answers correctly when it ranks the reference's preferred
//!   option first.

use crate::backend::BackendError;
use crate::engine::Engine;
use crate::ops;
use tmac_core::ExecCtx;
use tmac_rng::Rng;

/// Generates evaluation sequences from the reference engine.
///
/// Each sequence starts with a random 2-token prompt and continues greedily
/// for `len` tokens.
///
/// # Errors
///
/// Propagates generation failures.
pub fn teacher_sequences(
    reference: &mut Engine,
    n_seqs: usize,
    len: usize,
    seed: u64,
    ctx: &ExecCtx,
) -> Result<Vec<Vec<u32>>, BackendError> {
    let vocab = reference.model.cfg.vocab as u32;
    let mut rng = Rng::seed_from_u64(seed);
    let mut seqs = Vec::with_capacity(n_seqs);
    for _ in 0..n_seqs {
        let prompt = vec![rng.u32_below(vocab), rng.u32_below(vocab)];
        let cont = reference.generate(&prompt, len, ctx)?;
        let mut seq = prompt;
        seq.extend(cont);
        seqs.push(seq);
    }
    Ok(seqs)
}

/// Teacher-forced perplexity of `engine` on `seqs`.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn perplexity(
    engine: &mut Engine,
    seqs: &[Vec<u32>],
    ctx: &ExecCtx,
) -> Result<f64, BackendError> {
    let mut nll = 0f64;
    let mut count = 0usize;
    for seq in seqs {
        engine.reset();
        for (pos, window) in seq.windows(2).enumerate() {
            let logits = engine.step(window[0], pos, ctx)?;
            nll -= ops::log_softmax_at(&logits, window[1] as usize);
            count += 1;
        }
    }
    Ok((nll / count.max(1) as f64).exp())
}

/// Two-way choice agreement of `candidate` against `reference`.
///
/// Returns accuracy in percent over `n_tasks` random contexts.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn choice_agreement(
    reference: &mut Engine,
    candidate: &mut Engine,
    n_tasks: usize,
    seed: u64,
    ctx: &ExecCtx,
) -> Result<f64, BackendError> {
    let vocab = reference.model.cfg.vocab as u32;
    let mut rng = Rng::seed_from_u64(seed);
    let mut correct = 0usize;
    for _ in 0..n_tasks {
        let prompt: Vec<u32> = (0..3).map(|_| rng.u32_below(vocab)).collect();
        let mut ref_logits = Vec::new();
        reference.reset();
        for (pos, &t) in prompt.iter().enumerate() {
            ref_logits = reference.step(t, pos, ctx)?;
        }
        let (a, b) = ops::top2(&ref_logits);
        let mut cand_logits = Vec::new();
        candidate.reset();
        for (pos, &t) in prompt.iter().enumerate() {
            cand_logits = candidate.step(t, pos, ctx)?;
        }
        if cand_logits[a] > cand_logits[b] {
            correct += 1;
        }
    }
    Ok(100.0 * correct as f64 / n_tasks.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::config::{ModelConfig, WeightQuant};
    use crate::model::Model;
    use tmac_core::KernelOpts;

    fn engine(kind: BackendKind, bits: u8) -> Engine {
        Engine::new(
            Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(bits), kind, 33).unwrap(),
        )
    }

    #[test]
    fn perplexity_is_finite_and_deterministic() {
        // Note: a quantized model may score *lower* PPL than the reference
        // on the reference's own greedy output (quantization can sharpen
        // logits), so no ordering is asserted here — the observable the
        // paper reports (Table 4) is the *relative* drift between backends,
        // covered by `tmac_and_dequant_quality_match_closely`.
        let ctx = ExecCtx::new(1);
        let mut reference = engine(BackendKind::F32, 4);
        let seqs = teacher_sequences(&mut reference, 2, 10, 5, &ctx).unwrap();
        let ppl_a = perplexity(&mut reference, &seqs, &ctx).unwrap();
        let ppl_b = perplexity(&mut reference, &seqs, &ctx).unwrap();
        assert!(ppl_a.is_finite() && ppl_a > 1.0);
        assert_eq!(ppl_a, ppl_b, "perplexity must be deterministic");
    }

    #[test]
    fn tmac_and_dequant_quality_match_closely() {
        // Paper Table 4: T-MAC delivers *the same* quality as llama.cpp.
        let ctx = ExecCtx::new(1);
        let mut reference = engine(BackendKind::F32, 4);
        let seqs = teacher_sequences(&mut reference, 2, 8, 6, &ctx).unwrap();
        let mut d = engine(BackendKind::Dequant, 4);
        let mut t = engine(BackendKind::Tmac(KernelOpts::tmac()), 4);
        let ppl_d = perplexity(&mut d, &seqs, &ctx).unwrap();
        let ppl_t = perplexity(&mut t, &seqs, &ctx).unwrap();
        let rel = (ppl_d - ppl_t).abs() / ppl_d;
        assert!(rel < 0.05, "PPL mismatch: dequant {ppl_d} vs tmac {ppl_t}");
    }

    #[test]
    fn self_agreement_is_perfect() {
        let ctx = ExecCtx::new(1);
        let mut a = engine(BackendKind::F32, 4);
        let mut b = engine(BackendKind::F32, 4);
        let acc = choice_agreement(&mut a, &mut b, 10, 3, &ctx).unwrap();
        assert_eq!(acc, 100.0);
    }

    #[test]
    fn quantized_agreement_high_but_imperfect_possible() {
        let ctx = ExecCtx::new(1);
        let mut reference = engine(BackendKind::F32, 2);
        let mut quant = engine(BackendKind::Dequant, 2);
        // 2-bit quantization of a tiny *random* model is near-chance on
        // two-way choices (the reference's top-2 logit gap is smaller than
        // the quant noise), so only sanity — not accuracy — is asserted.
        let acc = choice_agreement(&mut reference, &mut quant, 48, 4, &ctx).unwrap();
        assert!((0.0..=100.0).contains(&acc));
        assert!(acc >= 30.0, "agreement anti-correlated: {acc}");
        // 4-bit agreement must beat chance on the same tasks (even a random
        // model's top-2 gaps survive 4-bit noise more often than not) and
        // must not be materially worse than 2-bit.
        let mut quant4 = engine(BackendKind::Dequant, 4);
        let acc4 = choice_agreement(&mut reference, &mut quant4, 48, 4, &ctx).unwrap();
        assert!(acc4 >= 55.0, "4-bit agreement suspiciously low: {acc4}");
        assert!(
            acc4 > acc - 10.0,
            "more bits must not hurt agreement: {acc4} vs {acc}"
        );
    }
}
