//! Model-quality evaluation (paper Table 4).
//!
//! Real corpora (WikiText-2, lambada, WinoGrande) are unavailable offline,
//! so quality is measured as *divergence from the unquantized reference
//! model*, which is exactly the quantity the paper's PPL deltas express:
//!
//! * **Teacher-forced perplexity** — the `f32` reference model greedily
//!   generates sequences; each backend's perplexity is evaluated on those
//!   sequences. The reference model scores (near-)minimal PPL on its own
//!   output; kernel-induced error raises it.
//! * **Choice agreement** (WinoGrande-like) — two-way forced choice: for a
//!   random context the reference's top-2 next tokens are the "options";
//!   a backend answers correctly when it ranks the reference's preferred
//!   option first.

use crate::backend::BackendError;
use crate::engine::Engine;
use crate::ops;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tmac_threadpool::ThreadPool;

/// Generates evaluation sequences from the reference engine.
///
/// Each sequence starts with a random 2-token prompt and continues greedily
/// for `len` tokens.
///
/// # Errors
///
/// Propagates generation failures.
pub fn teacher_sequences(
    reference: &mut Engine,
    n_seqs: usize,
    len: usize,
    seed: u64,
    pool: &ThreadPool,
) -> Result<Vec<Vec<u32>>, BackendError> {
    let vocab = reference.model.cfg.vocab as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seqs = Vec::with_capacity(n_seqs);
    for _ in 0..n_seqs {
        let prompt = vec![rng.gen_range(0..vocab), rng.gen_range(0..vocab)];
        let cont = reference.generate(&prompt, len, pool)?;
        let mut seq = prompt;
        seq.extend(cont);
        seqs.push(seq);
    }
    Ok(seqs)
}

/// Teacher-forced perplexity of `engine` on `seqs`.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn perplexity(
    engine: &mut Engine,
    seqs: &[Vec<u32>],
    pool: &ThreadPool,
) -> Result<f64, BackendError> {
    let mut nll = 0f64;
    let mut count = 0usize;
    for seq in seqs {
        engine.reset();
        for (pos, window) in seq.windows(2).enumerate() {
            let logits = engine.step(window[0], pos, pool)?;
            nll -= ops::log_softmax_at(&logits, window[1] as usize);
            count += 1;
        }
    }
    Ok((nll / count.max(1) as f64).exp())
}

/// Two-way choice agreement of `candidate` against `reference`.
///
/// Returns accuracy in percent over `n_tasks` random contexts.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn choice_agreement(
    reference: &mut Engine,
    candidate: &mut Engine,
    n_tasks: usize,
    seed: u64,
    pool: &ThreadPool,
) -> Result<f64, BackendError> {
    let vocab = reference.model.cfg.vocab as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut correct = 0usize;
    for _ in 0..n_tasks {
        let ctx: Vec<u32> = (0..3).map(|_| rng.gen_range(0..vocab)).collect();
        let mut ref_logits = Vec::new();
        reference.reset();
        for (pos, &t) in ctx.iter().enumerate() {
            ref_logits = reference.step(t, pos, pool)?;
        }
        let (a, b) = ops::top2(&ref_logits);
        let mut cand_logits = Vec::new();
        candidate.reset();
        for (pos, &t) in ctx.iter().enumerate() {
            cand_logits = candidate.step(t, pos, pool)?;
        }
        if cand_logits[a] > cand_logits[b] {
            correct += 1;
        }
    }
    Ok(100.0 * correct as f64 / n_tasks.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::config::{ModelConfig, WeightQuant};
    use crate::model::Model;
    use tmac_core::KernelOpts;

    fn engine(kind: BackendKind, bits: u8) -> Engine {
        Engine::new(
            Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(bits), kind, 33).unwrap(),
        )
    }

    #[test]
    fn perplexity_is_finite_and_deterministic() {
        // Note: a quantized model may score *lower* PPL than the reference
        // on the reference's own greedy output (quantization can sharpen
        // logits), so no ordering is asserted here — the observable the
        // paper reports (Table 4) is the *relative* drift between backends,
        // covered by `tmac_and_dequant_quality_match_closely`.
        let pool = ThreadPool::new(1);
        let mut reference = engine(BackendKind::F32, 4);
        let seqs = teacher_sequences(&mut reference, 2, 10, 5, &pool).unwrap();
        let ppl_a = perplexity(&mut reference, &seqs, &pool).unwrap();
        let ppl_b = perplexity(&mut reference, &seqs, &pool).unwrap();
        assert!(ppl_a.is_finite() && ppl_a > 1.0);
        assert_eq!(ppl_a, ppl_b, "perplexity must be deterministic");
    }

    #[test]
    fn tmac_and_dequant_quality_match_closely() {
        // Paper Table 4: T-MAC delivers *the same* quality as llama.cpp.
        let pool = ThreadPool::new(1);
        let mut reference = engine(BackendKind::F32, 4);
        let seqs = teacher_sequences(&mut reference, 2, 8, 6, &pool).unwrap();
        let mut d = engine(BackendKind::Dequant, 4);
        let mut t = engine(BackendKind::Tmac(KernelOpts::tmac()), 4);
        let ppl_d = perplexity(&mut d, &seqs, &pool).unwrap();
        let ppl_t = perplexity(&mut t, &seqs, &pool).unwrap();
        let rel = (ppl_d - ppl_t).abs() / ppl_d;
        assert!(rel < 0.05, "PPL mismatch: dequant {ppl_d} vs tmac {ppl_t}");
    }

    #[test]
    fn self_agreement_is_perfect() {
        let pool = ThreadPool::new(1);
        let mut a = engine(BackendKind::F32, 4);
        let mut b = engine(BackendKind::F32, 4);
        let acc = choice_agreement(&mut a, &mut b, 10, 3, &pool).unwrap();
        assert_eq!(acc, 100.0);
    }

    #[test]
    fn quantized_agreement_high_but_imperfect_possible() {
        let pool = ThreadPool::new(1);
        let mut reference = engine(BackendKind::F32, 2);
        let mut quant = engine(BackendKind::Dequant, 2);
        let acc = choice_agreement(&mut reference, &mut quant, 12, 4, &pool).unwrap();
        assert!((0.0..=100.0).contains(&acc));
        // 2-bit quantization of a tiny random model should still agree on a
        // majority of clear-cut choices.
        assert!(acc >= 50.0, "agreement suspiciously low: {acc}");
    }
}
