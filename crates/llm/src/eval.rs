//! Model-quality evaluation (paper Table 4).
//!
//! Real corpora (WikiText-2, lambada, WinoGrande) are unavailable offline,
//! so quality is measured as *divergence from the unquantized reference
//! model*, which is exactly the quantity the paper's PPL deltas express:
//!
//! * **Teacher-forced perplexity** — the `f32` reference model greedily
//!   generates sequences; each backend's perplexity is evaluated on those
//!   sequences. The reference model scores (near-)minimal PPL on its own
//!   output; kernel-induced error raises it.
//! * **Choice agreement** (WinoGrande-like) — two-way forced choice: for a
//!   random context the reference's top-2 next tokens are the "options";
//!   a backend answers correctly when it ranks the reference's preferred
//!   option first.

use crate::backend::BackendError;
use crate::engine::Engine;
use crate::model::{BatchScratch, KvCache, Model};
use crate::ops;
use crate::sampling::GenRequest;
use tmac_core::ExecCtx;
use tmac_rng::Rng;

/// Generates evaluation sequences from the reference engine.
///
/// Each sequence starts with a random 2-token prompt and continues greedily
/// for `len` tokens.
///
/// # Errors
///
/// Propagates generation failures.
pub fn teacher_sequences(
    reference: &mut Engine,
    n_seqs: usize,
    len: usize,
    seed: u64,
    ctx: &ExecCtx,
) -> Result<Vec<Vec<u32>>, BackendError> {
    let vocab = reference.model.cfg.vocab as u32;
    let mut rng = Rng::seed_from_u64(seed);
    let mut seqs = Vec::with_capacity(n_seqs);
    for _ in 0..n_seqs {
        let prompt = vec![rng.u32_below(vocab), rng.u32_below(vocab)];
        let cont = reference.generate(&GenRequest::greedy(&prompt, len), ctx)?;
        let mut seq = prompt;
        seq.extend(cont.tokens);
        seqs.push(seq);
    }
    Ok(seqs)
}

/// Teacher-forced perplexity of `engine` on `seqs`.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn perplexity(
    engine: &mut Engine,
    seqs: &[Vec<u32>],
    ctx: &ExecCtx,
) -> Result<f64, BackendError> {
    let mut nll = 0f64;
    let mut count = 0usize;
    for seq in seqs {
        engine.reset();
        for (pos, window) in seq.windows(2).enumerate() {
            let logits = engine.step(window[0], pos, ctx)?;
            nll -= ops::log_softmax_at(&logits, window[1] as usize);
            count += 1;
        }
    }
    Ok((nll / count.max(1) as f64).exp())
}

/// Quality metrics from one [`batched_quality`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Teacher-forced perplexity over every scored position.
    pub perplexity: f64,
    /// Percentage of *generated* positions (at or past the prompt length)
    /// where the model's argmax reproduces the teacher token.
    pub agreement_pct: f64,
    /// Number of scored (next-token) positions.
    pub positions: usize,
}

/// Teacher-forced perplexity and agreement of `model` on `seqs`, evaluated
/// through [`Model::forward_batch`] in batches of up to `max_batch` rows —
/// the same code path the serving scheduler uses, so this measures the
/// quality of what actually gets served.
///
/// `forward_batch` is bit-exact across batch sizes and thread counts, so
/// the report is independent of `max_batch` (asserted in tests). Agreement
/// is only counted from `prompt_len` onward; perplexity scores every
/// next-token position.
///
/// # Errors
///
/// [`BackendError::Shape`] for empty `seqs`, a sequence shorter than 2
/// tokens, or `max_batch == 0`; otherwise propagates forward failures.
pub fn batched_quality(
    model: &Model,
    seqs: &[Vec<u32>],
    prompt_len: usize,
    max_batch: usize,
    ctx: &ExecCtx,
) -> Result<QualityReport, BackendError> {
    if seqs.is_empty() {
        return Err(BackendError::Shape("no evaluation sequences".into()));
    }
    if max_batch == 0 {
        return Err(BackendError::Shape("max_batch must be >= 1".into()));
    }
    if let Some(seq) = seqs.iter().find(|s| s.len() < 2) {
        return Err(BackendError::Shape(format!(
            "sequence of length {} cannot be scored",
            seq.len()
        )));
    }
    // Per-sequence NLL accumulators: each is summed in position order no
    // matter how sequences are grouped into batches, and the final
    // reduction runs in sequence order — so the report is *bit-identical*
    // at every `max_batch` (f64 addition is not associative; a single
    // running sum would pick up batch-shape-dependent rounding).
    let mut seq_nll = vec![0f64; seqs.len()];
    let mut positions = 0usize;
    let mut gen_positions = 0usize;
    let mut agree = 0usize;
    for (chunk_idx, chunk) in seqs.chunks(max_batch).enumerate() {
        let base = chunk_idx * max_batch;
        let rows = chunk.len();
        let mut caches = KvCache::multi(&model.cfg, rows);
        let mut scratch = BatchScratch::new(&model.cfg, rows);
        let steps = chunk.iter().map(|s| s.len() - 1).max().unwrap_or(0);
        // Teacher forcing: feed token t of every still-live row in one
        // batched forward, score the model's prediction of token t + 1.
        let mut tokens = Vec::with_capacity(rows);
        let mut pos_buf = Vec::with_capacity(rows);
        let mut slots = Vec::with_capacity(rows);
        for t in 0..steps {
            tokens.clear();
            pos_buf.clear();
            slots.clear();
            for (r, seq) in chunk.iter().enumerate() {
                if t + 1 < seq.len() {
                    tokens.push(seq[t]);
                    pos_buf.push(t);
                    slots.push(r);
                }
            }
            model.forward_batch(&tokens, &pos_buf, &slots, &mut caches, &mut scratch, ctx)?;
            for (row, &slot) in slots.iter().enumerate() {
                let target = chunk[slot][t + 1] as usize;
                let logits = scratch.logits_row(row);
                seq_nll[base + slot] -= ops::log_softmax_at(logits, target);
                positions += 1;
                if t + 1 >= prompt_len {
                    gen_positions += 1;
                    if ops::argmax(logits) == target {
                        agree += 1;
                    }
                }
            }
        }
    }
    let nll: f64 = seq_nll.iter().sum();
    Ok(QualityReport {
        perplexity: (nll / positions.max(1) as f64).exp(),
        agreement_pct: 100.0 * agree as f64 / gen_positions.max(1) as f64,
        positions,
    })
}

/// Two-way choice agreement of `candidate` against `reference`.
///
/// Returns accuracy in percent over `n_tasks` random contexts.
///
/// # Errors
///
/// Propagates forward-pass failures.
pub fn choice_agreement(
    reference: &mut Engine,
    candidate: &mut Engine,
    n_tasks: usize,
    seed: u64,
    ctx: &ExecCtx,
) -> Result<f64, BackendError> {
    let vocab = reference.model.cfg.vocab as u32;
    let mut rng = Rng::seed_from_u64(seed);
    let mut correct = 0usize;
    for _ in 0..n_tasks {
        let prompt: Vec<u32> = (0..3).map(|_| rng.u32_below(vocab)).collect();
        let mut ref_logits = Vec::new();
        reference.reset();
        for (pos, &t) in prompt.iter().enumerate() {
            ref_logits = reference.step(t, pos, ctx)?;
        }
        let (a, b) = ops::top2(&ref_logits);
        let mut cand_logits = Vec::new();
        candidate.reset();
        for (pos, &t) in prompt.iter().enumerate() {
            cand_logits = candidate.step(t, pos, ctx)?;
        }
        if cand_logits[a] > cand_logits[b] {
            correct += 1;
        }
    }
    Ok(100.0 * correct as f64 / n_tasks.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::config::{ModelConfig, WeightQuant};
    use crate::model::Model;
    use tmac_core::KernelOpts;

    fn engine(kind: BackendKind, bits: u8) -> Engine {
        Engine::new(
            Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(bits), kind, 33).unwrap(),
        )
    }

    #[test]
    fn perplexity_is_finite_and_deterministic() {
        // Note: a quantized model may score *lower* PPL than the reference
        // on the reference's own greedy output (quantization can sharpen
        // logits), so no ordering is asserted here — the observable the
        // paper reports (Table 4) is the *relative* drift between backends,
        // covered by `tmac_and_dequant_quality_match_closely`.
        let ctx = ExecCtx::new(1);
        let mut reference = engine(BackendKind::F32, 4);
        let seqs = teacher_sequences(&mut reference, 2, 10, 5, &ctx).unwrap();
        let ppl_a = perplexity(&mut reference, &seqs, &ctx).unwrap();
        let ppl_b = perplexity(&mut reference, &seqs, &ctx).unwrap();
        assert!(ppl_a.is_finite() && ppl_a > 1.0);
        assert_eq!(ppl_a, ppl_b, "perplexity must be deterministic");
    }

    #[test]
    fn tmac_and_dequant_quality_match_closely() {
        // Paper Table 4: T-MAC delivers *the same* quality as llama.cpp.
        let ctx = ExecCtx::new(1);
        let mut reference = engine(BackendKind::F32, 4);
        let seqs = teacher_sequences(&mut reference, 2, 8, 6, &ctx).unwrap();
        let mut d = engine(BackendKind::Dequant, 4);
        let mut t = engine(BackendKind::Tmac(KernelOpts::tmac()), 4);
        let ppl_d = perplexity(&mut d, &seqs, &ctx).unwrap();
        let ppl_t = perplexity(&mut t, &seqs, &ctx).unwrap();
        let rel = (ppl_d - ppl_t).abs() / ppl_d;
        assert!(rel < 0.05, "PPL mismatch: dequant {ppl_d} vs tmac {ppl_t}");
    }

    #[test]
    fn batched_quality_is_batch_size_invariant_and_matches_sequential() {
        // The forward_batch bit-exactness invariant makes the report
        // independent of how sequences are grouped into batches…
        let ctx = ExecCtx::new(1);
        let mut reference = engine(BackendKind::F32, 4);
        let seqs = teacher_sequences(&mut reference, 5, 9, 7, &ctx).unwrap();
        let mut t = engine(BackendKind::Tmac(KernelOpts::tmac()), 4);
        let r1 = batched_quality(&t.model, &seqs, 2, 1, &ctx).unwrap();
        let r3 = batched_quality(&t.model, &seqs, 2, 3, &ctx).unwrap();
        let r16 = batched_quality(&t.model, &seqs, 2, 16, &ctx).unwrap();
        assert_eq!(r1, r3, "max_batch 1 vs 3 diverged");
        assert_eq!(r1, r16, "max_batch 1 vs 16 diverged");
        assert_eq!(r1.positions, seqs.iter().map(|s| s.len() - 1).sum());
        // …and the single-stream perplexity path agrees on the number.
        let ppl_seq = perplexity(&mut t, &seqs, &ctx).unwrap();
        let rel = (r1.perplexity - ppl_seq).abs() / ppl_seq;
        assert!(
            rel < 1e-5,
            "batched {} vs sequential {ppl_seq}",
            r1.perplexity
        );
    }

    #[test]
    fn reference_agrees_perfectly_with_its_own_teacher_output() {
        // The f32 model replays its own greedy generations: every generated
        // position must be reproduced exactly (agreement 100%).
        let ctx = ExecCtx::new(1);
        let mut reference = engine(BackendKind::F32, 4);
        let seqs = teacher_sequences(&mut reference, 3, 8, 11, &ctx).unwrap();
        let r = batched_quality(&reference.model, &seqs, 2, 4, &ctx).unwrap();
        assert_eq!(r.agreement_pct, 100.0);
        assert!(r.perplexity.is_finite() && r.perplexity >= 1.0);
        // Validation errors.
        assert!(batched_quality(&reference.model, &[], 2, 4, &ctx).is_err());
        assert!(batched_quality(&reference.model, &seqs, 2, 0, &ctx).is_err());
        assert!(batched_quality(&reference.model, &[vec![1]], 2, 4, &ctx).is_err());
    }

    #[test]
    fn self_agreement_is_perfect() {
        let ctx = ExecCtx::new(1);
        let mut a = engine(BackendKind::F32, 4);
        let mut b = engine(BackendKind::F32, 4);
        let acc = choice_agreement(&mut a, &mut b, 10, 3, &ctx).unwrap();
        assert_eq!(acc, 100.0);
    }

    #[test]
    fn quantized_agreement_high_but_imperfect_possible() {
        let ctx = ExecCtx::new(1);
        let mut reference = engine(BackendKind::F32, 2);
        let mut quant = engine(BackendKind::Dequant, 2);
        // 2-bit quantization of a tiny *random* model is near-chance on
        // two-way choices (the reference's top-2 logit gap is smaller than
        // the quant noise), so only sanity — not accuracy — is asserted.
        let acc = choice_agreement(&mut reference, &mut quant, 48, 4, &ctx).unwrap();
        assert!((0.0..=100.0).contains(&acc));
        assert!(acc >= 30.0, "agreement anti-correlated: {acc}");
        // 4-bit agreement must beat chance on the same tasks (even a random
        // model's top-2 gaps survive 4-bit noise more often than not) and
        // must not be materially worse than 2-bit.
        let mut quant4 = engine(BackendKind::Dequant, 4);
        let acc4 = choice_agreement(&mut reference, &mut quant4, 48, 4, &ctx).unwrap();
        assert!(acc4 >= 55.0, "4-bit agreement suspiciously low: {acc4}");
        assert!(
            acc4 > acc - 10.0,
            "more bits must not hurt agreement: {acc4} vs {acc}"
        );
    }
}
