//! The llama-architecture transformer (decode path).
//!
//! Standard pre-norm decoder: RMSNorm → QKV projections → RoPE → causal
//! attention over a KV cache → output projection → residual, then RMSNorm →
//! SwiGLU FFN → residual. Every projection is a [`Linear`] bound to one of
//! the compared backends, so the same model definition measures T-MAC, the
//! dequant baseline and the `f32` reference.

use crate::attention::{self, AttnScratch};
use crate::backend::{BackendBuilder, BackendError, BackendKind, Linear};
use crate::config::{ModelConfig, WeightQuant};
use crate::ops;
use crate::weights::{gen_gain, gen_matrix, tensor_seed};
use tmac_core::ExecCtx;

pub use crate::kv::KvCache; // the cache moved to `kv`; old import paths keep working

/// Per-layer weights.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection (`dim × dim`).
    pub wq: Linear,
    /// Key projection (`kv_dim × dim`).
    pub wk: Linear,
    /// Value projection (`kv_dim × dim`).
    pub wv: Linear,
    /// Output projection (`dim × dim`).
    pub wo: Linear,
    /// FFN gate (`ffn × dim`).
    pub w1: Linear,
    /// FFN down (`dim × ffn`).
    pub w2: Linear,
    /// FFN up (`ffn × dim`).
    pub w3: Linear,
    /// Attention-input RMSNorm gain.
    pub rms_attn: Vec<f32>,
    /// FFN-input RMSNorm gain.
    pub rms_ffn: Vec<f32>,
}

/// A complete model instance.
#[derive(Debug, Clone)]
pub struct Model {
    /// Architecture.
    pub cfg: ModelConfig,
    /// Weight quantizer the linear layers were built with.
    pub quant: WeightQuant,
    /// Token embeddings (`vocab × dim`, kept in `f32`: it is a lookup, not
    /// a GEMV).
    pub embed: Vec<f32>,
    /// Final RMSNorm gain.
    pub rms_final: Vec<f32>,
    /// LM head (`vocab × dim`).
    pub head: Linear,
    /// Precomputed RoPE inverse-frequency table (built once per model; the
    /// per-token `sin`/`cos` land in the scratch buffers).
    pub rope: ops::RopeTable,
    /// Transformer layers.
    pub layers: Vec<LayerWeights>,
}

/// Reusable forward-pass buffers (no allocation per token).
#[derive(Debug, Clone)]
pub struct Scratch {
    x: Vec<f32>,
    xn: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    att: Vec<f32>,
    proj: Vec<f32>,
    gate: Vec<f32>,
    up: Vec<f32>,
    hidden: Vec<f32>,
    ffn: Vec<f32>,
    attn: AttnScratch,
    rope_cos: Vec<f32>,
    rope_sin: Vec<f32>,
    /// Output logits (`vocab`).
    pub logits: Vec<f32>,
}

impl Scratch {
    /// Allocates scratch for `cfg`.
    pub fn new(cfg: &ModelConfig) -> Self {
        Scratch {
            x: vec![0f32; cfg.dim],
            xn: vec![0f32; cfg.dim],
            q: vec![0f32; cfg.dim],
            k: vec![0f32; cfg.kv_dim()],
            v: vec![0f32; cfg.kv_dim()],
            att: vec![0f32; cfg.dim],
            proj: vec![0f32; cfg.dim],
            gate: vec![0f32; cfg.ffn_dim],
            up: vec![0f32; cfg.ffn_dim],
            hidden: vec![0f32; cfg.ffn_dim],
            ffn: vec![0f32; cfg.dim],
            attn: AttnScratch::new(cfg),
            rope_cos: vec![0f32; cfg.head_dim()],
            rope_sin: vec![0f32; cfg.head_dim()],
            logits: vec![0f32; cfg.vocab],
        }
    }
}

/// Reusable buffers for batched forward passes: the row-major `B × feature`
/// twins of [`Scratch`], sized for a fixed row capacity.
#[derive(Debug, Clone)]
pub struct BatchScratch {
    capacity: usize,
    x: Vec<f32>,
    xn: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    att: Vec<f32>,
    proj: Vec<f32>,
    gate: Vec<f32>,
    up: Vec<f32>,
    hidden: Vec<f32>,
    ffn: Vec<f32>,
    attn: AttnScratch,
    /// Per-row RoPE tables (`B × head_dim`; positions are fixed per batch,
    /// so they are filled once per `forward_batch` and reused every layer).
    rope_cos: Vec<f32>,
    rope_sin: Vec<f32>,
    /// Output logits, row-major `B × vocab`. Row `r` of the last
    /// `forward_batch` call is [`BatchScratch::logits_row`]`(r)`.
    pub logits: Vec<f32>,
}

impl BatchScratch {
    /// Allocates batch scratch for up to `capacity` rows of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(cfg: &ModelConfig, capacity: usize) -> Self {
        assert!(capacity > 0, "batch scratch needs capacity >= 1");
        let b = capacity;
        BatchScratch {
            capacity: b,
            x: vec![0f32; b * cfg.dim],
            xn: vec![0f32; b * cfg.dim],
            q: vec![0f32; b * cfg.dim],
            k: vec![0f32; b * cfg.kv_dim()],
            v: vec![0f32; b * cfg.kv_dim()],
            att: vec![0f32; b * cfg.dim],
            proj: vec![0f32; b * cfg.dim],
            gate: vec![0f32; b * cfg.ffn_dim],
            up: vec![0f32; b * cfg.ffn_dim],
            hidden: vec![0f32; b * cfg.ffn_dim],
            ffn: vec![0f32; b * cfg.dim],
            attn: AttnScratch::new(cfg),
            rope_cos: vec![0f32; b * cfg.head_dim()],
            rope_sin: vec![0f32; b * cfg.head_dim()],
            logits: vec![0f32; b * cfg.vocab],
        }
    }

    /// Maximum rows per [`Model::forward_batch`] call.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The logits of batch row `r` from the last forward.
    ///
    /// # Panics
    ///
    /// Panics if `r >= capacity`.
    pub fn logits_row(&self, r: usize) -> &[f32] {
        let vocab = self.logits.len() / self.capacity;
        &self.logits[r * vocab..(r + 1) * vocab]
    }
}

impl Model {
    /// Builds a model with synthetic structured weights, quantized per
    /// `quant` and executed on `kind`.
    ///
    /// The same `(cfg, quant, seed)` produces bit-identical quantized
    /// weights for every backend, so cross-backend quality comparisons
    /// isolate kernel effects.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and backend build failures.
    pub fn synthetic(
        cfg: &ModelConfig,
        quant: WeightQuant,
        kind: BackendKind,
        seed: u64,
    ) -> Result<Model, BackendError> {
        Self::synthetic_with(cfg, quant, &kind, seed)
    }

    /// [`Model::synthetic`] over an arbitrary [`BackendBuilder`] — the
    /// extension point that lets registry-provided backends drive the model
    /// without the model knowing them.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and backend build failures.
    pub fn synthetic_with(
        cfg: &ModelConfig,
        quant: WeightQuant,
        builder: &dyn BackendBuilder,
        seed: u64,
    ) -> Result<Model, BackendError> {
        cfg.validate().map_err(BackendError::Shape)?;
        let quantize = |w: &[f32], rows: usize, cols: usize| match quant {
            WeightQuant::Rtn(bits) => tmac_quant::rtn::quantize(w, rows, cols, bits, 32),
            WeightQuant::BitnetTernary => tmac_quant::bitnet::quantize(w, rows, cols, 32),
        };
        let build =
            |rows: usize, cols: usize, seed: u64, scale: f32| -> Result<Linear, BackendError> {
                let w = gen_matrix(rows, cols, seed, scale);
                let qm = quantize(&w, rows, cols)?;
                builder.build(&qm, &w)
            };

        let (dim, kv_dim, ffn) = (cfg.dim, cfg.kv_dim(), cfg.ffn_dim);
        // Scales roughly follow 1/sqrt(dim) initialization.
        let ws = 1.0 / (dim as f32).sqrt();
        let mut layers = Vec::with_capacity(cfg.n_layers);
        for l in 0..cfg.n_layers {
            layers.push(LayerWeights {
                wq: build(dim, dim, tensor_seed(seed, l, "wq"), ws)?,
                wk: build(kv_dim, dim, tensor_seed(seed, l, "wk"), ws)?,
                wv: build(kv_dim, dim, tensor_seed(seed, l, "wv"), ws)?,
                wo: build(dim, dim, tensor_seed(seed, l, "wo"), ws)?,
                w1: build(ffn, dim, tensor_seed(seed, l, "w1"), ws)?,
                w2: build(
                    dim,
                    ffn,
                    tensor_seed(seed, l, "w2"),
                    1.0 / (ffn as f32).sqrt(),
                )?,
                w3: build(ffn, dim, tensor_seed(seed, l, "w3"), ws)?,
                rms_attn: gen_gain(dim, tensor_seed(seed, l, "rms_attn")),
                rms_ffn: gen_gain(dim, tensor_seed(seed, l, "rms_ffn")),
            });
        }
        let embed = gen_matrix(cfg.vocab, dim, tensor_seed(seed, usize::MAX, "embed"), 0.1);
        let head = build(cfg.vocab, dim, tensor_seed(seed, usize::MAX, "head"), ws)?;
        Ok(Model {
            cfg: cfg.clone(),
            quant,
            embed,
            rms_final: gen_gain(dim, tensor_seed(seed, usize::MAX, "rms_final")),
            head,
            rope: ops::RopeTable::new(cfg.head_dim(), cfg.rope_theta),
            layers,
        })
    }

    /// Decodes one token at position `pos`, leaving logits in
    /// `scratch.logits`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Shape`] on invalid `token`/`pos` or kernel
    /// failures.
    pub fn forward(
        &self,
        token: u32,
        pos: usize,
        cache: &mut KvCache,
        scratch: &mut Scratch,
        ctx: &ExecCtx,
    ) -> Result<(), BackendError> {
        let (layer_secs, _) = self.forward_timed(token, pos, cache, scratch, ctx)?;
        let _ = layer_secs;
        Ok(())
    }

    /// [`Model::forward`] that also reports `(layer_seconds,
    /// other_seconds)` — used to extrapolate full-depth throughput from
    /// scaled models (see `engine`).
    ///
    /// # Errors
    ///
    /// Same contract as [`Model::forward`].
    pub fn forward_timed(
        &self,
        token: u32,
        pos: usize,
        cache: &mut KvCache,
        scratch: &mut Scratch,
        ctx: &ExecCtx,
    ) -> Result<(f64, f64), BackendError> {
        let cfg = &self.cfg;
        if token as usize >= cfg.vocab {
            return Err(BackendError::Shape(format!(
                "token {token} out of vocab {}",
                cfg.vocab
            )));
        }
        if pos >= cfg.seq_max {
            return Err(BackendError::Shape(format!(
                "position {pos} beyond seq_max {}",
                cfg.seq_max
            )));
        }
        let t_start = std::time::Instant::now();
        let dim = cfg.dim;
        let s = scratch;
        s.x.copy_from_slice(&self.embed[token as usize * dim..(token as usize + 1) * dim]);
        // One sin/cos evaluation per rotation pair per token: the position
        // is fixed for the whole pass, so every layer (and both q and k)
        // reuses these tables.
        self.rope.fill_sincos(pos, &mut s.rope_cos, &mut s.rope_sin);

        let t_layers = std::time::Instant::now();
        for (l, lw) in self.layers.iter().enumerate() {
            // Attention block. The three QKV projections consume the same
            // normed activation, so one generation scope shares one table
            // build across them (T-MAC's precompute amortization, §3.2).
            ops::rmsnorm(&mut s.xn, &s.x, &lw.rms_attn, 1e-5);
            ctx.next_activation();
            lw.wq.forward(&s.xn, &mut s.q, ctx)?;
            lw.wk.forward(&s.xn, &mut s.k, ctx)?;
            lw.wv.forward(&s.xn, &mut s.v, ctx)?;
            self.rope.apply(&mut s.q, &s.rope_cos, &s.rope_sin);
            self.rope.apply(&mut s.k, &s.rope_cos, &s.rope_sin);
            cache.store(l, pos, &s.k, &s.v);
            attention::attend(&s.q, &mut s.att, cache, l, pos, &mut s.attn, ctx);
            ctx.next_activation();
            lw.wo.forward(&s.att, &mut s.proj, ctx)?;
            ops::add_assign(&mut s.x, &s.proj);

            // FFN block: gate and up share the FFN-normed activation.
            ops::rmsnorm(&mut s.xn, &s.x, &lw.rms_ffn, 1e-5);
            ctx.next_activation();
            lw.w1.forward(&s.xn, &mut s.gate, ctx)?;
            lw.w3.forward(&s.xn, &mut s.up, ctx)?;
            ops::swiglu(&mut s.hidden, &s.gate, &s.up);
            ctx.next_activation();
            lw.w2.forward(&s.hidden, &mut s.ffn, ctx)?;
            ops::add_assign(&mut s.x, &s.ffn);
        }
        let layer_secs = t_layers.elapsed().as_secs_f64();

        ops::rmsnorm(&mut s.xn, &s.x, &self.rms_final, 1e-5);
        ctx.next_activation();
        self.head.forward(&s.xn, &mut s.logits, ctx)?;
        cache.set_len(cache.len().max(pos + 1));
        let total = t_start.elapsed().as_secs_f64();
        Ok((layer_secs, total - layer_secs))
    }

    /// Batched forward: decodes `B = tokens.len()` rows in one pass, every
    /// linear running with `n = B` so the T-MAC backend takes the mpGEMM
    /// path (one weight-tile stream per row block instead of one per row,
    /// §3.2) and the batched table cache shares per-row builds across QKV
    /// and gate/up.
    ///
    /// Row `r` decodes `tokens[r]` at `positions[r]` against sequence
    /// `cache_slots[r]` of the pooled `cache`: batched *decode* uses one
    /// sequence per row, while *prefill* points every row at the same
    /// sequence with successive positions. All rows' K/V are stored before
    /// any row attends, so same-sequence rows at increasing positions see
    /// each other causally. Logits land row-major in `scratch.logits`.
    ///
    /// Results are bit-identical to `B` independent [`Model::forward`]
    /// calls with the same `(token, pos, sequence)` rows (the
    /// batched-serving equivalence; asserted by `tests/batch.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Shape`] on length mismatches, out-of-range
    /// tokens/positions/slots, batch size beyond `scratch.capacity()`, or a
    /// same-sequence row group whose positions would attend over gaps (a
    /// position neither already in the cache nor filled by this batch);
    /// [`BackendError::OutOfPages`] when the pool's page budget is
    /// exhausted.
    pub fn forward_batch(
        &self,
        tokens: &[u32],
        positions: &[usize],
        cache_slots: &[usize],
        cache: &mut KvCache,
        scratch: &mut BatchScratch,
        ctx: &ExecCtx,
    ) -> Result<(), BackendError> {
        let cfg = &self.cfg;
        let b = tokens.len();
        if b == 0 {
            return Err(BackendError::Shape("forward_batch needs rows".into()));
        }
        if positions.len() != b || cache_slots.len() != b {
            return Err(BackendError::Shape(format!(
                "forward_batch: {} tokens vs {} positions vs {} slots",
                b,
                positions.len(),
                cache_slots.len()
            )));
        }
        if b > scratch.capacity() {
            return Err(BackendError::Shape(format!(
                "batch {} exceeds scratch capacity {}",
                b,
                scratch.capacity()
            )));
        }
        for (r, (&t, &p)) in tokens.iter().zip(positions).enumerate() {
            if t as usize >= cfg.vocab {
                return Err(BackendError::Shape(format!(
                    "row {r}: token {t} out of vocab {}",
                    cfg.vocab
                )));
            }
            if p >= cfg.seq_max {
                return Err(BackendError::Shape(format!(
                    "row {r}: position {p} beyond seq_max {}",
                    cfg.seq_max
                )));
            }
            if cache_slots[r] >= cache.n_seqs() {
                return Err(BackendError::Shape(format!(
                    "row {r}: cache slot {} out of {}",
                    cache_slots[r],
                    cache.n_seqs()
                )));
            }
        }
        // Same-sequence rows must leave no attention gaps: every position
        // up to a row's `pos` is either already in its sequence or written
        // by this batch (prefill chunks satisfy this with contiguous runs).
        for (r, (&slot, &pos)) in cache_slots.iter().zip(positions).enumerate() {
            let filled = cache.seq_len(slot);
            for t in filled..pos {
                let covered = cache_slots
                    .iter()
                    .zip(positions)
                    .any(|(&s, &p)| s == slot && p == t);
                if !covered {
                    return Err(BackendError::Shape(format!(
                        "row {r}: attention over unfilled position {t} of slot {slot}"
                    )));
                }
            }
            let duplicate = cache_slots
                .iter()
                .zip(positions)
                .enumerate()
                .any(|(r2, (&s, &p))| r2 != r && s == slot && p == pos);
            if duplicate {
                return Err(BackendError::Shape(format!(
                    "row {r}: duplicate position {pos} for slot {slot}"
                )));
            }
        }

        let _fwd = tmac_trace::span("llm", "forward_batch", positions[0] as u64, b as u64);
        let (dim, kv_dim, ffn_dim) = (cfg.dim, cfg.kv_dim(), cfg.ffn_dim);
        let head_dim = cfg.head_dim();
        let s = scratch;
        for (r, &t) in tokens.iter().enumerate() {
            s.x[r * dim..(r + 1) * dim]
                .copy_from_slice(&self.embed[t as usize * dim..(t as usize + 1) * dim]);
        }
        // Positions are fixed for the whole batch: one sin/cos fill per row,
        // shared by every layer's q and k rotations.
        for (r, &pos) in positions.iter().enumerate() {
            self.rope.fill_sincos(
                pos,
                &mut s.rope_cos[r * head_dim..(r + 1) * head_dim],
                &mut s.rope_sin[r * head_dim..(r + 1) * head_dim],
            );
        }

        for (l, lw) in self.layers.iter().enumerate() {
            // Attention block: one batched QKV round sharing one set of
            // per-row table builds (the batched §3.2 amortization).
            for r in 0..b {
                ops::rmsnorm(
                    &mut s.xn[r * dim..(r + 1) * dim],
                    &s.x[r * dim..(r + 1) * dim],
                    &lw.rms_attn,
                    1e-5,
                );
            }
            ctx.next_activation();
            lw.wq
                .forward_batch(&s.xn[..b * dim], b, &mut s.q[..b * dim], ctx)?;
            lw.wk
                .forward_batch(&s.xn[..b * dim], b, &mut s.k[..b * kv_dim], ctx)?;
            lw.wv
                .forward_batch(&s.xn[..b * dim], b, &mut s.v[..b * kv_dim], ctx)?;
            // Store every row's K/V before any row attends, so same-cache
            // rows observe each other at lower positions (prefill causality).
            for r in 0..b {
                let pos = positions[r];
                let (rc, rs) = (
                    &s.rope_cos[r * head_dim..(r + 1) * head_dim],
                    &s.rope_sin[r * head_dim..(r + 1) * head_dim],
                );
                self.rope.apply(&mut s.q[r * dim..(r + 1) * dim], rc, rs);
                self.rope
                    .apply(&mut s.k[r * kv_dim..(r + 1) * kv_dim], rc, rs);
                cache.store_seq(
                    cache_slots[r],
                    l,
                    pos,
                    &s.k[r * kv_dim..(r + 1) * kv_dim],
                    &s.v[r * kv_dim..(r + 1) * kv_dim],
                )?;
            }
            {
                let _att = tmac_trace::span("llm", "attention", l as u64, b as u64);
                for r in 0..b {
                    attention::attend_seq(
                        &s.q[r * dim..(r + 1) * dim],
                        &mut s.att[r * dim..(r + 1) * dim],
                        cache,
                        cache_slots[r],
                        l,
                        positions[r],
                        &mut s.attn,
                        ctx,
                    );
                }
            }
            ctx.next_activation();
            lw.wo
                .forward_batch(&s.att[..b * dim], b, &mut s.proj[..b * dim], ctx)?;
            ops::add_assign(&mut s.x[..b * dim], &s.proj[..b * dim]);

            // FFN block: gate and up share the batch's FFN-normed rows.
            for r in 0..b {
                ops::rmsnorm(
                    &mut s.xn[r * dim..(r + 1) * dim],
                    &s.x[r * dim..(r + 1) * dim],
                    &lw.rms_ffn,
                    1e-5,
                );
            }
            ctx.next_activation();
            lw.w1
                .forward_batch(&s.xn[..b * dim], b, &mut s.gate[..b * ffn_dim], ctx)?;
            lw.w3
                .forward_batch(&s.xn[..b * dim], b, &mut s.up[..b * ffn_dim], ctx)?;
            ops::swiglu(
                &mut s.hidden[..b * ffn_dim],
                &s.gate[..b * ffn_dim],
                &s.up[..b * ffn_dim],
            );
            ctx.next_activation();
            lw.w2
                .forward_batch(&s.hidden[..b * ffn_dim], b, &mut s.ffn[..b * dim], ctx)?;
            ops::add_assign(&mut s.x[..b * dim], &s.ffn[..b * dim]);
        }

        for r in 0..b {
            ops::rmsnorm(
                &mut s.xn[r * dim..(r + 1) * dim],
                &s.x[r * dim..(r + 1) * dim],
                &self.rms_final,
                1e-5,
            );
        }
        ctx.next_activation();
        self.head
            .forward_batch(&s.xn[..b * dim], b, &mut s.logits[..b * cfg.vocab], ctx)?;
        for (&slot, &pos) in cache_slots.iter().zip(positions) {
            cache.set_seq_len(slot, cache.seq_len(slot).max(pos + 1));
        }
        Ok(())
    }

    /// Prefills `prompt` into sequence `seq` at positions `0..len` as
    /// chunked [`Model::forward_batch`] calls of up to `chunk` rows (capped
    /// by the scratch capacity), and returns the scratch row index holding
    /// the *last* prompt token's logits — the row greedy decoding samples
    /// the first new token from. Shared by [`crate::engine::Engine::prefill`]
    /// and the scheduler's admission path so the chunking and last-row
    /// arithmetic exist once.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Shape`] for an empty prompt or invalid
    /// rows/slot; propagates forward failures.
    pub fn prefill_chunked(
        &self,
        prompt: &[u32],
        seq: usize,
        cache: &mut KvCache,
        scratch: &mut BatchScratch,
        chunk: usize,
        ctx: &ExecCtx,
    ) -> Result<usize, BackendError> {
        self.prefill_chunked_from(prompt, 0, seq, cache, scratch, chunk, ctx)
    }

    /// [`Model::prefill_chunked`] resuming at position `from`: positions
    /// `0..from` must already be resident in sequence `seq` (typically via
    /// [`KvCache::prefix_match`] sharing), and only `prompt[from..]` is
    /// forwarded. The returned logits-row index refers to the rows of the
    /// suffix's final chunk.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Shape`] for an empty prompt, `from` not
    /// strictly inside the prompt, or invalid rows; propagates forward
    /// failures.
    #[allow(clippy::too_many_arguments)] // prefill wiring: prompt window + sequence + buffers
    pub fn prefill_chunked_from(
        &self,
        prompt: &[u32],
        from: usize,
        seq: usize,
        cache: &mut KvCache,
        scratch: &mut BatchScratch,
        chunk: usize,
        ctx: &ExecCtx,
    ) -> Result<usize, BackendError> {
        if prompt.is_empty() {
            return Err(BackendError::Shape("empty prompt".into()));
        }
        if from >= prompt.len() {
            return Err(BackendError::Shape(format!(
                "prefill from {from} leaves no suffix of a {}-token prompt",
                prompt.len()
            )));
        }
        let chunk = chunk.clamp(1, scratch.capacity());
        let len = prompt.len();
        let mut p0 = from;
        while p0 < len {
            let take = chunk.min(len - p0);
            let _chunk = tmac_trace::span("llm", "prefill_chunk", seq as u64, take as u64);
            let positions: Vec<usize> = (p0..p0 + take).collect();
            let slots = vec![seq; take];
            self.forward_batch(
                &prompt[p0..p0 + take],
                &positions,
                &slots,
                cache,
                scratch,
                ctx,
            )?;
            p0 += take;
        }
        Ok((len - 1 - from) % chunk)
    }

    /// Display label of the backend the linear layers run on (derived from
    /// the layers themselves; every layer is built by one builder).
    pub fn backend_label(&self) -> String {
        self.head.label()
    }

    /// Rows per prefill chunk for this model: the target chunk size
    /// ([`crate::engine::PREFILL_CHUNK`]) rounded **down** to a whole
    /// multiple of the backend's batch blocking (`n_block` for T-MAC, via
    /// [`crate::backend::LinearBackend::preferred_rows`]), never below one
    /// block. Chunking on a multiple means no mpGEMM sweep is left with a
    /// ragged row block at a chunk boundary; backends with no preference
    /// keep the plain target.
    pub fn prefill_chunk(&self) -> usize {
        let target = crate::engine::PREFILL_CHUNK;
        match self.head.preferred_rows() {
            Some(nb) if nb > 0 => nb * (target / nb).max(1),
            _ => target,
        }
    }

    /// Packed weight bytes streamed per decoded token (layers + head).
    pub fn bytes_per_token(&self) -> usize {
        let per_layer: usize = self
            .layers
            .first()
            .map(|l| {
                l.wq.packed_bytes()
                    + l.wk.packed_bytes()
                    + l.wv.packed_bytes()
                    + l.wo.packed_bytes()
                    + l.w1.packed_bytes()
                    + l.w2.packed_bytes()
                    + l.w3.packed_bytes()
            })
            .unwrap_or(0);
        per_layer * self.layers.len() + self.head.packed_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model(kind: BackendKind) -> Model {
        Model::synthetic(&ModelConfig::tiny(), WeightQuant::Rtn(4), kind, 42).unwrap()
    }

    #[test]
    fn prefill_chunk_follows_backend_blocking() {
        // T-MAC default n_block = 8 → 16 is already a whole multiple.
        let t = tiny_model(BackendKind::Tmac(tmac_core::KernelOpts::tmac()));
        assert_eq!(t.prefill_chunk(), 16);
        // A 12-row n_block rounds the 16-row target down to one block…
        let mut opts = tmac_core::KernelOpts::tmac();
        opts.n_block = 12;
        let t12 = tiny_model(BackendKind::Tmac(opts));
        assert_eq!(t12.prefill_chunk(), 12);
        // …a 5-row n_block fits three whole blocks.
        opts.n_block = 5;
        let t5 = tiny_model(BackendKind::Tmac(opts));
        assert_eq!(t5.prefill_chunk(), 15);
        // Backends without a GEMM blocking keep the plain target.
        let f = tiny_model(BackendKind::F32);
        assert_eq!(f.prefill_chunk(), crate::engine::PREFILL_CHUNK);
    }

    #[test]
    fn forward_produces_finite_logits() {
        let ctx = ExecCtx::new(1);
        let m = tiny_model(BackendKind::F32);
        let mut cache = KvCache::new(&m.cfg);
        let mut s = Scratch::new(&m.cfg);
        for pos in 0..4 {
            m.forward(pos as u32 + 1, pos, &mut cache, &mut s, &ctx)
                .unwrap();
            assert!(s.logits.iter().all(|x| x.is_finite()), "pos {pos}");
        }
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn backends_agree_on_logits() {
        let ctx = ExecCtx::new(2);
        let f = tiny_model(BackendKind::F32);
        let d = tiny_model(BackendKind::Dequant);
        let t = tiny_model(BackendKind::Tmac(tmac_core::KernelOpts::tmac()));
        let run = |m: &Model| {
            let mut cache = KvCache::new(&m.cfg);
            let mut s = Scratch::new(&m.cfg);
            for pos in 0..3 {
                m.forward(7 + pos as u32, pos, &mut cache, &mut s, &ctx)
                    .unwrap();
            }
            s.logits.clone()
        };
        let lf = run(&f);
        let ld = run(&d);
        let lt = run(&t);
        // Quantized backends deviate from f32 only through quant error...
        assert!(tmac_simd::f32ops::nmse(&ld, &lf) < 0.3);
        // ...and agree with each other much more tightly.
        assert!(tmac_simd::f32ops::nmse(&lt, &ld) < 0.05);
    }

    #[test]
    fn rejects_bad_token_and_pos() {
        let ctx = ExecCtx::new(1);
        let m = tiny_model(BackendKind::F32);
        let mut cache = KvCache::new(&m.cfg);
        let mut s = Scratch::new(&m.cfg);
        assert!(m.forward(10_000, 0, &mut cache, &mut s, &ctx).is_err());
        assert!(m
            .forward(1, m.cfg.seq_max, &mut cache, &mut s, &ctx)
            .is_err());
    }

    #[test]
    fn qkv_and_gate_up_share_table_builds() {
        // The acceptance invariant of the ExecCtx redesign: per decoded
        // token and layer, wq/wk/wv share ONE ActTables build and w1/w3
        // share another. With distinct activations for wo, w2 and the head,
        // a token costs `4·layers + 1` builds and `3·layers` cache hits.
        let ctx = ExecCtx::new(1);
        let m = tiny_model(BackendKind::Tmac(tmac_core::KernelOpts::tmac()));
        let mut cache = KvCache::new(&m.cfg);
        let mut s = Scratch::new(&m.cfg);
        m.forward(1, 0, &mut cache, &mut s, &ctx).unwrap();
        let layers = m.cfg.n_layers as u64;
        let stats = ctx.table_stats();
        assert_eq!(
            stats.misses,
            4 * layers + 1,
            "expected one build per distinct activation"
        );
        assert_eq!(
            stats.hits,
            3 * layers,
            "wk, wv and w3 must reuse the builds of wq and w1"
        );
        // And the reuse must not change results: compare against f32-path
        // independence by running a second token and checking finiteness +
        // determinism across a fresh context.
        let ctx2 = ExecCtx::new(1);
        let mut cache2 = KvCache::new(&m.cfg);
        let mut s2 = Scratch::new(&m.cfg);
        m.forward(1, 0, &mut cache2, &mut s2, &ctx2).unwrap();
        assert_eq!(s.logits, s2.logits);
    }

    #[test]
    fn batched_qkv_and_gate_up_share_table_builds() {
        // The batched twin of `qkv_and_gate_up_share_table_builds`: with
        // B > 1 every projection group does ONE batched-table lookup, so a
        // step still costs `4·layers + 1` builds and `3·layers` hits.
        let ctx = ExecCtx::new(1);
        let m = tiny_model(BackendKind::Tmac(tmac_core::KernelOpts::tmac()));
        let b = 3;
        let mut cache = KvCache::multi(&m.cfg, b);
        let mut s = BatchScratch::new(&m.cfg, b);
        let slots: Vec<usize> = (0..b).collect();
        m.forward_batch(&[1, 2, 3], &[0, 0, 0], &slots, &mut cache, &mut s, &ctx)
            .unwrap();
        let layers = m.cfg.n_layers as u64;
        let stats = ctx.table_stats();
        assert_eq!(stats.misses, 4 * layers + 1);
        assert_eq!(stats.hits, 3 * layers);
        assert!(s.logits.iter().all(|x| x.is_finite()));
        for seq in 0..b {
            assert_eq!(cache.seq_len(seq), 1);
        }
    }

    #[test]
    fn forward_batch_validates_rows() {
        let ctx = ExecCtx::new(1);
        let m = tiny_model(BackendKind::F32);
        let mut cache = KvCache::new(&m.cfg);
        let mut s = BatchScratch::new(&m.cfg, 2);
        // Mismatched lengths.
        assert!(m
            .forward_batch(&[1, 2], &[0], &[0, 0], &mut cache, &mut s, &ctx)
            .is_err());
        // Capacity exceeded.
        assert!(m
            .forward_batch(&[1, 2, 3], &[0, 1, 2], &[0, 0, 0], &mut cache, &mut s, &ctx)
            .is_err());
        // Slot beyond the pool's sequence count.
        assert!(m
            .forward_batch(&[1, 2], &[0, 1], &[0, 1], &mut cache, &mut s, &ctx)
            .is_err());
        // Attention gap: position 1 never filled for slot 0.
        assert!(m
            .forward_batch(&[1, 2], &[0, 2], &[0, 0], &mut cache, &mut s, &ctx)
            .is_err());
        // Duplicate (slot, pos).
        assert!(m
            .forward_batch(&[1, 2], &[0, 0], &[0, 0], &mut cache, &mut s, &ctx)
            .is_err());
        // A valid contiguous prefill pair passes.
        assert!(m
            .forward_batch(&[1, 2], &[0, 1], &[0, 0], &mut cache, &mut s, &ctx)
            .is_ok());
        assert_eq!(cache.seq_len(0), 2);
    }

    #[test]
    fn bytes_per_token_positive_and_bit_scaled() {
        let m2 = Model::synthetic(
            &ModelConfig::tiny(),
            WeightQuant::Rtn(2),
            BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
            1,
        )
        .unwrap();
        let m4 = Model::synthetic(
            &ModelConfig::tiny(),
            WeightQuant::Rtn(4),
            BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
            1,
        )
        .unwrap();
        assert!(m4.bytes_per_token() > m2.bytes_per_token());
    }
}
