//! Model architecture configurations.
//!
//! The paper evaluates three model families (§5.1): Llama-2-7B, Llama-2-13B
//! (kernel shapes), and BitNet-b1.58-3B. The presets here carry the real
//! architecture dimensions; [`ModelConfig::scaled`] derives reduced-layer /
//! reduced-vocabulary variants whose *per-layer* compute is identical to the
//! full model (same matrix shapes), so full-model throughput extrapolates by
//! layer count (see `tmac-llm::engine`).

/// Which quantizer a model's linear layers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightQuant {
    /// RTN group quantization at the given bit-width (GPTQ/BitDistiller/
    /// OneBit-style storage).
    Rtn(u8),
    /// BitNet b1.58 ternary (stored as 2-bit; decomposed into two one-bit
    /// planes by T-MAC).
    BitnetTernary,
}

impl WeightQuant {
    /// The storage bit-width.
    pub fn bits(self) -> u8 {
        match self {
            WeightQuant::Rtn(b) => b,
            WeightQuant::BitnetTernary => 2,
        }
    }
}

/// Storage precision of the KV cache (see `tmac_llm::kv`).
///
/// `F32` is the bit-exact reference attention path; `I8` stores keys and
/// values as signed 8-bit codes with one `f32` scale per `(position, head)`
/// row, cutting attention memory traffic and KV resident size 4× and
/// routing score/value accumulation onto the `tmac_simd::i8ops` kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KvPrecision {
    /// `f32` keys/values — the bit-exact reference path.
    #[default]
    F32,
    /// `i8` keys/values with per-`(position, head)` scales — the fused
    /// streaming-softmax fast path for long contexts.
    I8,
}

impl KvPrecision {
    /// Display label (used in experiment output).
    pub fn label(self) -> &'static str {
        match self {
            KvPrecision::F32 => "f32-kv",
            KvPrecision::I8 => "i8-kv",
        }
    }
}

/// A llama-architecture configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name (used in experiment output).
    pub name: String,
    /// Hidden dimension.
    pub dim: usize,
    /// Transformer layers.
    pub n_layers: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Key/value heads (grouped-query attention when `< n_heads`).
    pub n_kv_heads: usize,
    /// Feed-forward inner dimension (SwiGLU).
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length (KV-cache capacity).
    pub seq_max: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// KV-cache storage precision (`F32` reference or quantized `I8`).
    pub kv_precision: KvPrecision,
}

impl ModelConfig {
    /// Llama-2-7B: dim 4096, 32 layers, 32 heads, FFN 11008.
    pub fn llama2_7b() -> Self {
        ModelConfig {
            name: "Llama-2-7B".into(),
            dim: 4096,
            n_layers: 32,
            n_heads: 32,
            n_kv_heads: 32,
            ffn_dim: 11008,
            vocab: 32000,
            seq_max: 2048,
            rope_theta: 10000.0,
            kv_precision: KvPrecision::F32,
        }
    }

    /// Llama-2-13B: dim 5120, 40 layers, 40 heads, FFN 13824.
    pub fn llama2_13b() -> Self {
        ModelConfig {
            name: "Llama-2-13B".into(),
            dim: 5120,
            n_layers: 40,
            n_heads: 40,
            n_kv_heads: 40,
            ffn_dim: 13824,
            vocab: 32000,
            seq_max: 2048,
            rope_theta: 10000.0,
            kv_precision: KvPrecision::F32,
        }
    }

    /// BitNet-b1.58-3B: dim 3200, 26 layers, 32 heads, FFN 8640.
    pub fn bitnet_3b() -> Self {
        ModelConfig {
            name: "BitNet-b1.58-3B".into(),
            dim: 3200,
            n_layers: 26,
            n_heads: 32,
            n_kv_heads: 32,
            ffn_dim: 8640,
            vocab: 32000,
            seq_max: 2048,
            rope_theta: 10000.0,
            kv_precision: KvPrecision::F32,
        }
    }

    /// A tiny configuration for unit tests (runs in milliseconds).
    pub fn tiny() -> Self {
        ModelConfig {
            name: "tiny".into(),
            dim: 64,
            n_layers: 2,
            n_heads: 4,
            n_kv_heads: 2,
            ffn_dim: 128,
            vocab: 96,
            seq_max: 64,
            rope_theta: 10000.0,
            kv_precision: KvPrecision::F32,
        }
    }

    /// Derives a variant with fewer layers and a smaller vocabulary but the
    /// exact per-layer matrix shapes of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `n_layers == 0` or `vocab < 32`.
    pub fn scaled(&self, n_layers: usize, vocab: usize, seq_max: usize) -> Self {
        assert!(n_layers > 0, "scaled model needs at least one layer");
        assert!(vocab >= 32, "scaled vocab too small");
        ModelConfig {
            name: format!("{}-scaled-{n_layers}L", self.name),
            n_layers,
            vocab,
            seq_max,
            ..self.clone()
        }
    }

    /// Returns the configuration with the given KV-cache precision (builder
    /// style: `ModelConfig::llama2_7b().with_kv(KvPrecision::I8)`).
    pub fn with_kv(mut self, precision: KvPrecision) -> Self {
        self.kv_precision = precision;
        self
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.dim / self.n_heads
    }

    /// KV projection width (`n_kv_heads * head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.n_kv_heads * self.head_dim()
    }

    /// Parameter count of the transformer stack (excluding embeddings),
    /// which dominates weight traffic during decoding.
    pub fn layer_params(&self) -> usize {
        let attn = self.dim * self.dim * 2 + self.dim * self.kv_dim() * 2;
        let ffn = 3 * self.dim * self.ffn_dim;
        self.n_layers * (attn + ffn)
    }

    /// Model bytes at a given weight bit-width (plus f32 scales per 32).
    pub fn packed_bytes(&self, bits: u8) -> usize {
        let p = self.layer_params();
        p * bits as usize / 8 + (p / 32) * 4
    }

    /// Validates divisibility constraints required by the kernels.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.dim.is_multiple_of(self.n_heads) {
            return Err(format!("dim {} % heads {} != 0", self.dim, self.n_heads));
        }
        if !self.n_heads.is_multiple_of(self.n_kv_heads) {
            return Err(format!(
                "heads {} % kv_heads {} != 0",
                self.n_heads, self.n_kv_heads
            ));
        }
        if !self.dim.is_multiple_of(32) || !self.ffn_dim.is_multiple_of(32) {
            return Err("dim and ffn_dim must be multiples of 32 (quant groups)".into());
        }
        if !self.head_dim().is_multiple_of(2) {
            return Err("head_dim must be even for RoPE".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            ModelConfig::llama2_7b(),
            ModelConfig::llama2_13b(),
            ModelConfig::bitnet_3b(),
            ModelConfig::tiny(),
        ] {
            assert!(cfg.validate().is_ok(), "{}: {:?}", cfg.name, cfg.validate());
        }
    }

    #[test]
    fn llama7b_matches_public_params() {
        let cfg = ModelConfig::llama2_7b();
        // ~6.5B parameters in the layer stack (embeddings excluded).
        let p = cfg.layer_params();
        assert!((6.0e9..7.0e9).contains(&(p as f64)), "params {p}");
    }

    #[test]
    fn scaled_keeps_shapes() {
        let cfg = ModelConfig::llama2_7b().scaled(2, 512, 128);
        assert_eq!(cfg.dim, 4096);
        assert_eq!(cfg.ffn_dim, 11008);
        assert_eq!(cfg.n_layers, 2);
        assert_eq!(cfg.vocab, 512);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn packed_bytes_scale_with_bits() {
        let cfg = ModelConfig::bitnet_3b();
        assert!(cfg.packed_bytes(4) > cfg.packed_bytes(2));
        // 2-bit 3B model fits well under 2 GB even with per-32 f32 scales
        // (the paper's Raspberry Pi deployment argument; real BitNet uses
        // far coarser scale granularity, so this is an upper bound).
        assert!(cfg.packed_bytes(2) < 3 * (1usize << 29));
    }

    #[test]
    fn quant_bits() {
        assert_eq!(WeightQuant::Rtn(4).bits(), 4);
        assert_eq!(WeightQuant::BitnetTernary.bits(), 2);
    }

    #[test]
    fn kv_precision_knob() {
        // Presets default to the bit-exact f32 reference path...
        assert_eq!(ModelConfig::tiny().kv_precision, KvPrecision::F32);
        assert_eq!(KvPrecision::default(), KvPrecision::F32);
        // ...the builder flips it, and `scaled` preserves it.
        let cfg = ModelConfig::llama2_7b().with_kv(KvPrecision::I8);
        assert_eq!(cfg.kv_precision, KvPrecision::I8);
        assert_eq!(cfg.scaled(2, 64, 128).kv_precision, KvPrecision::I8);
        assert_ne!(KvPrecision::F32.label(), KvPrecision::I8.label());
    }
}
