//! Per-request sampling: the logit-processor pipeline behind
//! [`crate::Engine::generate`] and [`crate::Scheduler::submit`].
//!
//! Processors run in a fixed order — repetition penalty → logit bias →
//! temperature → top-k → top-p → seeded categorical draw — matching the
//! common serving-stack convention (vLLM/llama.cpp). Determinism is a
//! contract, not an accident:
//!
//! * **temperature = 0 is exactly argmax.** With no other processor active
//!   the pipeline never touches the logits buffer and calls
//!   [`crate::ops::argmax`] directly, so the default request is
//!   bit-identical to the pre-sampling greedy path.
//! * **One RNG per request.** Each [`Sampler`] owns a
//!   [`tmac_rng::Rng`] seeded from [`SamplingParams::seed`], and logits are
//!   bit-exact at any batch size or thread count (the scheduler's
//!   equivalence invariants), so a fixed `(seed, params)` produces the same
//!   token stream whether the request runs alone, in a full batch, or on a
//!   different thread-pool size.
//! * **Ties break by index.** Candidate ordering is (logit descending,
//!   token id ascending), so equal logits never make top-k/top-p runs
//!   platform- or sort-dependent.

use crate::backend::BackendError;
use crate::ops;
use tmac_rng::Rng;

/// Per-request sampling controls.
///
/// The default is pure greedy decoding (temperature 0, every processor
/// off), which the pipeline guarantees is bit-identical to `argmax` over
/// the raw logits.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingParams {
    /// Softmax temperature; `0.0` means greedy (argmax after the penalty
    /// and bias processors, which are off by default).
    pub temperature: f32,
    /// Keep only the `top_k` highest-logit tokens before the draw
    /// (`0` = disabled).
    pub top_k: usize,
    /// Nucleus sampling: keep the smallest candidate prefix whose
    /// probability mass reaches `top_p` (`1.0` = disabled).
    pub top_p: f32,
    /// CTRL-style repetition penalty over prompt + generated tokens:
    /// positive logits of seen tokens are divided by the penalty, others
    /// multiplied (`1.0` = disabled).
    pub repetition_penalty: f32,
    /// Seed of the per-request RNG; requests are reproducible by default.
    pub seed: u64,
    /// Additive per-token logit offsets, applied before temperature.
    pub logit_bias: Vec<(u32, f32)>,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams {
            temperature: 0.0,
            top_k: 0,
            top_p: 1.0,
            repetition_penalty: 1.0,
            seed: 0,
            logit_bias: Vec::new(),
        }
    }
}

impl SamplingParams {
    /// Validates every field against the model's vocabulary.
    ///
    /// # Errors
    ///
    /// [`BackendError::Shape`] naming the offending field: non-finite or
    /// negative temperature, `top_p` outside `(0, 1]`, non-positive or
    /// non-finite repetition penalty, or a bias entry with an out-of-vocab
    /// token id or non-finite value.
    pub fn validate(&self, vocab: usize) -> Result<(), BackendError> {
        if !self.temperature.is_finite() || self.temperature < 0.0 {
            return Err(BackendError::Shape(format!(
                "temperature must be finite and >= 0, got {}",
                self.temperature
            )));
        }
        if !self.top_p.is_finite() || self.top_p <= 0.0 || self.top_p > 1.0 {
            return Err(BackendError::Shape(format!(
                "top_p must be in (0, 1], got {}",
                self.top_p
            )));
        }
        if !self.repetition_penalty.is_finite() || self.repetition_penalty <= 0.0 {
            return Err(BackendError::Shape(format!(
                "repetition_penalty must be finite and > 0, got {}",
                self.repetition_penalty
            )));
        }
        for &(id, v) in &self.logit_bias {
            if id as usize >= vocab {
                return Err(BackendError::Shape(format!(
                    "logit_bias token {id} out of vocab {vocab}"
                )));
            }
            if !v.is_finite() {
                return Err(BackendError::Shape(format!(
                    "logit_bias value for token {id} must be finite, got {v}"
                )));
            }
        }
        Ok(())
    }

    /// True when the pipeline reduces to plain `argmax` over the raw
    /// logits (no processor would change which token wins).
    pub fn is_pure_greedy(&self) -> bool {
        self.temperature == 0.0 && self.repetition_penalty == 1.0 && self.logit_bias.is_empty()
    }
}

/// One generation request: the typed argument of
/// [`crate::Engine::generate`] and (as [`crate::batch::SubmitRequest`])
/// [`crate::Scheduler::submit`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenRequest {
    /// Prompt token ids.
    pub prompt: Vec<u32>,
    /// Maximum tokens to generate (a stop sequence may end the request
    /// earlier).
    pub max_new: usize,
    /// Sampling controls (default: greedy).
    pub sampling: SamplingParams,
    /// Stop token-id sequences. Generation ends as soon as the generated
    /// stream *ends with* any of them; the matched tokens are kept in the
    /// output (already-streamed tokens cannot be retracted) and the
    /// request finishes with [`crate::FinishReason::Stop`].
    pub stop: Vec<Vec<u32>>,
    /// Whether the scheduler may serve this prompt's prefix from the
    /// radix prompt cache and publish its pages for reuse (default
    /// `true`). Opting out (`"cache_prompt": false` over HTTP) forces a
    /// full private prefill — useful for benchmarking and for prompts
    /// that must not linger in shared cache state.
    pub cache_prompt: bool,
}

impl GenRequest {
    /// A greedy request with default sampling and no stop sequences —
    /// exactly the behavior of the old positional `(prompt, max_new)` API.
    pub fn greedy(prompt: &[u32], max_new: usize) -> Self {
        GenRequest {
            prompt: prompt.to_vec(),
            max_new,
            sampling: SamplingParams::default(),
            stop: Vec::new(),
            cache_prompt: true,
        }
    }

    /// Replaces the sampling params (builder style).
    #[must_use]
    pub fn with_sampling(mut self, sampling: SamplingParams) -> Self {
        self.sampling = sampling;
        self
    }

    /// Sets prompt-cache participation (builder style).
    #[must_use]
    pub fn with_cache_prompt(mut self, cache_prompt: bool) -> Self {
        self.cache_prompt = cache_prompt;
        self
    }

    /// Replaces the stop sequences (builder style).
    #[must_use]
    pub fn with_stop(mut self, stop: Vec<Vec<u32>>) -> Self {
        self.stop = stop;
        self
    }

    /// Validates sampling params and stop sequences against `vocab`.
    ///
    /// # Errors
    ///
    /// [`BackendError::Shape`] on invalid sampling fields or an empty stop
    /// sequence (prompt/length bounds are the engine's and scheduler's
    /// job, since their limits differ).
    pub fn validate(&self, vocab: usize) -> Result<(), BackendError> {
        self.sampling.validate(vocab)?;
        if self.stop.iter().any(Vec::is_empty) {
            return Err(BackendError::Shape(
                "stop sequences must be non-empty".into(),
            ));
        }
        Ok(())
    }
}

/// True when `generated` ends with any of the `stop` sequences.
pub fn hits_stop(generated: &[u32], stop: &[Vec<u32>]) -> bool {
    stop.iter().any(|s| !s.is_empty() && generated.ends_with(s))
}

/// Per-sequence sampling state: the processor pipeline plus the request's
/// own RNG and repetition context.
///
/// # Examples
///
/// ```
/// use tmac_llm::sampling::{Sampler, SamplingParams};
///
/// // Default params: exact argmax, no RNG draw.
/// let mut greedy = Sampler::new(&SamplingParams::default(), 4);
/// assert_eq!(greedy.sample(&[0.1, 2.0, -1.0, 0.4]), 1);
///
/// // Same seed + params => same draws.
/// let params = SamplingParams {
///     temperature: 1.0,
///     seed: 7,
///     ..SamplingParams::default()
/// };
/// let mut a = Sampler::new(&params, 4);
/// let mut b = Sampler::new(&params, 4);
/// let logits = [0.3, 0.1, 0.9, 0.2];
/// assert_eq!(a.sample(&logits), b.sample(&logits));
/// ```
#[derive(Debug, Clone)]
pub struct Sampler {
    params: SamplingParams,
    rng: Rng,
    /// Tokens seen in prompt or output (only tracked when the repetition
    /// penalty is active).
    seen: Vec<bool>,
    /// Processed-logits scratch, reused across steps.
    buf: Vec<f32>,
    /// Candidate-index scratch, reused across steps.
    cand: Vec<u32>,
}

impl Sampler {
    /// A sampler for one request over a `vocab`-sized distribution, with
    /// its RNG seeded from [`SamplingParams::seed`].
    pub fn new(params: &SamplingParams, vocab: usize) -> Self {
        let track_seen = params.repetition_penalty != 1.0;
        Sampler {
            params: params.clone(),
            rng: Rng::seed_from_u64(params.seed),
            seen: if track_seen {
                vec![false; vocab]
            } else {
                Vec::new()
            },
            buf: Vec::new(),
            cand: Vec::new(),
        }
    }

    /// Records a context token (prompt tokens, before the first sample)
    /// for the repetition penalty. No-op when the penalty is off.
    pub fn observe(&mut self, token: u32) {
        if let Some(s) = self.seen.get_mut(token as usize) {
            *s = true;
        }
    }

    /// Records every token in `tokens` (see [`Sampler::observe`]).
    pub fn observe_all(&mut self, tokens: &[u32]) {
        for &t in tokens {
            self.observe(t);
        }
    }

    /// Runs the pipeline over `logits` and returns the chosen token. The
    /// choice is recorded for the repetition penalty.
    ///
    /// With pure-greedy params this is exactly `ops::argmax(logits)` — the
    /// logits are never copied or modified.
    pub fn sample(&mut self, logits: &[f32]) -> u32 {
        let _s = tmac_trace::span("llm", "sample", self.params.seed, logits.len() as u64);
        if self.params.is_pure_greedy() {
            return ops::argmax(logits) as u32;
        }
        // 1. Repetition penalty + logit bias on a scratch copy.
        self.buf.clear();
        self.buf.extend_from_slice(logits);
        if self.params.repetition_penalty != 1.0 {
            let p = self.params.repetition_penalty;
            for (x, &s) in self.buf.iter_mut().zip(&self.seen) {
                if s {
                    *x = if *x > 0.0 { *x / p } else { *x * p };
                }
            }
        }
        for &(id, v) in &self.params.logit_bias {
            if let Some(x) = self.buf.get_mut(id as usize) {
                *x += v;
            }
        }
        // 2. Temperature: 0 is argmax over the processed logits.
        let token = if self.params.temperature == 0.0 {
            ops::argmax(&self.buf) as u32
        } else {
            let inv_t = 1.0 / self.params.temperature;
            for x in self.buf.iter_mut() {
                *x *= inv_t;
            }
            self.draw()
        };
        self.observe(token);
        token
    }

    /// Top-k / top-p truncation followed by a categorical draw over
    /// `self.buf`.
    fn draw(&mut self) -> u32 {
        let buf = &self.buf;
        self.cand.clear();
        self.cand.extend(0..buf.len() as u32);
        let k = self.params.top_k;
        let filtering = (k > 0 && k < buf.len()) || self.params.top_p < 1.0;
        if filtering {
            // Deterministic candidate order: logit desc, then id asc (the
            // id tiebreak comes free from the stable sort).
            self.cand
                .sort_by(|&a, &b| buf[b as usize].total_cmp(&buf[a as usize]));
            if k > 0 && k < self.cand.len() {
                self.cand.truncate(k);
            }
            if self.params.top_p < 1.0 {
                // Nucleus: smallest prefix reaching top_p of the candidate
                // mass (always at least one token).
                let max = buf[self.cand[0] as usize];
                let weights: Vec<f32> = self
                    .cand
                    .iter()
                    .map(|&c| (buf[c as usize] - max).exp())
                    .collect();
                let total: f32 = weights.iter().sum();
                let target = self.params.top_p * total;
                let mut cum = 0f32;
                let mut keep = self.cand.len();
                for (i, w) in weights.iter().enumerate() {
                    cum += w;
                    if cum >= target {
                        keep = i + 1;
                        break;
                    }
                }
                self.cand.truncate(keep.max(1));
            }
        }
        // Categorical draw over the surviving candidates. The iteration
        // order is fixed (sorted or id-ascending), so the draw depends
        // only on the logits and this request's RNG stream.
        let max = self
            .cand
            .iter()
            .map(|&c| buf[c as usize])
            .fold(f32::NEG_INFINITY, f32::max);
        let total: f32 = self
            .cand
            .iter()
            .map(|&c| (buf[c as usize] - max).exp())
            .sum();
        let target = self.rng.f32_unit() * total;
        let mut cum = 0f32;
        for &c in &self.cand {
            cum += (buf[c as usize] - max).exp();
            if cum > target {
                return c;
            }
        }
        *self.cand.last().expect("at least one candidate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SamplingParams {
        SamplingParams::default()
    }

    #[test]
    fn default_params_are_pure_greedy_argmax() {
        let logits = [0.25, -1.0, 3.5, 3.4, 0.0];
        let mut s = Sampler::new(&params(), logits.len());
        for _ in 0..4 {
            assert_eq!(s.sample(&logits), 2);
        }
        // top-k/top-p alone do not break the greedy fast path.
        let p = SamplingParams {
            top_k: 3,
            top_p: 0.5,
            ..params()
        };
        assert!(p.is_pure_greedy());
        assert_eq!(Sampler::new(&p, logits.len()).sample(&logits), 2);
    }

    #[test]
    fn temperature_zero_with_bias_is_argmax_of_processed_logits() {
        let logits = [0.0, 1.0, 2.0];
        let p = SamplingParams {
            logit_bias: vec![(0, 10.0)],
            ..params()
        };
        assert!(!p.is_pure_greedy());
        assert_eq!(Sampler::new(&p, 3).sample(&logits), 0);
    }

    #[test]
    fn repetition_penalty_suppresses_seen_tokens() {
        let logits = [2.0, 1.5, 0.1];
        let p = SamplingParams {
            repetition_penalty: 1e6,
            ..params()
        };
        let mut s = Sampler::new(&p, 3);
        assert_eq!(s.sample(&logits), 0);
        // 0 is now seen and crushed; the runner-up wins.
        assert_eq!(s.sample(&logits), 1);
        // Prompt tokens observed up front are penalized too.
        let mut s2 = Sampler::new(&p, 3);
        s2.observe_all(&[0, 1]);
        assert_eq!(s2.sample(&logits), 2);
        // A seen token's *negative* logit is amplified, not divided.
        let neg = [-1.0, -0.9];
        let p2 = SamplingParams {
            repetition_penalty: 2.0,
            ..params()
        };
        let mut s3 = Sampler::new(&p2, 2);
        s3.observe(1);
        assert_eq!(s3.sample(&neg), 0, "seen -0.9 becomes -1.8");
    }

    #[test]
    fn same_seed_same_stream_different_seed_diverges() {
        let p = SamplingParams {
            temperature: 1.3,
            seed: 99,
            ..params()
        };
        let logits: Vec<f32> = (0..64).map(|i| ((i * 37 % 64) as f32) / 13.0).collect();
        let draw = |p: &SamplingParams| {
            let mut s = Sampler::new(p, logits.len());
            (0..32).map(|_| s.sample(&logits)).collect::<Vec<_>>()
        };
        assert_eq!(draw(&p), draw(&p));
        let other = SamplingParams {
            seed: 100,
            ..p.clone()
        };
        assert_ne!(draw(&p), draw(&other), "seed must matter");
    }

    #[test]
    fn top_p_tiny_is_greedy_and_one_is_full() {
        let logits = [0.3, 0.1, 0.9, 0.2];
        let tiny = SamplingParams {
            temperature: 1.0,
            top_p: 1e-7,
            seed: 5,
            ..params()
        };
        let mut s = Sampler::new(&tiny, 4);
        for _ in 0..8 {
            assert_eq!(s.sample(&logits), 2, "top_p -> 0 must reduce to greedy");
        }
        // top_p = 1.0 keeps every candidate reachable.
        let full = SamplingParams {
            temperature: 5.0,
            top_p: 1.0,
            seed: 5,
            ..params()
        };
        let mut s = Sampler::new(&full, 4);
        let drawn: std::collections::HashSet<u32> = (0..256).map(|_| s.sample(&logits)).collect();
        assert_eq!(drawn.len(), 4, "all tokens reachable at high temperature");
    }

    #[test]
    fn ties_break_toward_the_lower_token_id() {
        // Tokens 1 and 3 tie for the max; top_k = 1 must keep token 1.
        let logits = [0.0, 2.0, 1.0, 2.0];
        let p = SamplingParams {
            temperature: 1.0,
            top_k: 1,
            seed: 3,
            ..params()
        };
        let mut s = Sampler::new(&p, 4);
        for _ in 0..8 {
            assert_eq!(s.sample(&logits), 1);
        }
    }

    #[test]
    fn top_k_restricts_the_support() {
        let logits = [5.0, 4.0, 3.0, -10.0];
        let p = SamplingParams {
            temperature: 10.0,
            top_k: 2,
            seed: 1,
            ..params()
        };
        let mut s = Sampler::new(&p, 4);
        for _ in 0..128 {
            assert!(s.sample(&logits) < 2, "top_k=2 must exclude tokens 2, 3");
        }
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let vocab = 8;
        assert!(params().validate(vocab).is_ok());
        for bad in [
            SamplingParams {
                temperature: -1.0,
                ..params()
            },
            SamplingParams {
                temperature: f32::NAN,
                ..params()
            },
            SamplingParams {
                top_p: 0.0,
                ..params()
            },
            SamplingParams {
                top_p: 1.5,
                ..params()
            },
            SamplingParams {
                repetition_penalty: 0.0,
                ..params()
            },
            SamplingParams {
                logit_bias: vec![(8, 1.0)],
                ..params()
            },
            SamplingParams {
                logit_bias: vec![(1, f32::INFINITY)],
                ..params()
            },
        ] {
            assert!(bad.validate(vocab).is_err(), "{bad:?} must be rejected");
        }
        let req = GenRequest::greedy(&[1], 4).with_stop(vec![vec![]]);
        assert!(req.validate(vocab).is_err(), "empty stop sequence");
    }

    #[test]
    fn hits_stop_matches_suffixes_only() {
        let stop = vec![vec![3, 4], vec![9]];
        assert!(hits_stop(&[1, 2, 3, 4], &stop));
        assert!(hits_stop(&[9], &stop));
        assert!(!hits_stop(&[3, 4, 5], &stop), "not a suffix");
        assert!(!hits_stop(&[4], &stop));
        assert!(!hits_stop(&[], &stop));
        assert!(!hits_stop(&[1], &[]));
    }
}
