//! Minimal deterministic PRNG for synthetic data generation.
//!
//! The evaluation host has no network access, so the `rand` crate is
//! unavailable; this stand-in provides the two operations the workspace
//! actually needs — seeding from a `u64` and uniform ranges — with a
//! SplitMix64 core (Steele et al., "Fast splittable pseudorandom number
//! generators", OOPSLA 2014). SplitMix64 passes BigCrush at this output
//! width and is more than adequate for synthetic weights and test-case
//! generation. Everything is deterministic in the seed, which is the only
//! property the experiments rely on.

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use tmac_rng::Rng;
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.f32_range(-1.0, 1.0);
/// assert!((-1.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator whose whole stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn f32_unit(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// The upper bound is genuinely exclusive: `lo + (hi - lo) * u` can
    /// round up to exactly `hi` for some ranges (round-to-nearest-even on
    /// the final add), so the result is clamped to the largest float below
    /// `hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let x = lo + (hi - lo) * self.f32_unit();
        x.clamp(lo, hi.next_down())
    }

    /// Uniform integer in `[0, n)` (Lemire's multiply-shift reduction; the
    /// tiny modulo bias at these range sizes is irrelevant for test data).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn u32_below(&mut self, n: u32) -> u32 {
        assert!(n > 0, "u32_below(0)");
        (((self.next_u64() >> 32) * n as u64) >> 32) as u32
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u32_range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.u32_below(hi - lo)
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u32::MAX as usize`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n <= u32::MAX as usize, "range too large");
        self.u32_below(n as u32) as usize
    }

    /// Sum of four uniforms in `[-0.5, 0.5)` — a cheap pseudo-Gaussian with
    /// variance 1/3, used for synthetic weights and activations.
    pub fn gaussian_ish(&mut self) -> f32 {
        (0..4).map(|_| self.f32_range(-0.5, 0.5)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let s1: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let s2: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let s3: Vec<u64> = {
            let mut r = Rng::seed_from_u64(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn f32_range_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.f32_range(-2.5, 0.25);
            assert!((-2.5..0.25).contains(&x));
        }
    }

    #[test]
    fn f32_range_upper_bound_is_exclusive() {
        // lo + (hi - lo) * u with u = (2^24 - 1)/2^24 rounds to exactly hi
        // for e.g. (0.5, 1.5); the clamp must keep the bound exclusive.
        let lo = 0.5f32;
        let hi = 1.5f32;
        let u = ((1u32 << 24) - 1) as f32 / (1u32 << 24) as f32;
        assert_eq!(lo + (hi - lo) * u, hi, "the rounding hazard is real");
        let clamped = (lo + (hi - lo) * u).clamp(lo, hi.next_down());
        assert!(clamped < hi);
        // And the generator's own output respects it across many draws.
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.f32_range(lo, hi);
            assert!((lo..hi).contains(&x));
        }
    }

    #[test]
    fn u32_below_covers_small_ranges() {
        let mut r = Rng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.u32_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_interval_is_well_spread() {
        let mut r = Rng::seed_from_u64(3);
        let n = 4096;
        let mean: f32 = (0..n).map(|_| r.f32_unit()).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gaussian_ish_centered() {
        let mut r = Rng::seed_from_u64(4);
        let n = 4096;
        let mean: f32 = (0..n).map(|_| r.gaussian_ish()).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
