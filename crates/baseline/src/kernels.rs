//! Scalar reference `vec_dot` kernels (oracle + portable fallback).
//!
//! Each kernel computes one output element: the dot product of one packed
//! weight row with a `Q8_0`-quantized activation row, following llama.cpp's
//! structure — per 32-element block: unpack weights to centered `i8`,
//! integer dot against activation codes, one `f32` FMA with the combined
//! scale.

use tmac_quant::formats::{
    unpack_q1_0, unpack_q2_0, unpack_q3s, unpack_q4_0, BlockQ1_0, BlockQ2_0, BlockQ3S, BlockQ4_0,
    BlockQ8_0, QK,
};

fn dot_codes(w: &[i8; QK], a: &[i8; QK]) -> i32 {
    let mut s = 0i32;
    for j in 0..QK {
        s += (w[j] as i32) * (a[j] as i32);
    }
    s
}

/// `Q4_0 × Q8_0` row dot product.
///
/// # Panics
///
/// Panics if the rows have different block counts.
pub fn vec_dot_q4(w: &[BlockQ4_0], a: &[BlockQ8_0]) -> f32 {
    assert_eq!(w.len(), a.len(), "block count mismatch");
    let mut acc = 0f32;
    let mut codes = [0i8; QK];
    for (wb, ab) in w.iter().zip(a) {
        unpack_q4_0(wb, &mut codes);
        acc += wb.d * ab.d * dot_codes(&codes, &ab.qs) as f32;
    }
    acc
}

/// `Q3S × Q8_0` row dot product (the 2+1-split decode path).
///
/// # Panics
///
/// Panics if the rows have different block counts.
pub fn vec_dot_q3(w: &[BlockQ3S], a: &[BlockQ8_0]) -> f32 {
    assert_eq!(w.len(), a.len(), "block count mismatch");
    let mut acc = 0f32;
    let mut codes = [0i8; QK];
    for (wb, ab) in w.iter().zip(a) {
        unpack_q3s(wb, &mut codes);
        acc += wb.d * ab.d * dot_codes(&codes, &ab.qs) as f32;
    }
    acc
}

/// `Q2_0 × Q8_0` row dot product.
///
/// # Panics
///
/// Panics if the rows have different block counts.
pub fn vec_dot_q2(w: &[BlockQ2_0], a: &[BlockQ8_0]) -> f32 {
    assert_eq!(w.len(), a.len(), "block count mismatch");
    let mut acc = 0f32;
    let mut codes = [0i8; QK];
    for (wb, ab) in w.iter().zip(a) {
        unpack_q2_0(wb, &mut codes);
        acc += wb.d * ab.d * dot_codes(&codes, &ab.qs) as f32;
    }
    acc
}

/// `Q1_0 × Q8_0` row dot product (sign weights; scale halved because the
/// unpacked codes are doubled to `±1`).
///
/// # Panics
///
/// Panics if the rows have different block counts.
pub fn vec_dot_q1(w: &[BlockQ1_0], a: &[BlockQ8_0]) -> f32 {
    assert_eq!(w.len(), a.len(), "block count mismatch");
    let mut acc = 0f32;
    let mut codes = [0i8; QK];
    for (wb, ab) in w.iter().zip(a) {
        unpack_q1_0(wb, &mut codes);
        acc += wb.d * 0.5 * ab.d * dot_codes(&codes, &ab.qs) as f32;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmac_quant::formats::{
        pack_row_q1_0, pack_row_q2_0, pack_row_q3s, pack_row_q4_0, quantize_q8_0,
    };
    use tmac_quant::rtn;

    fn reference(qm: &tmac_quant::QuantizedMatrix, act: &[f32]) -> f32 {
        let d = qm.dequantize();
        d.iter().zip(act).map(|(w, a)| w * a).sum()
    }

    #[test]
    fn vec_dots_track_f32_reference() {
        let k = 256;
        let w: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.11).sin()).collect();
        let act: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.23).cos() * 1.2).collect();
        let aq = quantize_q8_0(&act);
        for bits in 1..=4u8 {
            let qm = rtn::quantize(&w, 1, k, bits, 32).unwrap();
            let want = reference(&qm, &act);
            let got = match bits {
                4 => vec_dot_q4(&pack_row_q4_0(&qm, 0).unwrap(), &aq),
                3 => vec_dot_q3(&pack_row_q3s(&qm, 0).unwrap(), &aq),
                2 => vec_dot_q2(&pack_row_q2_0(&qm, 0).unwrap(), &aq),
                1 => vec_dot_q1(&pack_row_q1_0(&qm, 0).unwrap(), &aq),
                _ => unreachable!(),
            };
            // Only activation-quantization error separates them.
            assert!(
                (want - got).abs() < 0.05 * (1.0 + want.abs()),
                "bits={bits}: {want} vs {got}"
            );
        }
    }

    #[test]
    fn exact_when_activations_are_exact() {
        // Activations representable exactly in Q8 (integers scaled by the
        // block max) make the integer path exact.
        let k = 64;
        let act: Vec<f32> = (0..k).map(|i| ((i % 7) as f32) - 3.0).collect();
        let aq = quantize_q8_0(&act);
        let back: Vec<f32> = aq
            .iter()
            .flat_map(|b| b.qs.iter().map(move |&q| b.d * q as f32))
            .collect();
        let w: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.31).sin()).collect();
        let qm = rtn::quantize(&w, 1, k, 4, 32).unwrap();
        let want = reference(&qm, &back);
        let got = vec_dot_q4(&pack_row_q4_0(&qm, 0).unwrap(), &aq);
        assert!((want - got).abs() < 1e-4 * (1.0 + want.abs()));
    }
}
