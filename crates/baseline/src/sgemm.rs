//! Dequantize-to-`f32` + blocked SGEMM: the llama.cpp (BLAS) mpGEMM path.
//!
//! For large GEMMs (prefill), llama.cpp dequantizes the weight matrix and
//! calls a BLAS `sgemm` (Accelerate on Apple, OpenBLAS elsewhere — paper
//! §5.1). This module implements that route: per `K`-block, weight row
//! segments are dequantized on the fly into a stack buffer and dotted
//! against the cached activation block, so the packed weights stream from
//! DRAM exactly once and the activation block stays cache-resident.

use crate::DequantLinear;
use tmac_core::ExecCtx;
use tmac_quant::QuantError;
use tmac_simd::f32ops;

/// `K`-block length for the cache-blocked SGEMM.
const KB: usize = 256;

/// Shared-output wrapper: threads write disjoint row ranges of every
/// activation row's output.
struct OutPtr(*mut f32);
// SAFETY: each thread owns a disjoint set of weight rows `m`, writing only
// `out[n * M + m]` for its own `m`; the buffer outlives the dispatch.
unsafe impl Sync for OutPtr {}

/// mpGEMM via dequantization and blocked `f32` SGEMM.
///
/// `act` is row-major `n × K`; `out` is row-major `n × M`.
///
/// # Errors
///
/// Returns [`QuantError::Shape`] on dimension mismatches or `n == 0`.
pub fn gemm_blas(
    lin: &DequantLinear,
    act: &[f32],
    n: usize,
    out: &mut [f32],
    ctx: &ExecCtx,
) -> Result<(), QuantError> {
    let (m_total, k_total) = (lin.rows(), lin.cols());
    if n == 0 {
        return Err(QuantError::Shape("gemm_blas needs n >= 1".into()));
    }
    if act.len() != n * k_total || out.len() != n * m_total {
        return Err(QuantError::Shape(format!(
            "gemm_blas shapes: act {} (want {}), out {} (want {})",
            act.len(),
            n * k_total,
            out.len(),
            n * m_total
        )));
    }
    let qm = lin.quantized();
    let out_ptr = OutPtr(out.as_mut_ptr());
    let out_ref = &out_ptr;
    ctx.pool().chunks(m_total, 8, |rows| {
        // Per-thread workspace from the context's scratch arena: decode
        // GEMMs run once per prefill block, so the buffers recycle across
        // blocks instead of reallocating.
        let mut acc = ctx.take_buf(rows.len() * n);
        let mut wrow = ctx.take_buf(k_total);
        let mut k0 = 0;
        while k0 < k_total {
            let kb = KB.min(k_total - k0);
            for (ri, m) in rows.clone().enumerate() {
                // Dequantize this row's K-segment once.
                dequant_segment(qm, m, k0, kb, &mut wrow[..kb]);
                for ni in 0..n {
                    let aseg = &act[ni * k_total + k0..ni * k_total + k0 + kb];
                    acc[ri * n + ni] += f32ops::dot(aseg, &wrow[..kb]);
                }
            }
            k0 += kb;
        }
        for (ri, m) in rows.clone().enumerate() {
            for ni in 0..n {
                // SAFETY: this thread owns row `m`; index within bounds;
                // buffer outlives the dispatch.
                unsafe { *out_ref.0.add(ni * m_total + m) = acc[ri * n + ni] };
            }
        }
        ctx.put_buf(acc);
        ctx.put_buf(wrow);
    });
    Ok(())
}

/// Dequantizes `len` weights of row `m` starting at column `k0`.
fn dequant_segment(
    qm: &tmac_quant::QuantizedMatrix,
    m: usize,
    k0: usize,
    len: usize,
    out: &mut [f32],
) {
    debug_assert!(k0.is_multiple_of(qm.group_size));
    let gpr = qm.cols / qm.group_size;
    let codes = &qm.codes[m * qm.cols + k0..m * qm.cols + k0 + len];
    for (j, &c) in codes.iter().enumerate() {
        let g = (k0 + j) / qm.group_size;
        out[j] = qm.scales[m * gpr + g] * (c as f32 - qm.zero);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmac_quant::rtn;

    #[test]
    fn blas_matches_mixed_path() {
        let (m, k, n) = (48, 512, 5);
        let w: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.13).sin()).collect();
        let qm = rtn::quantize(&w, m, k, 4, 32).unwrap();
        let lin = DequantLinear::new(&qm).unwrap();
        let ctx = ExecCtx::new(2);
        let act: Vec<f32> = (0..n * k).map(|i| ((i as f32) * 0.07).cos()).collect();
        let mut blas = vec![0f32; n * m];
        gemm_blas(&lin, &act, n, &mut blas, &ctx).unwrap();
        // Reference through dequantized weights (f32 exact, no act quant).
        let d = qm.dequantize();
        for ni in 0..n {
            for mi in 0..m {
                let want: f32 = d[mi * k..(mi + 1) * k]
                    .iter()
                    .zip(&act[ni * k..(ni + 1) * k])
                    .map(|(x, y)| x * y)
                    .sum();
                let got = blas[ni * m + mi];
                assert!(
                    (want - got).abs() < 1e-2 * (1.0 + want.abs()),
                    "n={ni} m={mi}: {want} vs {got}"
                );
            }
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let w: Vec<f32> = (0..32 * 64).map(|i| i as f32 * 0.01).collect();
        let qm = rtn::quantize(&w, 32, 64, 2, 32).unwrap();
        let lin = DequantLinear::new(&qm).unwrap();
        let ctx = ExecCtx::new(1);
        let act = vec![0f32; 2 * 64];
        let mut out = vec![0f32; 2 * 32];
        assert!(gemm_blas(&lin, &act, 0, &mut out, &ctx).is_err());
        assert!(gemm_blas(&lin, &act[..64], 2, &mut out, &ctx).is_err());
    }

    #[test]
    fn single_row_matches_gemv_closely() {
        let (m, k) = (32, 256);
        let w: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.19).sin()).collect();
        let qm = rtn::quantize(&w, m, k, 2, 32).unwrap();
        let lin = DequantLinear::new(&qm).unwrap();
        let ctx = ExecCtx::new(1);
        let act: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.11).cos()).collect();
        let mut a = vec![0f32; m];
        let mut b = vec![0f32; m];
        lin.gemv(&act, &mut a, &ctx).unwrap();
        gemm_blas(&lin, &act, 1, &mut b, &ctx).unwrap();
        // gemv quantizes activations; blas does not — close but not equal.
        for i in 0..m {
            assert!((a[i] - b[i]).abs() < 0.05 * (1.0 + b[i].abs()), "m={i}");
        }
    }
}
