//! AVX2 `vec_dot` kernels for the dequantization baseline.
//!
//! Faithful to llama.cpp's AVX2 path: per 32-weight block, SIMD-unpack the
//! packed codes to centered `i8`, integer-dot them against the `Q8_0`
//! activation codes with the `maddubs` sign trick, and fold the combined
//! scale with one FMA into eight persistent `f32` accumulator lanes.
//!
//! The per-format unpack costs are the point of the comparison (paper §5.2):
//! 4-bit is one `AND`/`SHR` pair, 2-bit is four shift/mask passes, 3-bit
//! additionally merges a separate high-bit mask (llama.cpp's 2+1 split) —
//! and none of them get cheaper as bits shrink, unlike T-MAC's lookups.

#![allow(clippy::missing_safety_doc)] // Module rule: call only after `available()`.

use std::arch::x86_64::*;
use tmac_quant::formats::{BlockQ1_0, BlockQ2_0, BlockQ3S, BlockQ4_0, BlockQ8_0};
use tmac_simd::avx2 as simd;

/// Returns true if these kernels may be called.
pub fn available() -> bool {
    simd::available()
}

/// Integer block dot: centered weight codes (`> -128`) times activation
/// codes, returning 8 partial `i32` lanes.
#[inline]
#[target_feature(enable = "avx2")]
fn block_dot_i32(w: __m256i, a: __m256i) -> __m256i {
    let abs_w = _mm256_sign_epi8(w, w);
    let sgn_a = _mm256_sign_epi8(a, w);
    let prod = _mm256_maddubs_epi16(abs_w, sgn_a);
    _mm256_madd_epi16(prod, _mm256_set1_epi16(1))
}

/// Loads the 32 activation codes of a `Q8_0` block.
#[inline]
#[target_feature(enable = "avx2")]
fn load_act(b: &BlockQ8_0) -> __m256i {
    // SAFETY: `qs` is exactly 32 readable bytes.
    unsafe { _mm256_loadu_si256(b.qs.as_ptr() as *const __m256i) }
}

/// `Q4_0` unpack: 16 bytes -> 32 centered codes (llama.cpp split halves).
#[inline]
#[target_feature(enable = "avx2")]
fn unpack_q4(b: &BlockQ4_0) -> __m256i {
    let raw = simd::loadu_128(&b.qs);
    let mask = _mm_set1_epi8(0x0F);
    let lo = _mm_and_si128(raw, mask);
    let hi = _mm_and_si128(_mm_srli_epi16(raw, 4), mask);
    let codes = _mm256_inserti128_si256(_mm256_castsi128_si256(lo), hi, 1);
    _mm256_sub_epi8(codes, _mm256_set1_epi8(8))
}

/// Plane-strided 2-bit unpack: 8 bytes -> 32 codes in natural order.
#[inline]
#[target_feature(enable = "avx2")]
fn unpack_2bit_fields(qs: &[u8; 8]) -> __m256i {
    let raw = _mm_set_epi64x(0, i64::from_le_bytes(*qs));
    let mask = _mm_set1_epi8(0x3);
    let f0 = _mm_and_si128(raw, mask);
    let f1 = _mm_and_si128(_mm_srli_epi64(raw, 2), mask);
    let f2 = _mm_and_si128(_mm_srli_epi64(raw, 4), mask);
    let f3 = _mm_and_si128(_mm_srli_epi64(raw, 6), mask);
    let lo = _mm_unpacklo_epi64(f0, f1); // codes 0..16
    let hi = _mm_unpacklo_epi64(f2, f3); // codes 16..32
    _mm256_inserti128_si256(_mm256_castsi128_si256(lo), hi, 1)
}

/// Expands a 32-bit mask to bytes: lane `l` = `0xFF` if bit `l` set.
#[inline]
#[target_feature(enable = "avx2")]
fn expand_bits32(mask: u32) -> __m256i {
    let v = _mm256_set1_epi32(mask as i32);
    // Byte l of each 128-bit lane must pick source byte l/8 (bytes 0,1 in
    // the low lane, 2,3 in the high lane of the replicated u32).
    let sel = _mm256_set_epi8(
        3, 3, 3, 3, 3, 3, 3, 3, 2, 2, 2, 2, 2, 2, 2, 2, //
        1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0,
    );
    let bytes = _mm256_shuffle_epi8(v, sel);
    let bits = _mm256_set_epi8(
        -128, 64, 32, 16, 8, 4, 2, 1, -128, 64, 32, 16, 8, 4, 2, 1, //
        -128, 64, 32, 16, 8, 4, 2, 1, -128, 64, 32, 16, 8, 4, 2, 1,
    );
    _mm256_cmpeq_epi8(_mm256_and_si256(bytes, bits), bits)
}

/// `Q4_0 × Q8_0` row dot.
///
/// # Panics
///
/// Panics if the rows have different block counts.
#[target_feature(enable = "avx2,fma")]
pub fn vec_dot_q4(w: &[BlockQ4_0], a: &[BlockQ8_0]) -> f32 {
    assert_eq!(w.len(), a.len(), "block count mismatch");
    let mut acc = _mm256_setzero_ps();
    for (wb, ab) in w.iter().zip(a) {
        let sumi = block_dot_i32(unpack_q4(wb), load_act(ab));
        let d = _mm256_set1_ps(wb.d * ab.d);
        acc = _mm256_fmadd_ps(d, _mm256_cvtepi32_ps(sumi), acc);
    }
    simd::hsum_ps(acc)
}

/// `Q3S × Q8_0` row dot (2-bit planes plus high-bit mask merge).
///
/// # Panics
///
/// Panics if the rows have different block counts.
#[target_feature(enable = "avx2,fma")]
pub fn vec_dot_q3(w: &[BlockQ3S], a: &[BlockQ8_0]) -> f32 {
    assert_eq!(w.len(), a.len(), "block count mismatch");
    let mut acc = _mm256_setzero_ps();
    for (wb, ab) in w.iter().zip(a) {
        let lo = unpack_2bit_fields(&wb.qlo);
        let himask = expand_bits32(u32::from_le_bytes(wb.qhi));
        let hi = _mm256_and_si256(himask, _mm256_set1_epi8(4));
        let codes = _mm256_sub_epi8(_mm256_or_si256(lo, hi), _mm256_set1_epi8(4));
        let sumi = block_dot_i32(codes, load_act(ab));
        let d = _mm256_set1_ps(wb.d * ab.d);
        acc = _mm256_fmadd_ps(d, _mm256_cvtepi32_ps(sumi), acc);
    }
    simd::hsum_ps(acc)
}

/// `Q2_0 × Q8_0` row dot.
///
/// # Panics
///
/// Panics if the rows have different block counts.
#[target_feature(enable = "avx2,fma")]
pub fn vec_dot_q2(w: &[BlockQ2_0], a: &[BlockQ8_0]) -> f32 {
    assert_eq!(w.len(), a.len(), "block count mismatch");
    let mut acc = _mm256_setzero_ps();
    for (wb, ab) in w.iter().zip(a) {
        let codes = _mm256_sub_epi8(unpack_2bit_fields(&wb.qs), _mm256_set1_epi8(2));
        let sumi = block_dot_i32(codes, load_act(ab));
        let d = _mm256_set1_ps(wb.d * ab.d);
        acc = _mm256_fmadd_ps(d, _mm256_cvtepi32_ps(sumi), acc);
    }
    simd::hsum_ps(acc)
}

/// `Q1_0 × Q8_0` row dot (sign weights, `±1` codes, scale halved).
///
/// # Panics
///
/// Panics if the rows have different block counts.
#[target_feature(enable = "avx2,fma")]
pub fn vec_dot_q1(w: &[BlockQ1_0], a: &[BlockQ8_0]) -> f32 {
    assert_eq!(w.len(), a.len(), "block count mismatch");
    let mut acc = _mm256_setzero_ps();
    for (wb, ab) in w.iter().zip(a) {
        let mask = expand_bits32(u32::from_le_bytes(wb.qs));
        // 0xFF -> +1, 0x00 -> -1: (mask & 2) - 1.
        let codes = _mm256_sub_epi8(
            _mm256_and_si256(mask, _mm256_set1_epi8(2)),
            _mm256_set1_epi8(1),
        );
        let sumi = block_dot_i32(codes, load_act(ab));
        let d = _mm256_set1_ps(wb.d * 0.5 * ab.d);
        acc = _mm256_fmadd_ps(d, _mm256_cvtepi32_ps(sumi), acc);
    }
    simd::hsum_ps(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use tmac_quant::formats::{
        pack_row_q1_0, pack_row_q2_0, pack_row_q3s, pack_row_q4_0, quantize_q8_0,
    };
    use tmac_quant::rtn;

    #[test]
    fn avx2_matches_scalar_all_formats() {
        if !available() {
            return;
        }
        let k = 320;
        let w: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.19).sin() * 1.1).collect();
        let act: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.07).cos() * 0.8).collect();
        let aq = quantize_q8_0(&act);
        for bits in 1..=4u8 {
            let qm = rtn::quantize(&w, 1, k, bits, 32).unwrap();
            // SAFETY: AVX2+FMA checked by `available()`.
            let (got, want) = unsafe {
                match bits {
                    4 => {
                        let b = pack_row_q4_0(&qm, 0).unwrap();
                        (vec_dot_q4(&b, &aq), kernels::vec_dot_q4(&b, &aq))
                    }
                    3 => {
                        let b = pack_row_q3s(&qm, 0).unwrap();
                        (vec_dot_q3(&b, &aq), kernels::vec_dot_q3(&b, &aq))
                    }
                    2 => {
                        let b = pack_row_q2_0(&qm, 0).unwrap();
                        (vec_dot_q2(&b, &aq), kernels::vec_dot_q2(&b, &aq))
                    }
                    1 => {
                        let b = pack_row_q1_0(&qm, 0).unwrap();
                        (vec_dot_q1(&b, &aq), kernels::vec_dot_q1(&b, &aq))
                    }
                    _ => unreachable!(),
                }
            };
            assert!(
                (got - want).abs() < 1e-3 * (1.0 + want.abs()),
                "bits={bits}: avx2 {got} vs scalar {want}"
            );
        }
    }

    #[test]
    fn expand_bits_matches_scalar() {
        if !available() {
            return;
        }
        let mask = 0xA5C3_0F71u32;
        // SAFETY: AVX2 checked by `available()`.
        let got = unsafe {
            let v = expand_bits32(mask);
            let mut out = [0u8; 32];
            _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, v);
            out
        };
        for (l, &g) in got.iter().enumerate() {
            let want = if (mask >> l) & 1 == 1 { 0xFF } else { 0 };
            assert_eq!(g, want, "lane {l}");
        }
    }
}
