//! llama.cpp-style dequantization baseline for mixed-precision GEMM.
//!
//! This crate is the comparator system of the paper's evaluation: the
//! "general practice" path of Figure 1(a) and Figure 3 (right). Weights are
//! stored in packed per-bit-width block formats; at inference time
//! activations are quantized to `Q8_0`, weights are *decoded* back to `i8`,
//! and the product is an integer dot plus per-block scale FMAs. Two mpGEMM
//! strategies are provided, matching llama.cpp's behaviour:
//!
//! * [`DequantLinear::gemv`]-per-row mixed-precision kernels — fastest for
//!   GEMV (token generation);
//! * [`sgemm::gemm_blas`] — dequantize to `f32` and run a blocked SGEMM,
//!   which llama.cpp (BLAS) uses for big GEMMs (prefill): "llama.cpp (BLAS)
//!   is slower for mpGEMV but faster for mpGEMM" (§5.1).
//!
//! The kernels deliberately reproduce llama.cpp's cost structure: decode
//! work per weight does **not** shrink with bit-width (and grows for 3-bit
//! due to the 2+1 split), which is the baseline behaviour T-MAC's Figure 6
//! is contrasted against.

pub mod avx2;
pub mod kernels;
pub mod sgemm;

use tmac_core::ExecCtx;
use tmac_quant::formats::{
    pack_row_q1_0, pack_row_q2_0, pack_row_q3s, pack_row_q4_0, quantize_q8_0, BlockQ1_0, BlockQ2_0,
    BlockQ3S, BlockQ4_0, QK,
};
use tmac_quant::{QuantError, QuantizedMatrix};

/// Packed weight rows in one of the llama.cpp-style formats.
#[derive(Debug, Clone)]
pub enum PackedRows {
    /// 1-bit sign blocks.
    Q1(Vec<BlockQ1_0>),
    /// 2-bit blocks.
    Q2(Vec<BlockQ2_0>),
    /// 3-bit 2+1-split blocks.
    Q3(Vec<BlockQ3S>),
    /// 4-bit split-halves blocks.
    Q4(Vec<BlockQ4_0>),
}

/// A dequantization-baseline linear layer (row-major `rows × cols`).
#[derive(Debug, Clone)]
pub struct DequantLinear {
    rows: usize,
    cols: usize,
    bits: u8,
    blocks_per_row: usize,
    packed: PackedRows,
    /// Retained for the BLAS path (on-the-fly dequantization).
    qm: QuantizedMatrix,
}

/// Shared-output wrapper: threads write disjoint row ranges.
struct OutPtr(*mut f32);
// SAFETY: dispatches partition rows disjointly and the output outlives the
// dispatch (the pool blocks until completion).
unsafe impl Sync for OutPtr {}

impl DequantLinear {
    /// Packs a canonical quantized matrix into the baseline's block format.
    ///
    /// # Errors
    ///
    /// Fails if `qm` is malformed or `group_size != 32` (block formats are
    /// 32-wide, like llama.cpp's `QK`).
    pub fn new(qm: &QuantizedMatrix) -> Result<Self, QuantError> {
        qm.validate()?;
        let blocks_per_row = qm.cols / QK;
        let packed = match qm.bits {
            1 => {
                let mut v = Vec::with_capacity(qm.rows * blocks_per_row);
                for r in 0..qm.rows {
                    v.extend(pack_row_q1_0(qm, r)?);
                }
                PackedRows::Q1(v)
            }
            2 => {
                let mut v = Vec::with_capacity(qm.rows * blocks_per_row);
                for r in 0..qm.rows {
                    v.extend(pack_row_q2_0(qm, r)?);
                }
                PackedRows::Q2(v)
            }
            3 => {
                let mut v = Vec::with_capacity(qm.rows * blocks_per_row);
                for r in 0..qm.rows {
                    v.extend(pack_row_q3s(qm, r)?);
                }
                PackedRows::Q3(v)
            }
            4 => {
                let mut v = Vec::with_capacity(qm.rows * blocks_per_row);
                for r in 0..qm.rows {
                    v.extend(pack_row_q4_0(qm, r)?);
                }
                PackedRows::Q4(v)
            }
            b => return Err(QuantError::UnsupportedBits(b)),
        };
        Ok(DequantLinear {
            rows: qm.rows,
            cols: qm.cols,
            bits: qm.bits,
            blocks_per_row,
            packed,
            qm: qm.clone(),
        })
    }

    /// Output features `M`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input features `K`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Weight bit-width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The canonical matrix this layer was packed from.
    pub fn quantized(&self) -> &QuantizedMatrix {
        &self.qm
    }

    /// One output row's dot product against pre-quantized activations.
    fn row_dot(&self, row: usize, aq: &[tmac_quant::formats::BlockQ8_0], use_avx2: bool) -> f32 {
        let b0 = row * self.blocks_per_row;
        let b1 = b0 + self.blocks_per_row;
        #[cfg(target_arch = "x86_64")]
        if use_avx2 {
            // SAFETY: `use_avx2` implies `avx2::available()`.
            unsafe {
                return match &self.packed {
                    PackedRows::Q1(v) => avx2::vec_dot_q1(&v[b0..b1], aq),
                    PackedRows::Q2(v) => avx2::vec_dot_q2(&v[b0..b1], aq),
                    PackedRows::Q3(v) => avx2::vec_dot_q3(&v[b0..b1], aq),
                    PackedRows::Q4(v) => avx2::vec_dot_q4(&v[b0..b1], aq),
                };
            }
        }
        let _ = use_avx2;
        match &self.packed {
            PackedRows::Q1(v) => kernels::vec_dot_q1(&v[b0..b1], aq),
            PackedRows::Q2(v) => kernels::vec_dot_q2(&v[b0..b1], aq),
            PackedRows::Q3(v) => kernels::vec_dot_q3(&v[b0..b1], aq),
            PackedRows::Q4(v) => kernels::vec_dot_q4(&v[b0..b1], aq),
        }
    }

    /// Mixed-precision GEMV (llama.cpp's token-generation path).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Shape`] on length mismatches.
    pub fn gemv(&self, act: &[f32], out: &mut [f32], ctx: &ExecCtx) -> Result<(), QuantError> {
        if act.len() != self.cols {
            return Err(QuantError::Shape(format!(
                "activation length {} != K {}",
                act.len(),
                self.cols
            )));
        }
        if out.len() != self.rows {
            return Err(QuantError::Shape(format!(
                "output length {} != M {}",
                out.len(),
                self.rows
            )));
        }
        let aq = quantize_q8_0(act);
        let use_avx2 = avx2::available();
        let out_ptr = OutPtr(out.as_mut_ptr());
        let out_ref = &out_ptr;
        ctx.pool().chunks(self.rows, 8, |range| {
            for m in range {
                let v = self.row_dot(m, &aq, use_avx2);
                // SAFETY: row ranges are disjoint across threads; `out`
                // outlives the dispatch.
                unsafe { *out_ref.0.add(m) = v };
            }
        });
        Ok(())
    }

    /// Mixed-precision GEMM as `n` successive GEMVs (llama.cpp's
    /// non-BLAS path; see [`sgemm::gemm_blas`] for the BLAS route).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::Shape`] on length mismatches.
    pub fn gemm_mixed(
        &self,
        act: &[f32],
        n: usize,
        out: &mut [f32],
        ctx: &ExecCtx,
    ) -> Result<(), QuantError> {
        if act.len() != n * self.cols || out.len() != n * self.rows {
            return Err(QuantError::Shape("gemm_mixed length mismatch".into()));
        }
        for ni in 0..n {
            let a = &act[ni * self.cols..(ni + 1) * self.cols];
            let o = &mut out[ni * self.rows..(ni + 1) * self.rows];
            self.gemv(a, o, ctx)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmac_quant::rtn;

    fn setup(m: usize, k: usize, bits: u8) -> (QuantizedMatrix, Vec<f32>) {
        let w: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32) * 0.17).sin() * 0.8)
            .collect();
        let act: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.09).cos()).collect();
        (rtn::quantize(&w, m, k, bits, 32).unwrap(), act)
    }

    #[test]
    fn gemv_tracks_f32_reference_all_bits() {
        let ctx = ExecCtx::new(2);
        for bits in 1..=4u8 {
            let (qm, act) = setup(64, 128, bits);
            let lin = DequantLinear::new(&qm).unwrap();
            let mut out = vec![0f32; 64];
            lin.gemv(&act, &mut out, &ctx).unwrap();
            // Reference: dequantized weights x f32 activations.
            let d = qm.dequantize();
            let reference: Vec<f32> = (0..64)
                .map(|m| {
                    d[m * 128..(m + 1) * 128]
                        .iter()
                        .zip(&act)
                        .map(|(w, a)| w * a)
                        .sum()
                })
                .collect();
            let nmse = tmac_simd::f32ops::nmse(&out, &reference);
            // Activation quantization (Q8) is the only error source.
            assert!(nmse < 1e-4, "bits={bits} nmse={nmse}");
        }
    }

    #[test]
    fn gemm_mixed_matches_gemv_rows() {
        let (qm, _) = setup(32, 64, 2);
        let lin = DequantLinear::new(&qm).unwrap();
        let ctx = ExecCtx::new(1);
        let n = 3;
        let act: Vec<f32> = (0..n * 64).map(|i| ((i as f32) * 0.21).sin()).collect();
        let mut out = vec![0f32; n * 32];
        lin.gemm_mixed(&act, n, &mut out, &ctx).unwrap();
        for ni in 0..n {
            let mut row = vec![0f32; 32];
            lin.gemv(&act[ni * 64..(ni + 1) * 64], &mut row, &ctx)
                .unwrap();
            assert_eq!(&out[ni * 32..(ni + 1) * 32], &row[..]);
        }
    }

    #[test]
    fn rejects_group_size_other_than_32() {
        let w: Vec<f32> = (0..64 * 64).map(|i| i as f32 * 0.01).collect();
        let qm = rtn::quantize(&w, 64, 64, 4, 64).unwrap();
        assert!(DequantLinear::new(&qm).is_err());
    }

    #[test]
    fn rejects_length_mismatches() {
        let (qm, act) = setup(32, 64, 4);
        let lin = DequantLinear::new(&qm).unwrap();
        let ctx = ExecCtx::new(1);
        let mut out = vec![0f32; 32];
        assert!(lin.gemv(&act[..32], &mut out, &ctx).is_err());
        let mut short = vec![0f32; 31];
        assert!(lin.gemv(&act, &mut short, &ctx).is_err());
    }
}
