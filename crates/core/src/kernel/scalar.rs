//! Portable reference kernels.
//!
//! [`gemv_reference`] computes the ground truth from dequantized weights in
//! `f64` (no T-MAC machinery at all). [`gemv_plan`] executes the full T-MAC
//! pipeline — plan layouts, quantized/mirrored tables, fast-aggregation
//! trees — in scalar code, matching the SIMD kernels' arithmetic exactly so
//! the two can be compared bit-for-bit in integer space.

use crate::opts::{LUT_GROUP, TILE_M};
use crate::plan::WeightPlan;
use crate::table::{ActTables, BatchTables, FA_OFFSET};
use crate::TmacError;
use std::ops::Range;
use tmac_quant::QuantizedMatrix;

/// Ground-truth mpGEMV: `out = act × dequant(W)^T` in `f64` accumulation.
///
/// # Panics
///
/// Panics if `act.len() != qm.cols`.
pub fn gemv_reference(qm: &QuantizedMatrix, act: &[f32]) -> Vec<f32> {
    assert_eq!(act.len(), qm.cols, "activation length mismatch");
    let mut row = vec![0f32; qm.cols];
    let mut out = vec![0f32; qm.rows];
    for (m, o) in out.iter_mut().enumerate() {
        qm.dequantize_row(m, &mut row);
        let mut acc = 0f64;
        for (a, w) in act.iter().zip(&row) {
            acc += (*a as f64) * (*w as f64);
        }
        *o = acc as f32;
    }
    out
}

/// Executes one m-tile of the T-MAC GEMV in scalar code.
///
/// `out` receives the `TILE_M` results of tile `mt`. The arithmetic —
/// integer accumulation widths, fast-aggregation tree shape, per-block
/// application order — replicates the AVX2 kernel exactly.
pub fn gemv_plan_mtile(plan: &WeightPlan, tables: &ActTables, mt: usize, out: &mut [f32; TILE_M]) {
    let bits = plan.bits;
    let gpr = plan.groups_per_row();
    let kg_per_block = plan.group_size / LUT_GROUP;
    let m0 = mt * TILE_M;
    out.fill(0.0);

    for sb in 0..gpr {
        let kg0 = sb * kg_per_block;
        if tables.quantized {
            let lut_scale = tables.q_scales[sb];
            let asum = tables.asums[sb];
            // Fast aggregation: each rounding average biases its output by
            // +0.25 in expectation, and the bias of every tree level
            // propagates to the root undiminished in aggregate — the root
            // carries ≈ +0.25·depth. Subtract this probabilistic bias (the
            // MADDNESS correction the paper adopts, §4), folded into the
            // per-block bias term so the inner loop is untouched.
            let fa_delta = if plan.opts.fast_aggregation {
                let kgb = kg_per_block as f32;
                let depth = kg_per_block.trailing_zeros() as f32;
                -0.25 * depth * kgb * (((1u32 << bits) - 1) as f32)
            } else {
                0.0
            };
            let bias = plan.cz * asum + 0.5 * lut_scale * fa_delta;
            for (r, o) in out.iter_mut().enumerate() {
                let m = m0 + r;
                let mut block = 0f32;
                for bit in 0..bits {
                    let lq: i32 = if plan.opts.fast_aggregation {
                        fa_tree_row(plan, tables, m, bit, kg0, kg_per_block)
                    } else {
                        (0..kg_per_block)
                            .map(|kgi| {
                                let kg = kg0 + kgi;
                                tables.lookup_q(kg, plan.index(bit, m, kg)) as i32
                            })
                            .sum()
                    };
                    block += (1u32 << bit) as f32 * lq as f32;
                }
                let s = plan.scale(m, sb);
                *o += s * (0.5 * lut_scale * block + bias);
            }
        } else {
            let asum = tables.asums[sb];
            let bias = plan.cz * asum;
            for (r, o) in out.iter_mut().enumerate() {
                let m = m0 + r;
                let mut block = 0f32;
                for bit in 0..bits {
                    let mut l = 0f32;
                    for kgi in 0..kg_per_block {
                        let kg = kg0 + kgi;
                        l += tables.lookup_f32(kg, plan.index(bit, m, kg));
                    }
                    block += (1u32 << bit) as f32 * l;
                }
                let s = plan.scale(m, sb);
                *o += s * (0.5 * block + bias);
            }
        }
    }
}

/// Fast-aggregation tree for one row/bit within one scale block.
///
/// Looks up the `u8` (offset) tables and reduces them with the exact
/// `avg_u8` pairing the SIMD kernel uses: level by level, adjacent pairs.
/// Returns the reconstructed integer sum `(tree - 128) * n_groups`.
fn fa_tree_row(
    plan: &WeightPlan,
    tables: &ActTables,
    m: usize,
    bit: usize,
    kg0: usize,
    kg_per_block: usize,
) -> i32 {
    debug_assert!(kg_per_block.is_power_of_two());
    let mut vals = [0u8; 64];
    for (kgi, v) in vals.iter_mut().take(kg_per_block).enumerate() {
        let kg = kg0 + kgi;
        let q = tables.lookup_q(kg, plan.index(bit, m, kg));
        *v = (q as i32 + FA_OFFSET) as u8;
    }
    let mut n = kg_per_block;
    while n > 1 {
        for j in 0..n / 2 {
            vals[j] = tmac_simd::scalar::avg_u8(vals[2 * j], vals[2 * j + 1]);
        }
        n /= 2;
    }
    (vals[0] as i32 - FA_OFFSET) * kg_per_block as i32
}

/// Executes the scale blocks `sbs` of one m-tile for a whole *row block* in
/// scalar code, accumulating into `outs` (row-major `rows × TILE_M`, which
/// the caller zeroes before the first K-panel).
///
/// Per row, the arithmetic — integer accumulation, fast-aggregation tree,
/// per-block `f32` application order — is identical to
/// [`gemv_plan_mtile`]'s, so calling this once over the full scale-block
/// range (or panel by panel in increasing order) produces bit-identical
/// results to `rows` independent GEMV calls. The only difference is the
/// table *source*: the interleaved [`BatchTables`] layout.
///
/// # Panics
///
/// Panics if the tables are not compatible with `plan` (debug), `outs` is
/// shorter than `rows × TILE_M`, or `sbs` exceeds the plan's blocks.
pub fn gemm_plan_mtile(
    plan: &WeightPlan,
    batch: &BatchTables,
    mt: usize,
    sbs: Range<usize>,
    outs: &mut [f32],
) {
    let bits = plan.bits;
    let kg_per_block = plan.group_size / LUT_GROUP;
    let m0 = mt * TILE_M;
    assert!(sbs.end <= plan.groups_per_row(), "scale block out of range");
    assert!(outs.len() >= batch.rows * TILE_M, "outs too short");
    debug_assert_eq!(batch.k, plan.k);
    debug_assert_eq!(batch.group_size, plan.group_size);

    for sb in sbs {
        let kg0 = sb * kg_per_block;
        for r in 0..batch.rows {
            let lut_scale = batch.q_scale(r, sb);
            let asum = batch.asum(r, sb);
            // Same probabilistic FA bias correction as the GEMV kernel.
            let fa_delta = if plan.opts.fast_aggregation {
                let kgb = kg_per_block as f32;
                let depth = kg_per_block.trailing_zeros() as f32;
                -0.25 * depth * kgb * (((1u32 << bits) - 1) as f32)
            } else {
                0.0
            };
            let bias = plan.cz * asum + 0.5 * lut_scale * fa_delta;
            let out_row = &mut outs[r * TILE_M..(r + 1) * TILE_M];
            for (lane, o) in out_row.iter_mut().enumerate() {
                let m = m0 + lane;
                let mut block = 0f32;
                for bit in 0..bits {
                    let lq: i32 = if plan.opts.fast_aggregation {
                        fa_tree_row_batch(plan, batch, r, m, bit, kg0, kg_per_block)
                    } else {
                        (0..kg_per_block)
                            .map(|kgi| {
                                let kg = kg0 + kgi;
                                batch.lookup_q(r, kg, plan.index(bit, m, kg)) as i32
                            })
                            .sum()
                    };
                    block += (1u32 << bit) as f32 * lq as f32;
                }
                let s = plan.scale(m, sb);
                *o += s * (0.5 * lut_scale * block + bias);
            }
        }
    }
}

/// Fast-aggregation tree for one (row, bit) of a batch block — the
/// interleaved-layout twin of [`fa_tree_row`], with the identical `avg_u8`
/// pairing.
fn fa_tree_row_batch(
    plan: &WeightPlan,
    batch: &BatchTables,
    r: usize,
    m: usize,
    bit: usize,
    kg0: usize,
    kg_per_block: usize,
) -> i32 {
    debug_assert!(kg_per_block.is_power_of_two());
    let mut vals = [0u8; 64];
    for (kgi, v) in vals.iter_mut().take(kg_per_block).enumerate() {
        let kg = kg0 + kgi;
        let q = batch.lookup_q(r, kg, plan.index(bit, m, kg));
        *v = (q as i32 + FA_OFFSET) as u8;
    }
    let mut n = kg_per_block;
    while n > 1 {
        for j in 0..n / 2 {
            vals[j] = tmac_simd::scalar::avg_u8(vals[2 * j], vals[2 * j + 1]);
        }
        n /= 2;
    }
    (vals[0] as i32 - FA_OFFSET) * kg_per_block as i32
}

/// Full scalar GEMV over all tiles (single-threaded helper; the driver
/// parallelizes over tiles itself).
///
/// # Errors
///
/// Returns [`TmacError::Shape`] on length mismatches.
pub fn gemv_plan(plan: &WeightPlan, tables: &ActTables, out: &mut [f32]) -> Result<(), TmacError> {
    if out.len() != plan.m {
        return Err(TmacError::Shape(format!(
            "output length {} != M {}",
            out.len(),
            plan.m
        )));
    }
    if tables.k != plan.k {
        return Err(TmacError::Shape(format!(
            "tables built for K {} but plan has K {}",
            tables.k, plan.k
        )));
    }
    let mut buf = [0f32; TILE_M];
    for mt in 0..plan.m_tiles() {
        gemv_plan_mtile(plan, tables, mt, &mut buf);
        let m0 = mt * TILE_M;
        let take = TILE_M.min(plan.m - m0);
        out[m0..m0 + take].copy_from_slice(&buf[..take]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::KernelOpts;
    use tmac_quant::rtn;

    fn setup(m: usize, k: usize, bits: u8, gs: usize) -> (QuantizedMatrix, Vec<f32>) {
        let w: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32 * 0.13).sin() * 0.9) + ((i % 5) as f32 - 2.0) * 0.05)
            .collect();
        let act: Vec<f32> = (0..k).map(|i| ((i as f32 * 0.29).cos()) * 1.1).collect();
        (rtn::quantize(&w, m, k, bits, gs).unwrap(), act)
    }

    /// The plan kernel with *unquantized* tables must equal the dequantized
    /// reference to f32 round-off: the bit-serial identity (Eq. 1 plus the
    /// {-1,+1} transform) is exact.
    #[test]
    fn bit_serial_identity_exact_all_bits() {
        for bits in 1..=4u8 {
            let (qm, act) = setup(48, 128, bits, 32);
            let reference = gemv_reference(&qm, &act);
            let plan = WeightPlan::new(&qm, KernelOpts::tm_base()).unwrap();
            let tables = ActTables::build(&act, 32, &KernelOpts::tm_base()).unwrap();
            let mut out = vec![0f32; 48];
            gemv_plan(&plan, &tables, &mut out).unwrap();
            for (m, (&r, &o)) in reference.iter().zip(&out).enumerate() {
                let tol = 1e-3 * (1.0 + r.abs());
                assert!((r - o).abs() < tol, "bits={bits} m={m}: {r} vs {o}");
            }
        }
    }

    /// Table quantization introduces only a bounded, small error.
    #[test]
    fn table_quantization_error_small() {
        let (qm, act) = setup(64, 256, 4, 32);
        let reference = gemv_reference(&qm, &act);
        for opts in [
            KernelOpts::plus_table_quant(),
            KernelOpts::plus_tiling(),
            KernelOpts::plus_permute(),
            KernelOpts::tmac(),
        ] {
            let plan = WeightPlan::new(&qm, opts).unwrap();
            let tables = ActTables::build(&act, 32, &opts).unwrap();
            let mut out = vec![0f32; 64];
            gemv_plan(&plan, &tables, &mut out).unwrap();
            let nmse = tmac_simd::f32ops::nmse(&out, &reference);
            assert!(nmse < 1e-4, "opts={opts:?} nmse={nmse}");
        }
    }

    /// Fast aggregation is lossier but still correlated (paper Table 3:
    /// NMSE grows ~2.5x but stays ~1e-2 relative).
    #[test]
    fn fast_aggregation_error_larger_but_bounded() {
        let (qm, act) = setup(64, 256, 4, 32);
        let reference = gemv_reference(&qm, &act);
        let exact_opts = KernelOpts::tmac();
        let fa_opts = KernelOpts::tmac_fast_aggregation();
        let run = |opts: KernelOpts| {
            let plan = WeightPlan::new(&qm, opts).unwrap();
            let tables = ActTables::build(&act, 32, &opts).unwrap();
            let mut out = vec![0f32; 64];
            gemv_plan(&plan, &tables, &mut out).unwrap();
            tmac_simd::f32ops::nmse(&out, &reference)
        };
        let exact = run(exact_opts);
        let fa = run(fa_opts);
        assert!(fa > exact, "FA should be lossier: {fa} vs {exact}");
        assert!(fa < 5e-2, "FA error should stay bounded: {fa}");
    }

    /// All layout variants compute the identical result (integer paths are
    /// bit-identical; the f32 fold order is the same).
    #[test]
    fn layouts_agree_exactly() {
        let (qm, act) = setup(40, 128, 3, 32);
        let base = {
            let o = KernelOpts::plus_table_quant();
            let plan = WeightPlan::new(&qm, o).unwrap();
            let t = ActTables::build(&act, 32, &o).unwrap();
            let mut out = vec![0f32; 40];
            gemv_plan(&plan, &t, &mut out).unwrap();
            out
        };
        for opts in [
            KernelOpts::plus_tiling(),
            KernelOpts::plus_permute(),
            KernelOpts::plus_tuning(64, 4),
            KernelOpts::tmac(),
        ] {
            let plan = WeightPlan::new(&qm, opts).unwrap();
            let t = ActTables::build(&act, 32, &opts).unwrap();
            let mut out = vec![0f32; 40];
            gemv_plan(&plan, &t, &mut out).unwrap();
            for (m, (&b, &o)) in base.iter().zip(&out).enumerate() {
                assert_eq!(b, o, "opts={opts:?} m={m}");
            }
        }
    }

    /// The multi-row scalar kernel over the interleaved layout must be
    /// bit-identical to per-row GEMV calls, for every quantized option
    /// combination and regardless of how the scale blocks are split into
    /// K-panels.
    #[test]
    fn gemm_mtile_bit_identical_to_per_row_gemv() {
        let rows = 3;
        for opts in [
            KernelOpts::plus_table_quant(),
            KernelOpts::plus_permute(),
            KernelOpts::tmac(),
            KernelOpts::tmac_mirror(),
            KernelOpts::tmac_fast_aggregation(),
        ] {
            for bits in [1u8, 2, 4] {
                let (qm, _) = setup(40, 128, bits, 32);
                let plan = WeightPlan::new(&qm, opts).unwrap();
                let row_tables: Vec<ActTables> = (0..rows)
                    .map(|r| {
                        let a: Vec<f32> = (0..128)
                            .map(|i| ((i as f32) * 0.29 + r as f32).cos() * 1.1)
                            .collect();
                        ActTables::build(&a, 32, &opts).unwrap()
                    })
                    .collect();
                let batch = BatchTables::interleave(&row_tables).unwrap();
                let gpr = plan.groups_per_row();
                for mt in 0..plan.m_tiles() {
                    let mut want = vec![0f32; rows * TILE_M];
                    for (r, t) in row_tables.iter().enumerate() {
                        let mut buf = [0f32; TILE_M];
                        gemv_plan_mtile(&plan, t, mt, &mut buf);
                        want[r * TILE_M..(r + 1) * TILE_M].copy_from_slice(&buf);
                    }
                    // One panel covering everything…
                    let mut got = vec![0f32; rows * TILE_M];
                    gemm_plan_mtile(&plan, &batch, mt, 0..gpr, &mut got);
                    assert_eq!(got, want, "opts={opts:?} bits={bits} mt={mt}");
                    // …and split into single-scale-block panels.
                    let mut panelled = vec![0f32; rows * TILE_M];
                    for sb in 0..gpr {
                        gemm_plan_mtile(&plan, &batch, mt, sb..sb + 1, &mut panelled);
                    }
                    assert_eq!(panelled, want, "panelled opts={opts:?} bits={bits}");
                }
            }
        }
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let (qm, act) = setup(32, 64, 2, 32);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let tables = ActTables::build(&act, 32, &KernelOpts::tmac()).unwrap();
        let mut bad = vec![0f32; 31];
        assert!(gemv_plan(&plan, &tables, &mut bad).is_err());
    }
}
