//! AVX2 production kernels.
//!
//! The materialization of the paper's Figure 3 tile on x86: for each
//! 16-byte weight step, one `PSHUFB` performs 32 table lookups (table
//! duplicated across both 128-bit lanes), results widen into `i16`
//! accumulators, and each scale block folds into `f32` output accumulators
//! with two FMAs. Layout/option combinations map to monomorphized kernels:
//!
//! | options | kernel |
//! |---|---|
//! | permuted, quantized, exact | `mtile_permuted<IL, MIRROR>` |
//! | permuted, quantized, exact, multi-row | `gemm_mtile_rows<IL, MIRROR, R>` |
//! | permuted, quantized, fast aggregation | `mtile_permuted_fa<IL, MIRROR>` |
//! | flat, quantized (TM-base `+TQ`, `+Tiling`) | `mtile_flat_quant` |
//! | flat, `f32` tables (TM-base) | `mtile_flat_gather` |
//!
//! Everything here is `#[target_feature(enable = "avx2,fma")]`; the driver
//! checks [`tmac_simd::avx2::available`] once per call.

#![allow(clippy::needless_range_loop)] // Index loops mirror the kernel structure.

use crate::opts::{KernelOpts, LUT_GROUP, TILE_M};
use crate::plan::{Layout, WeightPlan};
use crate::table::{ActTables, BatchTables};
use std::arch::x86_64::*;
use std::ops::Range;
use tmac_simd::avx2 as simd;

/// Maximum supported k-groups per scale block (`group_size / 4`).
pub const MAX_KG_PER_BLOCK: usize = 64;

/// Maximum rows per register block of the multi-row kernel ([`gemm_mtile`])
/// — the shared [`crate::opts::MAX_ROW_BLOCK`] limit (the dispatch in
/// [`gemm_mtile`] is monomorphized for exactly these row counts).
pub const MAX_ROW_BLOCK: usize = crate::opts::MAX_ROW_BLOCK;

/// Whether an AVX2 kernel exists for this option combination.
///
/// Combinations without a dedicated kernel (e.g. mirror consolidation on a
/// flat layout) fall back to the scalar plan kernel in the driver.
pub fn supported(opts: &KernelOpts) -> bool {
    if !simd::available() {
        return false;
    }
    if opts.table_quant {
        // Flat layouts support only the plain quantized kernel.
        opts.permute || (!opts.mirror && !opts.fast_aggregation)
    } else {
        // f32 tables: gather kernel on flat layouts only.
        !opts.permute
    }
}

/// Whether the multi-row mpGEMM kernel ([`gemm_mtile`]) serves this option
/// combination on this host.
///
/// The register-blocked kernel exists for the permuted, quantized, exact
/// layouts (interleave and mirror both supported). Fast aggregation and the
/// flat/f32 layouts stay on the per-row sweep.
pub fn gemm_supported(opts: &KernelOpts) -> bool {
    simd::available()
        && opts.table_quant
        && opts.permute
        && !opts.fast_aggregation
        && supported(opts)
}

/// Executes one m-tile, dispatching to the right monomorphized kernel.
///
/// # Safety
///
/// The caller must have verified that the host CPU supports AVX2 and FMA
/// (e.g. via [`supported`], which performs the runtime feature check).
///
/// # Panics
///
/// Panics if the plan/tables combination has no AVX2 kernel (the driver
/// checks [`supported`] first) or if `group_size / 4 > MAX_KG_PER_BLOCK`.
#[target_feature(enable = "avx2,fma")]
pub fn gemv_mtile(plan: &WeightPlan, tables: &ActTables, mt: usize, out: &mut [f32; TILE_M]) {
    let o = &plan.opts;
    match plan.layout() {
        Layout::Permuted { interleaved } => {
            debug_assert!(tables.quantized);
            match (interleaved, o.mirror, o.fast_aggregation) {
                (false, false, false) => mtile_permuted::<false, false>(plan, tables, mt, out),
                (false, true, false) => mtile_permuted::<false, true>(plan, tables, mt, out),
                (true, false, false) => mtile_permuted::<true, false>(plan, tables, mt, out),
                (true, true, false) => mtile_permuted::<true, true>(plan, tables, mt, out),
                (false, false, true) => mtile_permuted_fa::<false, false>(plan, tables, mt, out),
                (false, true, true) => mtile_permuted_fa::<false, true>(plan, tables, mt, out),
                (true, false, true) => mtile_permuted_fa::<true, false>(plan, tables, mt, out),
                (true, true, true) => mtile_permuted_fa::<true, true>(plan, tables, mt, out),
            }
        }
        Layout::Flat => {
            if tables.quantized {
                mtile_flat_quant(plan, tables, mt, out);
            } else {
                mtile_flat_gather(plan, tables, mt, out);
            }
        }
    }
}

/// Loads the duplicated 16-entry table for k-group `kg`.
#[inline]
#[target_feature(enable = "avx2")]
fn load_table(q_tables: &[i8], base: usize) -> __m256i {
    let slice: &[i8; 16] = q_tables[base..base + 16]
        .try_into()
        .expect("table slice is 16 bytes");
    simd::dup_table16(slice)
}

/// Four f32 output accumulators covering the 32 tile rows.
#[derive(Clone, Copy)]
struct OutAcc(__m256, __m256, __m256, __m256);

impl OutAcc {
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn zero() -> Self {
        OutAcc(
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
            _mm256_setzero_ps(),
        )
    }

    /// `out += scales * (block * sc + bias)` — the per-scale-block fold.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn fold(&mut self, blk: &OutAcc, sc: __m256, bias: __m256, scales: &[f32]) {
        let t0 = _mm256_fmadd_ps(blk.0, sc, bias);
        let t1 = _mm256_fmadd_ps(blk.1, sc, bias);
        let t2 = _mm256_fmadd_ps(blk.2, sc, bias);
        let t3 = _mm256_fmadd_ps(blk.3, sc, bias);
        self.0 = _mm256_fmadd_ps(t0, simd::loadu_ps(&scales[0..]), self.0);
        self.1 = _mm256_fmadd_ps(t1, simd::loadu_ps(&scales[8..]), self.1);
        self.2 = _mm256_fmadd_ps(t2, simd::loadu_ps(&scales[16..]), self.2);
        self.3 = _mm256_fmadd_ps(t3, simd::loadu_ps(&scales[24..]), self.3);
    }

    /// Accumulates `weight * f32(acc_i16_pair)` into the block
    /// (row-linear accumulator layout: `.0` = rows 0..16, `.1` = 16..32).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn add_weighted_i16(&mut self, acc: (__m256i, __m256i), weight: __m256) {
        let (f0, f1) = simd::i16_to_f32x2(acc.0);
        let (f2, f3) = simd::i16_to_f32x2(acc.1);
        self.0 = _mm256_fmadd_ps(weight, f0, self.0);
        self.1 = _mm256_fmadd_ps(weight, f1, self.1);
        self.2 = _mm256_fmadd_ps(weight, f2, self.2);
        self.3 = _mm256_fmadd_ps(weight, f3, self.3);
    }

    /// Accumulates `weight * f32(acc_i16_pair)` for the *paired* layout the
    /// `maddubs` accumulation produces: `.0` = rows [0..8 | 16..24], `.1` =
    /// rows [8..16 | 24..32].
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn add_weighted_i16_paired(&mut self, acc: (__m256i, __m256i), weight: __m256) {
        let (f0, f1) = simd::i16_to_f32x2(acc.0);
        let (f2, f3) = simd::i16_to_f32x2(acc.1);
        self.0 = _mm256_fmadd_ps(weight, f0, self.0);
        self.2 = _mm256_fmadd_ps(weight, f1, self.2);
        self.1 = _mm256_fmadd_ps(weight, f2, self.1);
        self.3 = _mm256_fmadd_ps(weight, f3, self.3);
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn store(&self, out: &mut [f32; TILE_M]) {
        simd::storeu_ps(&mut out[0..], self.0);
        simd::storeu_ps(&mut out[8..], self.1);
        simd::storeu_ps(&mut out[16..], self.2);
        simd::storeu_ps(&mut out[24..], self.3);
    }

    /// Resumes the accumulator from a partial-output row (K-panel restart).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn load_from(&mut self, src: &[f32]) {
        self.0 = simd::loadu_ps(&src[0..]);
        self.1 = simd::loadu_ps(&src[8..]);
        self.2 = simd::loadu_ps(&src[16..]);
        self.3 = simd::loadu_ps(&src[24..]);
    }

    /// Stores into a `TILE_M`-float slice prefix.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn store_to(&self, out: &mut [f32]) {
        simd::storeu_ps(&mut out[0..], self.0);
        simd::storeu_ps(&mut out[8..], self.1);
        simd::storeu_ps(&mut out[16..], self.2);
        simd::storeu_ps(&mut out[24..], self.3);
    }
}

/// Prefetches the weight stream `ahead` bytes past `off` into L1 (no-op
/// past the end; prefetch has no architectural memory effects).
#[inline]
#[target_feature(enable = "avx2")]
fn prefetch_stream(stream: &[u8], off: usize, ahead: usize) {
    let target = off + ahead;
    if target < stream.len() {
        // SAFETY: the pointer is in bounds; prefetch never faults and does
        // not access memory architecturally.
        unsafe { _mm_prefetch::<_MM_HINT_T0>(stream.as_ptr().add(target) as *const i8) };
    }
}

/// Looks up one 16-byte step's 32 indices (mirror-aware).
#[inline]
#[target_feature(enable = "avx2")]
fn lookup_step<const MIRROR: bool>(tbl: __m256i, idx: __m256i, kg_odd: bool) -> __m256i {
    if MIRROR {
        let (mut folded, ctrl) = simd::mirror_fold(idx);
        if kg_odd {
            folded = _mm256_or_si256(folded, _mm256_set1_epi8(8));
        }
        simd::apply_sign(simd::tbl32(tbl, folded), ctrl)
    } else {
        simd::tbl32(tbl, idx)
    }
}

/// Streaming kernel over the permuted layout (exact aggregation).
///
/// Two throughput refinements over the naive loop, both value-preserving:
///
/// * **bit-pair loads** — two consecutive bit planes of a k-group are 32
///   adjacent stream bytes, so one 256-bit load feeds two `PSHUFB`s (the
///   low/high nibbles of each 128-bit lane belong to one bit plane each);
/// * **integer bit-serial combine** — when `Σ_i 2^i · |acc_i|` provably
///   fits `i16` (group sizes ≤ 64), the per-bit accumulators are combined
///   with shifts/adds in `i16` and converted to `f32` once, instead of four
///   widening conversions per scale block. Integer sums are exact, so the
///   result is bit-identical to the scalar reference either way.
#[target_feature(enable = "avx2,fma")]
fn mtile_permuted<const IL: bool, const MIRROR: bool>(
    plan: &WeightPlan,
    tables: &ActTables,
    mt: usize,
    out: &mut [f32; TILE_M],
) {
    let bits = plan.bits;
    let gpr = plan.groups_per_row();
    let kgb = plan.group_size / LUT_GROUP;
    let stream = plan.mtile_stream(mt);
    let mut off = 0usize;
    let mut outacc = OutAcc::zero();
    // Worst-case |combined| = kgb * 127 * (2^bits - 1) must fit i16.
    let i16_combine_safe = kgb as u32 * 127 * ((1u32 << bits) - 1) <= i16::MAX as u32;

    // One "step" is 16 stream bytes: one (k-group, bit plane). The layout
    // is bit-major within a scale block, so consecutive steps of one bit
    // cover adjacent k-groups: one 256-bit load feeds both, and the two
    // lookup results interleave byte-wise so `maddubs(1, ·)` sums each
    // row's pair into an `i16` lane — half the widening work of scalar
    // `cvtepi8_epi16` accumulation. The paired accumulator rows are
    // [0..8 | 16..24] in `.0` and [8..16 | 24..32] in `.1`; the fold stage
    // un-permutes when converting to `f32`.
    let table_for = |kg: usize| -> __m256i {
        if MIRROR {
            load_table(&tables.q_tables, (kg / 2) * 16)
        } else {
            load_table(&tables.q_tables, kg * 16)
        }
    };
    let ones = _mm256_set1_epi8(1);
    for sb in 0..gpr {
        let kg0 = sb * kgb;
        let mut acc = [(_mm256_setzero_si256(), _mm256_setzero_si256()); 4];
        for acc_bit in acc.iter_mut().take(bits) {
            let mut kgi = 0;
            while kgi < kgb {
                let pair = kgi + 1 < kgb;
                let kg_a = kg0 + kgi;
                let (vals_a, vals_b);
                if pair {
                    // One 32-byte load covers k-groups `kg_a` and `kg_a+1`.
                    let raw2 = simd::loadu_256(&stream[off..]);
                    off += TILE_M;
                    let mask = _mm256_set1_epi8(0x0F);
                    let lo_nib = _mm256_and_si256(raw2, mask);
                    let hi_nib = _mm256_and_si256(_mm256_srli_epi16::<4>(raw2), mask);
                    // Lane 0 of lo/hi belongs to kg_a, lane 1 to kg_a+1.
                    let (idx_a, idx_b) = if IL {
                        (
                            _mm256_permute2x128_si256::<0x20>(lo_nib, hi_nib),
                            _mm256_permute2x128_si256::<0x31>(lo_nib, hi_nib),
                        )
                    } else {
                        let even_odd_lo = _mm256_unpacklo_epi8(lo_nib, hi_nib);
                        let even_odd_hi = _mm256_unpackhi_epi8(lo_nib, hi_nib);
                        (
                            _mm256_permute2x128_si256::<0x20>(even_odd_lo, even_odd_hi),
                            _mm256_permute2x128_si256::<0x31>(even_odd_lo, even_odd_hi),
                        )
                    };
                    let tbl_a = table_for(kg_a);
                    // Mirror packs the even/odd k-group pair in one table.
                    let tbl_b = if MIRROR && kg_a.is_multiple_of(2) {
                        tbl_a
                    } else {
                        table_for(kg_a + 1)
                    };
                    vals_a = lookup_step::<MIRROR>(tbl_a, idx_a, kg_a % 2 == 1);
                    vals_b = lookup_step::<MIRROR>(tbl_b, idx_b, kg_a.is_multiple_of(2));
                    kgi += 2;
                } else {
                    let raw = simd::loadu_128(&stream[off..]);
                    off += TILE_M / 2;
                    let idx = if IL {
                        simd::unpack_nibbles_interleaved(raw)
                    } else {
                        simd::unpack_nibbles_sequential(raw)
                    };
                    vals_a = lookup_step::<MIRROR>(table_for(kg_a), idx, kg_a % 2 == 1);
                    vals_b = _mm256_setzero_si256();
                    kgi += 1;
                }
                // Byte-interleave the two lookups so each i16 lane holds one
                // row's pair sum.
                let inter_lo = _mm256_unpacklo_epi8(vals_a, vals_b);
                let inter_hi = _mm256_unpackhi_epi8(vals_a, vals_b);
                acc_bit.0 = _mm256_add_epi16(acc_bit.0, _mm256_maddubs_epi16(ones, inter_lo));
                acc_bit.1 = _mm256_add_epi16(acc_bit.1, _mm256_maddubs_epi16(ones, inter_hi));
            }
        }
        let mut blk = OutAcc::zero();
        if i16_combine_safe {
            let mut lo = acc[0].0;
            let mut hi = acc[0].1;
            for (bit, a) in acc.iter().enumerate().take(bits).skip(1) {
                let sh = bit as i32;
                lo = _mm256_add_epi16(lo, _mm256_sll_epi16(a.0, _mm_cvtsi32_si128(sh)));
                hi = _mm256_add_epi16(hi, _mm256_sll_epi16(a.1, _mm_cvtsi32_si128(sh)));
            }
            blk.add_weighted_i16_paired((lo, hi), _mm256_set1_ps(1.0));
        } else {
            for (bit, a) in acc.iter().enumerate().take(bits) {
                blk.add_weighted_i16_paired(*a, _mm256_set1_ps((1u32 << bit) as f32));
            }
        }
        let sc = _mm256_set1_ps(0.5 * tables.q_scales[sb]);
        let bias = _mm256_set1_ps(plan.cz * tables.asums[sb]);
        outacc.fold(&blk, sc, bias, plan.tile_scales(mt, sb));
    }
    outacc.store(out);
}

/// Executes the scale blocks `sbs` of one m-tile for a whole *row block*,
/// accumulating into `outs` (row-major `rows × TILE_M` partial outputs the
/// caller zeroes before the first K-panel).
///
/// This is the register-blocked mpGEMM kernel: each 16-byte weight step is
/// loaded and nibble-unpacked **once** and its indices are looked up against
/// every row's table with one `PSHUFB` per row — the weight-stream traffic
/// and index decode of a sweep are amortized over `rows` activation rows
/// (Figure 7's mpGEMM claim made real at the register level). The rows'
/// tables for one k-group are adjacent in the interleaved [`BatchTables`]
/// layout, so the per-step table loads are one forward cache-line stream,
/// and the next weight step is software-prefetched while the current one is
/// consumed.
///
/// Per row, the integer accumulation and the `f32` fold replicate
/// [`gemv_mtile`]'s permuted kernel operation-for-operation, so running the
/// scale blocks in increasing order (in one call or split across K-panels)
/// is bit-identical to `rows` independent GEMV calls.
///
/// # Safety
///
/// The caller must have verified AVX2+FMA support (e.g. via
/// [`gemm_supported`], which performs the runtime feature check).
///
/// # Panics
///
/// Panics if the plan is not a permuted exact-aggregation quantized config
/// (check [`gemm_supported`]), `batch.rows > MAX_ROW_BLOCK`, or `outs` is
/// shorter than `rows × TILE_M`.
#[target_feature(enable = "avx2,fma")]
pub fn gemm_mtile(
    plan: &WeightPlan,
    batch: &BatchTables,
    mt: usize,
    sbs: Range<usize>,
    outs: &mut [f32],
) {
    assert!(
        batch.rows >= 1 && batch.rows <= MAX_ROW_BLOCK,
        "row block must be 1..={MAX_ROW_BLOCK}"
    );
    assert!(outs.len() >= batch.rows * TILE_M, "outs too short");
    assert!(
        !plan.opts.fast_aggregation,
        "multi-row kernel is exact-aggregation only"
    );
    match plan.layout() {
        Layout::Permuted { interleaved } => {
            debug_assert_eq!(batch.mirror, plan.opts.mirror);
            match (interleaved, plan.opts.mirror) {
                (false, false) => gemm_mtile_permuted::<false, false>(plan, batch, mt, sbs, outs),
                (false, true) => gemm_mtile_permuted::<false, true>(plan, batch, mt, sbs, outs),
                (true, false) => gemm_mtile_permuted::<true, false>(plan, batch, mt, sbs, outs),
                (true, true) => gemm_mtile_permuted::<true, true>(plan, batch, mt, sbs, outs),
            }
        }
        Layout::Flat => panic!("multi-row kernel requires the permuted layout"),
    }
}

/// Dispatches [`gemm_mtile_rows`] on the runtime row count: the body is
/// monomorphized per `R` so the accumulator array and row loops fully
/// unroll and register-allocate (a runtime-`rows` loop spills every
/// accumulator to the stack on each step, which costs more than the
/// amortized weight decode saves).
#[target_feature(enable = "avx2,fma")]
fn gemm_mtile_permuted<const IL: bool, const MIRROR: bool>(
    plan: &WeightPlan,
    batch: &BatchTables,
    mt: usize,
    sbs: Range<usize>,
    outs: &mut [f32],
) {
    match batch.rows {
        1 => gemm_mtile_rows::<IL, MIRROR, 1>(plan, batch, mt, sbs, outs),
        2 => gemm_mtile_rows::<IL, MIRROR, 2>(plan, batch, mt, sbs, outs),
        3 => gemm_mtile_rows::<IL, MIRROR, 3>(plan, batch, mt, sbs, outs),
        4 => gemm_mtile_rows::<IL, MIRROR, 4>(plan, batch, mt, sbs, outs),
        5 => gemm_mtile_rows::<IL, MIRROR, 5>(plan, batch, mt, sbs, outs),
        6 => gemm_mtile_rows::<IL, MIRROR, 6>(plan, batch, mt, sbs, outs),
        7 => gemm_mtile_rows::<IL, MIRROR, 7>(plan, batch, mt, sbs, outs),
        8 => gemm_mtile_rows::<IL, MIRROR, 8>(plan, batch, mt, sbs, outs),
        r => unreachable!("row block {r} exceeds MAX_ROW_BLOCK"),
    }
}

/// Multi-row streaming kernel body (see [`gemm_mtile`]).
#[target_feature(enable = "avx2,fma")]
fn gemm_mtile_rows<const IL: bool, const MIRROR: bool, const R: usize>(
    plan: &WeightPlan,
    batch: &BatchTables,
    mt: usize,
    sbs: Range<usize>,
    outs: &mut [f32],
) {
    debug_assert_eq!(batch.rows, R);
    let rows = R;
    let bits = plan.bits;
    let kgb = plan.group_size / LUT_GROUP;
    let half = TILE_M / 2;
    let stream = plan.mtile_stream(mt);
    let mut off = sbs.start * bits * kgb * half;
    // Same exactness bound as the single-row kernel.
    let i16_combine_safe = kgb as u32 * 127 * ((1u32 << bits) - 1) <= i16::MAX as u32;
    // Prefetch distance: two 32-byte pair steps ahead of the cursor.
    const PREFETCH_AHEAD: usize = 64;

    // Resume the per-row f32 accumulators from the partial outputs.
    let mut outacc = [OutAcc::zero(); R];
    for (r, acc) in outacc.iter_mut().enumerate() {
        acc.load_from(&outs[r * TILE_M..]);
    }

    let ones = _mm256_set1_epi8(1);
    for sb in sbs {
        // acc[bit][row]: the row loop is innermost at the lookup, so index
        // row-contiguously per bit. `R` is a const, so these loops unroll.
        let mut acc = [[(_mm256_setzero_si256(), _mm256_setzero_si256()); R]; 4];
        for acc_bit in acc.iter_mut().take(bits) {
            let mut kgi = 0;
            while kgi < kgb {
                let pair = kgi + 1 < kgb;
                let kg_a = sb * kgb + kgi;
                if pair {
                    // One 32-byte load covers k-groups `kg_a` and `kg_a+1`
                    // for *all* rows of the block.
                    let raw2 = simd::loadu_256(&stream[off..]);
                    off += TILE_M;
                    prefetch_stream(stream, off, PREFETCH_AHEAD);
                    let mask = _mm256_set1_epi8(0x0F);
                    let lo_nib = _mm256_and_si256(raw2, mask);
                    let hi_nib = _mm256_and_si256(_mm256_srli_epi16::<4>(raw2), mask);
                    let (idx_a, idx_b) = if IL {
                        (
                            _mm256_permute2x128_si256::<0x20>(lo_nib, hi_nib),
                            _mm256_permute2x128_si256::<0x31>(lo_nib, hi_nib),
                        )
                    } else {
                        let even_odd_lo = _mm256_unpacklo_epi8(lo_nib, hi_nib);
                        let even_odd_hi = _mm256_unpackhi_epi8(lo_nib, hi_nib);
                        (
                            _mm256_permute2x128_si256::<0x20>(even_odd_lo, even_odd_hi),
                            _mm256_permute2x128_si256::<0x31>(even_odd_lo, even_odd_hi),
                        )
                    };
                    // In mirror mode `kg_a` is always even here (the pair
                    // loop advances by 2 from an even base), so the pair
                    // shares one stored table.
                    let sg_a = if MIRROR { kg_a / 2 } else { kg_a };
                    let sg_b = if MIRROR { kg_a / 2 } else { kg_a + 1 };
                    for (r, a) in acc_bit.iter_mut().enumerate().take(rows) {
                        let tbl_a = load_table(&batch.q_tables, batch.table_base(sg_a, r));
                        let tbl_b = if MIRROR {
                            tbl_a
                        } else {
                            load_table(&batch.q_tables, batch.table_base(sg_b, r))
                        };
                        let vals_a = lookup_step::<MIRROR>(tbl_a, idx_a, kg_a % 2 == 1);
                        let vals_b = lookup_step::<MIRROR>(tbl_b, idx_b, kg_a.is_multiple_of(2));
                        let inter_lo = _mm256_unpacklo_epi8(vals_a, vals_b);
                        let inter_hi = _mm256_unpackhi_epi8(vals_a, vals_b);
                        a.0 = _mm256_add_epi16(a.0, _mm256_maddubs_epi16(ones, inter_lo));
                        a.1 = _mm256_add_epi16(a.1, _mm256_maddubs_epi16(ones, inter_hi));
                    }
                    kgi += 2;
                } else {
                    let raw = simd::loadu_128(&stream[off..]);
                    off += half;
                    prefetch_stream(stream, off, PREFETCH_AHEAD);
                    let idx = if IL {
                        simd::unpack_nibbles_interleaved(raw)
                    } else {
                        simd::unpack_nibbles_sequential(raw)
                    };
                    let sg_a = if MIRROR { kg_a / 2 } else { kg_a };
                    for (r, a) in acc_bit.iter_mut().enumerate().take(rows) {
                        let tbl = load_table(&batch.q_tables, batch.table_base(sg_a, r));
                        let vals_a = lookup_step::<MIRROR>(tbl, idx, kg_a % 2 == 1);
                        let vals_b = _mm256_setzero_si256();
                        let inter_lo = _mm256_unpacklo_epi8(vals_a, vals_b);
                        let inter_hi = _mm256_unpackhi_epi8(vals_a, vals_b);
                        a.0 = _mm256_add_epi16(a.0, _mm256_maddubs_epi16(ones, inter_lo));
                        a.1 = _mm256_add_epi16(a.1, _mm256_maddubs_epi16(ones, inter_hi));
                    }
                    kgi += 1;
                }
            }
        }
        for (r, out_r) in outacc.iter_mut().enumerate().take(rows) {
            let mut blk = OutAcc::zero();
            if i16_combine_safe {
                let mut lo = acc[0][r].0;
                let mut hi = acc[0][r].1;
                for (bit, a) in acc.iter().enumerate().take(bits).skip(1) {
                    let sh = bit as i32;
                    lo = _mm256_add_epi16(lo, _mm256_sll_epi16(a[r].0, _mm_cvtsi32_si128(sh)));
                    hi = _mm256_add_epi16(hi, _mm256_sll_epi16(a[r].1, _mm_cvtsi32_si128(sh)));
                }
                blk.add_weighted_i16_paired((lo, hi), _mm256_set1_ps(1.0));
            } else {
                for (bit, a) in acc.iter().enumerate().take(bits) {
                    blk.add_weighted_i16_paired(a[r], _mm256_set1_ps((1u32 << bit) as f32));
                }
            }
            let sc = _mm256_set1_ps(0.5 * batch.q_scale(r, sb));
            let bias = _mm256_set1_ps(plan.cz * batch.asum(r, sb));
            out_r.fold(&blk, sc, bias, plan.tile_scales(mt, sb));
        }
    }
    for (r, acc) in outacc.iter().enumerate().take(rows) {
        acc.store_to(&mut outs[r * TILE_M..(r + 1) * TILE_M]);
    }
}

/// Streaming kernel with fast 8-bit aggregation (lossy, paper §4).
#[target_feature(enable = "avx2,fma")]
fn mtile_permuted_fa<const IL: bool, const MIRROR: bool>(
    plan: &WeightPlan,
    tables: &ActTables,
    mt: usize,
    out: &mut [f32; TILE_M],
) {
    let bits = plan.bits;
    let gpr = plan.groups_per_row();
    let kgb = plan.group_size / LUT_GROUP;
    assert!(
        kgb.is_power_of_two() && kgb <= MAX_KG_PER_BLOCK,
        "fast aggregation needs a power-of-two group_size/4 <= {MAX_KG_PER_BLOCK}"
    );
    let stream = plan.mtile_stream(mt);
    let step = TILE_M / 2;
    let mut base = 0usize;
    let mut outacc = OutAcc::zero();

    for sb in 0..gpr {
        let mut blk = OutAcc::zero();
        for bit in 0..bits {
            let mut bufs = [_mm256_setzero_si256(); MAX_KG_PER_BLOCK];
            for kgi in 0..kgb {
                let kg = sb * kgb + kgi;
                let tbl = if MIRROR {
                    load_table_u8(&tables.u_tables, (kg / 2) * 16)
                } else {
                    load_table_u8(&tables.u_tables, kg * 16)
                };
                let raw = simd::loadu_128(&stream[base + (bit * kgb + kgi) * step..]);
                let idx = if IL {
                    simd::unpack_nibbles_interleaved(raw)
                } else {
                    simd::unpack_nibbles_sequential(raw)
                };
                bufs[kgi] = if MIRROR {
                    let (mut folded, _) = simd::mirror_fold(idx);
                    if kg % 2 == 1 {
                        folded = _mm256_or_si256(folded, _mm256_set1_epi8(8));
                    }
                    let looked = simd::tbl32(tbl, folded);
                    // Negation in the +128 offset domain is wrapping 0 - v
                    // (entries are clamped to [1, 255], so 0 never occurs).
                    let negmask = _mm256_cmpgt_epi8(idx, _mm256_set1_epi8(7));
                    let negated = _mm256_sub_epi8(_mm256_setzero_si256(), looked);
                    _mm256_blendv_epi8(looked, negated, negmask)
                } else {
                    simd::tbl32(tbl, idx)
                };
            }
            // Balanced rounding-average tree: level by level, adjacent pairs
            // (identical shape to the scalar reference).
            let mut n = kgb;
            while n > 1 {
                for j in 0..n / 2 {
                    bufs[j] = simd::avg_u8(bufs[2 * j], bufs[2 * j + 1]);
                }
                n /= 2;
            }
            let tree = bufs[0];
            let off128 = _mm256_set1_epi16(128);
            let lo = _mm256_sub_epi16(_mm256_cvtepu8_epi16(_mm256_castsi256_si128(tree)), off128);
            let hi = _mm256_sub_epi16(
                _mm256_cvtepu8_epi16(_mm256_extracti128_si256(tree, 1)),
                off128,
            );
            // L ≈ (tree - 128) * kgb; bit weight folds in here.
            let w = _mm256_set1_ps(((kgb as u32) << bit) as f32);
            blk.add_weighted_i16((lo, hi), w);
        }
        // Probabilistic rounding-bias correction of the averaging tree
        // (matches the scalar reference exactly; see its comment).
        let depth = kgb.trailing_zeros() as f32;
        let fa_delta = -0.25 * depth * kgb as f32 * (((1u32 << bits) - 1) as f32);
        let lut_scale = tables.q_scales[sb];
        let sc = _mm256_set1_ps(0.5 * lut_scale);
        let bias = _mm256_set1_ps(plan.cz * tables.asums[sb] + 0.5 * lut_scale * fa_delta);
        outacc.fold(&blk, sc, bias, plan.tile_scales(mt, sb));
        base += kgb * bits * step;
    }
    outacc.store(out);
}

/// Loads a duplicated 16-entry unsigned table.
#[inline]
#[target_feature(enable = "avx2")]
fn load_table_u8(u_tables: &[u8], base: usize) -> __m256i {
    let v = simd::loadu_128(&u_tables[base..]);
    _mm256_broadcastsi128_si256(v)
}

/// Assembles the interleaved 16-byte index step for `(kg, bit)` from the
/// flat nibble planes — the per-step gather cost that the offline
/// permutation removes (paper §3.2).
#[inline]
fn assemble_flat_step(plan: &WeightPlan, bit: usize, m0: usize, kg: usize, buf: &mut [u8; 16]) {
    let plane = plan.flat_plane(bit);
    let rb = plan.flat_row_bytes();
    let byte_off = kg / 2;
    let shift = 4 * (kg & 1);
    for j in 0..TILE_M / 2 {
        let lo = (plane[(m0 + j) * rb + byte_off] >> shift) & 0x0F;
        let hi = (plane[(m0 + j + TILE_M / 2) * rb + byte_off] >> shift) & 0x0F;
        buf[j] = lo | (hi << 4);
    }
}

/// Gathers the 32 per-row weight scales of a scale block on the flat layout.
#[inline]
fn assemble_flat_scales(plan: &WeightPlan, m0: usize, sb: usize, buf: &mut [f32; TILE_M]) {
    for (r, b) in buf.iter_mut().enumerate() {
        *b = plan.scale(m0 + r, sb);
    }
}

/// Quantized-table kernel over the flat layout (`+TQ`, `+Tiling` ladder
/// stages): `PSHUFB` lookups but strided index assembly every step.
#[target_feature(enable = "avx2,fma")]
fn mtile_flat_quant(plan: &WeightPlan, tables: &ActTables, mt: usize, out: &mut [f32; TILE_M]) {
    let bits = plan.bits;
    let gpr = plan.groups_per_row();
    let kgb = plan.group_size / LUT_GROUP;
    let m0 = mt * TILE_M;
    let mut outacc = OutAcc::zero();
    let mut buf = [0u8; 16];
    let mut sbuf = [0f32; TILE_M];

    for sb in 0..gpr {
        let mut acc = [(_mm256_setzero_si256(), _mm256_setzero_si256()); 4];
        for kgi in 0..kgb {
            let kg = sb * kgb + kgi;
            let tbl = load_table(&tables.q_tables, kg * 16);
            for bit in 0..bits {
                assemble_flat_step(plan, bit, m0, kg, &mut buf);
                let raw = simd::loadu_128(&buf);
                let idx = simd::unpack_nibbles_interleaved(raw);
                let vals = simd::tbl32(tbl, idx);
                acc[bit] = simd::accumulate_i8_into_i16(acc[bit], vals);
            }
        }
        let mut blk = OutAcc::zero();
        for bit in 0..bits {
            blk.add_weighted_i16(acc[bit], _mm256_set1_ps((1u32 << bit) as f32));
        }
        let sc = _mm256_set1_ps(0.5 * tables.q_scales[sb]);
        let bias = _mm256_set1_ps(plan.cz * tables.asums[sb]);
        assemble_flat_scales(plan, m0, sb, &mut sbuf);
        outacc.fold(&blk, sc, bias, &sbuf);
    }
    outacc.store(out);
}

/// TM-base kernel: `f32` tables accessed with hardware gathers
/// (`vgatherdps`) — a real lookup intrinsic, but neither in-register tables
/// nor optimized memory access.
#[target_feature(enable = "avx2,fma")]
fn mtile_flat_gather(plan: &WeightPlan, tables: &ActTables, mt: usize, out: &mut [f32; TILE_M]) {
    let bits = plan.bits;
    let gpr = plan.groups_per_row();
    let kgb = plan.group_size / LUT_GROUP;
    let m0 = mt * TILE_M;
    let mut outacc = OutAcc::zero();
    let mut buf = [0u8; 16];
    let mut sbuf = [0f32; TILE_M];

    for sb in 0..gpr {
        let mut blk = OutAcc::zero();
        for kgi in 0..kgb {
            let kg = sb * kgb + kgi;
            let table = &tables.f32_tables[kg * 16..kg * 16 + 16];
            for bit in 0..bits {
                assemble_flat_step(plan, bit, m0, kg, &mut buf);
                let raw = simd::loadu_128(&buf);
                let idx = simd::unpack_nibbles_interleaved(raw);
                let lanes_lo = _mm256_castsi256_si128(idx); // rows 0..16
                let lanes_hi = _mm256_extracti128_si256(idx, 1); // rows 16..32
                let (i0, i1) = simd::widen_u8_to_i32(lanes_lo);
                let (i2, i3) = simd::widen_u8_to_i32(lanes_hi);
                let w = _mm256_set1_ps((1u32 << bit) as f32);
                blk.0 = _mm256_fmadd_ps(w, simd::gather_f32(table, i0), blk.0);
                blk.1 = _mm256_fmadd_ps(w, simd::gather_f32(table, i1), blk.1);
                blk.2 = _mm256_fmadd_ps(w, simd::gather_f32(table, i2), blk.2);
                blk.3 = _mm256_fmadd_ps(w, simd::gather_f32(table, i3), blk.3);
            }
        }
        let sc = _mm256_set1_ps(0.5);
        let bias = _mm256_set1_ps(plan.cz * tables.asums[sb]);
        assemble_flat_scales(plan, m0, sb, &mut sbuf);
        outacc.fold(&blk, sc, bias, &sbuf);
    }
    outacc.store(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::scalar;
    use tmac_quant::rtn;

    fn setup(m: usize, k: usize, bits: u8, gs: usize) -> (tmac_quant::QuantizedMatrix, Vec<f32>) {
        let w: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32 * 0.17).sin()) * 0.7 + ((i % 13) as f32 - 6.0) * 0.03)
            .collect();
        let act: Vec<f32> = (0..k).map(|i| ((i as f32 * 0.41).cos()) * 0.9).collect();
        (rtn::quantize(&w, m, k, bits, gs).unwrap(), act)
    }

    fn compare_opts(opts: KernelOpts, bits: u8, tol: f32) {
        if !simd::available() {
            return;
        }
        let (qm, act) = setup(96, 256, bits, 32);
        let plan = WeightPlan::new(&qm, opts).unwrap();
        let tables = ActTables::build(&act, 32, &opts).unwrap();
        assert!(supported(&opts), "opts {opts:?} should have an AVX2 kernel");
        for mt in 0..plan.m_tiles() {
            let mut want = [0f32; TILE_M];
            scalar::gemv_plan_mtile(&plan, &tables, mt, &mut want);
            let mut got = [0f32; TILE_M];
            // SAFETY: AVX2+FMA verified by `simd::available()` above.
            unsafe { gemv_mtile(&plan, &tables, mt, &mut got) };
            for r in 0..TILE_M {
                assert!(
                    (want[r] - got[r]).abs() <= tol * (1.0 + want[r].abs()),
                    "opts={opts:?} bits={bits} mt={mt} r={r}: {} vs {}",
                    want[r],
                    got[r]
                );
            }
        }
    }

    #[test]
    fn permuted_matches_scalar_all_bits() {
        for bits in 1..=4u8 {
            compare_opts(KernelOpts::plus_permute(), bits, 1e-5);
        }
    }

    #[test]
    fn interleaved_matches_scalar() {
        for bits in [2u8, 4] {
            let mut o = KernelOpts::plus_permute();
            o.interleave = true;
            compare_opts(o, bits, 1e-5);
        }
    }

    #[test]
    fn mirror_matches_scalar() {
        for bits in 1..=4u8 {
            compare_opts(KernelOpts::tmac(), bits, 1e-5);
        }
    }

    #[test]
    fn fast_aggregation_matches_scalar_emulation() {
        // The scalar kernel emulates the same avg tree, so even the lossy
        // path must agree to f32 round-off.
        for bits in [1u8, 2, 4] {
            compare_opts(KernelOpts::tmac_fast_aggregation(), bits, 1e-5);
            let mut no_mirror = KernelOpts::tmac_fast_aggregation();
            no_mirror.mirror = false;
            compare_opts(no_mirror, bits, 1e-5);
        }
    }

    #[test]
    fn flat_quant_matches_scalar() {
        for bits in 1..=4u8 {
            compare_opts(KernelOpts::plus_table_quant(), bits, 1e-5);
            compare_opts(KernelOpts::plus_tiling(), bits, 1e-5);
        }
    }

    #[test]
    fn tm_base_gather_matches_scalar() {
        for bits in 1..=4u8 {
            compare_opts(KernelOpts::tm_base(), bits, 1e-4);
        }
    }

    fn block_tables(rows: usize, k: usize, opts: &KernelOpts) -> (Vec<ActTables>, BatchTables) {
        let per_row: Vec<ActTables> = (0..rows)
            .map(|r| {
                let act: Vec<f32> = (0..k)
                    .map(|i| ((i as f32 * 0.41 + r as f32 * 2.3).cos()) * 0.9)
                    .collect();
                ActTables::build(&act, 32, opts).unwrap()
            })
            .collect();
        let batch = BatchTables::interleave(&per_row).unwrap();
        (per_row, batch)
    }

    /// The multi-row kernel must be *bit-identical* to per-row `gemv_mtile`
    /// calls — the property that keeps batched forwards equal to independent
    /// single-token forwards — for every supported option combination, every
    /// row-block size, and any K-panel split.
    #[test]
    fn gemm_mtile_bit_identical_to_gemv_mtile() {
        if !simd::available() {
            return;
        }
        let il = {
            let mut o = KernelOpts::plus_permute();
            o.interleave = true;
            o
        };
        for opts in [
            KernelOpts::plus_permute(),
            il,
            KernelOpts::tmac(),
            KernelOpts::tmac_mirror(),
        ] {
            for bits in 1..=4u8 {
                let (qm, _) = setup(96, 256, bits, 32);
                let plan = WeightPlan::new(&qm, opts).unwrap();
                assert!(gemm_supported(&opts), "{opts:?}");
                for rows in [1usize, 3, 4, 8] {
                    let (per_row, batch) = block_tables(rows, 256, &opts);
                    let gpr = plan.groups_per_row();
                    for mt in 0..plan.m_tiles() {
                        let mut want = vec![0f32; rows * TILE_M];
                        for (r, t) in per_row.iter().enumerate() {
                            let mut buf = [0f32; TILE_M];
                            // SAFETY: AVX2+FMA verified above.
                            unsafe { gemv_mtile(&plan, t, mt, &mut buf) };
                            want[r * TILE_M..(r + 1) * TILE_M].copy_from_slice(&buf);
                        }
                        let mut got = vec![0f32; rows * TILE_M];
                        // SAFETY: AVX2+FMA verified above.
                        unsafe { gemm_mtile(&plan, &batch, mt, 0..gpr, &mut got) };
                        assert_eq!(got, want, "opts={opts:?} bits={bits} rows={rows} mt={mt}");
                        // Split into two uneven K-panels (scale-block units).
                        if gpr >= 2 {
                            let mid = gpr / 2 + gpr % 2;
                            let mut panelled = vec![0f32; rows * TILE_M];
                            // SAFETY: AVX2+FMA verified above.
                            unsafe {
                                gemm_mtile(&plan, &batch, mt, 0..mid, &mut panelled);
                                gemm_mtile(&plan, &batch, mt, mid..gpr, &mut panelled);
                            }
                            assert_eq!(panelled, want, "panel split opts={opts:?} bits={bits}");
                        }
                    }
                }
            }
        }
    }

    /// And against the portable oracle (tolerance: the scalar fold is not
    /// FMA-fused, so f32 rounding may differ in the last ulp).
    #[test]
    fn gemm_mtile_matches_scalar_oracle() {
        if !simd::available() {
            return;
        }
        for opts in [KernelOpts::tmac(), KernelOpts::tmac_mirror()] {
            for bits in [2u8, 3] {
                let (qm, _) = setup(64, 128, bits, 32);
                let plan = WeightPlan::new(&qm, opts).unwrap();
                let (_, batch) = block_tables(5, 128, &opts);
                let gpr = plan.groups_per_row();
                for mt in 0..plan.m_tiles() {
                    let mut want = vec![0f32; 5 * TILE_M];
                    scalar::gemm_plan_mtile(&plan, &batch, mt, 0..gpr, &mut want);
                    let mut got = vec![0f32; 5 * TILE_M];
                    // SAFETY: AVX2+FMA verified above.
                    unsafe { gemm_mtile(&plan, &batch, mt, 0..gpr, &mut got) };
                    for (i, (&w, &g)) in want.iter().zip(&got).enumerate() {
                        assert!(
                            (w - g).abs() <= 1e-5 * (1.0 + w.abs()),
                            "opts={opts:?} bits={bits} mt={mt} i={i}: {w} vs {g}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gemm_supported_gates_correctly() {
        if !simd::available() {
            return;
        }
        assert!(gemm_supported(&KernelOpts::tmac()));
        assert!(gemm_supported(&KernelOpts::tmac_mirror()));
        assert!(gemm_supported(&KernelOpts::plus_permute()));
        // FA, flat layouts and f32 tables stay per-row.
        assert!(!gemm_supported(&KernelOpts::tmac_fast_aggregation()));
        assert!(!gemm_supported(&KernelOpts::plus_table_quant()));
        assert!(!gemm_supported(&KernelOpts::tm_base()));
    }

    #[test]
    fn unsupported_combos_reported() {
        if !simd::available() {
            return;
        }
        // Mirror without permutation has no AVX2 kernel.
        let mut o = KernelOpts::plus_table_quant();
        o.mirror = true;
        assert!(!supported(&o));
        // f32 tables with permutation: scalar fallback.
        let mut o = KernelOpts::plus_permute();
        o.table_quant = false;
        o.mirror = false;
        assert!(!supported(&o));
    }
}
