//! mpGEMV/mpGEMM kernels.
//!
//! * [`scalar`] — portable implementations of every option combination,
//!   bit-compatible with the SIMD kernels (same integer accumulation, same
//!   fast-aggregation tree shape, same per-block f32 application order).
//!   They are the correctness oracle and the fallback backend.
//! * `avx2` — the production kernels (x86-64). One `PSHUFB` per 32 lookups,
//!   `i16` widening accumulation, per-scale-block f32 application.
//!
//! # Kernel math
//!
//! With codes `q = Σ_i 2^i b_i`, signs `w'_i = 2 b_i - 1 ∈ {-1, +1}`
//! (paper §4's bit-serial linear transform), weight scales `s`, zero point
//! `z`, and per-block activation sums `asum`:
//!
//! ```text
//! out[m] = Σ_blocks s[m][sb] · ( 0.5 · Σ_i 2^i · L_i[m][sb] + cz · asum[sb] )
//! L_i[m][sb] = Σ_{kg ∈ sb} table_kg[ idx_i(m, kg) ]      (the LUT lookups)
//! cz = (2^bits - 1)/2 − z
//! ```
//!
//! With table quantization `table_kg ≈ q_scale[sb] · q_table_kg`, so `L_i`
//! is accumulated in integers and `0.5 · q_scale[sb]` folds into the final
//! multiply.

pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub mod avx2;
