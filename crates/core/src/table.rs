//! Online LUT precompute (paper Figure 2, "ONLINE", and Alg. 1
//! `Precompute`).
//!
//! For every group of `g = 4` consecutive activations, the table holds the
//! 16 possible `±` sums `t[i] = Σ_j (i & (1 << j) ? +a_j : -a_j)`. The table
//! is built incrementally in 15 additions per group (`t[i | 2^b] = t[i] +
//! 2 a_b`), which is the scalar equivalent of the paper's swizzled SIMD
//! precompute.
//!
//! Two compressions (§3.3) apply on top:
//!
//! * **Mirror consolidation** — `t[15 - i] = -t[i]`, so only entries `0..8`
//!   are stored. Halved storage also means halved precompute: only the
//!   8 entries with the top activation's sign fixed are materialized. Stored
//!   half-tables are packed in *pairs* (even k-group in bytes `0..8`, odd
//!   k-group in bytes `8..16`) so one 16-byte register load still serves
//!   every lookup.
//! * **Table quantization** — entries quantize to `i8` with one dynamic
//!   scale per *activation block* (`group_size` activations, i.e. the same
//!   granularity as the weight scales), `scale = max|t| / 127`.
//!
//! For fast aggregation the quantized entries are additionally stored with a
//! `+128` offset as `u8` (rounding-average instructions are unsigned).

use crate::opts::{KernelOpts, LUT_GROUP};
use crate::TmacError;

/// Entries per lookup table (`2^g`).
pub const TABLE_LEN: usize = 1 << LUT_GROUP;

/// The unsigned offset applied to quantized entries for fast aggregation.
pub const FA_OFFSET: i32 = 128;

/// Precomputed activation tables for one activation row.
#[derive(Debug, Clone)]
pub struct ActTables {
    /// Activation length `K`.
    pub k: usize,
    /// Activations per scale block (matches the weight `group_size`).
    pub group_size: usize,
    /// Whether tables are mirror-consolidated.
    pub mirror: bool,
    /// Whether tables are quantized to `i8`.
    pub quantized: bool,
    /// `f32` tables, `kg`-major, 16 entries each (empty when quantized).
    pub f32_tables: Vec<f32>,
    /// `i8` tables (empty unless quantized). Full mode: 16 entries per
    /// k-group. Mirror mode: 16 bytes per k-group *pair* (8 + 8).
    pub q_tables: Vec<i8>,
    /// `u8` tables with `+128` offset (built only for fast aggregation);
    /// same layout as `q_tables`.
    pub u_tables: Vec<u8>,
    /// Per-scale-block dynamic table scales (empty unless quantized).
    pub q_scales: Vec<f32>,
    /// Per-scale-block activation sums (for the bit-serial bias term).
    pub asums: Vec<f32>,
}

/// Computes the 16 raw table entries for one activation group.
#[inline]
pub fn raw_table(a: &[f32; LUT_GROUP]) -> [f32; TABLE_LEN] {
    let mut t = [0f32; TABLE_LEN];
    t[0] = -(a[0] + a[1] + a[2] + a[3]);
    let mut filled = 1usize;
    for (b, &ab) in a.iter().enumerate() {
        let step = 2.0 * ab;
        for i in 0..filled {
            t[(1 << b) + i] = t[i] + step;
        }
        filled <<= 1;
        debug_assert_eq!(filled, 1 << (b + 1));
    }
    t
}

impl ActTables {
    /// Builds tables for `act` under `opts`.
    ///
    /// # Errors
    ///
    /// * [`TmacError::Shape`] if `act.len()` is not a positive multiple of
    ///   `group_size`, `group_size` is not a multiple of 4, or mirror
    ///   consolidation is requested with `group_size` not a multiple of 8
    ///   (pair packing needs an even k-group count per block).
    /// * [`TmacError::Numeric`] if the activations contain non-finite
    ///   values (quantization scales would be garbage).
    pub fn build(act: &[f32], group_size: usize, opts: &KernelOpts) -> Result<Self, TmacError> {
        let k = act.len();
        if k == 0
            || group_size == 0
            || !k.is_multiple_of(group_size)
            || !group_size.is_multiple_of(LUT_GROUP)
        {
            return Err(TmacError::Shape(format!(
                "activation len {k} incompatible with group_size {group_size}"
            )));
        }
        if opts.mirror && !group_size.is_multiple_of(2 * LUT_GROUP) {
            return Err(TmacError::Shape(format!(
                "mirror consolidation needs group_size % 8 == 0, got {group_size}"
            )));
        }
        if act.iter().any(|x| !x.is_finite()) {
            return Err(TmacError::Numeric(
                "activations contain non-finite values".into(),
            ));
        }
        let kg_total = k / LUT_GROUP;
        let blocks = k / group_size;
        let kg_per_block = group_size / LUT_GROUP;

        let mut asums = vec![0f32; blocks];
        for (sb, chunk) in act.chunks(group_size).enumerate() {
            asums[sb] = chunk.iter().sum();
        }

        // Raw tables, kg-major.
        let mut raw = vec![0f32; kg_total * TABLE_LEN];
        for kg in 0..kg_total {
            let mut a = [0f32; LUT_GROUP];
            a.copy_from_slice(&act[kg * LUT_GROUP..(kg + 1) * LUT_GROUP]);
            raw[kg * TABLE_LEN..(kg + 1) * TABLE_LEN].copy_from_slice(&raw_table(&a));
        }

        if !opts.table_quant {
            return Ok(ActTables {
                k,
                group_size,
                mirror: false,
                quantized: false,
                f32_tables: raw,
                q_tables: Vec::new(),
                u_tables: Vec::new(),
                q_scales: Vec::new(),
                asums,
            });
        }

        // Dynamic per-block quantization (finer than activation quantization
        // could afford, §3.3: "finer granularity ... and dynamic
        // quantization").
        let mut q_scales = vec![0f32; blocks];
        for sb in 0..blocks {
            let slice = &raw[sb * kg_per_block * TABLE_LEN..(sb + 1) * kg_per_block * TABLE_LEN];
            let amax = slice.iter().fold(0f32, |m, &x| m.max(x.abs()));
            q_scales[sb] = if amax == 0.0 { 1e-8 } else { amax / 127.0 };
        }

        let quantize =
            |v: f32, sb: usize| -> i8 { (v / q_scales[sb]).round().clamp(-127.0, 127.0) as i8 };

        let mut q_tables;
        if opts.mirror {
            // Paired half-tables: 16 bytes cover two k-groups.
            debug_assert_eq!(kg_total % 2, 0);
            q_tables = vec![0i8; kg_total / 2 * TABLE_LEN];
            for kg in 0..kg_total {
                let sb = kg / kg_per_block;
                let pair = kg / 2;
                let half = (kg % 2) * (TABLE_LEN / 2);
                for i in 0..TABLE_LEN / 2 {
                    q_tables[pair * TABLE_LEN + half + i] = quantize(raw[kg * TABLE_LEN + i], sb);
                }
            }
        } else {
            q_tables = vec![0i8; kg_total * TABLE_LEN];
            for kg in 0..kg_total {
                let sb = kg / kg_per_block;
                for i in 0..TABLE_LEN {
                    q_tables[kg * TABLE_LEN + i] = quantize(raw[kg * TABLE_LEN + i], sb);
                }
            }
        }

        let u_tables = if opts.fast_aggregation {
            q_tables
                .iter()
                .map(|&q| (q as i32 + FA_OFFSET) as u8)
                .collect()
        } else {
            Vec::new()
        };

        Ok(ActTables {
            k,
            group_size,
            mirror: opts.mirror,
            quantized: true,
            f32_tables: Vec::new(),
            q_tables,
            u_tables,
            q_scales,
            asums,
        })
    }

    /// Number of k-groups covered.
    pub fn kg_total(&self) -> usize {
        self.k / LUT_GROUP
    }

    /// Looks up entry `idx` of k-group `kg` as an *exact* `f32` value
    /// (dequantized if the tables are quantized). Test/reference use.
    ///
    /// # Panics
    ///
    /// Panics if `kg` or `idx` is out of range.
    pub fn lookup_f32(&self, kg: usize, idx: u8) -> f32 {
        assert!((idx as usize) < TABLE_LEN && kg < self.kg_total());
        if self.quantized {
            let sb = kg * LUT_GROUP / self.group_size;
            self.lookup_q(kg, idx) as f32 * self.q_scales[sb]
        } else {
            self.f32_tables[kg * TABLE_LEN + idx as usize]
        }
    }

    /// Looks up entry `idx` of k-group `kg` in the quantized tables,
    /// applying the mirror fold when consolidated.
    ///
    /// # Panics
    ///
    /// Panics if the tables are not quantized or indices are out of range.
    pub fn lookup_q(&self, kg: usize, idx: u8) -> i8 {
        assert!(self.quantized, "lookup_q on f32 tables");
        assert!((idx as usize) < TABLE_LEN && kg < self.kg_total());
        if self.mirror {
            let (fold, neg) = if idx >= 8 {
                ((idx ^ 0x0F) as usize, true)
            } else {
                (idx as usize, false)
            };
            let pair = kg / 2;
            let half = (kg % 2) * (TABLE_LEN / 2);
            let v = self.q_tables[pair * TABLE_LEN + half + fold];
            if neg {
                // Quantized entries are clamped to -127..=127, so negation
                // cannot overflow.
                -v
            } else {
                v
            }
        } else {
            self.q_tables[kg * TABLE_LEN + idx as usize]
        }
    }

    /// Bytes of table storage (the quantity mirror consolidation and table
    /// quantization shrink; paper Figure 5).
    pub fn table_bytes(&self) -> usize {
        self.f32_tables.len() * 4 + self.q_tables.len() + self.u_tables.len()
    }
}

/// Interleaved quantized tables for a *block* of `rows` activation rows.
///
/// [`ActTables`] keeps each row's tables as one contiguous ~16 KB buffer,
/// which is perfect for the GEMV path (the whole set is L1-resident) but
/// hostile to a multi-row kernel: looking up one k-group for `R` rows means
/// touching `R` strided buffers. `BatchTables` transposes the layout — the
/// `R` rows' 16-byte tables of each stored k-group sit contiguously:
///
/// ```text
/// [kg0·row0][kg0·row1]…[kg0·rowR-1][kg1·row0]…      (16 bytes each)
/// ```
///
/// so a register block's lookups for one weight step are a single forward
/// cache-line stream. In mirror mode the stored unit is the k-group *pair*
/// (matching [`ActTables`]'s pair packing), so the same indexing works with
/// `kg / 2`.
///
/// Only quantized tables interleave (`i8`, plus the offset `u8` copy when
/// every source row carries one); `f32` table mode has no multi-row kernel
/// and stays on the per-row path.
#[derive(Debug, Clone)]
pub struct BatchTables {
    /// Rows in the block (`R`).
    pub rows: usize,
    /// Activation length `K` (shared by every row).
    pub k: usize,
    /// Activations per scale block.
    pub group_size: usize,
    /// Whether tables are mirror-consolidated (pair-packed).
    pub mirror: bool,
    /// Interleaved `i8` tables: `stored_groups × rows × 16` bytes.
    pub q_tables: Vec<i8>,
    /// Interleaved offset `u8` tables (same layout; empty unless every
    /// source row had them).
    pub u_tables: Vec<u8>,
    /// Row-major per-scale-block table scales: `rows × blocks`.
    pub q_scales: Vec<f32>,
    /// Row-major per-scale-block activation sums: `rows × blocks`.
    pub asums: Vec<f32>,
}

impl BatchTables {
    /// Interleaves a block of per-row tables.
    ///
    /// # Errors
    ///
    /// Returns [`TmacError::Shape`] if `tables` is empty, any row is not
    /// quantized, or the rows disagree on `K` / group size / mirror mode /
    /// offset-table presence.
    pub fn interleave(tables: &[ActTables]) -> Result<Self, TmacError> {
        let first = tables
            .first()
            .ok_or_else(|| TmacError::Shape("BatchTables needs >= 1 row".into()))?;
        if !first.quantized {
            return Err(TmacError::Shape(
                "BatchTables requires quantized tables".into(),
            ));
        }
        let rows = tables.len();
        let has_u = !first.u_tables.is_empty();
        for t in tables {
            if !t.quantized
                || t.k != first.k
                || t.group_size != first.group_size
                || t.mirror != first.mirror
                || t.u_tables.is_empty() == has_u
            {
                return Err(TmacError::Shape(
                    "BatchTables rows disagree on table profile".into(),
                ));
            }
        }
        let stored = first.q_tables.len() / TABLE_LEN;
        let mut q_tables = vec![0i8; stored * rows * TABLE_LEN];
        for (r, t) in tables.iter().enumerate() {
            for sg in 0..stored {
                q_tables[(sg * rows + r) * TABLE_LEN..(sg * rows + r + 1) * TABLE_LEN]
                    .copy_from_slice(&t.q_tables[sg * TABLE_LEN..(sg + 1) * TABLE_LEN]);
            }
        }
        let u_tables = if has_u {
            let mut u = vec![0u8; stored * rows * TABLE_LEN];
            for (r, t) in tables.iter().enumerate() {
                for sg in 0..stored {
                    u[(sg * rows + r) * TABLE_LEN..(sg * rows + r + 1) * TABLE_LEN]
                        .copy_from_slice(&t.u_tables[sg * TABLE_LEN..(sg + 1) * TABLE_LEN]);
                }
            }
            u
        } else {
            Vec::new()
        };
        let blocks = first.q_scales.len();
        let mut q_scales = vec![0f32; rows * blocks];
        let mut asums = vec![0f32; rows * blocks];
        for (r, t) in tables.iter().enumerate() {
            q_scales[r * blocks..(r + 1) * blocks].copy_from_slice(&t.q_scales);
            asums[r * blocks..(r + 1) * blocks].copy_from_slice(&t.asums);
        }
        Ok(BatchTables {
            rows,
            k: first.k,
            group_size: first.group_size,
            mirror: first.mirror,
            q_tables,
            u_tables,
            q_scales,
            asums,
        })
    }

    /// Number of k-groups covered (`K / 4`).
    pub fn kg_total(&self) -> usize {
        self.k / LUT_GROUP
    }

    /// Number of *stored* table groups (k-groups, or pairs under mirror).
    pub fn stored_groups(&self) -> usize {
        if self.mirror {
            self.kg_total() / 2
        } else {
            self.kg_total()
        }
    }

    /// Number of scale blocks per row.
    pub fn blocks(&self) -> usize {
        self.k / self.group_size
    }

    /// Byte offset of row `r`'s 16-byte table for stored group `sg` in
    /// [`Self::q_tables`] / [`Self::u_tables`].
    #[inline]
    pub fn table_base(&self, sg: usize, r: usize) -> usize {
        (sg * self.rows + r) * TABLE_LEN
    }

    /// Table scale of `(row, scale-block)`.
    #[inline]
    pub fn q_scale(&self, r: usize, sb: usize) -> f32 {
        self.q_scales[r * self.blocks() + sb]
    }

    /// Activation sum of `(row, scale-block)`.
    #[inline]
    pub fn asum(&self, r: usize, sb: usize) -> f32 {
        self.asums[r * self.blocks() + sb]
    }

    /// Looks up entry `idx` of k-group `kg` for row `r`, applying the
    /// mirror fold when consolidated — the batch twin of
    /// [`ActTables::lookup_q`], against the interleaved layout.
    ///
    /// # Panics
    ///
    /// Panics if `r`, `kg` or `idx` is out of range.
    pub fn lookup_q(&self, r: usize, kg: usize, idx: u8) -> i8 {
        assert!(r < self.rows && (idx as usize) < TABLE_LEN && kg < self.kg_total());
        if self.mirror {
            let (fold, neg) = if idx >= 8 {
                ((idx ^ 0x0F) as usize, true)
            } else {
                (idx as usize, false)
            };
            let half = (kg % 2) * (TABLE_LEN / 2);
            let v = self.q_tables[self.table_base(kg / 2, r) + half + fold];
            if neg {
                -v
            } else {
                v
            }
        } else {
            self.q_tables[self.table_base(kg, r) + idx as usize]
        }
    }

    /// Bytes of interleaved table storage.
    pub fn table_bytes(&self) -> usize {
        self.q_tables.len() + self.u_tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(k: usize) -> Vec<f32> {
        (0..k).map(|i| ((i as f32) * 0.61).sin() * 1.3).collect()
    }

    fn brute_entry(a: &[f32], idx: usize) -> f32 {
        (0..LUT_GROUP)
            .map(|j| if idx & (1 << j) != 0 { a[j] } else { -a[j] })
            .sum()
    }

    #[test]
    fn raw_table_matches_brute_force() {
        let a = [0.5f32, -1.25, 2.0, 0.125];
        let t = raw_table(&a);
        for (i, &v) in t.iter().enumerate() {
            let want = brute_entry(&a, i);
            assert!((v - want).abs() < 1e-6, "entry {i}: {v} vs {want}");
        }
    }

    #[test]
    fn f32_tables_lookup() {
        let a = act(64);
        let t = ActTables::build(&a, 32, &KernelOpts::tm_base()).unwrap();
        assert!(!t.quantized);
        for kg in 0..16 {
            for idx in 0..TABLE_LEN as u8 {
                let want = brute_entry(&a[kg * 4..kg * 4 + 4], idx as usize);
                assert!((t.lookup_f32(kg, idx) - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn quantized_error_within_half_step() {
        let a = act(128);
        let t = ActTables::build(&a, 32, &KernelOpts::plus_table_quant()).unwrap();
        assert!(t.quantized && !t.mirror);
        for kg in 0..32 {
            let sb = kg / 8;
            for idx in 0..TABLE_LEN as u8 {
                let want = brute_entry(&a[kg * 4..kg * 4 + 4], idx as usize);
                let got = t.lookup_f32(kg, idx);
                assert!(
                    (got - want).abs() <= t.q_scales[sb] * 0.5 + 1e-6,
                    "kg={kg} idx={idx}"
                );
            }
        }
    }

    #[test]
    fn mirror_matches_full_quantized() {
        let a = act(64);
        let full = ActTables::build(&a, 32, &KernelOpts::plus_table_quant()).unwrap();
        let mirrored = ActTables::build(&a, 32, &KernelOpts::tmac_mirror()).unwrap();
        assert!(mirrored.mirror);
        // Half the storage.
        assert_eq!(mirrored.q_tables.len() * 2, full.q_tables.len());
        for kg in 0..16 {
            for idx in 0..TABLE_LEN as u8 {
                // Quantization rounds t and -t symmetrically (round-half-away
                // from zero), so folded lookups match exactly.
                assert_eq!(
                    mirrored.lookup_q(kg, idx),
                    full.lookup_q(kg, idx),
                    "kg={kg} idx={idx}"
                );
            }
        }
    }

    #[test]
    fn mirror_antisymmetry() {
        let a = act(32);
        let t = ActTables::build(&a, 32, &KernelOpts::tmac_mirror()).unwrap();
        for kg in 0..8 {
            for idx in 0..8u8 {
                assert_eq!(t.lookup_q(kg, idx), -t.lookup_q(kg, 15 - idx));
            }
        }
    }

    #[test]
    fn fa_tables_are_offset() {
        let a = act(32);
        let t = ActTables::build(&a, 32, &KernelOpts::tmac_fast_aggregation()).unwrap();
        assert_eq!(t.u_tables.len(), t.q_tables.len());
        for (&q, &u) in t.q_tables.iter().zip(&t.u_tables) {
            assert_eq!(u as i32, q as i32 + FA_OFFSET);
        }
    }

    #[test]
    fn asums_match() {
        let a = act(96);
        let t = ActTables::build(&a, 32, &KernelOpts::tmac()).unwrap();
        for sb in 0..3 {
            let want: f32 = a[sb * 32..(sb + 1) * 32].iter().sum();
            assert!((t.asums[sb] - want).abs() < 1e-5);
        }
    }

    #[test]
    fn storage_shrinks_with_compression() {
        let a = act(128);
        let f = ActTables::build(&a, 32, &KernelOpts::tm_base()).unwrap();
        let q = ActTables::build(&a, 32, &KernelOpts::plus_table_quant()).unwrap();
        let m = ActTables::build(&a, 32, &KernelOpts::tmac_mirror()).unwrap();
        // f32 -> i8 quarters the width; mirror halves the length: paper
        // Figure 5 ("up to a quarter of its original size" for width+length
        // combined relative to fp16; vs f32 it is 8x).
        assert_eq!(f.table_bytes(), 4 * q.table_bytes());
        assert_eq!(q.table_bytes(), 2 * m.table_bytes());
    }

    fn row_tables(n: usize, k: usize, opts: &KernelOpts) -> Vec<ActTables> {
        (0..n)
            .map(|r| {
                let a: Vec<f32> = (0..k)
                    .map(|i| ((i as f32) * 0.37 + r as f32 * 1.9).sin())
                    .collect();
                ActTables::build(&a, 32, opts).unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_interleave_preserves_lookups() {
        for opts in [
            KernelOpts::tmac(),
            KernelOpts::tmac_mirror(),
            KernelOpts::tmac_fast_aggregation(),
        ] {
            let rows = row_tables(5, 128, &opts);
            let batch = BatchTables::interleave(&rows).unwrap();
            assert_eq!(batch.rows, 5);
            assert_eq!(batch.mirror, opts.mirror);
            assert_eq!(
                batch.table_bytes(),
                rows.iter().map(|t| t.table_bytes()).sum::<usize>()
            );
            for (r, t) in rows.iter().enumerate() {
                for kg in 0..batch.kg_total() {
                    for idx in 0..TABLE_LEN as u8 {
                        assert_eq!(
                            batch.lookup_q(r, kg, idx),
                            t.lookup_q(kg, idx),
                            "r={r} kg={kg} idx={idx}"
                        );
                    }
                }
                for sb in 0..batch.blocks() {
                    assert_eq!(batch.q_scale(r, sb), t.q_scales[sb]);
                    assert_eq!(batch.asum(r, sb), t.asums[sb]);
                }
            }
        }
    }

    #[test]
    fn batch_rows_contiguous_per_group() {
        // The layout contract the multi-row kernel streams: for one stored
        // group, the R rows' 16-byte tables are adjacent.
        let rows = row_tables(3, 64, &KernelOpts::tmac());
        let batch = BatchTables::interleave(&rows).unwrap();
        for sg in 0..batch.stored_groups() {
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(batch.table_base(sg, r), (sg * 3 + r) * TABLE_LEN);
                assert_eq!(
                    &batch.q_tables[batch.table_base(sg, r)..batch.table_base(sg, r) + TABLE_LEN],
                    &row.q_tables[sg * TABLE_LEN..(sg + 1) * TABLE_LEN]
                );
            }
        }
    }

    #[test]
    fn batch_interleave_rejects_mismatches() {
        assert!(BatchTables::interleave(&[]).is_err());
        // f32 tables have no interleaved form.
        let raw = row_tables(2, 64, &KernelOpts::tm_base());
        assert!(BatchTables::interleave(&raw).is_err());
        // Mixed profiles are rejected.
        let mut mixed = row_tables(1, 64, &KernelOpts::tmac());
        mixed.extend(row_tables(1, 64, &KernelOpts::tmac_mirror()));
        assert!(BatchTables::interleave(&mixed).is_err());
        let mut lens = row_tables(1, 64, &KernelOpts::tmac());
        lens.extend(row_tables(1, 128, &KernelOpts::tmac()));
        assert!(BatchTables::interleave(&lens).is_err());
        let mut fa = row_tables(1, 64, &KernelOpts::tmac());
        fa.extend(row_tables(1, 64, &KernelOpts::tmac_fast_aggregation()));
        assert!(BatchTables::interleave(&fa).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(ActTables::build(&[], 32, &KernelOpts::tmac()).is_err());
        assert!(ActTables::build(&act(33), 32, &KernelOpts::tmac()).is_err());
        let mut o = KernelOpts::tmac();
        o.mirror = true;
        assert!(ActTables::build(&act(16), 4, &o).is_err()); // gs % 8 != 0
        let mut a = act(32);
        a[3] = f32::NAN;
        assert!(ActTables::build(&a, 32, &KernelOpts::tmac()).is_err());
    }
}
