//! Deterministic failpoint registry for chaos testing.
//!
//! A failpoint is a named site in the code (`"scheduler/forward"`,
//! `"io/read"`, `"serve/write"`, ...) that can be armed to inject a
//! failure: the site calls [`fire`] and interprets the returned
//! [`FailAction`] (panic, typed error, short write, `WouldBlock`, delay).
//! Sites are configured from the `TMAC_FAILPOINTS` environment variable
//! (seeded by `TMAC_FAILPOINTS_SEED`, default 0) or programmatically via
//! `configure` (feature-gated, like everything but the [`fire`] stub),
//! and every trigger draws from a per-site SplitMix64
//! stream (`tmac_rng::Rng`) so a chaos run is reproducible from its
//! seed alone.
//!
//! ## Spec grammar
//!
//! ```text
//!   spec    := entry (';' entry)*
//!   entry   := site '=' action [':' trigger]
//!   action  := 'panic' | 'error' | 'short' | 'again' | 'delay' <ms>
//!   trigger := 'p' <float>            fire each evaluation with prob p
//!            | 'n' <int> ['x' <int>]  fire on the nth evaluation
//!                                     (1-based), optionally for x
//!                                     consecutive evaluations
//!            | (absent)               fire on every evaluation
//! ```
//!
//! Example: `scheduler/forward=panic:n5x2;serve/read=error:p0.03`.
//!
//! ## Cost when disabled
//!
//! Without the `failpoints` cargo feature (the default), [`fire`] is an
//! `#[inline(always)]` constant `None`: every call site folds to nothing
//! and the hot path carries no registry, no lock, and no branch.

/// What an armed failpoint asks its site to do. Sites interpret actions
/// in their own terms: the scheduler turns `Panic` into a real unwind
/// (exercising `catch_unwind` quarantine), an I/O site turns `Error` into
/// its typed error, a socket write path turns `Short` into a 1-byte write
/// and `Again` into `WouldBlock`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailAction {
    /// Unwind at the site (`panic!`).
    Panic,
    /// Return the site's typed error.
    Error,
    /// Complete only partially (e.g. a 1-byte socket write).
    Short,
    /// Pretend the resource is not ready (`WouldBlock` / EAGAIN).
    Again,
    /// Sleep for the given milliseconds, then proceed normally.
    Delay(u64),
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::FailAction;

    /// Failpoints are compiled out: always `None`, folds away entirely.
    #[inline(always)]
    pub fn fire(_site: &str) -> Option<FailAction> {
        None
    }
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::FailAction;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use tmac_rng::Rng;

    #[derive(Debug, Clone, Copy)]
    enum Trigger {
        Always,
        Prob(f32),
        /// Fire on evaluations `[nth, nth + count)` (1-based).
        Nth {
            nth: u64,
            count: u64,
        },
    }

    struct Site {
        action: FailAction,
        trigger: Trigger,
        rng: Rng,
        evals: u64,
        fired: u64,
    }

    #[derive(Default)]
    struct Registry {
        sites: HashMap<String, Site>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
        REG.get_or_init(|| {
            let spec = std::env::var("TMAC_FAILPOINTS").unwrap_or_default();
            let seed = std::env::var("TMAC_FAILPOINTS_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let reg = parse(&spec, seed)
                .unwrap_or_else(|e| panic!("invalid TMAC_FAILPOINTS {spec:?}: {e}"));
            Mutex::new(reg)
        })
    }

    /// FNV-1a over the site name, to decorrelate per-site RNG streams.
    fn site_hash(site: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in site.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn parse(spec: &str, seed: u64) -> Result<Registry, String> {
        let mut reg = Registry::default();
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let (site, rest) = entry
                .split_once('=')
                .ok_or_else(|| format!("entry {entry:?} has no '='"))?;
            let (action_s, trigger_s) = match rest.split_once(':') {
                Some((a, t)) => (a, Some(t)),
                None => (rest, None),
            };
            let action = if let Some(ms) = action_s.strip_prefix("delay") {
                FailAction::Delay(
                    ms.parse()
                        .map_err(|_| format!("bad delay millis {ms:?} in {entry:?}"))?,
                )
            } else {
                match action_s {
                    "panic" => FailAction::Panic,
                    "error" => FailAction::Error,
                    "short" => FailAction::Short,
                    "again" => FailAction::Again,
                    other => return Err(format!("unknown action {other:?} in {entry:?}")),
                }
            };
            let trigger = match trigger_s {
                None => Trigger::Always,
                Some(t) => {
                    if let Some(p) = t.strip_prefix('p') {
                        let p: f32 = p
                            .parse()
                            .map_err(|_| format!("bad probability {t:?} in {entry:?}"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("probability {p} out of [0,1] in {entry:?}"));
                        }
                        Trigger::Prob(p)
                    } else if let Some(n) = t.strip_prefix('n') {
                        let (nth_s, count_s) = match n.split_once('x') {
                            Some((a, b)) => (a, b),
                            None => (n, "1"),
                        };
                        let nth: u64 = nth_s
                            .parse()
                            .map_err(|_| format!("bad nth {t:?} in {entry:?}"))?;
                        let count: u64 = count_s
                            .parse()
                            .map_err(|_| format!("bad count {t:?} in {entry:?}"))?;
                        if nth == 0 || count == 0 {
                            return Err(format!("nth/count must be >= 1 in {entry:?}"));
                        }
                        Trigger::Nth { nth, count }
                    } else {
                        return Err(format!("unknown trigger {t:?} in {entry:?}"));
                    }
                }
            };
            reg.sites.insert(
                site.trim().to_string(),
                Site {
                    action,
                    trigger,
                    rng: Rng::seed_from_u64(seed ^ site_hash(site.trim())),
                    evals: 0,
                    fired: 0,
                },
            );
        }
        Ok(reg)
    }

    /// Evaluates the failpoint `site`: `Some(action)` when armed and its
    /// trigger fires for this evaluation, `None` otherwise.
    pub fn fire(site: &str) -> Option<FailAction> {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        if reg.sites.is_empty() {
            return None;
        }
        let s = reg.sites.get_mut(site)?;
        s.evals += 1;
        let hit = match s.trigger {
            Trigger::Always => true,
            Trigger::Prob(p) => s.rng.f32_unit() < p,
            Trigger::Nth { nth, count } => s.evals >= nth && s.evals < nth + count,
        };
        if !hit {
            return None;
        }
        s.fired += 1;
        if let FailAction::Delay(ms) = s.action {
            // Sleep outside the registry lock so other sites stay live.
            drop(reg);
            std::thread::sleep(std::time::Duration::from_millis(ms));
            return Some(FailAction::Delay(ms));
        }
        Some(s.action)
    }

    /// Replaces the registry from a spec string (see the module docs for
    /// the grammar), seeding every site's RNG stream from `seed`.
    ///
    /// # Errors
    ///
    /// A description of the first malformed entry.
    pub fn configure(spec: &str, seed: u64) -> Result<(), String> {
        let parsed = parse(spec, seed)?;
        *registry().lock().unwrap_or_else(|p| p.into_inner()) = parsed;
        Ok(())
    }

    /// Disarms every failpoint (hit statistics are discarded too).
    pub fn clear() {
        *registry().lock().unwrap_or_else(|p| p.into_inner()) = Registry::default();
    }

    /// How many times `site` actually fired since it was configured.
    pub fn fired(site: &str) -> u64 {
        registry()
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .sites
            .get(site)
            .map_or(0, |s| s.fired)
    }
}

pub use imp::fire;
#[cfg(feature = "failpoints")]
pub use imp::{clear, configure, fired};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    // The registry is process-global, so each test uses its own site
    // names; tests only configure sites they alone evaluate.

    #[test]
    fn nth_trigger_fires_exactly_the_requested_window() {
        configure("t/nth=error:n3x2;t/other=panic:n1", 7).unwrap();
        let hits: Vec<bool> = (0..6).map(|_| fire("t/nth").is_some()).collect();
        assert_eq!(hits, [false, false, true, true, false, false]);
        assert_eq!(fired("t/nth"), 2);
        assert_eq!(fire("t/unarmed"), None);
        clear();
        assert_eq!(fire("t/nth"), None, "clear() disarms everything");
    }

    #[test]
    fn probability_trigger_is_reproducible_from_the_seed() {
        let run = |seed: u64| -> Vec<bool> {
            configure("t/prob=error:p0.3", seed).unwrap();
            (0..64).map(|_| fire("t/prob").is_some()).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds must diverge");
        let hits = a.iter().filter(|&&h| h).count();
        assert!(hits > 4 && hits < 40, "p=0.3 over 64 draws, got {hits}");
        clear();
    }

    #[test]
    fn actions_parse_and_report() {
        configure("t/a=panic;t/b=short:n1;t/c=again;t/d=delay0:n1", 1).unwrap();
        assert_eq!(fire("t/a"), Some(FailAction::Panic));
        assert_eq!(fire("t/b"), Some(FailAction::Short));
        assert_eq!(fire("t/c"), Some(FailAction::Again));
        assert_eq!(fire("t/d"), Some(FailAction::Delay(0)));
        assert_eq!(fire("t/b"), None, "n1 window is one evaluation wide");
        clear();
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "noequals",
            "s=frob",
            "s=error:q3",
            "s=error:p1.5",
            "s=error:n0",
            "s=delayxx",
        ] {
            assert!(configure(bad, 0).is_err(), "spec {bad:?} must be rejected");
        }
        clear();
    }
}
