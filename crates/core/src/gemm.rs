//! mpGEMM driver (`N > 1`, e.g. prefill with a 256-token sequence).
//!
//! The lookup table is the reusable operand (§3.2: "the weight `W[M, K]` can
//! share the same pre-computed lookup table"), so the driver blocks the
//! sequence dimension twice:
//!
//! * **`n_block`** — rows whose tables are built (and cached) together;
//! * **`row_block`** — rows per *register block*: each `n_block` chunk is
//!   swept in `row_block`-row groups whose quantized tables are interleaved
//!   per k-group ([`BatchTables`]) and fed to the multi-row kernel, which
//!   loads each weight index step once for the whole group.
//!
//! On top of that, the kg range of each sweep is split into **K-panels**
//! sized so the group's active table slice stays L1-resident while every
//! m-tile streams over it (`kg_panel`, auto-sized from
//! [`crate::opts::L1_TABLE_BUDGET`] by default); per-row `f32` partials
//! accumulate across panels in the exact scale-block order of the GEMV
//! path, so the split never changes a bit of the result.

use crate::exec::ExecCtx;
use crate::gemv::{build_tables, run_mtile};
use crate::kernel;
use crate::opts::{LUT_GROUP, TILE_M};
use crate::plan::WeightPlan;
use crate::table::{ActTables, BatchTables};
use crate::TmacError;
use std::ops::Range;

/// Partitions `n` activation rows into the register blocks the sweep
/// consumes: chunks of `row_block` rows, restarting at every `n_block`
/// boundary (table builds are grouped by `n_block`, so register blocks
/// never straddle one).
pub fn row_partition(n: usize, n_block: usize, row_block: usize) -> Vec<Range<usize>> {
    let nb = n_block.max(1);
    let rb = row_block.max(1);
    let mut out = Vec::new();
    let mut n0 = 0;
    while n0 < n {
        let chunk_end = (n0 + nb).min(n);
        let mut r0 = n0;
        while r0 < chunk_end {
            let r1 = (r0 + rb).min(chunk_end);
            out.push(r0..r1);
            r0 = r1;
        }
        n0 = chunk_end;
    }
    out
}

/// K-panel length in *scale blocks*: the resolved `kg_panel` (explicit, or
/// auto-sized so the register block's interleaved table slice fits the L1
/// budget — see [`crate::cost::effective_kg_panel`], the analytical twin)
/// rounded down to whole scale blocks, at least one.
fn panel_blocks(plan: &WeightPlan) -> usize {
    let kg_per_block = plan.group_size / LUT_GROUP;
    let kg_target = crate::cost::effective_kg_panel(plan.k, &plan.opts);
    (kg_target / kg_per_block).max(1)
}

/// Which kernel serves a multi-row sweep.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SweepPath {
    /// AVX2 register-blocked multi-row kernel.
    #[cfg(target_arch = "x86_64")]
    MultiAvx2,
    /// Scalar multi-row kernel over the interleaved layout.
    MultiScalar,
    /// Per-row `gemv` kernel (row innermost over the tile loop).
    PerRow,
}

/// Chooses the sweep path. The invariant that keeps batched forwards
/// bit-identical to independent single-row forwards: whatever kernel family
/// (AVX2 or scalar) serves the GEMV path on this host must also serve the
/// GEMM path — the multi-row kernels replicate their single-row siblings'
/// arithmetic exactly, but AVX2 and scalar differ in `f32` fold rounding.
fn sweep_path(plan: &WeightPlan, use_avx2: bool) -> SweepPath {
    if plan.opts.effective_row_block() <= 1 {
        return SweepPath::PerRow;
    }
    #[cfg(target_arch = "x86_64")]
    if use_avx2 {
        return if kernel::avx2::gemm_supported(&plan.opts) {
            SweepPath::MultiAvx2
        } else {
            SweepPath::PerRow
        };
    }
    let _ = use_avx2;
    if plan.opts.table_quant {
        // The scalar multi-row kernel covers every quantized layout
        // (including fast aggregation and flat planes).
        SweepPath::MultiScalar
    } else {
        SweepPath::PerRow
    }
}

/// Shared-output wrapper: threads write disjoint `(n, m-tile)` blocks.
struct OutPtr(*mut f32);
// SAFETY: tiles are partitioned disjointly per dispatch and each write
// targets `row n, columns [m0, m0+take)` for a tile this thread owns; the
// dispatcher keeps the buffer alive until completion.
unsafe impl Sync for OutPtr {}

/// Validates the `n × K` / `n × M` shapes shared by every mpGEMM entry.
fn check_shapes(
    plan: &WeightPlan,
    act_len: usize,
    n: usize,
    out_len: usize,
) -> Result<(), TmacError> {
    if n == 0 {
        return Err(TmacError::Shape("mpgemm needs n >= 1".into()));
    }
    if act_len != n * plan.k {
        return Err(TmacError::Shape(format!(
            "activation length {act_len} != n*K = {}",
            n * plan.k
        )));
    }
    if out_len != n * plan.m {
        return Err(TmacError::Shape(format!(
            "output length {out_len} != n*M = {}",
            n * plan.m
        )));
    }
    Ok(())
}

/// Whether the AVX2 kernel serves `plan` on this host.
fn avx2_for(plan: &WeightPlan) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        kernel::avx2::supported(&plan.opts)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = plan;
        false
    }
}

/// Sweeps all m-tiles for one `n_block` chunk of rows. `tables[i]` belongs
/// to output row `n0 + i` of `out`.
///
/// On the multi-row paths the chunk is split into `row_block`-row register
/// blocks, each interleaved into a [`BatchTables`] and swept with K-panel
/// blocking; otherwise the per-row GEMV kernel runs with the rows innermost
/// over the tile loop (the pre-register-blocking behaviour).
fn sweep_block(
    plan: &WeightPlan,
    tables: &[ActTables],
    n0: usize,
    out: &mut [f32],
    use_avx2: bool,
    ctx: &ExecCtx,
) {
    let path = sweep_path(plan, use_avx2);
    if path == SweepPath::PerRow {
        sweep_block_per_row(plan, tables, n0, out, use_avx2, ctx);
        return;
    }
    let rb = plan.opts.effective_row_block();
    let mut r0 = 0;
    while r0 < tables.len() {
        let take = rb.min(tables.len() - r0);
        let batch = BatchTables::interleave(&tables[r0..r0 + take])
            .expect("multi-row path requires compatible quantized tables");
        sweep_register_block(plan, &batch, n0 + r0, out, path, ctx);
        r0 += take;
    }
}

/// The per-row sweep: each weight tile is read once per chunk and applied
/// to every row's tables in turn (cache-level reuse only).
fn sweep_block_per_row(
    plan: &WeightPlan,
    tables: &[ActTables],
    n0: usize,
    out: &mut [f32],
    use_avx2: bool,
    ctx: &ExecCtx,
) {
    let m = plan.m;
    let out_ptr = OutPtr(out.as_mut_ptr());
    let out_ref = &out_ptr;
    ctx.pool().chunks(plan.m_tiles(), 1, |tiles| {
        let mut buf = [0f32; TILE_M];
        for mt in tiles {
            let m0 = mt * TILE_M;
            let take = TILE_M.min(m - m0);
            for (ni, t) in tables.iter().enumerate() {
                run_mtile(plan, t, mt, &mut buf, use_avx2);
                // SAFETY: this thread owns tile `mt`; the destination
                // range lies in row `n0 + ni` of `out`, within bounds;
                // the buffer outlives the dispatch.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        buf.as_ptr(),
                        out_ref.0.add((n0 + ni) * m + m0),
                        take,
                    );
                }
            }
        }
    });
}

/// Sweeps one interleaved register block over all m-tiles with K-panel
/// blocking: panels run outermost (per thread) so the block's active table
/// slice stays L1-resident while the thread's tiles stream over it, and
/// per-tile `f32` partials persist across panels in a scratch buffer.
fn sweep_register_block(
    plan: &WeightPlan,
    batch: &BatchTables,
    n0: usize,
    out: &mut [f32],
    path: SweepPath,
    ctx: &ExecCtx,
) {
    let m = plan.m;
    let rows = batch.rows;
    let gpr = plan.groups_per_row();
    let panel = panel_blocks(plan);
    let out_ptr = OutPtr(out.as_mut_ptr());
    let out_ref = &out_ptr;
    ctx.pool().chunks(plan.m_tiles(), 1, |tiles| {
        let span = rows * TILE_M;
        // Zeroed partial outputs for every tile this thread owns, reused
        // from the context's scratch arena.
        let mut partials = ctx.take_buf(tiles.len() * span);
        let mut sb0 = 0;
        while sb0 < gpr {
            let sb1 = (sb0 + panel).min(gpr);
            // One K-panel sweep over this thread's tiles (`id` = the
            // panel's first scale block, `arg` = register-block rows).
            let _panel = tmac_trace::span("gemm", "panel", sb0 as u64, rows as u64);
            for (ti, mt) in tiles.clone().enumerate() {
                let bufs = &mut partials[ti * span..(ti + 1) * span];
                match path {
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: `SweepPath::MultiAvx2` is only selected when
                    // `kernel::avx2::gemm_supported` passed the runtime
                    // AVX2+FMA check.
                    SweepPath::MultiAvx2 => unsafe {
                        kernel::avx2::gemm_mtile(plan, batch, mt, sb0..sb1, bufs)
                    },
                    _ => kernel::scalar::gemm_plan_mtile(plan, batch, mt, sb0..sb1, bufs),
                }
            }
            sb0 = sb1;
        }
        for (ti, mt) in tiles.clone().enumerate() {
            let m0 = mt * TILE_M;
            let take = TILE_M.min(m - m0);
            for r in 0..rows {
                // SAFETY: this thread owns tile `mt`; the destination range
                // lies in row `n0 + r` of `out`, within bounds; the buffer
                // outlives the dispatch.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        partials[ti * span + r * TILE_M..].as_ptr(),
                        out_ref.0.add((n0 + r) * m + m0),
                        take,
                    );
                }
            }
        }
        ctx.put_buf(partials);
    });
}

/// Computes `out[n][m] = Σ_k act[n][k] · W[m][k]`.
///
/// `act` is row-major `n × K`; `out` is row-major `n × M`. Tables are built
/// fresh per call; use [`mpgemm_cached`] when several weight matrices
/// consume the same activation batch (batched QKV projections).
///
/// # Errors
///
/// Returns [`TmacError::Shape`] on dimension mismatches or `n == 0`.
pub fn mpgemm(
    plan: &WeightPlan,
    act: &[f32],
    n: usize,
    out: &mut [f32],
    ctx: &ExecCtx,
) -> Result<(), TmacError> {
    check_shapes(plan, act.len(), n, out.len())?;
    let use_avx2 = avx2_for(plan);
    let nb = plan.opts.n_block.max(1);
    let k = plan.k;
    let mut n0 = 0;
    while n0 < n {
        let nblk = nb.min(n - n0);
        // Online stage: tables for this block of activation rows. The cost
        // is O(nblk · K), negligible against the O(nblk · M · K / g) lookup
        // sweep, so it is built serially.
        let mut tables: Vec<ActTables> = Vec::with_capacity(nblk);
        for ni in 0..nblk {
            tables.push(build_tables(plan, &act[(n0 + ni) * k..(n0 + ni + 1) * k])?);
        }
        sweep_block(plan, &tables, n0, out, use_avx2, ctx);
        n0 += nblk;
    }
    Ok(())
}

/// [`mpgemm`] through the context's batched activation-table cache.
///
/// Within one [`ExecCtx::next_activation`] scope, every plan with the same
/// table profile consuming the same `n × K` activation batch shares one set
/// of per-row table builds — the QKV / gate-up amortization of the decode
/// path, extended to batched serving (see [`ExecCtx::batch_tables_for`]).
///
/// # Errors
///
/// Same contract as [`mpgemm`].
pub fn mpgemm_cached(
    plan: &WeightPlan,
    act: &[f32],
    n: usize,
    out: &mut [f32],
    ctx: &ExecCtx,
) -> Result<(), TmacError> {
    check_shapes(plan, act.len(), n, out.len())?;
    let use_avx2 = avx2_for(plan);
    let path = sweep_path(plan, use_avx2);
    if path != SweepPath::PerRow {
        // Multi-row path: pull the pre-interleaved register blocks from the
        // context cache (QKV-style projection groups share both the per-row
        // builds *and* the interleave work).
        let blocks = ctx.interleaved_tables_for(plan, act, n)?;
        let mut n0 = 0;
        for batch in blocks.iter() {
            sweep_register_block(plan, batch, n0, out, path, ctx);
            n0 += batch.rows;
        }
        debug_assert_eq!(n0, n, "interleaved blocks must partition the batch");
        return Ok(());
    }
    let tables = ctx.batch_tables_for(plan, act, n)?;
    mpgemm_with_tables(plan, &tables, out, ctx)
}

/// [`mpgemm`] with caller-provided per-row tables (`tables.len()` rows).
///
/// # Errors
///
/// Returns [`TmacError::Shape`] if `out.len() != tables.len() · M` or any
/// table was built for a different `K` / group size / options.
pub fn mpgemm_with_tables(
    plan: &WeightPlan,
    tables: &[ActTables],
    out: &mut [f32],
    ctx: &ExecCtx,
) -> Result<(), TmacError> {
    let n = tables.len();
    if n == 0 {
        return Err(TmacError::Shape("mpgemm needs n >= 1".into()));
    }
    if out.len() != n * plan.m {
        return Err(TmacError::Shape(format!(
            "output length {} != n*M = {}",
            out.len(),
            n * plan.m
        )));
    }
    for t in tables {
        crate::gemv::check_tables_compatible(plan, t)?;
    }
    let use_avx2 = avx2_for(plan);
    let nb = plan.opts.n_block.max(1);
    let mut n0 = 0;
    while n0 < n {
        let nblk = nb.min(n - n0);
        sweep_block(plan, &tables[n0..n0 + nblk], n0, out, use_avx2, ctx);
        n0 += nblk;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::scalar::gemv_reference;
    use crate::opts::KernelOpts;
    use tmac_quant::rtn;

    fn setup(m: usize, k: usize, n: usize, bits: u8) -> (tmac_quant::QuantizedMatrix, Vec<f32>) {
        let w: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32) * 0.31).sin() * 0.6)
            .collect();
        let act: Vec<f32> = (0..n * k)
            .map(|i| ((i as f32) * 0.17).cos() * 0.8)
            .collect();
        (rtn::quantize(&w, m, k, bits, 32).unwrap(), act)
    }

    #[test]
    fn gemm_rows_match_gemv_rows() {
        let (m, k, n) = (64, 128, 5);
        let (qm, act) = setup(m, k, n, 4);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(2);
        let mut out = vec![0f32; n * m];
        mpgemm(&plan, &act, n, &mut out, &ctx).unwrap();
        for ni in 0..n {
            let mut row = vec![0f32; m];
            crate::gemv::mpgemv(&plan, &act[ni * k..(ni + 1) * k], &mut row, &ctx).unwrap();
            assert_eq!(&out[ni * m..(ni + 1) * m], &row[..], "row {ni}");
        }
    }

    #[test]
    fn gemm_matches_reference() {
        let (m, k, n) = (48, 96, 7);
        let (qm, act) = setup(m, k, n, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(2);
        let mut out = vec![0f32; n * m];
        mpgemm(&plan, &act, n, &mut out, &ctx).unwrap();
        for ni in 0..n {
            let reference = gemv_reference(&qm, &act[ni * k..(ni + 1) * k]);
            let nmse = tmac_simd::f32ops::nmse(&out[ni * m..(ni + 1) * m], &reference);
            assert!(nmse < 2e-3, "row {ni} nmse={nmse}");
        }
    }

    #[test]
    fn cached_and_with_tables_match_fresh() {
        let (m, k, n) = (64, 128, 11); // crosses an n_block boundary
        let (qm, act) = setup(m, k, n, 3);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(2);
        let mut fresh = vec![0f32; n * m];
        mpgemm(&plan, &act, n, &mut fresh, &ctx).unwrap();

        ctx.next_activation();
        let mut cached = vec![0f32; n * m];
        mpgemm_cached(&plan, &act, n, &mut cached, &ctx).unwrap();
        assert_eq!(fresh, cached);

        let tables: Vec<ActTables> = (0..n)
            .map(|ni| build_tables(&plan, &act[ni * k..(ni + 1) * k]).unwrap())
            .collect();
        let mut with = vec![0f32; n * m];
        mpgemm_with_tables(&plan, &tables, &mut with, &ctx).unwrap();
        assert_eq!(fresh, with);
    }

    #[test]
    fn cached_shares_builds_across_plans() {
        // Batched QKV: two plans, one activation batch, one batched build.
        let (m, k, n) = (32, 64, 4);
        let (qm, act) = setup(m, k, n, 2);
        let (qm2, _) = setup(m, k, n, 4);
        let plan2 = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let plan4 = WeightPlan::new(&qm2, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        ctx.next_activation();
        let mut out = vec![0f32; n * m];
        mpgemm_cached(&plan2, &act, n, &mut out, &ctx).unwrap();
        mpgemm_cached(&plan4, &act, n, &mut out, &ctx).unwrap();
        let s = ctx.table_stats();
        assert_eq!((s.hits, s.misses), (1, 1), "second plan must reuse");
    }

    #[test]
    fn with_tables_rejects_incompatible() {
        let (m, k, n) = (32, 64, 2);
        let (qm, act) = setup(m, k, n, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let mut out = vec![0f32; n * m];
        assert!(mpgemm_with_tables(&plan, &[], &mut out, &ctx).is_err());
        let t = build_tables(&plan, &act[..k]).unwrap();
        let mut short = vec![0f32; m];
        assert!(mpgemm_with_tables(&plan, &[t.clone(), t], &mut short, &ctx).is_err());
        // Tables built without quantization don't match a TQ plan.
        let wrong = ActTables::build(&act[..k], 32, &crate::opts::KernelOpts::tm_base()).unwrap();
        let mut one = vec![0f32; m];
        assert!(mpgemm_with_tables(&plan, &[wrong], &mut one, &ctx).is_err());
        // Mirror-consolidated tables have half the layout of full tables.
        let mirrored =
            ActTables::build(&act[..k], 32, &crate::opts::KernelOpts::tmac_mirror()).unwrap();
        assert!(mpgemm_with_tables(&plan, &[mirrored], &mut one, &ctx).is_err());
        // A fast-aggregation plan needs the offset u8 tables materialized.
        let fa_plan = WeightPlan::new(&qm, KernelOpts::tmac_fast_aggregation()).unwrap();
        let no_fa = build_tables(&plan, &act[..k]).unwrap();
        assert!(mpgemm_with_tables(&fa_plan, &[no_fa], &mut one, &ctx).is_err());
    }

    /// The multi-row sweep must be bit-identical to per-row GEMV for every
    /// option combination (exact, mirror, FA, flat-quantized, f32-table
    /// fallback), every bit-width, and shapes that straddle the
    /// `row_block`/`n_block` boundaries.
    #[test]
    fn mpgemm_bit_identical_to_mpgemv_across_opts_and_shapes() {
        let combos = [
            KernelOpts::tm_base(),
            KernelOpts::plus_table_quant(),
            KernelOpts::plus_tiling(),
            KernelOpts::plus_permute(),
            KernelOpts::tmac(),
            KernelOpts::tmac_mirror(),
            KernelOpts::tmac_fast_aggregation(),
        ];
        let ctx = ExecCtx::new(2);
        for opts in combos {
            for bits in [1u8, 2, 4] {
                // n = 11 straddles row_block (4) and n_block (8); m = 72
                // leaves a ragged final tile.
                let (m, k, n) = (72, 128, 11);
                let (qm, act) = setup(m, k, n, bits);
                let plan = WeightPlan::new(&qm, opts).unwrap();
                let mut out = vec![0f32; n * m];
                mpgemm(&plan, &act, n, &mut out, &ctx).unwrap();
                for ni in 0..n {
                    let mut row = vec![0f32; m];
                    crate::gemv::mpgemv(&plan, &act[ni * k..(ni + 1) * k], &mut row, &ctx).unwrap();
                    assert_eq!(
                        &out[ni * m..(ni + 1) * m],
                        &row[..],
                        "opts={opts:?} bits={bits} row {ni}"
                    );
                }
            }
        }
    }

    /// Forcing tiny K-panels (multiple panels per sweep) and odd row blocks
    /// must not change a bit.
    #[test]
    fn kg_panel_and_row_block_boundaries_bit_exact() {
        let (m, k, n) = (64, 256, 13);
        for (rb, kp) in [(1, 0), (2, 32), (3, 8), (5, 16), (8, 64), (16, 0)] {
            let mut opts = KernelOpts::tmac();
            opts.row_block = rb;
            opts.kg_panel = kp;
            let (qm, act) = setup(m, k, n, 3);
            let plan = WeightPlan::new(&qm, opts).unwrap();
            let ctx = ExecCtx::new(2);
            let mut out = vec![0f32; n * m];
            mpgemm(&plan, &act, n, &mut out, &ctx).unwrap();
            for ni in 0..n {
                let mut row = vec![0f32; m];
                crate::gemv::mpgemv(&plan, &act[ni * k..(ni + 1) * k], &mut row, &ctx).unwrap();
                assert_eq!(
                    &out[ni * m..(ni + 1) * m],
                    &row[..],
                    "rb={rb} kp={kp} row {ni}"
                );
            }
        }
    }

    #[test]
    fn row_partition_aligns_to_both_blockings() {
        assert_eq!(row_partition(11, 8, 4), vec![0..4, 4..8, 8..11]);
        assert_eq!(row_partition(6, 8, 4), vec![0..4, 4..6]);
        assert_eq!(row_partition(3, 1, 4), vec![0..1, 1..2, 2..3]);
        // Register blocks never straddle an n_block boundary.
        assert_eq!(row_partition(10, 4, 8), vec![0..4, 4..8, 8..10]);
        assert!(row_partition(0, 8, 4).is_empty());
        let total: usize = row_partition(57, 8, 4).iter().map(|r| r.len()).sum();
        assert_eq!(total, 57);
    }

    #[test]
    fn cached_interleaved_path_matches_fresh_and_reuses() {
        let (m, k, n) = (64, 128, 9);
        let (qm, act) = setup(m, k, n, 2);
        let (qm4, _) = setup(m, k, n, 4);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let plan4 = WeightPlan::new(&qm4, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let mut fresh = vec![0f32; n * m];
        mpgemm(&plan, &act, n, &mut fresh, &ctx).unwrap();
        ctx.next_activation();
        let mut cached = vec![0f32; n * m];
        mpgemm_cached(&plan, &act, n, &mut cached, &ctx).unwrap();
        assert_eq!(fresh, cached);
        // A second plan with the same blocking reuses the interleave work.
        let mut out4 = vec![0f32; n * m];
        mpgemm_cached(&plan4, &act, n, &mut out4, &ctx).unwrap();
        assert_eq!(ctx.interleave_stats(), (1, 1), "interleave must be shared");
    }

    #[test]
    fn n_not_multiple_of_block() {
        let (m, k, n) = (32, 64, 3); // n_block = 8 > n
        let (qm, act) = setup(m, k, n, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let mut out = vec![0f32; n * m];
        assert!(mpgemm(&plan, &act, n, &mut out, &ctx).is_ok());
    }

    #[test]
    fn rejects_bad_shapes() {
        let (m, k, n) = (32, 64, 2);
        let (qm, act) = setup(m, k, n, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let mut out = vec![0f32; n * m];
        assert!(mpgemm(&plan, &act, 0, &mut out, &ctx).is_err());
        assert!(mpgemm(&plan, &act[..k], n, &mut out, &ctx).is_err());
        let mut short = vec![0f32; n * m - 1];
        assert!(mpgemm(&plan, &act, n, &mut short, &ctx).is_err());
    }
}
