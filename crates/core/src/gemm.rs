//! mpGEMM driver (`N > 1`, e.g. prefill with a 256-token sequence).
//!
//! The lookup table is the reusable operand (§3.2: "the weight `W[M, K]` can
//! share the same pre-computed lookup table"), so the driver blocks the
//! sequence dimension: for each block of `n_block` activation rows it builds
//! their tables once, then sweeps all m-tiles with the block's rows innermost
//! — each weight tile is read once per block instead of once per row.

use crate::exec::ExecCtx;
use crate::gemv::{build_tables, run_mtile};
use crate::kernel;
use crate::opts::TILE_M;
use crate::plan::WeightPlan;
use crate::table::ActTables;
use crate::TmacError;

/// Shared-output wrapper: threads write disjoint `(n, m-tile)` blocks.
struct OutPtr(*mut f32);
// SAFETY: tiles are partitioned disjointly per dispatch and each write
// targets `row n, columns [m0, m0+take)` for a tile this thread owns; the
// dispatcher keeps the buffer alive until completion.
unsafe impl Sync for OutPtr {}

/// Validates the `n × K` / `n × M` shapes shared by every mpGEMM entry.
fn check_shapes(
    plan: &WeightPlan,
    act_len: usize,
    n: usize,
    out_len: usize,
) -> Result<(), TmacError> {
    if n == 0 {
        return Err(TmacError::Shape("mpgemm needs n >= 1".into()));
    }
    if act_len != n * plan.k {
        return Err(TmacError::Shape(format!(
            "activation length {act_len} != n*K = {}",
            n * plan.k
        )));
    }
    if out_len != n * plan.m {
        return Err(TmacError::Shape(format!(
            "output length {out_len} != n*M = {}",
            n * plan.m
        )));
    }
    Ok(())
}

/// Whether the AVX2 kernel serves `plan` on this host.
fn avx2_for(plan: &WeightPlan) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        kernel::avx2::supported(&plan.opts)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = plan;
        false
    }
}

/// Sweeps all m-tiles for one block of rows: each weight tile is read once
/// and applied to every row's tables (the §3.2 reuse), with the rows of the
/// block innermost. `tables[i]` belongs to output row `n0 + i` of `out`.
fn sweep_block(
    plan: &WeightPlan,
    tables: &[ActTables],
    n0: usize,
    out: &mut [f32],
    use_avx2: bool,
    ctx: &ExecCtx,
) {
    let m = plan.m;
    let out_ptr = OutPtr(out.as_mut_ptr());
    let out_ref = &out_ptr;
    ctx.pool().chunks(plan.m_tiles(), 1, |tiles| {
        let mut buf = [0f32; TILE_M];
        for mt in tiles {
            let m0 = mt * TILE_M;
            let take = TILE_M.min(m - m0);
            for (ni, t) in tables.iter().enumerate() {
                run_mtile(plan, t, mt, &mut buf, use_avx2);
                // SAFETY: this thread owns tile `mt`; the destination
                // range lies in row `n0 + ni` of `out`, within bounds;
                // the buffer outlives the dispatch.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        buf.as_ptr(),
                        out_ref.0.add((n0 + ni) * m + m0),
                        take,
                    );
                }
            }
        }
    });
}

/// Computes `out[n][m] = Σ_k act[n][k] · W[m][k]`.
///
/// `act` is row-major `n × K`; `out` is row-major `n × M`. Tables are built
/// fresh per call; use [`mpgemm_cached`] when several weight matrices
/// consume the same activation batch (batched QKV projections).
///
/// # Errors
///
/// Returns [`TmacError::Shape`] on dimension mismatches or `n == 0`.
pub fn mpgemm(
    plan: &WeightPlan,
    act: &[f32],
    n: usize,
    out: &mut [f32],
    ctx: &ExecCtx,
) -> Result<(), TmacError> {
    check_shapes(plan, act.len(), n, out.len())?;
    let use_avx2 = avx2_for(plan);
    let nb = plan.opts.n_block.max(1);
    let k = plan.k;
    let mut n0 = 0;
    while n0 < n {
        let nblk = nb.min(n - n0);
        // Online stage: tables for this block of activation rows. The cost
        // is O(nblk · K), negligible against the O(nblk · M · K / g) lookup
        // sweep, so it is built serially.
        let mut tables: Vec<ActTables> = Vec::with_capacity(nblk);
        for ni in 0..nblk {
            tables.push(build_tables(plan, &act[(n0 + ni) * k..(n0 + ni + 1) * k])?);
        }
        sweep_block(plan, &tables, n0, out, use_avx2, ctx);
        n0 += nblk;
    }
    Ok(())
}

/// [`mpgemm`] through the context's batched activation-table cache.
///
/// Within one [`ExecCtx::next_activation`] scope, every plan with the same
/// table profile consuming the same `n × K` activation batch shares one set
/// of per-row table builds — the QKV / gate-up amortization of the decode
/// path, extended to batched serving (see [`ExecCtx::batch_tables_for`]).
///
/// # Errors
///
/// Same contract as [`mpgemm`].
pub fn mpgemm_cached(
    plan: &WeightPlan,
    act: &[f32],
    n: usize,
    out: &mut [f32],
    ctx: &ExecCtx,
) -> Result<(), TmacError> {
    check_shapes(plan, act.len(), n, out.len())?;
    let tables = ctx.batch_tables_for(plan, act, n)?;
    mpgemm_with_tables(plan, &tables, out, ctx)
}

/// [`mpgemm`] with caller-provided per-row tables (`tables.len()` rows).
///
/// # Errors
///
/// Returns [`TmacError::Shape`] if `out.len() != tables.len() · M` or any
/// table was built for a different `K` / group size / options.
pub fn mpgemm_with_tables(
    plan: &WeightPlan,
    tables: &[ActTables],
    out: &mut [f32],
    ctx: &ExecCtx,
) -> Result<(), TmacError> {
    let n = tables.len();
    if n == 0 {
        return Err(TmacError::Shape("mpgemm needs n >= 1".into()));
    }
    if out.len() != n * plan.m {
        return Err(TmacError::Shape(format!(
            "output length {} != n*M = {}",
            out.len(),
            n * plan.m
        )));
    }
    for t in tables {
        crate::gemv::check_tables_compatible(plan, t)?;
    }
    let use_avx2 = avx2_for(plan);
    let nb = plan.opts.n_block.max(1);
    let mut n0 = 0;
    while n0 < n {
        let nblk = nb.min(n - n0);
        sweep_block(plan, &tables[n0..n0 + nblk], n0, out, use_avx2, ctx);
        n0 += nblk;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::scalar::gemv_reference;
    use crate::opts::KernelOpts;
    use tmac_quant::rtn;

    fn setup(m: usize, k: usize, n: usize, bits: u8) -> (tmac_quant::QuantizedMatrix, Vec<f32>) {
        let w: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32) * 0.31).sin() * 0.6)
            .collect();
        let act: Vec<f32> = (0..n * k)
            .map(|i| ((i as f32) * 0.17).cos() * 0.8)
            .collect();
        (rtn::quantize(&w, m, k, bits, 32).unwrap(), act)
    }

    #[test]
    fn gemm_rows_match_gemv_rows() {
        let (m, k, n) = (64, 128, 5);
        let (qm, act) = setup(m, k, n, 4);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(2);
        let mut out = vec![0f32; n * m];
        mpgemm(&plan, &act, n, &mut out, &ctx).unwrap();
        for ni in 0..n {
            let mut row = vec![0f32; m];
            crate::gemv::mpgemv(&plan, &act[ni * k..(ni + 1) * k], &mut row, &ctx).unwrap();
            assert_eq!(&out[ni * m..(ni + 1) * m], &row[..], "row {ni}");
        }
    }

    #[test]
    fn gemm_matches_reference() {
        let (m, k, n) = (48, 96, 7);
        let (qm, act) = setup(m, k, n, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(2);
        let mut out = vec![0f32; n * m];
        mpgemm(&plan, &act, n, &mut out, &ctx).unwrap();
        for ni in 0..n {
            let reference = gemv_reference(&qm, &act[ni * k..(ni + 1) * k]);
            let nmse = tmac_simd::f32ops::nmse(&out[ni * m..(ni + 1) * m], &reference);
            assert!(nmse < 2e-3, "row {ni} nmse={nmse}");
        }
    }

    #[test]
    fn cached_and_with_tables_match_fresh() {
        let (m, k, n) = (64, 128, 11); // crosses an n_block boundary
        let (qm, act) = setup(m, k, n, 3);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(2);
        let mut fresh = vec![0f32; n * m];
        mpgemm(&plan, &act, n, &mut fresh, &ctx).unwrap();

        ctx.next_activation();
        let mut cached = vec![0f32; n * m];
        mpgemm_cached(&plan, &act, n, &mut cached, &ctx).unwrap();
        assert_eq!(fresh, cached);

        let tables: Vec<ActTables> = (0..n)
            .map(|ni| build_tables(&plan, &act[ni * k..(ni + 1) * k]).unwrap())
            .collect();
        let mut with = vec![0f32; n * m];
        mpgemm_with_tables(&plan, &tables, &mut with, &ctx).unwrap();
        assert_eq!(fresh, with);
    }

    #[test]
    fn cached_shares_builds_across_plans() {
        // Batched QKV: two plans, one activation batch, one batched build.
        let (m, k, n) = (32, 64, 4);
        let (qm, act) = setup(m, k, n, 2);
        let (qm2, _) = setup(m, k, n, 4);
        let plan2 = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let plan4 = WeightPlan::new(&qm2, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        ctx.next_activation();
        let mut out = vec![0f32; n * m];
        mpgemm_cached(&plan2, &act, n, &mut out, &ctx).unwrap();
        mpgemm_cached(&plan4, &act, n, &mut out, &ctx).unwrap();
        let s = ctx.table_stats();
        assert_eq!((s.hits, s.misses), (1, 1), "second plan must reuse");
    }

    #[test]
    fn with_tables_rejects_incompatible() {
        let (m, k, n) = (32, 64, 2);
        let (qm, act) = setup(m, k, n, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let mut out = vec![0f32; n * m];
        assert!(mpgemm_with_tables(&plan, &[], &mut out, &ctx).is_err());
        let t = build_tables(&plan, &act[..k]).unwrap();
        let mut short = vec![0f32; m];
        assert!(mpgemm_with_tables(&plan, &[t.clone(), t], &mut short, &ctx).is_err());
        // Tables built without quantization don't match a TQ plan.
        let wrong = ActTables::build(&act[..k], 32, &crate::opts::KernelOpts::tm_base()).unwrap();
        let mut one = vec![0f32; m];
        assert!(mpgemm_with_tables(&plan, &[wrong], &mut one, &ctx).is_err());
        // Mirror-consolidated tables have half the layout of full tables.
        let mirrored =
            ActTables::build(&act[..k], 32, &crate::opts::KernelOpts::tmac_mirror()).unwrap();
        assert!(mpgemm_with_tables(&plan, &[mirrored], &mut one, &ctx).is_err());
        // A fast-aggregation plan needs the offset u8 tables materialized.
        let fa_plan = WeightPlan::new(&qm, KernelOpts::tmac_fast_aggregation()).unwrap();
        let no_fa = build_tables(&plan, &act[..k]).unwrap();
        assert!(mpgemm_with_tables(&fa_plan, &[no_fa], &mut one, &ctx).is_err());
    }

    #[test]
    fn n_not_multiple_of_block() {
        let (m, k, n) = (32, 64, 3); // n_block = 8 > n
        let (qm, act) = setup(m, k, n, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let mut out = vec![0f32; n * m];
        assert!(mpgemm(&plan, &act, n, &mut out, &ctx).is_ok());
    }

    #[test]
    fn rejects_bad_shapes() {
        let (m, k, n) = (32, 64, 2);
        let (qm, act) = setup(m, k, n, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let mut out = vec![0f32; n * m];
        assert!(mpgemm(&plan, &act, 0, &mut out, &ctx).is_err());
        assert!(mpgemm(&plan, &act[..k], n, &mut out, &ctx).is_err());
        let mut short = vec![0f32; n * m - 1];
        assert!(mpgemm(&plan, &act, n, &mut short, &ctx).is_err());
    }
}
