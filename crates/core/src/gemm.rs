//! mpGEMM driver (`N > 1`, e.g. prefill with a 256-token sequence).
//!
//! The lookup table is the reusable operand (§3.2: "the weight `W[M, K]` can
//! share the same pre-computed lookup table"), so the driver blocks the
//! sequence dimension: for each block of `n_block` activation rows it builds
//! their tables once, then sweeps all m-tiles with the block's rows innermost
//! — each weight tile is read once per block instead of once per row.

use crate::exec::ExecCtx;
use crate::gemv::{build_tables, run_mtile};
use crate::kernel;
use crate::opts::TILE_M;
use crate::plan::WeightPlan;
use crate::table::ActTables;
use crate::TmacError;

/// Shared-output wrapper: threads write disjoint `(n, m-tile)` blocks.
struct OutPtr(*mut f32);
// SAFETY: tiles are partitioned disjointly per dispatch and each write
// targets `row n, columns [m0, m0+take)` for a tile this thread owns; the
// dispatcher keeps the buffer alive until completion.
unsafe impl Sync for OutPtr {}

/// Computes `out[n][m] = Σ_k act[n][k] · W[m][k]`.
///
/// `act` is row-major `n × K`; `out` is row-major `n × M`.
///
/// # Errors
///
/// Returns [`TmacError::Shape`] on dimension mismatches or `n == 0`.
pub fn mpgemm(
    plan: &WeightPlan,
    act: &[f32],
    n: usize,
    out: &mut [f32],
    ctx: &ExecCtx,
) -> Result<(), TmacError> {
    if n == 0 {
        return Err(TmacError::Shape("mpgemm needs n >= 1".into()));
    }
    if act.len() != n * plan.k {
        return Err(TmacError::Shape(format!(
            "activation length {} != n*K = {}",
            act.len(),
            n * plan.k
        )));
    }
    if out.len() != n * plan.m {
        return Err(TmacError::Shape(format!(
            "output length {} != n*M = {}",
            out.len(),
            n * plan.m
        )));
    }

    #[cfg(target_arch = "x86_64")]
    let use_avx2 = kernel::avx2::supported(&plan.opts);
    #[cfg(not(target_arch = "x86_64"))]
    let use_avx2 = false;

    let nb = plan.opts.n_block.max(1);
    let (m, k) = (plan.m, plan.k);
    let out_ptr = OutPtr(out.as_mut_ptr());
    let out_ref = &out_ptr;

    let mut n0 = 0;
    while n0 < n {
        let nblk = nb.min(n - n0);
        // Online stage: tables for this block of activation rows. The cost
        // is O(nblk · K), negligible against the O(nblk · M · K / g) lookup
        // sweep, so it is built serially.
        let mut tables: Vec<ActTables> = Vec::with_capacity(nblk);
        for ni in 0..nblk {
            tables.push(build_tables(plan, &act[(n0 + ni) * k..(n0 + ni + 1) * k])?);
        }
        let tables_ref = &tables;
        ctx.pool().chunks(plan.m_tiles(), 1, |tiles| {
            let mut buf = [0f32; TILE_M];
            for mt in tiles {
                let m0 = mt * TILE_M;
                let take = TILE_M.min(m - m0);
                for (ni, t) in tables_ref.iter().enumerate() {
                    run_mtile(plan, t, mt, &mut buf, use_avx2);
                    // SAFETY: this thread owns tile `mt`; the destination
                    // range lies in row `n0 + ni` of `out`, within bounds;
                    // the buffer outlives the dispatch.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            buf.as_ptr(),
                            out_ref.0.add((n0 + ni) * m + m0),
                            take,
                        );
                    }
                }
            }
        });
        n0 += nblk;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::scalar::gemv_reference;
    use crate::opts::KernelOpts;
    use tmac_quant::rtn;

    fn setup(m: usize, k: usize, n: usize, bits: u8) -> (tmac_quant::QuantizedMatrix, Vec<f32>) {
        let w: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32) * 0.31).sin() * 0.6)
            .collect();
        let act: Vec<f32> = (0..n * k)
            .map(|i| ((i as f32) * 0.17).cos() * 0.8)
            .collect();
        (rtn::quantize(&w, m, k, bits, 32).unwrap(), act)
    }

    #[test]
    fn gemm_rows_match_gemv_rows() {
        let (m, k, n) = (64, 128, 5);
        let (qm, act) = setup(m, k, n, 4);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(2);
        let mut out = vec![0f32; n * m];
        mpgemm(&plan, &act, n, &mut out, &ctx).unwrap();
        for ni in 0..n {
            let mut row = vec![0f32; m];
            crate::gemv::mpgemv(&plan, &act[ni * k..(ni + 1) * k], &mut row, &ctx).unwrap();
            assert_eq!(&out[ni * m..(ni + 1) * m], &row[..], "row {ni}");
        }
    }

    #[test]
    fn gemm_matches_reference() {
        let (m, k, n) = (48, 96, 7);
        let (qm, act) = setup(m, k, n, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(2);
        let mut out = vec![0f32; n * m];
        mpgemm(&plan, &act, n, &mut out, &ctx).unwrap();
        for ni in 0..n {
            let reference = gemv_reference(&qm, &act[ni * k..(ni + 1) * k]);
            let nmse = tmac_simd::f32ops::nmse(&out[ni * m..(ni + 1) * m], &reference);
            assert!(nmse < 2e-3, "row {ni} nmse={nmse}");
        }
    }

    #[test]
    fn n_not_multiple_of_block() {
        let (m, k, n) = (32, 64, 3); // n_block = 8 > n
        let (qm, act) = setup(m, k, n, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let mut out = vec![0f32; n * m];
        assert!(mpgemm(&plan, &act, n, &mut out, &ctx).is_ok());
    }

    #[test]
    fn rejects_bad_shapes() {
        let (m, k, n) = (32, 64, 2);
        let (qm, act) = setup(m, k, n, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let mut out = vec![0f32; n * m];
        assert!(mpgemm(&plan, &act, 0, &mut out, &ctx).is_err());
        assert!(mpgemm(&plan, &act[..k], n, &mut out, &ctx).is_err());
        let mut short = vec![0f32; n * m - 1];
        assert!(mpgemm(&plan, &act, n, &mut short, &ctx).is_err());
    }
}
