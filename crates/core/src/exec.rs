//! Shared execution context: thread pool + activation-table cache + scratch.
//!
//! T-MAC's central amortization claim (§3.2) is that the online table
//! precompute is paid once per *activation*, not once per weight matrix:
//! every output row — and every weight matrix — consuming the same
//! activation vector can reuse one [`ActTables`] build. In a transformer
//! layer the QKV projections share the attention-normed input and the
//! gate/up projections share the FFN-normed input, so a decode step needs
//! far fewer table builds than it has projections.
//!
//! [`ExecCtx`] is the carrier of that reuse. It bundles what every kernel
//! invocation needs:
//!
//! * the **thread pool** the kernels dispatch on (replacing the bare
//!   `&ThreadPool` parameter that used to thread through every signature);
//! * the **activation-table cache**, keyed on `(activation generation, K,
//!   table profile)` — callers bump the generation whenever the activation
//!   vector changes, and every lookup within one generation that matches the
//!   shape/profile reuses the cached build;
//! * a **scratch arena** of recyclable `f32` buffers, so per-call workspace
//!   allocations can be amortized across tokens.
//!
//! The cache is behind a mutex and the counters are atomics, so the
//! *bookkeeping* ([`ExecCtx::tables_for`], stats, the scratch arena) is
//! safe to call from several threads. Kernel **dispatch** is not: the
//! underlying [`ThreadPool`] executes one job at a time, so concurrent
//! `gemv`/`forward` calls through contexts sharing one pool must be
//! externally serialized (the pool asserts on concurrent dispatch). The
//! expected usage is one context per generation stream.

use crate::gemv;
use crate::plan::WeightPlan;
use crate::table::{ActTables, BatchTables};
use crate::TmacError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use tmac_threadpool::ThreadPool;

/// The table-compatibility profile of a weight plan: two plans with equal
/// profiles can consume the same [`ActTables`] for the same activation.
///
/// Weight *bit-width is deliberately absent*: tables are built from the
/// activation alone, so a 4-bit and a 2-bit matrix with the same reduction
/// length and table options share builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableProfile {
    /// Reduction length `K`.
    pub k: usize,
    /// Activations per scale block.
    pub group_size: usize,
    /// Whether entries are quantized to `i8`.
    pub table_quant: bool,
    /// Whether tables are mirror-consolidated.
    pub mirror: bool,
    /// Whether offset `u8` tables are additionally materialized.
    pub fast_aggregation: bool,
}

impl TableProfile {
    /// The profile a plan's tables must satisfy.
    pub fn of_plan(plan: &WeightPlan) -> Self {
        TableProfile {
            k: plan.k,
            group_size: plan.group_size,
            table_quant: plan.opts.table_quant,
            mirror: plan.opts.mirror,
            fast_aggregation: plan.opts.fast_aggregation,
        }
    }
}

/// Cache hit/miss counters (monotonic over the context's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableCacheStats {
    /// Lookups served from the cache (table builds avoided).
    pub hits: u64,
    /// Lookups that had to build tables.
    pub misses: u64,
}

impl TableCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// One cached table build.
struct CacheEntry {
    generation: u64,
    profile: TableProfile,
    fingerprint: u64,
    tables: Arc<ActTables>,
}

/// One cached *batch* of table builds: `n` activation rows consumed by an
/// mpGEMM call, built together so QKV-style projection groups share the
/// per-row builds at `n > 1` exactly as they do at `n == 1`.
struct BatchCacheEntry {
    generation: u64,
    profile: TableProfile,
    n: usize,
    fingerprint: u64,
    tables: Arc<Vec<ActTables>>,
}

/// One cached set of *interleaved* register blocks, derived from a batched
/// build. Keyed by the identity of the source `Arc` (held here, so the
/// allocation cannot be recycled while cached) plus the blocking that
/// shaped it — two plans sharing per-row builds but tuned to different
/// `row_block`s interleave separately.
struct InterleavedCacheEntry {
    generation: u64,
    n_block: usize,
    row_block: usize,
    source: Arc<Vec<ActTables>>,
    blocks: Arc<Vec<BatchTables>>,
}

/// Interior state: cached tables plus the scratch free-list.
struct CtxState {
    tables: Vec<CacheEntry>,
    batch_tables: Vec<BatchCacheEntry>,
    interleaved: Vec<InterleavedCacheEntry>,
    scratch: Vec<Vec<f32>>,
}

/// Distinct `(K, profile)` combinations retained per generation. A decode
/// step sees a handful (attention in, attention out, FFN in, FFN mid, head
/// in), so a small linear-scan cache beats a hash map.
const CACHE_CAPACITY: usize = 8;

/// Distinct batched builds retained per generation. A batched transformer
/// step needs at most one live entry per projection group (QKV, gate/up),
/// so the capacity stays small.
const BATCH_CACHE_CAPACITY: usize = 4;

/// Interleaved block sets retained per generation (one live entry per
/// projection group × blocking shape).
const INTERLEAVED_CACHE_CAPACITY: usize = 4;

/// Buffers retained in the scratch free-list.
const SCRATCH_CAPACITY: usize = 16;

/// An FNV-style fingerprint over *every* element of an activation vector.
///
/// The generation counter is the cache's contract; the fingerprint is a
/// safety net that catches a caller reusing a generation for a *different*
/// activation (the mismatch downgrades the lookup to a rebuild instead of
/// silently returning stale tables). Hashing all of `act` is what makes
/// that guarantee real — a sampled hash would have deterministic blind
/// spots — and its O(K) cost is small next to the O(K·2^g/g) table build
/// a hit avoids.
fn fingerprint(act: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (act.len() as u64);
    for x in act {
        h = (h ^ x.to_bits() as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// How the context holds its pool: owned (the common case) or shared.
enum PoolHandle {
    Owned(ThreadPool),
    Shared(Arc<ThreadPool>),
}

/// The unified execution context every forward/gemv entry point takes.
///
/// # Examples
///
/// Two layers consuming the same activation share one table build:
///
/// ```
/// use tmac_core::{ExecCtx, KernelOpts, TmacLinear};
///
/// let w: Vec<f32> = (0..64 * 128).map(|i| (i as f32 * 0.05).sin()).collect();
/// let wq = TmacLinear::from_f32(&w, 64, 128, 4, 32, KernelOpts::tmac()).unwrap();
/// let wk = TmacLinear::from_f32(&w, 64, 128, 2, 32, KernelOpts::tmac()).unwrap();
///
/// let ctx = ExecCtx::new(2);
/// let act: Vec<f32> = (0..128).map(|i| (i as f32 * 0.11).cos()).collect();
/// let mut out = vec![0f32; 64];
///
/// ctx.next_activation();
/// wq.gemv_cached(&act, &mut out, &ctx).unwrap(); // miss: builds tables
/// wk.gemv_cached(&act, &mut out, &ctx).unwrap(); // hit: reuses them
/// let stats = ctx.table_stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
pub struct ExecCtx {
    pool: PoolHandle,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    interleave_hits: AtomicU64,
    interleave_misses: AtomicU64,
    state: Mutex<CtxState>,
}

impl std::fmt::Debug for ExecCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("threads", &self.threads())
            .field("generation", &self.generation())
            .field("stats", &self.table_stats())
            .finish()
    }
}

impl ExecCtx {
    /// Creates a context owning a fresh pool of `n_threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> Self {
        Self::from_handle(PoolHandle::Owned(ThreadPool::new(n_threads)))
    }

    /// Creates a context sharing an existing pool.
    pub fn with_pool(pool: Arc<ThreadPool>) -> Self {
        Self::from_handle(PoolHandle::Shared(pool))
    }

    /// Creates a context sized to the machine's available parallelism.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    fn from_handle(pool: PoolHandle) -> Self {
        ExecCtx {
            pool,
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            interleave_hits: AtomicU64::new(0),
            interleave_misses: AtomicU64::new(0),
            state: Mutex::new(CtxState {
                tables: Vec::new(),
                batch_tables: Vec::new(),
                interleaved: Vec::new(),
                scratch: Vec::new(),
            }),
        }
    }

    /// The thread pool kernels dispatch on.
    pub fn pool(&self) -> &ThreadPool {
        match &self.pool {
            PoolHandle::Owned(p) => p,
            PoolHandle::Shared(p) => p,
        }
    }

    /// Number of threads (including the dispatcher).
    pub fn threads(&self) -> usize {
        self.pool().threads()
    }

    /// Current activation generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Declares that subsequent forwards consume a *new* activation vector:
    /// bumps the generation, invalidating all cached tables. Returns the new
    /// generation.
    ///
    /// Call this once per distinct activation (e.g. after each norm in a
    /// transformer layer); every [`ExecCtx::tables_for`] lookup between two
    /// bumps that matches shape and profile reuses one build.
    pub fn next_activation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn lock(&self) -> MutexGuard<'_, CtxState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns tables for `plan` × `act`, reusing the cached build when one
    /// matching `(generation, K, profile)` exists.
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures ([`TmacError::Shape`],
    /// [`TmacError::Numeric`]) from [`gemv::build_tables`].
    pub fn tables_for(&self, plan: &WeightPlan, act: &[f32]) -> Result<Arc<ActTables>, TmacError> {
        let profile = TableProfile::of_plan(plan);
        let generation = self.generation();
        let fp = fingerprint(act);
        {
            let state = self.lock();
            if let Some(e) = state
                .tables
                .iter()
                .find(|e| e.generation == generation && e.profile == profile && e.fingerprint == fp)
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                tmac_trace::instant("exec", "table_hit", generation, plan.k as u64);
                return Ok(Arc::clone(&e.tables));
            }
        }
        // Build outside the lock: concurrent lookups of different profiles
        // must not serialize on each other's builds.
        let _s = tmac_trace::span("exec", "table_build", generation, plan.k as u64);
        let tables = Arc::new(gemv::build_tables(plan, act)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut state = self.lock();
        let entry = CacheEntry {
            generation,
            profile,
            fingerprint: fp,
            tables: Arc::clone(&tables),
        };
        if let Some(slot) = state.tables.iter_mut().find(|e| e.profile == profile) {
            // One slot per (K, profile): a new activation (or a fingerprint
            // mismatch within a generation) replaces the stale build.
            *slot = entry;
        } else if state.tables.len() < CACHE_CAPACITY {
            state.tables.push(entry);
        } else if let Some(oldest) = state.tables.iter_mut().min_by_key(|e| e.generation) {
            *oldest = entry;
        }
        Ok(tables)
    }

    /// Returns one [`ActTables`] build per activation row of a row-major
    /// `n × K` batch, reusing the cached builds when a matching
    /// `(generation, K, profile, n)` batch exists.
    ///
    /// This is the batched twin of [`ExecCtx::tables_for`]: within one
    /// [`ExecCtx::next_activation`] scope, every plan with the same table
    /// profile consuming the same activation batch (the QKV projections of
    /// a batched decode step, the FFN gate/up pair of a prefill chunk)
    /// shares a single set of per-row builds. One lookup counts once in
    /// [`ExecCtx::table_stats`] regardless of `n`.
    ///
    /// # Errors
    ///
    /// Returns [`TmacError::Shape`] when `n == 0` or `act.len() != n·K`;
    /// otherwise propagates per-row table-construction failures.
    pub fn batch_tables_for(
        &self,
        plan: &WeightPlan,
        act: &[f32],
        n: usize,
    ) -> Result<Arc<Vec<ActTables>>, TmacError> {
        if n == 0 {
            return Err(TmacError::Shape("batch_tables_for needs n >= 1".into()));
        }
        if act.len() != n * plan.k {
            return Err(TmacError::Shape(format!(
                "activation length {} != n*K = {}",
                act.len(),
                n * plan.k
            )));
        }
        let profile = TableProfile::of_plan(plan);
        let generation = self.generation();
        let fp = fingerprint(act);
        {
            let state = self.lock();
            if let Some(e) = state.batch_tables.iter().find(|e| {
                e.generation == generation
                    && e.profile == profile
                    && e.n == n
                    && e.fingerprint == fp
            }) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                tmac_trace::instant("exec", "table_hit", generation, n as u64);
                return Ok(Arc::clone(&e.tables));
            }
        }
        // Build outside the lock (same rationale as `tables_for`).
        let _s = tmac_trace::span("exec", "table_build_batch", generation, n as u64);
        let mut tables = Vec::with_capacity(n);
        for ni in 0..n {
            tables.push(gemv::build_tables(
                plan,
                &act[ni * plan.k..(ni + 1) * plan.k],
            )?);
        }
        let tables = Arc::new(tables);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut state = self.lock();
        let entry = BatchCacheEntry {
            generation,
            profile,
            n,
            fingerprint: fp,
            tables: Arc::clone(&tables),
        };
        if let Some(slot) = state
            .batch_tables
            .iter_mut()
            .find(|e| e.profile == profile && e.n == n)
        {
            *slot = entry;
        } else if state.batch_tables.len() < BATCH_CACHE_CAPACITY {
            state.batch_tables.push(entry);
        } else if let Some(oldest) = state.batch_tables.iter_mut().min_by_key(|e| e.generation) {
            *oldest = entry;
        }
        Ok(tables)
    }

    /// Returns the interleaved register blocks ([`BatchTables`]) of a
    /// row-major `n × K` activation batch, partitioned by the plan's
    /// `n_block`/`row_block` — the table form the multi-row mpGEMM kernel
    /// streams.
    ///
    /// The per-row builds come from [`ExecCtx::batch_tables_for`] (and count
    /// in [`ExecCtx::table_stats`] exactly as before); the interleaving on
    /// top is cached by the identity of that batched build, so projection
    /// groups that share per-row builds (batched QKV, gate/up) also share
    /// the interleave work as long as their blocking agrees. Interleave
    /// cache traffic is reported by [`ExecCtx::interleave_stats`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ExecCtx::batch_tables_for`], plus
    /// [`TmacError::Shape`] when the plan's tables are not quantized (the
    /// interleaved layout is `i8`-only).
    pub fn interleaved_tables_for(
        &self,
        plan: &WeightPlan,
        act: &[f32],
        n: usize,
    ) -> Result<Arc<Vec<BatchTables>>, TmacError> {
        let source = self.batch_tables_for(plan, act, n)?;
        let generation = self.generation();
        let nb = plan.opts.n_block.max(1);
        let rb = plan.opts.effective_row_block();
        {
            let state = self.lock();
            if let Some(e) = state
                .interleaved
                .iter()
                .find(|e| Arc::ptr_eq(&e.source, &source) && e.n_block == nb && e.row_block == rb)
            {
                self.interleave_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&e.blocks));
            }
        }
        // Interleave outside the lock (same rationale as the builds).
        let _s = tmac_trace::span("exec", "interleave", generation, n as u64);
        let mut blocks = Vec::new();
        for range in crate::gemm::row_partition(n, nb, rb) {
            blocks.push(BatchTables::interleave(&source[range])?);
        }
        let blocks = Arc::new(blocks);
        self.interleave_misses.fetch_add(1, Ordering::Relaxed);
        let mut state = self.lock();
        let entry = InterleavedCacheEntry {
            generation,
            n_block: nb,
            row_block: rb,
            source,
            blocks: Arc::clone(&blocks),
        };
        if let Some(slot) = state
            .interleaved
            .iter_mut()
            .find(|e| Arc::ptr_eq(&e.source, &entry.source) && e.n_block == nb && e.row_block == rb)
        {
            *slot = entry;
        } else if state.interleaved.len() < INTERLEAVED_CACHE_CAPACITY {
            state.interleaved.push(entry);
        } else if let Some(oldest) = state.interleaved.iter_mut().min_by_key(|e| e.generation) {
            *oldest = entry;
        }
        Ok(blocks)
    }

    /// `(hits, misses)` of the interleaved-block cache (separate from
    /// [`ExecCtx::table_stats`], which counts table *builds*).
    pub fn interleave_stats(&self) -> (u64, u64) {
        (
            self.interleave_hits.load(Ordering::Relaxed),
            self.interleave_misses.load(Ordering::Relaxed),
        )
    }

    /// Cache hit/miss counters since construction (or the last
    /// [`ExecCtx::reset_table_stats`]).
    pub fn table_stats(&self) -> TableCacheStats {
        TableCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the hit/miss counters (the cache contents are untouched).
    pub fn reset_table_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Takes a zeroed `f32` buffer of length `len` from the scratch arena
    /// (allocating only when the arena has none to recycle). Return it with
    /// [`ExecCtx::put_buf`] to amortize the allocation across calls.
    pub fn take_buf(&self, len: usize) -> Vec<f32> {
        let recycled = {
            let mut state = self.lock();
            state
                .scratch
                .iter()
                .position(|b| b.capacity() >= len)
                .map(|i| state.scratch.swap_remove(i))
        };
        match recycled {
            Some(mut b) => {
                b.clear();
                b.resize(len, 0.0);
                b
            }
            None => {
                tmac_trace::instant("exec", "scratch_alloc", 0, len as u64);
                vec![0.0; len]
            }
        }
    }

    /// Returns a buffer to the scratch arena for reuse.
    pub fn put_buf(&self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut state = self.lock();
        if state.scratch.len() < SCRATCH_CAPACITY {
            state.scratch.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::KernelOpts;
    use tmac_quant::rtn;

    fn plan(m: usize, k: usize, bits: u8, opts: KernelOpts) -> WeightPlan {
        let w: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.13).sin()).collect();
        let qm = rtn::quantize(&w, m, k, bits, 32).unwrap();
        WeightPlan::new(&qm, opts).unwrap()
    }

    fn act(k: usize, seed: f32) -> Vec<f32> {
        (0..k).map(|i| ((i as f32) * 0.31 + seed).cos()).collect()
    }

    #[test]
    fn same_generation_hits_across_plans() {
        let ctx = ExecCtx::new(1);
        let p4 = plan(64, 128, 4, KernelOpts::tmac());
        let p2 = plan(32, 128, 2, KernelOpts::tmac());
        let a = act(128, 0.0);
        ctx.next_activation();
        let t1 = ctx.tables_for(&p4, &a).unwrap();
        let t2 = ctx.tables_for(&p2, &a).unwrap(); // different bits, same profile
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(ctx.table_stats(), TableCacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn generation_bump_invalidates() {
        let ctx = ExecCtx::new(1);
        let p = plan(64, 128, 2, KernelOpts::tmac());
        let a = act(128, 0.0);
        ctx.next_activation();
        ctx.tables_for(&p, &a).unwrap();
        ctx.tables_for(&p, &a).unwrap();
        ctx.next_activation();
        ctx.tables_for(&p, &a).unwrap();
        let s = ctx.table_stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn different_profiles_do_not_collide() {
        let ctx = ExecCtx::new(1);
        let quantized = plan(64, 128, 2, KernelOpts::tmac());
        let raw = plan(64, 128, 2, KernelOpts::tm_base());
        let a = act(128, 0.0);
        ctx.next_activation();
        let tq = ctx.tables_for(&quantized, &a).unwrap();
        let tr = ctx.tables_for(&raw, &a).unwrap();
        assert!(tq.quantized && !tr.quantized);
        assert_eq!(ctx.table_stats().misses, 2);
    }

    #[test]
    fn fingerprint_catches_unbumped_activation_change() {
        // A caller that forgets next_activation() must get correct results:
        // the fingerprint mismatch downgrades the lookup to a rebuild.
        let ctx = ExecCtx::new(1);
        let p = plan(64, 128, 2, KernelOpts::tmac());
        ctx.next_activation();
        let t1 = ctx.tables_for(&p, &act(128, 0.0)).unwrap();
        let t2 = ctx.tables_for(&p, &act(128, 5.0)).unwrap();
        assert!(!Arc::ptr_eq(&t1, &t2));
        assert_eq!(ctx.table_stats().misses, 2);
    }

    #[test]
    fn different_k_is_a_different_profile() {
        let ctx = ExecCtx::new(1);
        let p128 = plan(64, 128, 2, KernelOpts::tmac());
        let p256 = plan(64, 256, 2, KernelOpts::tmac());
        ctx.next_activation();
        ctx.tables_for(&p128, &act(128, 0.0)).unwrap();
        ctx.tables_for(&p256, &act(256, 0.0)).unwrap();
        ctx.tables_for(&p128, &act(128, 0.0)).unwrap();
        let s = ctx.table_stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn batch_tables_share_within_a_generation() {
        // The batched QKV pattern: three plans, one n-row activation batch,
        // one set of per-row builds.
        let ctx = ExecCtx::new(1);
        let p4 = plan(64, 128, 4, KernelOpts::tmac());
        let p2 = plan(32, 128, 2, KernelOpts::tmac());
        let n = 5;
        let a: Vec<f32> = (0..n * 128).map(|i| ((i as f32) * 0.19).sin()).collect();
        ctx.next_activation();
        let t1 = ctx.batch_tables_for(&p4, &a, n).unwrap();
        let t2 = ctx.batch_tables_for(&p2, &a, n).unwrap();
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(t1.len(), n);
        assert_eq!(ctx.table_stats(), TableCacheStats { hits: 1, misses: 1 });
        // A bump invalidates, and a different n is a different entry.
        ctx.next_activation();
        let t3 = ctx.batch_tables_for(&p4, &a, n).unwrap();
        assert!(!Arc::ptr_eq(&t1, &t3));
        ctx.batch_tables_for(&p4, &a[..3 * 128], 3).unwrap();
        let s = ctx.table_stats();
        assert_eq!((s.hits, s.misses), (1, 3));
    }

    #[test]
    fn batch_tables_match_per_row_builds() {
        let ctx = ExecCtx::new(1);
        let p = plan(64, 128, 2, KernelOpts::tmac());
        let n = 3;
        let a: Vec<f32> = (0..n * 128).map(|i| ((i as f32) * 0.23).cos()).collect();
        ctx.next_activation();
        let batch = ctx.batch_tables_for(&p, &a, n).unwrap();
        for ni in 0..n {
            let row = gemv::build_tables(&p, &a[ni * 128..(ni + 1) * 128]).unwrap();
            assert_eq!(batch[ni].q_tables, row.q_tables, "row {ni}");
            assert_eq!(batch[ni].q_scales, row.q_scales, "row {ni}");
            assert_eq!(batch[ni].asums, row.asums, "row {ni}");
        }
    }

    #[test]
    fn batch_tables_validate_shape() {
        let ctx = ExecCtx::new(1);
        let p = plan(64, 128, 2, KernelOpts::tmac());
        let a = act(128, 0.0);
        assert!(ctx.batch_tables_for(&p, &a, 0).is_err());
        assert!(ctx.batch_tables_for(&p, &a, 2).is_err());
    }

    #[test]
    fn tables_for_validates_shape() {
        let ctx = ExecCtx::new(1);
        let p = plan(64, 128, 2, KernelOpts::tmac());
        assert!(ctx.tables_for(&p, &act(64, 0.0)).is_err());
    }

    #[test]
    fn scratch_arena_recycles() {
        let ctx = ExecCtx::new(1);
        let mut b = ctx.take_buf(100);
        b[0] = 7.0;
        let p = b.as_ptr();
        ctx.put_buf(b);
        let b2 = ctx.take_buf(50);
        assert_eq!(b2.as_ptr(), p, "smaller request reuses the buffer");
        assert!(b2.iter().all(|&x| x == 0.0), "recycled buffer is zeroed");
        assert_eq!(b2.len(), 50);
    }

    #[test]
    fn context_is_shareable_across_threads() {
        let ctx = ExecCtx::new(2);
        let p = plan(64, 128, 2, KernelOpts::tmac());
        let a = act(128, 0.0);
        ctx.next_activation();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| ctx.tables_for(&p, &a).unwrap());
            }
        });
        let stats = ctx.table_stats();
        assert_eq!(stats.lookups(), 4);
        assert!(stats.misses >= 1);
    }
}
