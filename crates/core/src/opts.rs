//! Kernel option set — the ablation switchboard of the paper's Figure 10.
//!
//! The breakdown experiment applies optimizations cumulatively:
//! `TM-base → +TQ → +Tiling → +Perm. → +Tuning → T-MAC (+IL) → TM+FA`.
//! [`KernelOpts`] encodes each stage as an explicit flag so every stage is a
//! real, runnable kernel configuration rather than a chart label.

/// LUT group size `g`: one table covers `2^g` activation sign patterns.
///
/// `g = 4` makes a 16-entry `i8` table that exactly fills a 128-bit
/// `TBL`/`PSHUFB` lane (paper §4: a larger `g` would need two registers and
/// the slower `TBL2`/AVX-512 shuffles).
pub const LUT_GROUP: usize = 4;

/// Rows processed per kernel micro-tile (`M_tm`).
///
/// 32 matches one AVX2 lookup (32 indices per `PSHUFB` with a duplicated
/// table) and is the tile the paper's Figure 3 uses.
pub const TILE_M: usize = 32;

/// Configuration of the T-MAC mpGEMM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOpts {
    /// Table quantization (§3.3): store LUT entries as `i8` with a dynamic
    /// per-activation-block scale instead of `f32`. Enables in-register
    /// `PSHUFB`/`TBL` lookups; without it the kernel falls back to `f32`
    /// table gathers.
    pub table_quant: bool,
    /// Mirror consolidation (§3.3): store only the 8 non-negated table
    /// entries; reconstruct the other half by sign-flipping at lookup time.
    pub mirror: bool,
    /// Tile the `M`/`K` loops so the LUT block and partial sums stay
    /// cache-resident (§3.2, "Tiling" + "Axis reordering").
    pub tiling: bool,
    /// Offline weight permutation (§3.2): store each tile's indices
    /// contiguously in the exact order the kernel reads them.
    pub permute: bool,
    /// Offline weight interleaving (§3.2, Figure 4): pack row `r` and row
    /// `r + 16` in one byte so unpacking is a plain `AND`/`SHR`.
    pub interleave: bool,
    /// Fast 8-bit aggregation (§4): aggregate lookups with rounding-average
    /// instructions instead of widening adds. Faster, lossy.
    pub fast_aggregation: bool,
    /// `K`-tile length in elements (`K_tk`); must be a positive multiple of
    /// the weight quantization group size. Only meaningful with `tiling`.
    pub tile_k: usize,
    /// Activation rows per batch block in mpGEMM (table reuse across the
    /// sequence dimension): tables for `n_block` rows are built/cached
    /// together and swept over the weights as one block.
    pub n_block: usize,
    /// Activation rows per *register block* inside an mpGEMM sweep: the
    /// multi-row kernel loads each weight index step once and looks it up
    /// against `row_block` rows' interleaved tables. The driver clamps to
    /// `1..=`[`MAX_ROW_BLOCK`] (see [`KernelOpts::effective_row_block`]),
    /// and a register block additionally never straddles an `n_block`
    /// boundary. `1` disables the multi-row kernel (per-row sweep, the
    /// pre-register-blocking behaviour).
    pub row_block: usize,
    /// K-panel length for mpGEMM cache blocking, in k-groups (4 activations
    /// each): the kg range is split into panels so the row block's active
    /// table slice (`row_block · kg_panel · 16` bytes when quantized) stays
    /// L1-resident while all m-tiles stream over it. Rounded to whole scale
    /// blocks at execution time. `0` = auto-size from [`L1_TABLE_BUDGET`].
    pub kg_panel: usize,
}

/// Bytes of L1 data cache budgeted for the mpGEMM table working set when
/// `kg_panel == 0` (auto). Half of a conservative 32 KB L1d: the other half
/// is left to the streamed weight indices, partial outputs, and scales.
pub const L1_TABLE_BUDGET: usize = 16 * 1024;

/// Hard cap on `row_block` — the multi-row kernels' register-block limit
/// (eight rows × 4 bit planes × 2 `i16` accumulators already exceeds the
/// 16 architectural `ymm` registers; larger blocks would only add spill
/// traffic). The driver, the cost model, and the interleave cache all
/// clamp through [`KernelOpts::effective_row_block`] so they cannot
/// disagree.
pub const MAX_ROW_BLOCK: usize = 8;

impl KernelOpts {
    /// `TM-base`: hardware-intrinsic lookups (gathers from `f32` tables) but
    /// no memory-access optimization at all.
    pub fn tm_base() -> Self {
        KernelOpts {
            table_quant: false,
            mirror: false,
            tiling: false,
            permute: false,
            interleave: false,
            fast_aggregation: false,
            tile_k: 0,
            n_block: 1,
            row_block: 1,
            kg_panel: 0,
        }
    }

    /// `+TQ`: adds table quantization (in-register `i8` lookups).
    pub fn plus_table_quant() -> Self {
        KernelOpts {
            table_quant: true,
            ..Self::tm_base()
        }
    }

    /// `+Tiling`: adds `M`/`K` tiling on top of table quantization.
    pub fn plus_tiling() -> Self {
        KernelOpts {
            tiling: true,
            tile_k: 256,
            ..Self::plus_table_quant()
        }
    }

    /// `+Perm.`: adds the offline contiguous-tile weight permutation.
    pub fn plus_permute() -> Self {
        KernelOpts {
            permute: true,
            ..Self::plus_tiling()
        }
    }

    /// `+Tuning` is represented by replacing `tile_k`/`n_block` with tuned
    /// values; see `tmac_core::tune`. The flag set is `plus_permute`.
    pub fn plus_tuning(tile_k: usize, n_block: usize) -> Self {
        KernelOpts {
            tile_k,
            n_block,
            ..Self::plus_permute()
        }
    }

    /// Full T-MAC: everything except fast aggregation (the paper's default;
    /// FA is offered as an opt-in because it costs accuracy).
    ///
    /// Mirror consolidation is *off* in this preset: on AVX2 the per-lookup
    /// sign reconstruction costs more than the halved table loads save
    /// (mirror pays off on 128-bit NEON, where table registers are the
    /// scarce resource — see the `ablations` bench). Use [`Self::tmac_mirror`]
    /// for the fully-consolidated variant.
    pub fn tmac() -> Self {
        KernelOpts {
            interleave: true,
            mirror: false,
            n_block: 8,
            row_block: 8,
            ..Self::plus_permute()
        }
    }

    /// Full T-MAC with mirror consolidation (halved table storage and
    /// precompute; the right default for NEON-class targets).
    pub fn tmac_mirror() -> Self {
        KernelOpts {
            mirror: true,
            ..Self::tmac()
        }
    }

    /// `TM+FA`: full T-MAC plus fast 8-bit aggregation.
    pub fn tmac_fast_aggregation() -> Self {
        KernelOpts {
            fast_aggregation: true,
            ..Self::tmac()
        }
    }

    /// The cumulative Figure 10 ladder, in paper order, with display names.
    pub fn breakdown_ladder() -> Vec<(&'static str, KernelOpts)> {
        vec![
            ("TM-base", Self::tm_base()),
            ("+TQ", Self::plus_table_quant()),
            ("+Tiling", Self::plus_tiling()),
            ("+Perm.", Self::plus_permute()),
            ("+Tuning", Self::plus_tuning(512, 8)),
            ("T-MAC", Self::tmac()),
            ("TM+FA", Self::tmac_fast_aggregation()),
        ]
    }

    /// The register-block size the mpGEMM driver actually uses:
    /// `row_block` clamped to `1..=`[`MAX_ROW_BLOCK`].
    pub fn effective_row_block(&self) -> usize {
        self.row_block.clamp(1, MAX_ROW_BLOCK)
    }

    /// Checks internal consistency of the flag combination.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated dependency:
    /// permutation requires tiling; interleaving requires permutation;
    /// mirror consolidation and fast aggregation require quantized tables
    /// (they are `i8`-table transforms); tiled configs need a valid
    /// `tile_k`.
    pub fn validate(&self) -> Result<(), String> {
        if self.permute && !self.tiling {
            return Err("weight permutation requires tiling".into());
        }
        if self.interleave && !self.permute {
            return Err("weight interleaving requires permutation".into());
        }
        if self.mirror && !self.table_quant {
            return Err("mirror consolidation requires table quantization".into());
        }
        if self.fast_aggregation && !self.table_quant {
            return Err("fast aggregation requires table quantization".into());
        }
        if self.tiling && self.tile_k == 0 {
            return Err("tiling requires tile_k > 0".into());
        }
        if self.n_block == 0 {
            return Err("n_block must be positive".into());
        }
        if self.row_block == 0 {
            return Err("row_block must be positive".into());
        }
        Ok(())
    }
}

impl Default for KernelOpts {
    /// Defaults to the full T-MAC configuration.
    fn default() -> Self {
        Self::tmac()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative_and_valid() {
        let ladder = KernelOpts::breakdown_ladder();
        assert_eq!(ladder.len(), 7);
        for (name, o) in &ladder {
            assert!(o.validate().is_ok(), "{name} invalid: {:?}", o.validate());
        }
        // Each step turns something on that the previous step lacked.
        assert!(!ladder[0].1.table_quant && ladder[1].1.table_quant);
        assert!(!ladder[1].1.tiling && ladder[2].1.tiling);
        assert!(!ladder[2].1.permute && ladder[3].1.permute);
        assert!(ladder[4].1.tile_k != ladder[3].1.tile_k);
        assert!(!ladder[4].1.interleave && ladder[5].1.interleave);
        assert!(!ladder[5].1.fast_aggregation && ladder[6].1.fast_aggregation);
    }

    #[test]
    fn dependencies_enforced() {
        let mut o = KernelOpts::tm_base();
        o.permute = true;
        assert!(o.validate().is_err());
        let mut o = KernelOpts::plus_permute();
        o.interleave = true;
        assert!(o.validate().is_ok());
        o.permute = false;
        assert!(o.validate().is_err());
        let mut o = KernelOpts::tm_base();
        o.mirror = true;
        assert!(o.validate().is_err());
        let mut o = KernelOpts::plus_tiling();
        o.tile_k = 0;
        assert!(o.validate().is_err());
    }

    #[test]
    fn multi_row_knobs_validated() {
        let mut o = KernelOpts::tmac();
        assert_eq!(o.row_block, 8, "full T-MAC enables register blocking");
        assert_eq!(o.kg_panel, 0, "panel length defaults to auto");
        o.row_block = 0;
        assert!(o.validate().is_err());
        let mut o = KernelOpts::tm_base();
        assert_eq!(o.row_block, 1, "base config is per-row");
        o.kg_panel = 7; // any value is legal; rounding happens at run time
        assert!(o.validate().is_ok());
    }

    #[test]
    fn default_is_full_tmac() {
        let d = KernelOpts::default();
        assert!(d.table_quant && d.tiling && d.permute && d.interleave);
        assert!(KernelOpts::tmac_mirror().mirror);
        assert!(!d.fast_aggregation);
    }
}
