//! Analytical op/byte cost of a kernel execution.
//!
//! The cross-device projections (`tmac-devices`) need to know *what the
//! kernel actually does* — lookups, accumulates, bytes streamed — rather
//! than guess from matrix dimensions. This module derives those counts from
//! the same parameters the kernels run with, for both T-MAC and the
//! dequantization baseline, mirroring the reasoning of the paper's §2.4/§5
//! (T-MAC's op count scales with `bits/g`, dequant's does not scale down
//! with bits at all).

use crate::opts::{KernelOpts, L1_TABLE_BUDGET, LUT_GROUP};

/// L1 data cache size assumed by the analytical model (conservative 32 KB;
/// real edge cores range 32–64 KB).
pub const L1_BYTES: u64 = 32 * 1024;

/// Operation and traffic counts for one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// Table lookups (each covers one index; SIMD executes
    /// `lanes` of these per instruction).
    pub lookups: u64,
    /// Integer accumulate operations (same lane grouping as lookups).
    pub accum_ops: u64,
    /// Scalar-equivalent `f32` operations (scale application, bias, table
    /// build, dequantized multiply-adds for the baseline).
    pub f32_ops: u64,
    /// Bytes of weights/indices streamed from memory.
    pub weight_bytes: u64,
    /// Bytes of lookup-table state touched (or dequant scratch for the
    /// baseline).
    pub table_bytes: u64,
    /// Bytes of activations read.
    pub act_bytes: u64,
    /// Bytes of output written.
    pub out_bytes: u64,
    /// Bytes of scales read.
    pub scale_bytes: u64,
}

impl KernelCost {
    /// Total DRAM-side traffic in bytes (weights dominate GEMV; tables and
    /// activations are cache-resident but still counted once).
    pub fn dram_bytes(&self) -> u64 {
        self.weight_bytes + self.act_bytes + self.out_bytes + self.scale_bytes
    }

    /// Total byte-lane operations (lookups plus accumulates).
    pub fn lane_ops(&self) -> u64 {
        self.lookups + self.accum_ops
    }

    /// Scales every count by `n` (e.g. per-token → per-sequence).
    pub fn scaled(&self, n: u64) -> KernelCost {
        KernelCost {
            lookups: self.lookups * n,
            accum_ops: self.accum_ops * n,
            f32_ops: self.f32_ops * n,
            weight_bytes: self.weight_bytes * n,
            table_bytes: self.table_bytes * n,
            act_bytes: self.act_bytes * n,
            out_bytes: self.out_bytes * n,
            scale_bytes: self.scale_bytes * n,
        }
    }

    /// Adds another cost component.
    pub fn plus(&self, other: &KernelCost) -> KernelCost {
        KernelCost {
            lookups: self.lookups + other.lookups,
            accum_ops: self.accum_ops + other.accum_ops,
            f32_ops: self.f32_ops + other.f32_ops,
            weight_bytes: self.weight_bytes + other.weight_bytes,
            table_bytes: self.table_bytes + other.table_bytes,
            act_bytes: self.act_bytes + other.act_bytes,
            out_bytes: self.out_bytes + other.out_bytes,
            scale_bytes: self.scale_bytes + other.scale_bytes,
        }
    }
}

/// Cost of a T-MAC mpGEMV (`1 × K` by `M × K`, `bits`-bit weights).
pub fn tmac_gemv_cost(
    m: usize,
    k: usize,
    bits: usize,
    group_size: usize,
    opts: &KernelOpts,
) -> KernelCost {
    let (m, k, bits, gs) = (m as u64, k as u64, bits as u64, group_size as u64);
    let kg = k / LUT_GROUP as u64;
    let blocks = k / gs;
    // One lookup per (m, kg, bit); exact aggregation adds one accumulate per
    // lookup; fast aggregation replaces sums with avg ops (one per lookup,
    // minus the tree savings — count them the same).
    let lookups = m * kg * bits;
    let accum_ops = lookups;
    // Table build: 2^g - 1 adds per k-group (+ quantization pass), halved by
    // mirror consolidation.
    let table_entries = if opts.mirror { 8 } else { 16 } as u64;
    let table_build = kg * table_entries
        + if opts.table_quant {
            kg * table_entries
        } else {
            0
        };
    // Per scale block and row: bit-weighted combine + 2 FMAs.
    let fold = m * blocks * (bits + 2);
    let entry_bytes = if opts.table_quant { 1 } else { 4 } as u64;
    KernelCost {
        lookups,
        accum_ops,
        f32_ops: table_build + fold,
        weight_bytes: m * kg * bits / 2, // packed nibbles: 0.5 byte per index
        table_bytes: kg * table_entries * entry_bytes,
        act_bytes: k * 4,
        out_bytes: m * 4,
        scale_bytes: m * blocks * 4,
    }
}

/// Cost of a dequantization-based mpGEMV (llama.cpp style).
///
/// Decode cost per weight does *not* shrink with bit-width (it grows for
/// 3-bit due to the split packing), which is exactly the effect Figure 6
/// shows for llama.cpp.
pub fn dequant_gemv_cost(m: usize, k: usize, bits: usize) -> KernelCost {
    let (m, k, bits) = (m as u64, k as u64, bits as u64);
    // Unpack + center per weight; 3-bit needs the extra mask-merge pass.
    let decode_per_weight = if bits == 3 { 3 } else { 2 };
    // int8 multiply-accumulate per weight.
    let mac = m * k;
    KernelCost {
        lookups: 0,
        accum_ops: mac + m * k * decode_per_weight,
        f32_ops: m * (k / 32) * 2, // per-block scale application
        weight_bytes: m * k * bits.max(2) / 8, // 1-bit stored as 2-bit (no 1-bit kernel)
        table_bytes: 0,
        act_bytes: k, // Q8 quantized activations
        out_bytes: m * 4,
        scale_bytes: m * (k / 32) * 4,
    }
}

/// Interleaved table working-set bytes of one register block sweeping one
/// K-panel: `row_block` rows × `kg_panel` k-groups × 16 `i8` entries
/// (mirror pair-packing halves the per-group bytes).
pub fn gemm_working_set_bytes(kg_panel: usize, row_block: usize, opts: &KernelOpts) -> u64 {
    let per_kg = if opts.mirror { 8u64 } else { 16u64 };
    row_block.clamp(1, crate::opts::MAX_ROW_BLOCK) as u64 * kg_panel as u64 * per_kg
}

/// The K-panel length (in k-groups) the mpGEMM driver resolves for `opts`
/// at reduction length `k` — the explicit `kg_panel`, or the largest panel
/// whose working set fits the L1 table budget when `0` (auto).
pub fn effective_kg_panel(k: usize, opts: &KernelOpts) -> usize {
    let kg_total = k / LUT_GROUP;
    let rb = opts.effective_row_block();
    let per_kg = if opts.mirror { 8 } else { 16 };
    let kg = match opts.kg_panel {
        0 => (L1_TABLE_BUDGET / (rb * per_kg)).max(1),
        n => n,
    };
    kg.min(kg_total)
}

/// Cost of an mpGEMM: `n` GEMVs with weight streaming amortized over
/// `n_block` rows for T-MAC.
///
/// The table-traffic term models the **L1-residency cliff** of the
/// multi-row kernel: a register block's active table slice (one K-panel,
/// [`gemm_working_set_bytes`]) is read once per panel while all m-tiles
/// stream over it — as long as it fits L1. A configuration whose panel
/// working set exceeds [`L1_BYTES`] re-streams the slice from L2 on *every
/// m-tile*, multiplying table traffic by the tile count; this is the cliff
/// `kg_panel` auto-sizing (and the tuner) exists to stay below.
pub fn tmac_gemm_cost(
    m: usize,
    k: usize,
    n: usize,
    bits: usize,
    group_size: usize,
    opts: &KernelOpts,
) -> KernelCost {
    let per_row = tmac_gemv_cost(m, k, bits, group_size, opts);
    let mut total = per_row.scaled(n as u64);
    // Weights are re-streamed once per n-block from DRAM, not once per row.
    let passes = (n as u64).div_ceil(opts.n_block.max(1) as u64);
    total.weight_bytes = per_row.weight_bytes * passes;
    total.scale_bytes = per_row.scale_bytes * passes;
    if opts.table_quant && opts.effective_row_block() > 1 {
        // Multi-row sweep: tables are *built* once per row (counted by the
        // scaled per-row term) and then streamed panel by panel.
        let rb = opts.effective_row_block() as u64;
        let kg_panel = effective_kg_panel(k, opts) as u64;
        let kg_total = (k / LUT_GROUP) as u64;
        let panels = kg_total.div_ceil(kg_panel.max(1));
        let blocks = (n as u64).div_ceil(rb);
        let ws = gemm_working_set_bytes(kg_panel as usize, opts.row_block, opts);
        let m_tiles = (m as u64).div_ceil(crate::opts::TILE_M as u64);
        let sweeps = if ws <= L1_BYTES {
            // L1-resident: each panel's slice is fetched once per block.
            blocks * panels
        } else {
            // Over the cliff: refetched by every m-tile of every panel.
            blocks * panels * m_tiles
        };
        total.table_bytes += sweeps * ws;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmac_cost_scales_linearly_with_bits() {
        let o = KernelOpts::tmac();
        let c2 = tmac_gemv_cost(4096, 4096, 2, 32, &o);
        let c4 = tmac_gemv_cost(4096, 4096, 4, 32, &o);
        assert_eq!(c4.lookups, 2 * c2.lookups);
        assert_eq!(c4.weight_bytes, 2 * c2.weight_bytes);
    }

    #[test]
    fn dequant_cost_does_not_scale_down() {
        let c2 = dequant_gemv_cost(4096, 4096, 2);
        let c4 = dequant_gemv_cost(4096, 4096, 4);
        // Compute stays flat; only bytes shrink.
        assert_eq!(c2.accum_ops, c4.accum_ops);
        assert!(c2.weight_bytes < c4.weight_bytes);
        // 3-bit decode is the most expensive.
        let c3 = dequant_gemv_cost(4096, 4096, 3);
        assert!(c3.accum_ops > c4.accum_ops);
    }

    #[test]
    fn tmac_lookup_count_matches_paper_formula() {
        // M * (K/g) * bits lookups (one per index per bit matrix).
        let o = KernelOpts::tmac();
        let c = tmac_gemv_cost(1024, 512, 3, 32, &o);
        assert_eq!(c.lookups, 1024 * (512 / 4) * 3);
    }

    #[test]
    fn mirror_halves_table_bytes() {
        let full = KernelOpts::tmac();
        let m = KernelOpts::tmac_mirror();
        let cf = tmac_gemv_cost(128, 256, 4, 32, &full);
        let cm = tmac_gemv_cost(128, 256, 4, 32, &m);
        assert_eq!(cf.table_bytes, 2 * cm.table_bytes);
    }

    #[test]
    fn gemm_amortizes_weight_traffic() {
        let o = KernelOpts::tmac(); // n_block = 8
        let c = tmac_gemm_cost(1024, 1024, 256, 4, 32, &o);
        let per_row = tmac_gemv_cost(1024, 1024, 4, 32, &o);
        assert_eq!(c.weight_bytes, per_row.weight_bytes * 32); // 256/8 passes
        assert_eq!(c.lookups, per_row.lookups * 256);
    }

    #[test]
    fn l1_cliff_in_gemm_table_traffic() {
        // Auto-panelled blocking keeps the working set under L1; forcing the
        // whole K range into one panel with a full row block blows past it
        // and the modeled table traffic jumps by the tile count.
        let mut fit = KernelOpts::tmac();
        fit.row_block = 8;
        fit.kg_panel = 0; // auto
        let mut cliff = fit;
        cliff.kg_panel = 4096 / 4; // whole K in one panel
        assert!(gemm_working_set_bytes(effective_kg_panel(4096, &fit), 8, &fit) <= L1_BYTES);
        assert!(gemm_working_set_bytes(effective_kg_panel(4096, &cliff), 8, &cliff) > L1_BYTES);
        let c_fit = tmac_gemm_cost(4096, 4096, 16, 2, 32, &fit);
        let c_cliff = tmac_gemm_cost(4096, 4096, 16, 2, 32, &cliff);
        assert!(
            c_cliff.table_bytes > 10 * c_fit.table_bytes,
            "cliff {} vs fit {}",
            c_cliff.table_bytes,
            c_fit.table_bytes
        );
        // Identical lookup/accumulate work either side of the cliff.
        assert_eq!(c_cliff.lookups, c_fit.lookups);
    }

    #[test]
    fn effective_panel_respects_mirror_and_k() {
        let o = KernelOpts::tmac(); // 16 B per (row, kg)
        assert_eq!(
            effective_kg_panel(4096, &o),
            crate::opts::L1_TABLE_BUDGET / (o.row_block * 16)
        );
        let m = KernelOpts::tmac_mirror(); // 8 B/kg: twice the groups fit
        assert_eq!(
            effective_kg_panel(4096, &m),
            2 * effective_kg_panel(4096, &o)
        );
        // Clamped to the k-group total for short reductions.
        assert_eq!(effective_kg_panel(64, &o), 16);
    }

    #[test]
    fn plus_and_scaled_compose() {
        let o = KernelOpts::tmac();
        let c = tmac_gemv_cost(64, 64, 2, 32, &o);
        let d = c.plus(&c);
        assert_eq!(d.lookups, c.scaled(2).lookups);
        assert_eq!(d.dram_bytes(), 2 * c.dram_bytes());
    }
}
