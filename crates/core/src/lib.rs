//! # T-MAC: LUT-based mixed-precision GEMM for low-bit LLM inference
//!
//! A from-scratch Rust implementation of the T-MAC kernel library
//! (*T-MAC: CPU Renaissance via Table Lookup for Low-Bit LLM Deployment on
//! Edge*, EuroSys 2025). T-MAC computes `A_f32 × W_intN^T` **without
//! dequantization**: the n-bit weight matrix is decomposed into `n` one-bit
//! matrices (Eq. 1), activations are precomputed into lookup tables over all
//! `2^4` sign patterns of 4-element groups, and the GEMV reduces to table
//! lookups and additions — no multiplications in the inner loop, and cost
//! that scales linearly with the weight bit-width.
//!
//! ## Pipeline
//!
//! ```text
//! offline:  QuantizedMatrix --(bit-serial decompose, tile, permute,
//!                              interleave)--> WeightPlan
//! online:   activation --(precompute, mirror-consolidate, table-quantize)
//!                      --> ActTables
//! kernel:   PSHUFB/TBL lookups + i16 accumulation + per-block f32 fold
//! ```
//!
//! ## Quick start
//!
//! ```
//! use tmac_core::{ExecCtx, KernelOpts, TmacLinear};
//!
//! // Quantize a 64x128 weight matrix to 2 bits.
//! let weights: Vec<f32> = (0..64 * 128).map(|i| (i as f32 * 0.1).sin()).collect();
//! let qm = tmac_quant::rtn::quantize(&weights, 64, 128, 2, 32).unwrap();
//!
//! // Offline: build the plan. Online: multiply under an execution context
//! // (thread pool + activation-table cache).
//! let linear = TmacLinear::new(&qm, KernelOpts::tmac()).unwrap();
//! let act: Vec<f32> = (0..128).map(|i| (i as f32 * 0.2).cos()).collect();
//! let ctx = ExecCtx::new(2);
//! let mut out = vec![0f32; 64];
//! linear.gemv(&act, &mut out, &ctx).unwrap();
//! ```
//!
//! When several weight matrices consume the *same* activation (as QKV
//! projections do), [`ExecCtx::next_activation`] plus
//! [`TmacLinear::gemv_cached`] share one table build across all of them —
//! see the [`exec`] module.

pub mod cost;
pub mod exec;
pub mod failpoint;
pub mod gemm;
pub mod gemv;
pub mod kernel;
pub mod opts;
pub mod plan;
pub mod table;
pub mod tune;

pub use exec::{ExecCtx, TableCacheStats, TableProfile};
pub use opts::{KernelOpts, L1_TABLE_BUDGET, LUT_GROUP, TILE_M};
pub use plan::{Layout, PlanBacking, PlanParts, Segment, WeightPlan};
pub use table::{ActTables, BatchTables};

use tmac_quant::{QuantError, QuantizedMatrix};

/// Errors produced by the T-MAC kernel library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmacError {
    /// Underlying quantization error.
    Quant(QuantError),
    /// Dimension/length invariant violated.
    Shape(String),
    /// Inconsistent kernel option combination.
    Opts(String),
    /// Non-finite or otherwise unusable numeric input.
    Numeric(String),
}

impl std::fmt::Display for TmacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TmacError::Quant(e) => write!(f, "quantization error: {e}"),
            TmacError::Shape(msg) => write!(f, "shape error: {msg}"),
            TmacError::Opts(msg) => write!(f, "kernel options error: {msg}"),
            TmacError::Numeric(msg) => write!(f, "numeric error: {msg}"),
        }
    }
}

impl std::error::Error for TmacError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TmacError::Quant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QuantError> for TmacError {
    fn from(e: QuantError) -> Self {
        TmacError::Quant(e)
    }
}

/// A planned linear layer: the high-level entry point.
///
/// Owns the offline-preprocessed weights; `gemv`/`gemm` run the online
/// stage. One `TmacLinear` is immutable and shareable across threads.
#[derive(Debug, Clone)]
pub struct TmacLinear {
    plan: WeightPlan,
}

impl TmacLinear {
    /// Plans a quantized matrix for execution under `opts`.
    ///
    /// # Errors
    ///
    /// Propagates plan-construction failures ([`TmacError::Shape`],
    /// [`TmacError::Opts`], [`TmacError::Quant`]).
    pub fn new(qm: &QuantizedMatrix, opts: KernelOpts) -> Result<Self, TmacError> {
        Ok(TmacLinear {
            plan: WeightPlan::new(qm, opts)?,
        })
    }

    /// Wraps an already-built plan — the prepacked-container load path
    /// (`tmac-io`): the offline pack is not re-run, and a plan whose
    /// segments borrow from a file mapping executes zero-copy.
    pub fn from_plan(plan: WeightPlan) -> Self {
        TmacLinear { plan }
    }

    /// Quantizes `weights` (row-major `rows × cols`) with RTN and plans it.
    ///
    /// # Errors
    ///
    /// Propagates quantization and planning failures.
    pub fn from_f32(
        weights: &[f32],
        rows: usize,
        cols: usize,
        bits: u8,
        group_size: usize,
        opts: KernelOpts,
    ) -> Result<Self, TmacError> {
        let qm = tmac_quant::rtn::quantize(weights, rows, cols, bits, group_size)?;
        Self::new(&qm, opts)
    }

    /// Output features `M`.
    pub fn rows(&self) -> usize {
        self.plan.m
    }

    /// Input features `K`.
    pub fn cols(&self) -> usize {
        self.plan.k
    }

    /// Weight bit-width.
    pub fn bits(&self) -> usize {
        self.plan.bits
    }

    /// The underlying plan (cost analysis, diagnostics).
    pub fn plan(&self) -> &WeightPlan {
        &self.plan
    }

    /// Mixed-precision GEMV: `out[m] = Σ_k act[k] · W[m][k]`.
    ///
    /// Builds fresh tables every call (the honest cost of a standalone
    /// GEMV); use [`TmacLinear::gemv_cached`] when several layers consume
    /// the same activation.
    ///
    /// # Errors
    ///
    /// See [`gemv::mpgemv`].
    pub fn gemv(&self, act: &[f32], out: &mut [f32], ctx: &ExecCtx) -> Result<(), TmacError> {
        gemv::mpgemv(&self.plan, act, out, ctx)
    }

    /// GEMV through the context's activation-table cache: all layers with a
    /// compatible table profile that forward the same activation within one
    /// [`ExecCtx::next_activation`] scope share a single table build.
    ///
    /// # Errors
    ///
    /// See [`gemv::mpgemv_cached`].
    pub fn gemv_cached(
        &self,
        act: &[f32],
        out: &mut [f32],
        ctx: &ExecCtx,
    ) -> Result<(), TmacError> {
        gemv::mpgemv_cached(&self.plan, act, out, ctx)
    }

    /// GEMV with precomputed tables (reuse across layers sharing an input).
    ///
    /// # Errors
    ///
    /// See [`gemv::mpgemv_with_tables`].
    pub fn gemv_with_tables(
        &self,
        tables: &ActTables,
        out: &mut [f32],
        ctx: &ExecCtx,
    ) -> Result<(), TmacError> {
        gemv::mpgemv_with_tables(&self.plan, tables, out, ctx)
    }

    /// Builds activation tables for this layer's shape.
    ///
    /// # Errors
    ///
    /// See [`gemv::build_tables`].
    pub fn tables(&self, act: &[f32]) -> Result<ActTables, TmacError> {
        gemv::build_tables(&self.plan, act)
    }

    /// Mixed-precision GEMM over `n` activation rows.
    ///
    /// # Errors
    ///
    /// See [`gemm::mpgemm`].
    pub fn gemm(
        &self,
        act: &[f32],
        n: usize,
        out: &mut [f32],
        ctx: &ExecCtx,
    ) -> Result<(), TmacError> {
        gemm::mpgemm(&self.plan, act, n, out, ctx)
    }

    /// Mixed-precision GEMM through the context's batched table cache:
    /// plans with a compatible table profile that forward the same `n`-row
    /// activation batch within one [`ExecCtx::next_activation`] scope share
    /// one set of per-row table builds (batched QKV / gate-up reuse).
    ///
    /// # Errors
    ///
    /// See [`gemm::mpgemm_cached`].
    pub fn gemm_cached(
        &self,
        act: &[f32],
        n: usize,
        out: &mut [f32],
        ctx: &ExecCtx,
    ) -> Result<(), TmacError> {
        gemm::mpgemm_cached(&self.plan, act, n, out, ctx)
    }

    /// Analytical cost of one GEMV through this layer.
    pub fn gemv_cost(&self) -> cost::KernelCost {
        cost::tmac_gemv_cost(
            self.plan.m,
            self.plan.k,
            self.plan.bits,
            self.plan.group_size,
            &self.plan.opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_end_to_end() {
        let weights: Vec<f32> = (0..64 * 128).map(|i| (i as f32 * 0.05).sin()).collect();
        let lin = TmacLinear::from_f32(&weights, 64, 128, 4, 32, KernelOpts::tmac()).unwrap();
        assert_eq!((lin.rows(), lin.cols(), lin.bits()), (64, 128, 4));
        let act: Vec<f32> = (0..128).map(|i| (i as f32 * 0.11).cos()).collect();
        let ctx = ExecCtx::new(2);
        let mut out = vec![0f32; 64];
        lin.gemv(&act, &mut out, &ctx).unwrap();
        // Against the f32 reference.
        let qm = tmac_quant::rtn::quantize(&weights, 64, 128, 4, 32).unwrap();
        let reference = kernel::scalar::gemv_reference(&qm, &act);
        assert!(tmac_simd::f32ops::nmse(&out, &reference) < 1e-4);
        // The cached path is bit-identical to the fresh-build path.
        let mut cached = vec![0f32; 64];
        ctx.next_activation();
        lin.gemv_cached(&act, &mut cached, &ctx).unwrap();
        assert_eq!(out, cached);
    }

    #[test]
    fn error_conversions() {
        let qe = QuantError::UnsupportedBits(9);
        let te: TmacError = qe.clone().into();
        assert!(matches!(te, TmacError::Quant(_)));
        assert!(te.to_string().contains('9'));
        assert!(std::error::Error::source(&te).is_some());
        let s = TmacError::Shape("x".into());
        assert!(std::error::Error::source(&s).is_none());
    }
}
