//! Offline weight preprocessing (paper Figure 2, "OFFLINE").
//!
//! An `n`-bit weight matrix is decomposed into `n` one-bit matrices
//! (Eq. 1), each one-bit matrix is grouped into 4-bit lookup indices along
//! `K`, and the indices are laid out according to the kernel options:
//!
//! * **Flat** (no permutation): one nibble-packed plane per bit, row-major —
//!   the layout a naive implementation would use. Kernels must gather a
//!   tile's indices from `TILE_M` strided rows on every step.
//! * **Permuted** (`opts.permute`): indices are stored in the exact order
//!   the kernel consumes them — m-tile by m-tile, k-tile by k-tile, k-group
//!   by k-group, bit by bit, 16 bytes per step ("T-MAC flats the elements in
//!   a tile sequentially and then concatenates the flatten tiles", §3.2).
//!   Within the 16 bytes, nibbles are either *sequential* (rows `2j`,
//!   `2j+1`) or *interleaved* (rows `j`, `j+16`, Figure 4) per
//!   `opts.interleave`.
//!
//! The weight matrix never changes during inference, so all of this cost is
//! paid once offline — exactly the paper's argument for why permutation and
//! interleaving are free at inference time.

use crate::opts::{KernelOpts, LUT_GROUP, TILE_M};
use crate::TmacError;
use std::sync::Arc;
use tmac_quant::QuantizedMatrix;

/// Memory that prepacked plan segments can borrow zero-copy — typically a
/// container file mapping (`tmac-io`). Implementors must keep the bytes
/// immutable and at a stable address for their whole lifetime.
pub trait PlanBacking: Send + Sync + std::fmt::Debug {
    /// The backing bytes.
    fn bytes(&self) -> &[u8];
}

/// One plan data segment: a typed, immutable slice that either owns its
/// data or borrows it from a shared [`PlanBacking`] (the zero-copy load
/// path — weight tiles are used straight out of the file mapping, never
/// copied or re-packed).
pub struct Segment<T: Copy + 'static> {
    ptr: *const T,
    len: usize,
    backing: Backing<T>,
}

enum Backing<T> {
    // Held only to keep `ptr` alive; all reads go through the pointer.
    Owned(#[allow(dead_code)] Box<[T]>),
    Shared(Arc<dyn PlanBacking>),
}

// SAFETY: the segment is immutable; `ptr` points into memory kept alive by
// `backing` (the boxed slice or the shared owner), and `T` is plain data.
unsafe impl<T: Copy + Send + Sync> Send for Segment<T> {}
unsafe impl<T: Copy + Send + Sync> Sync for Segment<T> {}

impl<T: Copy + 'static> Segment<T> {
    /// An owned segment.
    pub fn from_vec(v: Vec<T>) -> Self {
        let b = v.into_boxed_slice();
        Segment {
            ptr: b.as_ptr(),
            len: b.len(),
            backing: Backing::Owned(b),
        }
    }

    /// A segment borrowing `len` `T`s at `byte_off` of `owner`'s bytes.
    ///
    /// # Errors
    ///
    /// Returns [`TmacError::Shape`] if the range is out of bounds or the
    /// start address is not aligned for `T`.
    pub fn borrowed(
        owner: Arc<dyn PlanBacking>,
        byte_off: usize,
        len: usize,
    ) -> Result<Self, TmacError> {
        let bytes = owner.bytes();
        let byte_len = len * std::mem::size_of::<T>();
        let end = byte_off
            .checked_add(byte_len)
            .ok_or_else(|| TmacError::Shape("segment range overflows".into()))?;
        if end > bytes.len() {
            return Err(TmacError::Shape(format!(
                "segment {byte_off}..{end} out of backing ({} bytes)",
                bytes.len()
            )));
        }
        let ptr = unsafe { bytes.as_ptr().add(byte_off) };
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(TmacError::Shape(format!(
                "segment at byte offset {byte_off} is not {}-byte aligned",
                std::mem::align_of::<T>()
            )));
        }
        Ok(Segment {
            ptr: ptr.cast(),
            len,
            backing: Backing::Shared(owner),
        })
    }

    /// True if this segment borrows from a shared backing (was loaded
    /// zero-copy) rather than owning its data.
    pub fn is_borrowed(&self) -> bool {
        matches!(self.backing, Backing::Shared(_))
    }
}

impl<T: Copy + 'static> std::ops::Deref for Segment<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        // SAFETY: construction guarantees ptr/len are valid for the
        // lifetime of `backing`, which lives as long as `self`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Copy + 'static> Clone for Segment<T> {
    fn clone(&self) -> Self {
        match &self.backing {
            // Re-own: the clone's pointer must track its own box.
            Backing::Owned(_) => Segment::from_vec(self.to_vec()),
            Backing::Shared(owner) => Segment {
                ptr: self.ptr,
                len: self.len,
                backing: Backing::Shared(Arc::clone(owner)),
            },
        }
    }
}

impl<T: Copy + std::fmt::Debug + 'static> std::fmt::Debug for Segment<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.backing {
            Backing::Owned(_) => "owned",
            Backing::Shared(_) => "borrowed",
        };
        write!(f, "Segment<{kind}; len {}>", self.len)
    }
}

/// Physical index layout inside a [`WeightPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Row-major nibble planes, one per bit.
    Flat,
    /// Contiguous per-tile stream (optionally interleaved).
    Permuted {
        /// Nibble order within each 16-byte step.
        interleaved: bool,
    },
}

/// Offline-preprocessed weights ready for the T-MAC kernels.
#[derive(Debug, Clone)]
pub struct WeightPlan {
    /// Logical output rows `M`.
    pub m: usize,
    /// `M` rounded up to a multiple of [`TILE_M`] (padding rows have zero
    /// scales, so they contribute nothing).
    pub m_padded: usize,
    /// Reduction length `K`.
    pub k: usize,
    /// Weight bit-width.
    pub bits: usize,
    /// Scale group size along `K`.
    pub group_size: usize,
    /// Zero point in code space.
    pub zero: f32,
    /// Bit-serial bias constant `(2^bits - 1)/2 - zero` (see `tmac-core`
    /// crate docs); multiplied by per-block activation sums at runtime.
    pub cz: f32,
    /// Options the plan was built for.
    pub opts: KernelOpts,
    /// Effective `K`-tile length in elements (whole `K` when not tiling).
    pub tile_k: usize,
    layout: Layout,
    /// Flat layout: `bits` planes, each `m_padded * k/8` bytes.
    flat_planes: Vec<Segment<u8>>,
    /// Permuted layout: single stream (see module docs for the order).
    perm_stream: Segment<u8>,
    /// Row-major scales, padded: `m_padded * k/group_size`.
    scales_flat: Segment<f32>,
    /// Tile-permuted scales: per m-tile, per scale block, `TILE_M` floats.
    scales_perm: Segment<f32>,
}

/// The raw pieces of a [`WeightPlan`], as a container stores them —
/// metadata plus data segments in exactly the byte order the kernels
/// consume. [`WeightPlan::from_parts`] validates and reassembles them
/// without re-running the offline pack, which is what makes prepacked
/// container loading cheap (and, with borrowed segments, zero-copy).
#[derive(Debug)]
pub struct PlanParts {
    /// Logical output rows `M`.
    pub m: usize,
    /// Reduction length `K`.
    pub k: usize,
    /// Weight bit-width (`1..=4`).
    pub bits: usize,
    /// Scale group size along `K`.
    pub group_size: usize,
    /// Zero point in code space.
    pub zero: f32,
    /// Kernel options the stream was packed for.
    pub opts: KernelOpts,
    /// Flat layout: one nibble plane per bit. Empty for permuted plans.
    pub flat_planes: Vec<Segment<u8>>,
    /// Permuted layout: the contiguous tile stream. Empty for flat plans.
    pub perm_stream: Segment<u8>,
    /// Row-major padded scales. For permuted plans an empty segment is
    /// allowed; they are then reconstructed from `scales_perm` (the
    /// row-major copy is cold-path metadata for permuted layouts).
    pub scales_flat: Segment<f32>,
    /// Tile-permuted scales (permuted layout only; empty for flat plans).
    pub scales_perm: Segment<f32>,
}

impl WeightPlan {
    /// Builds a plan from a canonical quantized matrix.
    ///
    /// # Errors
    ///
    /// * [`TmacError::Opts`] if the option combination is inconsistent.
    /// * [`TmacError::Shape`] if `K` is not a multiple of the LUT group (4),
    ///   the scale group size is not a multiple of 4, or `tile_k` is not a
    ///   multiple of the scale group size.
    pub fn new(qm: &QuantizedMatrix, opts: KernelOpts) -> Result<WeightPlan, TmacError> {
        opts.validate().map_err(TmacError::Opts)?;
        qm.validate()?;
        if !qm.cols.is_multiple_of(LUT_GROUP) {
            return Err(TmacError::Shape(format!(
                "K = {} must be a multiple of the LUT group {LUT_GROUP}",
                qm.cols
            )));
        }
        if !qm.group_size.is_multiple_of(LUT_GROUP) {
            return Err(TmacError::Shape(format!(
                "group_size {} must be a multiple of the LUT group {LUT_GROUP}",
                qm.group_size
            )));
        }
        let tile_k = if opts.tiling {
            if !opts.tile_k.is_multiple_of(qm.group_size) {
                return Err(TmacError::Shape(format!(
                    "tile_k {} must be a multiple of group_size {}",
                    opts.tile_k, qm.group_size
                )));
            }
            opts.tile_k.min(qm.cols)
        } else {
            qm.cols
        };

        let (m, k, bits) = (qm.rows, qm.cols, qm.bits as usize);
        let m_padded = m.div_ceil(TILE_M) * TILE_M;
        let gpr = k / qm.group_size;

        // Padded row-major scales.
        let mut scales_flat = vec![0f32; m_padded * gpr];
        scales_flat[..m * gpr].copy_from_slice(&qm.scales);

        let layout = if opts.permute {
            Layout::Permuted {
                interleaved: opts.interleave,
            }
        } else {
            Layout::Flat
        };

        let kg_total = k / LUT_GROUP;
        let nibble = |row: usize, bit: usize, kg: usize| -> u8 {
            if row >= m {
                return 0;
            }
            let base = row * k + kg * LUT_GROUP;
            let mut idx = 0u8;
            for j in 0..LUT_GROUP {
                let code = qm.codes[base + j];
                idx |= ((code >> bit) & 1) << j;
            }
            idx
        };

        let mut flat_planes = Vec::new();
        let mut perm_stream = Vec::new();
        let mut scales_perm = Vec::new();
        match layout {
            Layout::Flat => {
                let row_bytes = kg_total / 2 + kg_total % 2;
                for bit in 0..bits {
                    let mut plane = vec![0u8; m_padded * row_bytes];
                    for row in 0..m {
                        for kg in 0..kg_total {
                            let v = nibble(row, bit, kg);
                            let byte = &mut plane[row * row_bytes + kg / 2];
                            if kg % 2 == 0 {
                                *byte |= v;
                            } else {
                                *byte |= v << 4;
                            }
                        }
                    }
                    flat_planes.push(Segment::from_vec(plane));
                }
            }
            Layout::Permuted { interleaved } => {
                // Stream order per m-tile: scale block → bit plane → k-group
                // (bit-major *within* a scale block so the kernel can pair
                // same-bit lookups of adjacent k-groups in one 256-bit
                // load). Scale blocks never straddle k-tiles because
                // `tile_k` is a multiple of `group_size`, so k-tiling does
                // not alter the byte order.
                perm_stream = vec![0u8; m_padded / TILE_M * kg_total * bits * (TILE_M / 2)];
                let kg_per_block = qm.group_size / LUT_GROUP;
                let mut off = 0;
                for mt in 0..m_padded / TILE_M {
                    let m0 = mt * TILE_M;
                    for sb in 0..k / qm.group_size {
                        for bit in 0..bits {
                            for kg_in in 0..kg_per_block {
                                let kg = sb * kg_per_block + kg_in;
                                for j in 0..TILE_M / 2 {
                                    let (rlo, rhi) = if interleaved {
                                        (m0 + j, m0 + j + TILE_M / 2)
                                    } else {
                                        (m0 + 2 * j, m0 + 2 * j + 1)
                                    };
                                    perm_stream[off + j] =
                                        nibble(rlo, bit, kg) | (nibble(rhi, bit, kg) << 4);
                                }
                                off += TILE_M / 2;
                            }
                        }
                    }
                }
                debug_assert_eq!(off, perm_stream.len());
                // Tile-permuted scales: per m-tile, per scale block, the
                // TILE_M row scales contiguously.
                scales_perm = vec![0f32; m_padded * gpr];
                let mut soff = 0;
                for mt in 0..m_padded / TILE_M {
                    for sb in 0..gpr {
                        for r in 0..TILE_M {
                            scales_perm[soff] = scales_flat[(mt * TILE_M + r) * gpr + sb];
                            soff += 1;
                        }
                    }
                }
            }
        }

        let zero = qm.zero;
        let cz = ((1u32 << bits) - 1) as f32 / 2.0 - zero;
        Ok(WeightPlan {
            m,
            m_padded,
            k,
            bits,
            group_size: qm.group_size,
            zero,
            cz,
            opts,
            tile_k,
            layout,
            flat_planes,
            perm_stream: Segment::from_vec(perm_stream),
            scales_flat: Segment::from_vec(scales_flat),
            scales_perm: Segment::from_vec(scales_perm),
        })
    }

    /// Reassembles a plan from prepacked parts (a container load) without
    /// re-running the offline pack. Segments may borrow from a shared
    /// backing (zero-copy) or own their data.
    ///
    /// # Errors
    ///
    /// Returns [`TmacError::Opts`] for inconsistent options, and
    /// [`TmacError::Shape`] when a dimension invariant or a segment length
    /// disagrees with the metadata.
    pub fn from_parts(parts: PlanParts) -> Result<WeightPlan, TmacError> {
        let PlanParts {
            m,
            k,
            bits,
            group_size,
            zero,
            opts,
            flat_planes,
            perm_stream,
            scales_flat,
            scales_perm,
        } = parts;
        opts.validate().map_err(TmacError::Opts)?;
        if !(1..=4).contains(&bits) {
            return Err(TmacError::Shape(format!("unsupported bit-width {bits}")));
        }
        if m == 0 || k == 0 {
            return Err(TmacError::Shape(format!("degenerate shape {m}x{k}")));
        }
        if group_size == 0
            || !group_size.is_multiple_of(LUT_GROUP)
            || !k.is_multiple_of(group_size)
            || !k.is_multiple_of(LUT_GROUP)
        {
            return Err(TmacError::Shape(format!(
                "K {k} / group_size {group_size} violate the LUT-group invariants"
            )));
        }
        let tile_k = if opts.tiling {
            if !opts.tile_k.is_multiple_of(group_size) {
                return Err(TmacError::Shape(format!(
                    "tile_k {} must be a multiple of group_size {group_size}",
                    opts.tile_k
                )));
            }
            opts.tile_k.min(k)
        } else {
            k
        };
        // `m`/`k` may come from an untrusted container index: every
        // derived size is checked so a crafted file yields a typed error,
        // not an overflow panic.
        let mul = |a: usize, b: usize| -> Result<usize, TmacError> {
            a.checked_mul(b)
                .ok_or_else(|| TmacError::Shape(format!("plan dimensions overflow ({m}x{k})")))
        };
        let m_padded = mul(m.div_ceil(TILE_M), TILE_M)?;
        let gpr = k / group_size;
        let kg_total = k / LUT_GROUP;
        let expect_scales = mul(m_padded, gpr)?;
        let layout = if opts.permute {
            Layout::Permuted {
                interleaved: opts.interleave,
            }
        } else {
            Layout::Flat
        };

        let (flat_planes, perm_stream, scales_flat, scales_perm) = match layout {
            Layout::Flat => {
                let row_bytes = kg_total / 2 + kg_total % 2;
                if flat_planes.len() != bits {
                    return Err(TmacError::Shape(format!(
                        "flat layout needs {bits} planes, got {}",
                        flat_planes.len()
                    )));
                }
                let expect_plane = mul(m_padded, row_bytes)?;
                for (b, p) in flat_planes.iter().enumerate() {
                    if p.len() != expect_plane {
                        return Err(TmacError::Shape(format!(
                            "plane {b}: {} bytes, expected {expect_plane}",
                            p.len()
                        )));
                    }
                }
                if !perm_stream.is_empty() || !scales_perm.is_empty() {
                    return Err(TmacError::Shape(
                        "flat layout cannot carry permuted segments".into(),
                    ));
                }
                if scales_flat.len() != expect_scales {
                    return Err(TmacError::Shape(format!(
                        "scales: {} floats, expected {expect_scales}",
                        scales_flat.len()
                    )));
                }
                (
                    flat_planes,
                    perm_stream,
                    scales_flat,
                    Segment::from_vec(Vec::new()),
                )
            }
            Layout::Permuted { .. } => {
                if !flat_planes.is_empty() {
                    return Err(TmacError::Shape(
                        "permuted layout cannot carry flat planes".into(),
                    ));
                }
                let expect_stream = mul(mul(m_padded / TILE_M, kg_total)?, bits * (TILE_M / 2))?;
                if perm_stream.len() != expect_stream {
                    return Err(TmacError::Shape(format!(
                        "permuted stream: {} bytes, expected {expect_stream}",
                        perm_stream.len()
                    )));
                }
                if scales_perm.len() != expect_scales {
                    return Err(TmacError::Shape(format!(
                        "permuted scales: {} floats, expected {expect_scales}",
                        scales_perm.len()
                    )));
                }
                // The container stores scales once, tile-permuted; an empty
                // row-major segment is legal ([`WeightPlan::scale`] then
                // reads through the permutation).
                if !scales_flat.is_empty() && scales_flat.len() != expect_scales {
                    return Err(TmacError::Shape(format!(
                        "scales: {} floats, expected {expect_scales}",
                        scales_flat.len()
                    )));
                }
                (flat_planes, perm_stream, scales_flat, scales_perm)
            }
        };

        let cz = ((1u32 << bits) - 1) as f32 / 2.0 - zero;
        Ok(WeightPlan {
            m,
            m_padded,
            k,
            bits,
            group_size,
            zero,
            cz,
            opts,
            tile_k,
            layout,
            flat_planes,
            perm_stream,
            scales_flat,
            scales_perm,
        })
    }

    /// Reconstructs the canonical quantized matrix this plan was packed
    /// from. Exact: codes are re-read from the nibble layout and scales
    /// from the stored (unpadded) rows, so
    /// `WeightPlan::new(&p.to_quantized(), p.opts)` reproduces `p`
    /// byte-for-byte. This is the materialization path for backends that
    /// do not consume the prepacked layout (dequant, `f32`).
    pub fn to_quantized(&self) -> QuantizedMatrix {
        let (m, k) = (self.m, self.k);
        let mut codes = vec![0u8; m * k];
        for row in 0..m {
            for kg in 0..self.kg_total() {
                for bit in 0..self.bits {
                    let idx = self.index(bit, row, kg);
                    for j in 0..LUT_GROUP {
                        codes[row * k + kg * LUT_GROUP + j] |= ((idx >> j) & 1) << bit;
                    }
                }
            }
        }
        let gpr = self.groups_per_row();
        let mut scales = Vec::with_capacity(m * gpr);
        for row in 0..m {
            for sb in 0..gpr {
                scales.push(self.scale(row, sb));
            }
        }
        QuantizedMatrix {
            rows: m,
            cols: k,
            bits: self.bits as u8,
            group_size: self.group_size,
            codes,
            scales,
            zero: self.zero,
        }
    }

    /// Rebuilds this plan under different kernel options, sharing the data
    /// segments (cheap for borrowed plans). Only options that do not alter
    /// the physical byte layout may change.
    ///
    /// # Errors
    ///
    /// Returns [`TmacError::Opts`] when `opts` disagree with the stored
    /// layout (`permute`/`interleave`), and propagates
    /// [`WeightPlan::from_parts`] validation failures.
    pub fn with_opts(&self, opts: KernelOpts) -> Result<WeightPlan, TmacError> {
        if (opts.permute, opts.interleave) != (self.opts.permute, self.opts.interleave) {
            return Err(TmacError::Opts(format!(
                "options ({:?}) are layout-incompatible with the stored stream ({:?})",
                (opts.permute, opts.interleave),
                (self.opts.permute, self.opts.interleave)
            )));
        }
        WeightPlan::from_parts(PlanParts {
            m: self.m,
            k: self.k,
            bits: self.bits,
            group_size: self.group_size,
            zero: self.zero,
            opts,
            flat_planes: self.flat_planes.clone(),
            perm_stream: self.perm_stream.clone(),
            scales_flat: self.scales_flat.clone(),
            scales_perm: self.scales_perm.clone(),
        })
    }

    /// The physical layout of this plan.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Number of k-groups (`K / 4`).
    pub fn kg_total(&self) -> usize {
        self.k / LUT_GROUP
    }

    /// Number of scale groups per row (`K / group_size`).
    pub fn groups_per_row(&self) -> usize {
        self.k / self.group_size
    }

    /// Number of m-tiles (`m_padded / TILE_M`).
    pub fn m_tiles(&self) -> usize {
        self.m_padded / TILE_M
    }

    /// The 4-bit lookup index of `(bit, row, kg)`, decoded from whichever
    /// layout the plan stores.
    ///
    /// This is the layout oracle: kernels never call it (they stream), but
    /// the scalar reference kernel and the layout tests do.
    ///
    /// # Panics
    ///
    /// Panics if `bit`, `row` or `kg` is out of range.
    pub fn index(&self, bit: usize, row: usize, kg: usize) -> u8 {
        assert!(bit < self.bits && row < self.m_padded && kg < self.kg_total());
        match self.layout {
            Layout::Flat => {
                let kg_total = self.kg_total();
                let row_bytes = kg_total / 2 + kg_total % 2;
                let byte = self.flat_planes[bit][row * row_bytes + kg / 2];
                if kg.is_multiple_of(2) {
                    byte & 0x0F
                } else {
                    byte >> 4
                }
            }
            Layout::Permuted { interleaved } => {
                let (mt, r) = (row / TILE_M, row % TILE_M);
                let base = self.step_offset(mt, kg, bit);
                let half = TILE_M / 2;
                let (j, high) = if interleaved {
                    (r % half, r >= half)
                } else {
                    (r / 2, r % 2 == 1)
                };
                let byte = self.perm_stream[base + j];
                if high {
                    byte >> 4
                } else {
                    byte & 0x0F
                }
            }
        }
    }

    /// Byte offset of the 16-byte step `(m-tile, kg, bit)` in the permuted
    /// stream (scale-block-major, bit-major within the block).
    fn step_offset(&self, mt: usize, kg: usize, bit: usize) -> usize {
        let half = TILE_M / 2;
        let kg_per_block = self.group_size / LUT_GROUP;
        let per_sb = self.bits * kg_per_block * half;
        let per_mtile = self.kg_total() / kg_per_block * per_sb;
        let (sb, kg_in) = (kg / kg_per_block, kg % kg_per_block);
        mt * per_mtile + sb * per_sb + (bit * kg_per_block + kg_in) * half
    }

    /// The flat nibble plane of one bit (row-major, [`Self::flat_row_bytes`]
    /// bytes per padded row).
    ///
    /// # Panics
    ///
    /// Panics if the plan is permuted or `bit` is out of range.
    pub fn flat_plane(&self, bit: usize) -> &[u8] {
        assert!(matches!(self.layout, Layout::Flat), "plan is permuted");
        &self.flat_planes[bit]
    }

    /// Bytes per row in the flat nibble planes.
    pub fn flat_row_bytes(&self) -> usize {
        let kg_total = self.kg_total();
        kg_total / 2 + kg_total % 2
    }

    /// The permuted index stream of one m-tile.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not permuted or `mt` is out of range.
    pub fn mtile_stream(&self, mt: usize) -> &[u8] {
        assert!(matches!(self.layout, Layout::Permuted { .. }));
        let per_mtile = self.kg_total() * self.bits * (TILE_M / 2);
        &self.perm_stream[mt * per_mtile..(mt + 1) * per_mtile]
    }

    /// Row-major (padded) scale of `(row, scale-block)`.
    ///
    /// Plans loaded from a prepacked container store scales only in the
    /// tile-permuted order the kernels stream; this accessor then reads
    /// through the permutation instead of a row-major copy.
    #[inline]
    pub fn scale(&self, row: usize, sb: usize) -> f32 {
        if self.scales_flat.is_empty() {
            let (mt, r) = (row / TILE_M, row % TILE_M);
            self.scales_perm[(mt * self.groups_per_row() + sb) * TILE_M + r]
        } else {
            self.scales_flat[row * self.groups_per_row() + sb]
        }
    }

    /// Tile-permuted scales for `(m-tile, scale-block)`: `TILE_M` floats.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not permuted.
    #[inline]
    pub fn tile_scales(&self, mt: usize, sb: usize) -> &[f32] {
        assert!(!self.scales_perm.is_empty(), "plan is not permuted");
        let base = (mt * self.groups_per_row() + sb) * TILE_M;
        &self.scales_perm[base..base + TILE_M]
    }

    /// Bytes of index data the kernel streams for one full GEMV pass.
    pub fn index_bytes(&self) -> usize {
        match self.layout {
            Layout::Flat => self.flat_planes.iter().map(|p| p.len()).sum(),
            Layout::Permuted { .. } => self.perm_stream.len(),
        }
    }

    /// The whole permuted index stream (container serialization).
    ///
    /// # Panics
    ///
    /// Panics if the plan is not permuted.
    pub fn perm_stream_bytes(&self) -> &[u8] {
        assert!(matches!(self.layout, Layout::Permuted { .. }));
        &self.perm_stream
    }

    /// The tile-permuted scales, whole (container serialization).
    ///
    /// # Panics
    ///
    /// Panics if the plan is not permuted.
    pub fn perm_scales(&self) -> &[f32] {
        assert!(!self.scales_perm.is_empty(), "plan is not permuted");
        &self.scales_perm
    }

    /// The row-major padded scales, whole (container serialization for
    /// flat-layout plans).
    ///
    /// # Panics
    ///
    /// Panics if the plan is permuted (permuted plans serialize
    /// [`WeightPlan::perm_scales`] instead, and may not store a row-major
    /// copy at all).
    pub fn flat_scales_padded(&self) -> &[f32] {
        assert!(matches!(self.layout, Layout::Flat), "plan is permuted");
        &self.scales_flat
    }

    /// True if any data segment borrows from a shared backing — i.e. the
    /// plan was loaded zero-copy and streams weights straight from the
    /// container mapping.
    pub fn is_borrowed(&self) -> bool {
        self.perm_stream.is_borrowed()
            || self.scales_perm.is_borrowed()
            || self.scales_flat.is_borrowed()
            || self.flat_planes.iter().any(|p| p.is_borrowed())
    }
}

/// Reconstructs the 4-bit index directly from codes (test oracle).
pub fn index_from_codes(qm: &QuantizedMatrix, bit: usize, row: usize, kg: usize) -> u8 {
    let mut idx = 0u8;
    for j in 0..LUT_GROUP {
        let code = qm.codes[row * qm.cols + kg * LUT_GROUP + j];
        idx |= ((code >> bit) & 1) << j;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmac_quant::rtn;

    fn matrix(m: usize, k: usize, bits: u8, gs: usize) -> QuantizedMatrix {
        let w: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32 * 0.37).sin() + (i % 11) as f32 * 0.1) - 0.5)
            .collect();
        rtn::quantize(&w, m, k, bits, gs).unwrap()
    }

    #[test]
    fn flat_layout_decodes_to_code_bits() {
        let qm = matrix(7, 64, 3, 32);
        let plan = WeightPlan::new(&qm, KernelOpts::plus_table_quant()).unwrap();
        assert_eq!(plan.layout(), Layout::Flat);
        for bit in 0..3 {
            for row in 0..7 {
                for kg in 0..16 {
                    assert_eq!(
                        plan.index(bit, row, kg),
                        index_from_codes(&qm, bit, row, kg),
                        "bit={bit} row={row} kg={kg}"
                    );
                }
            }
        }
    }

    #[test]
    fn permuted_layouts_decode_identically() {
        let qm = matrix(40, 128, 4, 32);
        let flat = WeightPlan::new(&qm, KernelOpts::plus_table_quant()).unwrap();
        for interleave in [false, true] {
            let mut opts = KernelOpts::plus_permute();
            opts.interleave = interleave;
            opts.tile_k = 64;
            let perm = WeightPlan::new(&qm, opts).unwrap();
            for bit in 0..4 {
                for row in 0..perm.m_padded {
                    for kg in 0..perm.kg_total() {
                        assert_eq!(
                            perm.index(bit, row, kg),
                            flat.index(bit, row, kg),
                            "interleave={interleave} bit={bit} row={row} kg={kg}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn padding_rows_are_zero() {
        let qm = matrix(40, 64, 2, 32);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        assert_eq!(plan.m_padded, 64);
        for bit in 0..2 {
            for row in 40..64 {
                for kg in 0..16 {
                    assert_eq!(plan.index(bit, row, kg), 0);
                }
                for sb in 0..2 {
                    assert_eq!(plan.scale(row, sb), 0.0);
                }
            }
        }
    }

    #[test]
    fn tile_scales_match_flat_scales() {
        let qm = matrix(64, 128, 4, 32);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        for mt in 0..plan.m_tiles() {
            for sb in 0..plan.groups_per_row() {
                let ts = plan.tile_scales(mt, sb);
                for (r, &t) in ts.iter().enumerate().take(TILE_M) {
                    assert_eq!(t, plan.scale(mt * TILE_M + r, sb));
                }
            }
        }
    }

    #[test]
    fn rejects_bad_shapes_and_opts() {
        let qm = matrix(8, 64, 4, 32);
        let mut bad = KernelOpts::tmac();
        bad.tile_k = 48; // not a multiple of group_size 32
        assert!(matches!(
            WeightPlan::new(&qm, bad),
            Err(TmacError::Shape(_))
        ));
        let mut bad = KernelOpts::tm_base();
        bad.mirror = true;
        assert!(matches!(WeightPlan::new(&qm, bad), Err(TmacError::Opts(_))));
    }

    #[test]
    fn cz_constant_matches_convention() {
        for bits in 1..=4u8 {
            let qm = matrix(4, 32, bits, 32);
            let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
            let expect = if bits == 1 { 0.0 } else { -0.5 };
            assert_eq!(plan.cz, expect, "bits={bits}");
        }
    }

    #[test]
    fn index_bytes_scale_with_bits() {
        let q2 = matrix(32, 128, 2, 32);
        let q4 = matrix(32, 128, 4, 32);
        let p2 = WeightPlan::new(&q2, KernelOpts::tmac()).unwrap();
        let p4 = WeightPlan::new(&q4, KernelOpts::tmac()).unwrap();
        assert_eq!(p4.index_bytes(), 2 * p2.index_bytes());
    }

    /// Segments borrowing from a plain byte buffer (stand-in for an mmap).
    #[derive(Debug)]
    struct VecBacking(Vec<u8>);
    impl PlanBacking for VecBacking {
        fn bytes(&self) -> &[u8] {
            &self.0
        }
    }

    fn parts_of(plan: &WeightPlan) -> PlanParts {
        PlanParts {
            m: plan.m,
            k: plan.k,
            bits: plan.bits,
            group_size: plan.group_size,
            zero: plan.zero,
            opts: plan.opts,
            flat_planes: Vec::new(),
            perm_stream: Segment::from_vec(plan.perm_stream_bytes().to_vec()),
            scales_flat: Segment::from_vec(Vec::new()),
            scales_perm: Segment::from_vec(plan.perm_scales().to_vec()),
        }
    }

    #[test]
    fn to_quantized_is_exact() {
        for bits in 1..=4u8 {
            let qm = matrix(40, 128, bits, 32);
            for opts in [KernelOpts::tmac(), KernelOpts::plus_table_quant()] {
                let plan = WeightPlan::new(&qm, opts).unwrap();
                let back = plan.to_quantized();
                assert_eq!(back, qm, "bits={bits} opts={opts:?}");
            }
        }
    }

    #[test]
    fn from_parts_reproduces_the_plan() {
        let qm = matrix(40, 128, 3, 32);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let rebuilt = WeightPlan::from_parts(parts_of(&plan)).unwrap();
        assert_eq!(rebuilt.m_padded, plan.m_padded);
        assert_eq!(rebuilt.tile_k, plan.tile_k);
        assert_eq!(rebuilt.cz, plan.cz);
        assert_eq!(rebuilt.perm_stream_bytes(), plan.perm_stream_bytes());
        assert_eq!(rebuilt.perm_scales(), plan.perm_scales());
        // Row-major scale reads go through the permuted copy.
        for row in 0..plan.m_padded {
            for sb in 0..plan.groups_per_row() {
                assert_eq!(rebuilt.scale(row, sb), plan.scale(row, sb));
            }
        }
        assert_eq!(rebuilt.to_quantized(), qm);
        assert!(!rebuilt.is_borrowed());
        // Layout-compatible option changes share the stream; incompatible
        // ones are rejected.
        let fa = rebuilt
            .with_opts(KernelOpts::tmac_fast_aggregation())
            .unwrap();
        assert!(fa.opts.fast_aggregation);
        assert_eq!(fa.perm_stream_bytes(), plan.perm_stream_bytes());
        assert!(matches!(
            rebuilt.with_opts(KernelOpts::plus_table_quant()),
            Err(TmacError::Opts(_))
        ));
    }

    #[test]
    fn from_parts_rejects_wrong_lengths() {
        let qm = matrix(40, 128, 2, 32);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let mut p = parts_of(&plan);
        p.perm_stream = Segment::from_vec(vec![0u8; 3]);
        assert!(matches!(
            WeightPlan::from_parts(p),
            Err(TmacError::Shape(_))
        ));
        let mut p = parts_of(&plan);
        p.scales_perm = Segment::from_vec(vec![0f32; 1]);
        assert!(matches!(
            WeightPlan::from_parts(p),
            Err(TmacError::Shape(_))
        ));
        let mut p = parts_of(&plan);
        p.bits = 5;
        assert!(WeightPlan::from_parts(p).is_err());
    }

    #[test]
    fn borrowed_segments_execute_like_owned() {
        use std::sync::Arc;
        let qm = matrix(33, 64, 2, 32);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        // Pack stream and scales into one backing buffer, f32s first so
        // both are naturally aligned.
        let scales = plan.perm_scales();
        let stream = plan.perm_stream_bytes();
        let mut buf = Vec::new();
        for s in scales {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        let stream_off = buf.len();
        buf.extend_from_slice(stream);
        let backing: Arc<dyn PlanBacking> = Arc::new(VecBacking(buf));
        let rebuilt = WeightPlan::from_parts(PlanParts {
            m: plan.m,
            k: plan.k,
            bits: plan.bits,
            group_size: plan.group_size,
            zero: plan.zero,
            opts: plan.opts,
            flat_planes: Vec::new(),
            perm_stream: Segment::borrowed(Arc::clone(&backing), stream_off, stream.len()).unwrap(),
            scales_flat: Segment::from_vec(Vec::new()),
            scales_perm: Segment::borrowed(Arc::clone(&backing), 0, scales.len()).unwrap(),
        })
        .unwrap();
        assert!(rebuilt.is_borrowed());
        for bit in 0..plan.bits {
            for row in 0..plan.m_padded {
                for kg in 0..plan.kg_total() {
                    assert_eq!(rebuilt.index(bit, row, kg), plan.index(bit, row, kg));
                }
            }
        }
        // A clone of a borrowed plan shares the backing.
        assert!(rebuilt.clone().is_borrowed());
    }

    #[test]
    fn borrowed_segment_rejects_bad_ranges() {
        use std::sync::Arc;
        let backing: Arc<dyn PlanBacking> = Arc::new(VecBacking(vec![0u8; 64]));
        assert!(Segment::<u8>::borrowed(Arc::clone(&backing), 60, 8).is_err());
        // A misaligned f32 view: pick an offset that lands off the 4-byte
        // grid wherever the allocation starts.
        let base = backing.bytes().as_ptr() as usize;
        let off = (0..4).find(|o| !(base + o).is_multiple_of(4)).unwrap();
        assert!(Segment::<f32>::borrowed(Arc::clone(&backing), off, 4).is_err());
        assert!(Segment::<u8>::borrowed(backing, 60, 4).is_ok());
    }

    #[test]
    fn tile_k_clamped_to_k() {
        let qm = matrix(8, 64, 2, 32);
        let mut opts = KernelOpts::tmac();
        opts.tile_k = 4096;
        let plan = WeightPlan::new(&qm, opts).unwrap();
        assert_eq!(plan.tile_k, 64);
    }
}
