//! Offline weight preprocessing (paper Figure 2, "OFFLINE").
//!
//! An `n`-bit weight matrix is decomposed into `n` one-bit matrices
//! (Eq. 1), each one-bit matrix is grouped into 4-bit lookup indices along
//! `K`, and the indices are laid out according to the kernel options:
//!
//! * **Flat** (no permutation): one nibble-packed plane per bit, row-major —
//!   the layout a naive implementation would use. Kernels must gather a
//!   tile's indices from `TILE_M` strided rows on every step.
//! * **Permuted** (`opts.permute`): indices are stored in the exact order
//!   the kernel consumes them — m-tile by m-tile, k-tile by k-tile, k-group
//!   by k-group, bit by bit, 16 bytes per step ("T-MAC flats the elements in
//!   a tile sequentially and then concatenates the flatten tiles", §3.2).
//!   Within the 16 bytes, nibbles are either *sequential* (rows `2j`,
//!   `2j+1`) or *interleaved* (rows `j`, `j+16`, Figure 4) per
//!   `opts.interleave`.
//!
//! The weight matrix never changes during inference, so all of this cost is
//! paid once offline — exactly the paper's argument for why permutation and
//! interleaving are free at inference time.

use crate::opts::{KernelOpts, LUT_GROUP, TILE_M};
use crate::TmacError;
use tmac_quant::QuantizedMatrix;

/// Physical index layout inside a [`WeightPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Row-major nibble planes, one per bit.
    Flat,
    /// Contiguous per-tile stream (optionally interleaved).
    Permuted {
        /// Nibble order within each 16-byte step.
        interleaved: bool,
    },
}

/// Offline-preprocessed weights ready for the T-MAC kernels.
#[derive(Debug, Clone)]
pub struct WeightPlan {
    /// Logical output rows `M`.
    pub m: usize,
    /// `M` rounded up to a multiple of [`TILE_M`] (padding rows have zero
    /// scales, so they contribute nothing).
    pub m_padded: usize,
    /// Reduction length `K`.
    pub k: usize,
    /// Weight bit-width.
    pub bits: usize,
    /// Scale group size along `K`.
    pub group_size: usize,
    /// Zero point in code space.
    pub zero: f32,
    /// Bit-serial bias constant `(2^bits - 1)/2 - zero` (see `tmac-core`
    /// crate docs); multiplied by per-block activation sums at runtime.
    pub cz: f32,
    /// Options the plan was built for.
    pub opts: KernelOpts,
    /// Effective `K`-tile length in elements (whole `K` when not tiling).
    pub tile_k: usize,
    layout: Layout,
    /// Flat layout: `bits` planes, each `m_padded * k/8` bytes.
    flat_planes: Vec<Vec<u8>>,
    /// Permuted layout: single stream (see module docs for the order).
    perm_stream: Vec<u8>,
    /// Row-major scales, padded: `m_padded * k/group_size`.
    scales_flat: Vec<f32>,
    /// Tile-permuted scales: per m-tile, per scale block, `TILE_M` floats.
    scales_perm: Vec<f32>,
}

impl WeightPlan {
    /// Builds a plan from a canonical quantized matrix.
    ///
    /// # Errors
    ///
    /// * [`TmacError::Opts`] if the option combination is inconsistent.
    /// * [`TmacError::Shape`] if `K` is not a multiple of the LUT group (4),
    ///   the scale group size is not a multiple of 4, or `tile_k` is not a
    ///   multiple of the scale group size.
    pub fn new(qm: &QuantizedMatrix, opts: KernelOpts) -> Result<WeightPlan, TmacError> {
        opts.validate().map_err(TmacError::Opts)?;
        qm.validate()?;
        if !qm.cols.is_multiple_of(LUT_GROUP) {
            return Err(TmacError::Shape(format!(
                "K = {} must be a multiple of the LUT group {LUT_GROUP}",
                qm.cols
            )));
        }
        if !qm.group_size.is_multiple_of(LUT_GROUP) {
            return Err(TmacError::Shape(format!(
                "group_size {} must be a multiple of the LUT group {LUT_GROUP}",
                qm.group_size
            )));
        }
        let tile_k = if opts.tiling {
            if !opts.tile_k.is_multiple_of(qm.group_size) {
                return Err(TmacError::Shape(format!(
                    "tile_k {} must be a multiple of group_size {}",
                    opts.tile_k, qm.group_size
                )));
            }
            opts.tile_k.min(qm.cols)
        } else {
            qm.cols
        };

        let (m, k, bits) = (qm.rows, qm.cols, qm.bits as usize);
        let m_padded = m.div_ceil(TILE_M) * TILE_M;
        let gpr = k / qm.group_size;

        // Padded row-major scales.
        let mut scales_flat = vec![0f32; m_padded * gpr];
        scales_flat[..m * gpr].copy_from_slice(&qm.scales);

        let layout = if opts.permute {
            Layout::Permuted {
                interleaved: opts.interleave,
            }
        } else {
            Layout::Flat
        };

        let kg_total = k / LUT_GROUP;
        let nibble = |row: usize, bit: usize, kg: usize| -> u8 {
            if row >= m {
                return 0;
            }
            let base = row * k + kg * LUT_GROUP;
            let mut idx = 0u8;
            for j in 0..LUT_GROUP {
                let code = qm.codes[base + j];
                idx |= ((code >> bit) & 1) << j;
            }
            idx
        };

        let mut flat_planes = Vec::new();
        let mut perm_stream = Vec::new();
        let mut scales_perm = Vec::new();
        match layout {
            Layout::Flat => {
                let row_bytes = kg_total / 2 + kg_total % 2;
                for bit in 0..bits {
                    let mut plane = vec![0u8; m_padded * row_bytes];
                    for row in 0..m {
                        for kg in 0..kg_total {
                            let v = nibble(row, bit, kg);
                            let byte = &mut plane[row * row_bytes + kg / 2];
                            if kg % 2 == 0 {
                                *byte |= v;
                            } else {
                                *byte |= v << 4;
                            }
                        }
                    }
                    flat_planes.push(plane);
                }
            }
            Layout::Permuted { interleaved } => {
                // Stream order per m-tile: scale block → bit plane → k-group
                // (bit-major *within* a scale block so the kernel can pair
                // same-bit lookups of adjacent k-groups in one 256-bit
                // load). Scale blocks never straddle k-tiles because
                // `tile_k` is a multiple of `group_size`, so k-tiling does
                // not alter the byte order.
                perm_stream = vec![0u8; m_padded / TILE_M * kg_total * bits * (TILE_M / 2)];
                let kg_per_block = qm.group_size / LUT_GROUP;
                let mut off = 0;
                for mt in 0..m_padded / TILE_M {
                    let m0 = mt * TILE_M;
                    for sb in 0..k / qm.group_size {
                        for bit in 0..bits {
                            for kg_in in 0..kg_per_block {
                                let kg = sb * kg_per_block + kg_in;
                                for j in 0..TILE_M / 2 {
                                    let (rlo, rhi) = if interleaved {
                                        (m0 + j, m0 + j + TILE_M / 2)
                                    } else {
                                        (m0 + 2 * j, m0 + 2 * j + 1)
                                    };
                                    perm_stream[off + j] =
                                        nibble(rlo, bit, kg) | (nibble(rhi, bit, kg) << 4);
                                }
                                off += TILE_M / 2;
                            }
                        }
                    }
                }
                debug_assert_eq!(off, perm_stream.len());
                // Tile-permuted scales: per m-tile, per scale block, the
                // TILE_M row scales contiguously.
                scales_perm = vec![0f32; m_padded * gpr];
                let mut soff = 0;
                for mt in 0..m_padded / TILE_M {
                    for sb in 0..gpr {
                        for r in 0..TILE_M {
                            scales_perm[soff] = scales_flat[(mt * TILE_M + r) * gpr + sb];
                            soff += 1;
                        }
                    }
                }
            }
        }

        let zero = qm.zero;
        let cz = ((1u32 << bits) - 1) as f32 / 2.0 - zero;
        Ok(WeightPlan {
            m,
            m_padded,
            k,
            bits,
            group_size: qm.group_size,
            zero,
            cz,
            opts,
            tile_k,
            layout,
            flat_planes,
            perm_stream,
            scales_flat,
            scales_perm,
        })
    }

    /// The physical layout of this plan.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Number of k-groups (`K / 4`).
    pub fn kg_total(&self) -> usize {
        self.k / LUT_GROUP
    }

    /// Number of scale groups per row (`K / group_size`).
    pub fn groups_per_row(&self) -> usize {
        self.k / self.group_size
    }

    /// Number of m-tiles (`m_padded / TILE_M`).
    pub fn m_tiles(&self) -> usize {
        self.m_padded / TILE_M
    }

    /// The 4-bit lookup index of `(bit, row, kg)`, decoded from whichever
    /// layout the plan stores.
    ///
    /// This is the layout oracle: kernels never call it (they stream), but
    /// the scalar reference kernel and the layout tests do.
    ///
    /// # Panics
    ///
    /// Panics if `bit`, `row` or `kg` is out of range.
    pub fn index(&self, bit: usize, row: usize, kg: usize) -> u8 {
        assert!(bit < self.bits && row < self.m_padded && kg < self.kg_total());
        match self.layout {
            Layout::Flat => {
                let kg_total = self.kg_total();
                let row_bytes = kg_total / 2 + kg_total % 2;
                let byte = self.flat_planes[bit][row * row_bytes + kg / 2];
                if kg.is_multiple_of(2) {
                    byte & 0x0F
                } else {
                    byte >> 4
                }
            }
            Layout::Permuted { interleaved } => {
                let (mt, r) = (row / TILE_M, row % TILE_M);
                let base = self.step_offset(mt, kg, bit);
                let half = TILE_M / 2;
                let (j, high) = if interleaved {
                    (r % half, r >= half)
                } else {
                    (r / 2, r % 2 == 1)
                };
                let byte = self.perm_stream[base + j];
                if high {
                    byte >> 4
                } else {
                    byte & 0x0F
                }
            }
        }
    }

    /// Byte offset of the 16-byte step `(m-tile, kg, bit)` in the permuted
    /// stream (scale-block-major, bit-major within the block).
    fn step_offset(&self, mt: usize, kg: usize, bit: usize) -> usize {
        let half = TILE_M / 2;
        let kg_per_block = self.group_size / LUT_GROUP;
        let per_sb = self.bits * kg_per_block * half;
        let per_mtile = self.kg_total() / kg_per_block * per_sb;
        let (sb, kg_in) = (kg / kg_per_block, kg % kg_per_block);
        mt * per_mtile + sb * per_sb + (bit * kg_per_block + kg_in) * half
    }

    /// The flat nibble plane of one bit (row-major, [`Self::flat_row_bytes`]
    /// bytes per padded row).
    ///
    /// # Panics
    ///
    /// Panics if the plan is permuted or `bit` is out of range.
    pub fn flat_plane(&self, bit: usize) -> &[u8] {
        assert!(matches!(self.layout, Layout::Flat), "plan is permuted");
        &self.flat_planes[bit]
    }

    /// Bytes per row in the flat nibble planes.
    pub fn flat_row_bytes(&self) -> usize {
        let kg_total = self.kg_total();
        kg_total / 2 + kg_total % 2
    }

    /// The permuted index stream of one m-tile.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not permuted or `mt` is out of range.
    pub fn mtile_stream(&self, mt: usize) -> &[u8] {
        assert!(matches!(self.layout, Layout::Permuted { .. }));
        let per_mtile = self.kg_total() * self.bits * (TILE_M / 2);
        &self.perm_stream[mt * per_mtile..(mt + 1) * per_mtile]
    }

    /// Row-major (padded) scale of `(row, scale-block)`.
    #[inline]
    pub fn scale(&self, row: usize, sb: usize) -> f32 {
        self.scales_flat[row * self.groups_per_row() + sb]
    }

    /// Tile-permuted scales for `(m-tile, scale-block)`: `TILE_M` floats.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not permuted.
    #[inline]
    pub fn tile_scales(&self, mt: usize, sb: usize) -> &[f32] {
        assert!(!self.scales_perm.is_empty(), "plan is not permuted");
        let base = (mt * self.groups_per_row() + sb) * TILE_M;
        &self.scales_perm[base..base + TILE_M]
    }

    /// Bytes of index data the kernel streams for one full GEMV pass.
    pub fn index_bytes(&self) -> usize {
        match self.layout {
            Layout::Flat => self.flat_planes.iter().map(Vec::len).sum(),
            Layout::Permuted { .. } => self.perm_stream.len(),
        }
    }
}

/// Reconstructs the 4-bit index directly from codes (test oracle).
pub fn index_from_codes(qm: &QuantizedMatrix, bit: usize, row: usize, kg: usize) -> u8 {
    let mut idx = 0u8;
    for j in 0..LUT_GROUP {
        let code = qm.codes[row * qm.cols + kg * LUT_GROUP + j];
        idx |= ((code >> bit) & 1) << j;
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmac_quant::rtn;

    fn matrix(m: usize, k: usize, bits: u8, gs: usize) -> QuantizedMatrix {
        let w: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32 * 0.37).sin() + (i % 11) as f32 * 0.1) - 0.5)
            .collect();
        rtn::quantize(&w, m, k, bits, gs).unwrap()
    }

    #[test]
    fn flat_layout_decodes_to_code_bits() {
        let qm = matrix(7, 64, 3, 32);
        let plan = WeightPlan::new(&qm, KernelOpts::plus_table_quant()).unwrap();
        assert_eq!(plan.layout(), Layout::Flat);
        for bit in 0..3 {
            for row in 0..7 {
                for kg in 0..16 {
                    assert_eq!(
                        plan.index(bit, row, kg),
                        index_from_codes(&qm, bit, row, kg),
                        "bit={bit} row={row} kg={kg}"
                    );
                }
            }
        }
    }

    #[test]
    fn permuted_layouts_decode_identically() {
        let qm = matrix(40, 128, 4, 32);
        let flat = WeightPlan::new(&qm, KernelOpts::plus_table_quant()).unwrap();
        for interleave in [false, true] {
            let mut opts = KernelOpts::plus_permute();
            opts.interleave = interleave;
            opts.tile_k = 64;
            let perm = WeightPlan::new(&qm, opts).unwrap();
            for bit in 0..4 {
                for row in 0..perm.m_padded {
                    for kg in 0..perm.kg_total() {
                        assert_eq!(
                            perm.index(bit, row, kg),
                            flat.index(bit, row, kg),
                            "interleave={interleave} bit={bit} row={row} kg={kg}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn padding_rows_are_zero() {
        let qm = matrix(40, 64, 2, 32);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        assert_eq!(plan.m_padded, 64);
        for bit in 0..2 {
            for row in 40..64 {
                for kg in 0..16 {
                    assert_eq!(plan.index(bit, row, kg), 0);
                }
                for sb in 0..2 {
                    assert_eq!(plan.scale(row, sb), 0.0);
                }
            }
        }
    }

    #[test]
    fn tile_scales_match_flat_scales() {
        let qm = matrix(64, 128, 4, 32);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        for mt in 0..plan.m_tiles() {
            for sb in 0..plan.groups_per_row() {
                let ts = plan.tile_scales(mt, sb);
                for (r, &t) in ts.iter().enumerate().take(TILE_M) {
                    assert_eq!(t, plan.scale(mt * TILE_M + r, sb));
                }
            }
        }
    }

    #[test]
    fn rejects_bad_shapes_and_opts() {
        let qm = matrix(8, 64, 4, 32);
        let mut bad = KernelOpts::tmac();
        bad.tile_k = 48; // not a multiple of group_size 32
        assert!(matches!(
            WeightPlan::new(&qm, bad),
            Err(TmacError::Shape(_))
        ));
        let mut bad = KernelOpts::tm_base();
        bad.mirror = true;
        assert!(matches!(WeightPlan::new(&qm, bad), Err(TmacError::Opts(_))));
    }

    #[test]
    fn cz_constant_matches_convention() {
        for bits in 1..=4u8 {
            let qm = matrix(4, 32, bits, 32);
            let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
            let expect = if bits == 1 { 0.0 } else { -0.5 };
            assert_eq!(plan.cz, expect, "bits={bits}");
        }
    }

    #[test]
    fn index_bytes_scale_with_bits() {
        let q2 = matrix(32, 128, 2, 32);
        let q4 = matrix(32, 128, 4, 32);
        let p2 = WeightPlan::new(&q2, KernelOpts::tmac()).unwrap();
        let p4 = WeightPlan::new(&q4, KernelOpts::tmac()).unwrap();
        assert_eq!(p4.index_bytes(), 2 * p2.index_bytes());
    }

    #[test]
    fn tile_k_clamped_to_k() {
        let qm = matrix(8, 64, 2, 32);
        let mut opts = KernelOpts::tmac();
        opts.tile_k = 4096;
        let plan = WeightPlan::new(&qm, opts).unwrap();
        assert_eq!(plan.tile_k, 64);
    }
}
