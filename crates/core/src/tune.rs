//! Tile-configuration tuner (the role AutoTVM plays in the paper's §4).
//!
//! "The number of on-chip LUTs is tuned for each hardware ... for different
//! devices, tuning should assist in finding a better configuration"
//! (§4, §5.5). This tuner measures real executions of candidate `tile_k` /
//! `n_block` configurations on the actual plan and caches the winner per
//! `(M, K, bits, threads)`. [`tune_gemm`] extends the search to the
//! multi-row mpGEMM knobs: `row_block` (rows per register block) and
//! `kg_panel` (K-panel cache blocking), measured on a real `n`-row batch.

use crate::exec::ExecCtx;
use crate::gemm::mpgemm;
use crate::gemv::{build_tables, mpgemv_with_tables};
use crate::opts::KernelOpts;
use crate::plan::WeightPlan;
use crate::TmacError;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;
use tmac_quant::QuantizedMatrix;

/// Candidate `tile_k` values swept by the tuner (clamped to multiples of the
/// weight group size and to `K`).
pub const TILE_K_CANDIDATES: [usize; 4] = [128, 256, 512, 1024];

/// Candidate `n_block` values for mpGEMM.
pub const N_BLOCK_CANDIDATES: [usize; 3] = [4, 8, 16];

/// Candidate `row_block` (register block) values for the multi-row kernel.
pub const ROW_BLOCK_CANDIDATES: [usize; 4] = [1, 2, 4, 8];

/// Candidate `kg_panel` values (k-groups per L1 panel; `0` = auto-size from
/// the L1 table budget).
pub const KG_PANEL_CANDIDATES: [usize; 4] = [0, 64, 256, 1024];

/// One measured configuration.
#[derive(Debug, Clone, Copy)]
pub struct TunedConfig {
    /// The winning option set.
    pub opts: KernelOpts,
    /// Best observed latency for one GEMV, in seconds.
    pub gemv_seconds: f64,
}

/// Measures the best of `iters` runs of a full mpGEMV (tables + kernel).
///
/// # Errors
///
/// Propagates plan/driver errors from the measured configuration.
pub fn measure_gemv(
    qm: &QuantizedMatrix,
    opts: KernelOpts,
    ctx: &ExecCtx,
    iters: usize,
) -> Result<f64, TmacError> {
    let plan = WeightPlan::new(qm, opts)?;
    let act: Vec<f32> = (0..qm.cols).map(|i| ((i as f32) * 0.37).sin()).collect();
    let mut out = vec![0f32; qm.rows];
    // Warm-up run (also validates the configuration end to end).
    let tables = build_tables(&plan, &act)?;
    mpgemv_with_tables(&plan, &tables, &mut out, ctx)?;
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let tables = build_tables(&plan, &act)?;
        mpgemv_with_tables(&plan, &tables, &mut out, ctx)?;
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Ok(best)
}

/// Sweeps `tile_k` candidates and returns the fastest full-T-MAC
/// configuration for this matrix.
///
/// # Errors
///
/// Propagates plan construction or execution failures.
pub fn tune(qm: &QuantizedMatrix, ctx: &ExecCtx, iters: usize) -> Result<TunedConfig, TmacError> {
    let mut best: Option<TunedConfig> = None;
    for &tk in &TILE_K_CANDIDATES {
        if tk % qm.group_size != 0 {
            continue;
        }
        let mut opts = KernelOpts::tmac();
        opts.tile_k = tk;
        let secs = measure_gemv(qm, opts, ctx, iters)?;
        if best.is_none_or(|b| secs < b.gemv_seconds) {
            best = Some(TunedConfig {
                opts,
                gemv_seconds: secs,
            });
        }
    }
    best.ok_or_else(|| {
        TmacError::Shape(format!(
            "no tile_k candidate is a multiple of group_size {}",
            qm.group_size
        ))
    })
}

/// One measured mpGEMM configuration.
#[derive(Debug, Clone, Copy)]
pub struct TunedGemmConfig {
    /// The winning option set (including `row_block`/`kg_panel`).
    pub opts: KernelOpts,
    /// Best observed latency for one `n`-row mpGEMM, in seconds.
    pub gemm_seconds: f64,
    /// Batch rows the configuration was measured at.
    pub n: usize,
}

/// Measures the best of `iters` runs of a full `n`-row mpGEMM (per-row
/// table builds + multi-row sweep).
///
/// # Errors
///
/// Propagates plan/driver errors from the measured configuration.
pub fn measure_gemm(
    qm: &QuantizedMatrix,
    opts: KernelOpts,
    n: usize,
    ctx: &ExecCtx,
    iters: usize,
) -> Result<f64, TmacError> {
    let plan = WeightPlan::new(qm, opts)?;
    let act: Vec<f32> = (0..n * qm.cols)
        .map(|i| ((i as f32) * 0.23).sin())
        .collect();
    let mut out = vec![0f32; n * qm.rows];
    // Warm-up run (also validates the configuration end to end).
    mpgemm(&plan, &act, n, &mut out, ctx)?;
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        mpgemm(&plan, &act, n, &mut out, ctx)?;
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Ok(best)
}

/// Sweeps `row_block` × `kg_panel` on top of the GEMV-tuned configuration
/// and returns the fastest multi-row mpGEMM setup for an `n`-row batch.
///
/// `row_block` candidates larger than `n` are skipped (they cannot form a
/// full register block), except that `1` (the per-row sweep) is always
/// measured as the baseline.
///
/// # Errors
///
/// Propagates plan construction or execution failures.
pub fn tune_gemm(
    qm: &QuantizedMatrix,
    n: usize,
    ctx: &ExecCtx,
    iters: usize,
) -> Result<TunedGemmConfig, TmacError> {
    let base = tune(qm, ctx, iters)?.opts;
    let mut best: Option<TunedGemmConfig> = None;
    for &rb in &ROW_BLOCK_CANDIDATES {
        if rb > n.max(1) && rb != 1 {
            continue;
        }
        // The panel knob only matters for the multi-row sweep.
        let panels: &[usize] = if rb == 1 { &[0] } else { &KG_PANEL_CANDIDATES };
        for &kp in panels {
            let mut opts = base;
            opts.row_block = rb;
            opts.kg_panel = kp;
            opts.n_block = opts.n_block.max(rb);
            let secs = measure_gemm(qm, opts, n, ctx, iters)?;
            if best.is_none_or(|b| secs < b.gemm_seconds) {
                best = Some(TunedGemmConfig {
                    opts,
                    gemm_seconds: secs,
                    n,
                });
            }
        }
    }
    best.ok_or_else(|| TmacError::Shape("no row_block candidate applies".into()))
}

/// GEMV cache key: `(M, K, bits, threads)`.
type GemvKey = (usize, usize, u8, usize);
/// mpGEMM cache key: `(M, K, bits, threads, n)`.
type GemmKey = (usize, usize, u8, usize, usize);

/// Process-wide tuning cache keyed by `(M, K, bits, threads)` (plus the
/// batch size `n` for mpGEMM configurations).
pub struct Tuner {
    cache: Mutex<HashMap<GemvKey, KernelOpts>>,
    gemm_cache: Mutex<HashMap<GemmKey, KernelOpts>>,
}

impl Tuner {
    /// Creates an empty tuner cache.
    pub fn new() -> Self {
        Tuner {
            cache: Mutex::new(HashMap::new()),
            gemm_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the cached configuration for this shape, tuning on first use.
    ///
    /// # Errors
    ///
    /// Propagates tuning failures (the result is then not cached).
    pub fn get(
        &self,
        qm: &QuantizedMatrix,
        ctx: &ExecCtx,
        iters: usize,
    ) -> Result<KernelOpts, TmacError> {
        let key = (qm.rows, qm.cols, qm.bits, ctx.threads());
        if let Some(hit) = self.cache.lock().expect("tuner lock").get(&key) {
            return Ok(*hit);
        }
        let tuned = tune(qm, ctx, iters)?;
        self.cache
            .lock()
            .expect("tuner lock")
            .insert(key, tuned.opts);
        Ok(tuned.opts)
    }

    /// Returns the cached mpGEMM configuration for `(shape, n)`, running
    /// the `row_block`/`kg_panel` sweep on first use.
    ///
    /// # Errors
    ///
    /// Propagates tuning failures (the result is then not cached).
    pub fn get_gemm(
        &self,
        qm: &QuantizedMatrix,
        n: usize,
        ctx: &ExecCtx,
        iters: usize,
    ) -> Result<KernelOpts, TmacError> {
        let key = (qm.rows, qm.cols, qm.bits, ctx.threads(), n);
        if let Some(hit) = self.gemm_cache.lock().expect("tuner lock").get(&key) {
            return Ok(*hit);
        }
        let tuned = tune_gemm(qm, n, ctx, iters)?;
        self.gemm_cache
            .lock()
            .expect("tuner lock")
            .insert(key, tuned.opts);
        Ok(tuned.opts)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("tuner lock").len()
            + self.gemm_cache.lock().expect("tuner lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Tuner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmac_quant::rtn;

    fn matrix(m: usize, k: usize) -> QuantizedMatrix {
        let w: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.21).sin()).collect();
        rtn::quantize(&w, m, k, 2, 32).unwrap()
    }

    #[test]
    fn tune_returns_valid_config() {
        let qm = matrix(128, 256);
        let ctx = ExecCtx::new(1);
        let cfg = tune(&qm, &ctx, 1).unwrap();
        assert!(cfg.opts.validate().is_ok());
        assert!(cfg.gemv_seconds > 0.0);
        assert!(TILE_K_CANDIDATES.contains(&cfg.opts.tile_k));
    }

    #[test]
    fn tuner_caches_by_shape() {
        let tuner = Tuner::new();
        let ctx = ExecCtx::new(1);
        let qm = matrix(64, 128);
        let a = tuner.get(&qm, &ctx, 1).unwrap();
        let b = tuner.get(&qm, &ctx, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(tuner.len(), 1);
        let qm2 = matrix(64, 256);
        tuner.get(&qm2, &ctx, 1).unwrap();
        assert_eq!(tuner.len(), 2);
    }

    #[test]
    fn tune_gemm_returns_valid_multi_row_config() {
        let qm = matrix(96, 128);
        let ctx = ExecCtx::new(1);
        let cfg = tune_gemm(&qm, 8, &ctx, 1).unwrap();
        assert!(cfg.opts.validate().is_ok());
        assert!(cfg.gemm_seconds > 0.0);
        assert_eq!(cfg.n, 8);
        assert!(ROW_BLOCK_CANDIDATES.contains(&cfg.opts.row_block));
        assert!(cfg.opts.n_block >= cfg.opts.row_block);
    }

    #[test]
    fn tuner_gemm_cache_keys_on_n() {
        let tuner = Tuner::new();
        let ctx = ExecCtx::new(1);
        let qm = matrix(64, 128);
        let a = tuner.get_gemm(&qm, 4, &ctx, 1).unwrap();
        let b = tuner.get_gemm(&qm, 4, &ctx, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(tuner.len(), 1);
        tuner.get_gemm(&qm, 16, &ctx, 1).unwrap();
        assert_eq!(tuner.len(), 2);
    }

    #[test]
    fn measure_rejects_broken_opts() {
        let qm = matrix(64, 128);
        let ctx = ExecCtx::new(1);
        let mut opts = KernelOpts::tmac();
        opts.tile_k = 48; // not a multiple of group_size
        assert!(measure_gemv(&qm, opts, &ctx, 1).is_err());
    }
}
