//! mpGEMV driver: table precompute + parallel m-tile execution.
//!
//! Axis order follows the paper's §3.2: the temporal axis `K` is innermost
//! (one small table set, fully reused), the spatial axis `M` is split into
//! tiles and distributed over threads as static thread blocks.

use crate::exec::ExecCtx;
use crate::kernel;
use crate::opts::{LUT_GROUP, TILE_M};
use crate::plan::WeightPlan;
use crate::table::ActTables;
use crate::TmacError;

/// Shared-output wrapper: threads write disjoint m-ranges.
struct OutPtr(*mut f32);
// SAFETY: every dispatch partitions tiles disjointly (`ThreadPool::chunks`),
// each tile writes only its own `TILE_M` output rows, and the dispatching
// call frame keeps the buffer alive until the pool job completes.
unsafe impl Sync for OutPtr {}

/// Computes `out[m] = Σ_k act[k] · W[m][k]` for an offline-planned `W`.
///
/// Builds the activation tables (online stage) and runs the kernel. Reuse
/// [`mpgemv_with_tables`] when the same activation row multiplies several
/// weight matrices (as QKV projections do).
///
/// # Errors
///
/// Returns [`TmacError::Shape`] on length mismatches or when fast
/// aggregation is requested with a non-power-of-two `group_size / 4`.
pub fn mpgemv(
    plan: &WeightPlan,
    act: &[f32],
    out: &mut [f32],
    ctx: &ExecCtx,
) -> Result<(), TmacError> {
    let tables = build_tables(plan, act)?;
    mpgemv_with_tables(plan, &tables, out, ctx)
}

/// [`mpgemv`] through the context's activation-table cache.
///
/// Within one [`ExecCtx::next_activation`] scope, every plan with the same
/// table profile (`K`, group size, table options) consuming the same
/// activation shares a single [`ActTables`] build — the QKV / gate-up reuse
/// of the paper's §3.2 made automatic.
///
/// # Errors
///
/// Same contract as [`mpgemv`].
pub fn mpgemv_cached(
    plan: &WeightPlan,
    act: &[f32],
    out: &mut [f32],
    ctx: &ExecCtx,
) -> Result<(), TmacError> {
    let tables = ctx.tables_for(plan, act)?;
    mpgemv_with_tables(plan, &tables, out, ctx)
}

/// Builds activation tables compatible with `plan`.
///
/// # Errors
///
/// Propagates table-construction failures (shape, non-finite activations).
pub fn build_tables(plan: &WeightPlan, act: &[f32]) -> Result<ActTables, TmacError> {
    if act.len() != plan.k {
        return Err(TmacError::Shape(format!(
            "activation length {} != K {}",
            act.len(),
            plan.k
        )));
    }
    if plan.opts.fast_aggregation && !(plan.group_size / LUT_GROUP).is_power_of_two() {
        return Err(TmacError::Shape(format!(
            "fast aggregation needs group_size/4 to be a power of two, got {}",
            plan.group_size / LUT_GROUP
        )));
    }
    ActTables::build(act, plan.group_size, &plan.opts)
}

/// [`mpgemv`] with caller-provided precomputed tables.
///
/// # Errors
///
/// Returns [`TmacError::Shape`] if `out.len() != M` or the tables were built
/// for a different `K`/options.
pub fn mpgemv_with_tables(
    plan: &WeightPlan,
    tables: &ActTables,
    out: &mut [f32],
    ctx: &ExecCtx,
) -> Result<(), TmacError> {
    if out.len() != plan.m {
        return Err(TmacError::Shape(format!(
            "output length {} != M {}",
            out.len(),
            plan.m
        )));
    }
    check_tables_compatible(plan, tables)?;

    #[cfg(target_arch = "x86_64")]
    let use_avx2 = kernel::avx2::supported(&plan.opts);
    #[cfg(not(target_arch = "x86_64"))]
    let use_avx2 = false;

    let m = plan.m;
    let out_ptr = OutPtr(out.as_mut_ptr());
    let out_ref = &out_ptr;
    ctx.pool().chunks(plan.m_tiles(), 1, |tiles| {
        let mut buf = [0f32; TILE_M];
        for mt in tiles {
            run_mtile(plan, tables, mt, &mut buf, use_avx2);
            let m0 = mt * TILE_M;
            let take = TILE_M.min(m - m0);
            // SAFETY: tiles are disjoint across threads; `out` outlives the
            // dispatch (`chunks` blocks until all threads finish); the range
            // `[m0, m0 + take)` lies within `out` by construction.
            unsafe {
                std::ptr::copy_nonoverlapping(buf.as_ptr(), out_ref.0.add(m0), take);
            }
        }
    });
    Ok(())
}

/// Validates that caller-provided tables match `plan`'s full table profile
/// (shape *and* options): every mismatch the kernels cannot tolerate —
/// `K`, group size, quantization, mirror consolidation, and missing offset
/// tables under fast aggregation — is rejected before dispatch.
pub(crate) fn check_tables_compatible(plan: &WeightPlan, t: &ActTables) -> Result<(), TmacError> {
    if t.k != plan.k || t.group_size != plan.group_size {
        return Err(TmacError::Shape(
            "tables incompatible with plan (K or group size)".into(),
        ));
    }
    if t.quantized != plan.opts.table_quant {
        return Err(TmacError::Shape(
            "tables quantization does not match plan options".into(),
        ));
    }
    if t.mirror != plan.opts.mirror {
        return Err(TmacError::Shape(
            "tables mirror consolidation does not match plan options".into(),
        ));
    }
    if plan.opts.fast_aggregation && t.u_tables.is_empty() {
        return Err(TmacError::Shape(
            "fast-aggregation plan needs tables built with offset u8 tables".into(),
        ));
    }
    Ok(())
}

/// Executes one m-tile on the best available backend.
#[inline]
pub(crate) fn run_mtile(
    plan: &WeightPlan,
    tables: &ActTables,
    mt: usize,
    buf: &mut [f32; TILE_M],
    use_avx2: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2 {
        // SAFETY: `use_avx2` implies `kernel::avx2::supported`, which
        // requires the runtime AVX2+FMA check to have passed.
        unsafe { kernel::avx2::gemv_mtile(plan, tables, mt, buf) };
        return;
    }
    let _ = use_avx2;
    kernel::scalar::gemv_plan_mtile(plan, tables, mt, buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::scalar::gemv_reference;
    use crate::opts::KernelOpts;
    use tmac_quant::rtn;

    fn setup(m: usize, k: usize, bits: u8) -> (tmac_quant::QuantizedMatrix, Vec<f32>) {
        let w: Vec<f32> = (0..m * k)
            .map(|i| ((i as f32) * 0.123).sin() * 0.5)
            .collect();
        let act: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.7).cos()).collect();
        (rtn::quantize(&w, m, k, bits, 32).unwrap(), act)
    }

    #[test]
    fn driver_matches_reference_all_bits() {
        let ctx = ExecCtx::new(2);
        for bits in 1..=4u8 {
            let (qm, act) = setup(100, 128, bits);
            let reference = gemv_reference(&qm, &act);
            let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
            let mut out = vec![0f32; 100];
            mpgemv(&plan, &act, &mut out, &ctx).unwrap();
            let nmse = tmac_simd::f32ops::nmse(&out, &reference);
            assert!(nmse < 2e-3, "bits={bits} nmse={nmse}");
        }
    }

    #[test]
    fn single_and_multi_thread_agree_exactly() {
        let (qm, act) = setup(96, 256, 4);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let c1 = ExecCtx::new(1);
        let c4 = ExecCtx::new(4);
        let mut a = vec![0f32; 96];
        let mut b = vec![0f32; 96];
        mpgemv(&plan, &act, &mut a, &c1).unwrap();
        mpgemv(&plan, &act, &mut b, &c4).unwrap();
        assert_eq!(a, b, "threading must not change results");
    }

    #[test]
    fn table_reuse_matches_fresh_build() {
        let (qm, act) = setup(64, 128, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let tables = build_tables(&plan, &act).unwrap();
        let mut a = vec![0f32; 64];
        let mut b = vec![0f32; 64];
        let mut c = vec![0f32; 64];
        mpgemv(&plan, &act, &mut a, &ctx).unwrap();
        mpgemv_with_tables(&plan, &tables, &mut b, &ctx).unwrap();
        ctx.next_activation();
        mpgemv_cached(&plan, &act, &mut c, &ctx).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn rejects_shape_errors() {
        let (qm, act) = setup(64, 128, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let mut out = vec![0f32; 64];
        assert!(mpgemv(&plan, &act[..64], &mut out, &ctx).is_err());
        let mut short = vec![0f32; 63];
        assert!(mpgemv(&plan, &act, &mut short, &ctx).is_err());
    }

    #[test]
    fn rejects_incompatible_tables() {
        let (qm, act) = setup(64, 128, 2);
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        // Tables built without quantization don't match a TQ plan.
        let wrong = ActTables::build(&act, 32, &KernelOpts::tm_base()).unwrap();
        let mut out = vec![0f32; 64];
        assert!(mpgemv_with_tables(&plan, &wrong, &mut out, &ctx).is_err());
    }

    #[test]
    fn nan_activations_rejected() {
        let (qm, mut act) = setup(32, 64, 2);
        act[5] = f32::INFINITY;
        let plan = WeightPlan::new(&qm, KernelOpts::tmac()).unwrap();
        let ctx = ExecCtx::new(1);
        let mut out = vec![0f32; 32];
        assert!(matches!(
            mpgemv(&plan, &act, &mut out, &ctx),
            Err(TmacError::Numeric(_))
        ));
    }
}
