//! `tmac-trace` — always-on observability primitives for the serving stack.
//!
//! Two halves, deliberately decoupled:
//!
//! * [`Histogram`] — a fixed-bucket, atomic latency histogram (Prometheus
//!   cumulative-`le` exposition plus sum/count/max). **Always compiled**:
//!   the serving layer's `/metrics` histograms and per-request timing
//!   breakdowns exist in every build.
//! * The span/event recorder ([`span`], [`instant`], [`complete`],
//!   [`chrome_trace_json`]) — per-thread fixed-capacity ring buffers of
//!   timestamped events, exported as Chrome Trace Event Format JSON that
//!   Perfetto / `chrome://tracing` loads directly. **Feature-gated**:
//!   without the `trace` cargo feature every entry point is an
//!   `#[inline(always)]` no-op that folds away, so the hot paths carry no
//!   registry, no lock, and no timestamp reads (the same idiom as
//!   `tmac_core::failpoint`). With the feature on there is no runtime
//!   toggle — recording is always on and costs two monotonic timestamp
//!   reads plus one ring store per span, with no steady-state allocation.
//!
//! ## Ring layout
//!
//! Each thread lazily registers one ring (capacity from
//! `TMAC_TRACE_EVENTS`, default 16384 events) in a process-global registry
//! the first time it records. Events are 6 machine words
//! (`start_ns`, `dur_ns`, two `&'static str` tags, `id`, `arg`); when the
//! ring is full the oldest event is overwritten, so a long-running server
//! always holds the *most recent* window of activity. Timestamps are
//! nanoseconds since a process-wide epoch ([`now_ns`]), so spans from
//! different threads line up on one timeline.
//!
//! ## Span identity
//!
//! Spans carry a category (`cat`, coarse subsystem: `"sched"`, `"gemm"`,
//! ...), a site name (`name`), and two free `u64`s: `id` (sequence id,
//! layer index, ...) and `arg` (batch size, matched positions, ...).
//! Nesting needs no parent pointers — Chrome's trace viewer nests
//! same-thread complete events by timestamp containment.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// Histograms (always compiled)
// ---------------------------------------------------------------------------

/// Bucket upper bounds (seconds) for request-scale latencies: TTFT,
/// end-to-end latency, queue wait. Spans four decades around typical
/// CPU-serving latencies.
pub const LATENCY_BOUNDS_S: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
];

/// Bucket upper bounds (seconds) for scheduler step durations (one batched
/// decode / admission round — much shorter than a request).
pub const STEP_BOUNDS_S: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
];

/// Bucket upper bounds for batch occupancy (active sequences per step; a
/// unitless count).
pub const OCCUPANCY_BOUNDS: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// A fixed-bucket histogram with atomic counters: lock-free `observe`,
/// cumulative-`le` Prometheus rendering, and the sum/count/max aggregates
/// the legacy `/metrics` lines are derived from (one implementation for
/// both surfaces, so they cannot drift).
///
/// Values are recorded in micro-units internally (`v * 1e6`, saturating),
/// which keeps sums exact enough for latencies while staying a single
/// `u64` atomic.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    /// One counter per bound plus the overflow (`+Inf`) bucket.
    counts: Box<[AtomicU64]>,
    sum_micros: AtomicU64,
    count: AtomicU64,
    max_micros: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (must be sorted ascending; an implicit
    /// `+Inf` bucket is appended).
    pub fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_micros: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Records one observation (negative values clamp to zero).
    pub fn observe(&self, v: f64) {
        let v = v.max(0.0);
        // `le` semantics: the first bucket whose bound is >= v.
        let idx = self.bounds.partition_point(|b| v > *b);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let micros = (v * 1e6).round() as u64;
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> f64 {
        self.max_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// The bucket bounds this histogram was built with.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket *cumulative* counts aligned with [`Histogram::bounds`],
    /// with the final entry being the total (`+Inf`) count.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|c| {
                acc += c.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }

    /// Appends the Prometheus exposition of this histogram to `out`:
    /// `name_bucket{le="..."}` lines (cumulative, ending with `+Inf`),
    /// then `name_sum` and `name_count`. Every line is `key value` with a
    /// single space, matching the rest of the `/metrics` page.
    pub fn render_prometheus(&self, name: &str, out: &mut String) {
        use std::fmt::Write;
        let cum = self.cumulative();
        for (b, c) in self.bounds.iter().zip(&cum) {
            let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {c}");
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"+Inf\"}} {}",
            cum.last().copied().unwrap_or(0)
        );
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

// ---------------------------------------------------------------------------
// Span recorder: no-op stubs (feature off)
// ---------------------------------------------------------------------------

#[cfg(not(feature = "trace"))]
mod imp {
    /// Recording is compiled out: a zero-sized guard with no `Drop`.
    #[must_use = "a span measures the scope it is bound to"]
    pub struct SpanGuard;

    /// Recording is compiled out: returns the zero-sized guard.
    #[inline(always)]
    pub fn span(_cat: &'static str, _name: &'static str, _id: u64, _arg: u64) -> SpanGuard {
        SpanGuard
    }

    /// Recording is compiled out: does nothing.
    #[inline(always)]
    pub fn instant(_cat: &'static str, _name: &'static str, _id: u64, _arg: u64) {}

    /// Recording is compiled out: does nothing.
    #[inline(always)]
    pub fn complete(
        _cat: &'static str,
        _name: &'static str,
        _id: u64,
        _arg: u64,
        _start_ns: u64,
        _end_ns: u64,
    ) {
    }

    /// Recording is compiled out: always 0.
    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    /// Recording is compiled out: a valid, empty Chrome-trace document.
    #[inline(always)]
    pub fn chrome_trace_json() -> String {
        "{\"traceEvents\":[]}".to_string()
    }

    /// Recording is compiled out: does nothing.
    #[inline(always)]
    pub fn reset() {}
}

// ---------------------------------------------------------------------------
// Span recorder: real implementation (feature on)
// ---------------------------------------------------------------------------

#[cfg(feature = "trace")]
mod imp {
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    /// `dur_ns` sentinel marking an instant event.
    const INSTANT_DUR: u64 = u64::MAX;

    /// One recorded event (a completed span or an instant).
    #[derive(Debug, Clone, Copy)]
    pub struct Event {
        /// Nanoseconds since the process trace epoch.
        pub start_ns: u64,
        /// Span duration in nanoseconds; `u64::MAX` marks an instant.
        pub dur_ns: u64,
        /// Coarse subsystem tag (`"sched"`, `"gemm"`, ...).
        pub cat: &'static str,
        /// Site name within the category.
        pub name: &'static str,
        /// Free identifier: sequence id, layer index, panel index, ...
        pub id: u64,
        /// Free argument: batch size, matched positions, byte count, ...
        pub arg: u64,
    }

    impl Event {
        /// Whether this event is an instant (no duration).
        pub fn is_instant(&self) -> bool {
            self.dur_ns == INSTANT_DUR
        }
    }

    struct RingBuf {
        events: Vec<Event>,
        /// Oldest index once the ring has wrapped (next overwrite target).
        head: usize,
        /// Events ever recorded on this ring (monotonic).
        total: u64,
        cap: usize,
    }

    impl RingBuf {
        fn push(&mut self, ev: Event) {
            self.total += 1;
            if self.events.len() < self.cap {
                self.events.push(ev);
            } else {
                self.events[self.head] = ev;
                self.head = (self.head + 1) % self.cap;
            }
        }

        /// Events oldest-first.
        fn ordered(&self) -> Vec<Event> {
            let mut out = Vec::with_capacity(self.events.len());
            out.extend_from_slice(&self.events[self.head..]);
            out.extend_from_slice(&self.events[..self.head]);
            out
        }
    }

    struct Ring {
        tid: u64,
        label: String,
        buf: Mutex<RingBuf>,
    }

    /// Everything one thread recorded, oldest event first.
    #[derive(Debug)]
    pub struct ThreadSnapshot {
        /// Stable small integer assigned at ring registration.
        pub tid: u64,
        /// The thread's name at registration time.
        pub label: String,
        /// Events still held by the ring, oldest first.
        pub events: Vec<Event>,
        /// Events ever recorded (`> events.len()` once the ring wrapped).
        pub total: u64,
    }

    fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
        static REG: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
        REG.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    /// Per-thread ring capacity: `TMAC_TRACE_EVENTS`, default 16384.
    fn ring_capacity() -> usize {
        static CAP: OnceLock<usize> = OnceLock::new();
        *CAP.get_or_init(|| {
            std::env::var("TMAC_TRACE_EVENTS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(16384)
                .max(8)
        })
    }

    thread_local! {
        static RING: Arc<Ring> = {
            let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
            let cap = ring_capacity();
            let ring = Arc::new(Ring {
                tid: reg.len() as u64 + 1,
                label: std::thread::current().name().unwrap_or("worker").to_string(),
                buf: Mutex::new(RingBuf {
                    events: Vec::with_capacity(cap),
                    head: 0,
                    total: 0,
                    cap,
                }),
            });
            reg.push(Arc::clone(&ring));
            ring
        };
    }

    fn record(ev: Event) {
        // `try_with`: a drop running during thread teardown must not panic.
        let _ = RING.try_with(|r| {
            r.buf.lock().unwrap_or_else(|p| p.into_inner()).push(ev);
        });
    }

    /// Nanoseconds since the process trace epoch (monotonic, shared by
    /// every thread, so cross-thread spans line up on one timeline).
    pub fn now_ns() -> u64 {
        epoch().elapsed().as_nanos() as u64
    }

    /// RAII span: records one complete event covering its lifetime when
    /// dropped.
    #[must_use = "a span measures the scope it is bound to"]
    pub struct SpanGuard {
        cat: &'static str,
        name: &'static str,
        id: u64,
        arg: u64,
        start_ns: u64,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            record(Event {
                start_ns: self.start_ns,
                dur_ns: now_ns().saturating_sub(self.start_ns),
                cat: self.cat,
                name: self.name,
                id: self.id,
                arg: self.arg,
            });
        }
    }

    /// Opens a span on the current thread; the returned guard records it
    /// when dropped. `id`/`arg` are free tags (see [`Event`]).
    pub fn span(cat: &'static str, name: &'static str, id: u64, arg: u64) -> SpanGuard {
        SpanGuard {
            cat,
            name,
            id,
            arg,
            start_ns: now_ns(),
        }
    }

    /// Records an instant event (a point in time, no duration).
    pub fn instant(cat: &'static str, name: &'static str, id: u64, arg: u64) {
        record(Event {
            start_ns: now_ns(),
            dur_ns: INSTANT_DUR,
            cat,
            name,
            id,
            arg,
        });
    }

    /// Records a complete span retroactively from explicit timestamps
    /// (both from [`now_ns`]) — for durations whose start lives on another
    /// thread or in non-`'static` state, like a request's queue wait.
    pub fn complete(
        cat: &'static str,
        name: &'static str,
        id: u64,
        arg: u64,
        start_ns: u64,
        end_ns: u64,
    ) {
        record(Event {
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            cat,
            name,
            id,
            arg,
        });
    }

    /// Non-destructive snapshot of every thread's ring, oldest first.
    pub fn snapshot() -> Vec<ThreadSnapshot> {
        let rings: Vec<Arc<Ring>> = registry().lock().unwrap_or_else(|p| p.into_inner()).clone();
        rings
            .iter()
            .map(|r| {
                let buf = r.buf.lock().unwrap_or_else(|p| p.into_inner());
                ThreadSnapshot {
                    tid: r.tid,
                    label: r.label.clone(),
                    events: buf.ordered(),
                    total: buf.total,
                }
            })
            .collect()
    }

    /// Clears every ring (registrations survive). Tests use this to
    /// isolate assertions; a server never needs it.
    pub fn reset() {
        for r in registry().lock().unwrap_or_else(|p| p.into_inner()).iter() {
            let mut buf = r.buf.lock().unwrap_or_else(|p| p.into_inner());
            buf.events.clear();
            buf.head = 0;
            buf.total = 0;
        }
    }

    fn escape_json(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
    }

    /// Serializes every ring as a Chrome Trace Event Format document
    /// (Perfetto / `chrome://tracing` load it directly): one metadata
    /// event naming each thread, then its spans (`"ph":"X"`, microsecond
    /// `ts`/`dur`) and instants (`"ph":"i"`) on that thread's track.
    pub fn chrome_trace_json() -> String {
        use std::fmt::Write;
        let snap = snapshot();
        let mut out = String::with_capacity(1024);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let sep = |out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
        };
        for t in &snap {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"",
                t.tid
            );
            escape_json(&t.label, &mut out);
            out.push_str("\"}}");
            for ev in &t.events {
                sep(&mut out, &mut first);
                let ts = ev.start_ns as f64 / 1e3;
                if ev.is_instant() {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\"s\":\"t\",\"cat\":\"{}\",\"name\":\"{}\",\"args\":{{\"id\":{},\"arg\":{}}}}}",
                        t.tid, ev.cat, ev.name, ev.id, ev.arg
                    );
                } else {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\"dur\":{:.3},\"cat\":\"{}\",\"name\":\"{}\",\"args\":{{\"id\":{},\"arg\":{}}}}}",
                        t.tid,
                        ev.dur_ns as f64 / 1e3,
                        ev.cat,
                        ev.name,
                        ev.id,
                        ev.arg
                    );
                }
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

pub use imp::{chrome_trace_json, complete, instant, now_ns, reset, span, SpanGuard};
#[cfg(feature = "trace")]
pub use imp::{snapshot, Event, ThreadSnapshot};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_edges_use_le_semantics() {
        static BOUNDS: &[f64] = &[0.001, 0.01, 0.1];
        let h = Histogram::new(BOUNDS);
        // Exactly on a bound lands in that bound's bucket (le = <=).
        h.observe(0.001);
        h.observe(0.01);
        h.observe(0.1);
        // Just above a bound spills to the next.
        h.observe(0.0010001);
        // Overflow bucket.
        h.observe(5.0);
        // Negative clamps to zero (first bucket).
        h.observe(-1.0);
        let cum = h.cumulative();
        assert_eq!(cum, vec![2, 4, 5, 6]); // le 0.001, 0.01, 0.1, +Inf
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 5.0);
        assert!((h.sum() - 5.112_000_1).abs() < 1e-4, "sum {}", h.sum());
    }

    #[test]
    fn histogram_renders_cumulative_prometheus_lines() {
        static BOUNDS: &[f64] = &[0.25, 2.5];
        let h = Histogram::new(BOUNDS);
        h.observe(0.1);
        h.observe(1.0);
        h.observe(100.0);
        let mut out = String::new();
        h.render_prometheus("tmac_test_seconds", &mut out);
        let want = "tmac_test_seconds_bucket{le=\"0.25\"} 1\n\
                    tmac_test_seconds_bucket{le=\"2.5\"} 2\n\
                    tmac_test_seconds_bucket{le=\"+Inf\"} 3\n\
                    tmac_test_seconds_sum 101.1\n\
                    tmac_test_seconds_count 3\n";
        assert_eq!(out, want);
        // Every line is `key value` with one space — the contract the
        // serving `/metrics` renderer and its tests rely on.
        for line in out.lines() {
            let (k, v) = line.rsplit_once(' ').unwrap();
            assert!(!k.is_empty() && v.parse::<f64>().is_ok(), "line {line:?}");
        }
    }

    #[test]
    fn histogram_is_safe_under_concurrent_observers() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new(LATENCY_BOUNDS_S));
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.observe((w * 1000 + i) as f64 * 1e-5);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(*h.cumulative().last().unwrap(), 4000);
    }

    #[cfg(feature = "trace")]
    mod recorder {
        use super::super::*;
        use std::sync::{Mutex, MutexGuard, OnceLock};

        /// The ring registry is process-global; recorder tests serialize on
        /// this lock so reset/snapshot pairs don't interleave.
        fn serial() -> MutexGuard<'static, ()> {
            static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
            LOCK.get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(|p| p.into_inner())
        }

        fn my_events() -> Vec<Event> {
            // This thread records everything these tests emit; other
            // threads' rings may hold unrelated events.
            let all = snapshot();
            all.into_iter()
                .flat_map(|t| t.events)
                .filter(|e| e.cat == "test")
                .collect()
        }

        #[test]
        fn spans_nest_by_timestamp_containment() {
            let _guard = serial();
            reset();
            {
                let _outer = span("test", "outer", 1, 0);
                {
                    let _inner = span("test", "inner", 2, 0);
                }
                instant("test", "mark", 3, 7);
            }
            let evs = my_events();
            let find = |n: &str| *evs.iter().find(|e| e.name == n).unwrap();
            let (outer, inner, mark) = (find("outer"), find("inner"), find("mark"));
            // Inner drops first, so it records first; both nest inside
            // outer's [start, start+dur] window, as Chrome's viewer infers.
            assert!(inner.start_ns >= outer.start_ns);
            assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
            assert!(mark.is_instant());
            assert!(mark.start_ns >= inner.start_ns + inner.dur_ns);
            assert!((outer.id, inner.id, mark.id) == (1, 2, 3) && mark.arg == 7);
        }

        #[test]
        fn ring_wraps_keeping_the_newest_events() {
            let _guard = serial();
            reset();
            // The per-ring capacity, replicating the recorder's own
            // resolution (env override, default 16384, floor 8).
            let cap: usize = std::env::var("TMAC_TRACE_EVENTS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(16384)
                .max(8);
            let n = cap + cap / 2;
            for i in 0..n {
                instant("test", "tick", i as u64, 0);
            }
            let t = snapshot()
                .into_iter()
                .find(|t| t.events.iter().any(|e| e.name == "tick"))
                .unwrap();
            assert_eq!(t.total as usize, n, "every record is counted");
            assert_eq!(t.events.len(), cap, "ring holds exactly its capacity");
            // Oldest-first order, ending at the newest event.
            let ids: Vec<u64> = t.events.iter().map(|e| e.id).collect();
            assert_eq!(ids[0], (n - cap) as u64, "oldest surviving event");
            assert_eq!(*ids.last().unwrap(), (n - 1) as u64, "newest event");
            assert!(ids.windows(2).all(|w| w[1] == w[0] + 1), "in order");
        }

        #[test]
        fn chrome_trace_json_is_well_formed() {
            let _guard = serial();
            reset();
            {
                let _s = span("test", "chrome_span", 42, 3);
            }
            instant("test", "chrome_instant", 7, 0);
            let json = chrome_trace_json();
            assert!(json.starts_with("{\"traceEvents\":["));
            assert!(json.contains("\"ph\":\"M\""), "thread metadata present");
            assert!(json.contains("\"name\":\"chrome_span\""));
            assert!(json.contains("\"ph\":\"X\""), "complete event present");
            assert!(json.contains("\"ph\":\"i\""), "instant event present");
            assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
            // Balanced braces/brackets outside of strings — cheap sanity
            // that the hand-rolled writer didn't mis-nest.
            let (mut depth, mut in_str, mut prev_escape) = (0i64, false, false);
            for c in json.chars() {
                if in_str {
                    if prev_escape {
                        prev_escape = false;
                    } else if c == '\\' {
                        prev_escape = true;
                    } else if c == '"' {
                        in_str = false;
                    }
                    continue;
                }
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0);
            }
            assert_eq!(depth, 0, "balanced JSON");
        }

        #[test]
        fn retroactive_complete_records_the_given_window() {
            let _guard = serial();
            reset();
            let t0 = now_ns();
            let t1 = t0 + 1_500_000; // 1.5ms later
            complete("test", "retro", 9, 2, t0, t1);
            let evs = my_events();
            let e = evs.iter().find(|e| e.name == "retro").unwrap();
            assert_eq!((e.start_ns, e.dur_ns, e.id, e.arg), (t0, 1_500_000, 9, 2));
        }
    }
}
