//! Quantization substrate for the T-MAC reproduction.
//!
//! Low-bit LLM inference (paper §2.2) starts from *weight-only* quantization:
//! weights are stored as `bits ∈ {1, 2, 3, 4}`-bit codes with per-group
//! scales while activations stay in high precision. This crate provides:
//!
//! * [`QuantizedMatrix`] — the canonical interchange form: one code byte per
//!   weight plus per-`group_size` scales. Both the T-MAC kernels
//!   (`tmac-core`) and the llama.cpp-style baseline (`tmac-baseline`)
//!   consume *the same* quantized matrix, so speed comparisons are apples to
//!   apples and outputs can be cross-checked.
//! * [`rtn`] — round-to-nearest group quantization (the GPTQ/AWQ storage
//!   format's arithmetic without the Hessian machinery).
//! * [`gptq`] — an error-feedback quantizer standing in for GPTQ proper
//!   (paper's 4-bit Llama models are "from GPTQ").
//! * [`bitnet`] — BitNet b1.58 ternary quantization; ternary weights are
//!   "interpreted as 2-bit and decomposed into two 1-bit matrices" (§5.1).
//! * [`formats`] — llama.cpp-style block formats (`Q8_0` activations,
//!   `Q4_0`/`Q3_S`/`Q2_0`/`Q1_0` weights) used by the baseline kernels.
//!
//! # Code ↔ value convention
//!
//! A code `q ∈ [0, 2^bits)` in group `g` of row `m` represents
//! `w = scale[m][g] * (q - zero)`, with `zero` fixed per matrix:
//! `2^(bits-1)` for `bits ≥ 2` (llama.cpp `Q4_0`-style) and `0.5` for
//! `bits == 1` (sign quantization, OneBit-style). The T-MAC bit-serial
//! decomposition (paper Eq. 1 plus the `{-1,+1}` linear transform of §4)
//! consumes exactly this convention; see `tmac-core`.

pub mod bitnet;
pub mod formats;
pub mod gptq;
pub mod rtn;

/// Errors produced by quantization APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// Bit width outside the supported `1..=4` range.
    UnsupportedBits(u8),
    /// A dimension/length invariant was violated; the message names it.
    Shape(String),
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::UnsupportedBits(b) => {
                write!(f, "unsupported weight bit-width {b} (supported: 1..=4)")
            }
            QuantError::Shape(msg) => write!(f, "shape error: {msg}"),
        }
    }
}

impl std::error::Error for QuantError {}

/// The canonical weight-only quantized matrix (row-major, `rows × cols`).
///
/// Codes are stored one per byte for interchange simplicity; packed kernel
/// layouts (nibble planes, llama.cpp blocks) are derived from this form
/// offline, which mirrors the paper's offline weight preprocessing stage
/// (Figure 2, "OFFLINE").
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    /// Output features, `M`.
    pub rows: usize,
    /// Input features, `K` (the reduction axis).
    pub cols: usize,
    /// Weight bit-width `∈ 1..=4`.
    pub bits: u8,
    /// Number of consecutive `K` elements sharing one scale.
    pub group_size: usize,
    /// `rows * cols` codes, each `< 2^bits`.
    pub codes: Vec<u8>,
    /// `rows * cols / group_size` scales, row-major.
    pub scales: Vec<f32>,
    /// Uniform zero point in code space.
    pub zero: f32,
}

impl QuantizedMatrix {
    /// The zero point this crate uses for a bit width.
    pub fn default_zero(bits: u8) -> f32 {
        if bits == 1 {
            0.5
        } else {
            (1u32 << (bits - 1)) as f32
        }
    }

    /// Validates the internal invariants, returning a descriptive error.
    pub fn validate(&self) -> Result<(), QuantError> {
        if !(1..=4).contains(&self.bits) {
            return Err(QuantError::UnsupportedBits(self.bits));
        }
        if self.group_size == 0 || !self.cols.is_multiple_of(self.group_size) {
            return Err(QuantError::Shape(format!(
                "cols {} not divisible by group_size {}",
                self.cols, self.group_size
            )));
        }
        if self.codes.len() != self.rows * self.cols {
            return Err(QuantError::Shape(format!(
                "codes len {} != rows*cols {}",
                self.codes.len(),
                self.rows * self.cols
            )));
        }
        let expect_scales = self.rows * self.cols / self.group_size;
        if self.scales.len() != expect_scales {
            return Err(QuantError::Shape(format!(
                "scales len {} != {}",
                self.scales.len(),
                expect_scales
            )));
        }
        let max_code = (1u16 << self.bits) as u8;
        if let Some(bad) = self.codes.iter().find(|&&c| c >= max_code) {
            return Err(QuantError::Shape(format!(
                "code {bad} out of range for {} bits",
                self.bits
            )));
        }
        Ok(())
    }

    /// Number of scale groups along `K`.
    pub fn groups_per_row(&self) -> usize {
        self.cols / self.group_size
    }

    /// Scale of `(row, k)`.
    #[inline]
    pub fn scale_at(&self, row: usize, k: usize) -> f32 {
        self.scales[row * self.groups_per_row() + k / self.group_size]
    }

    /// Dequantized value of `(row, k)`.
    #[inline]
    pub fn value(&self, row: usize, k: usize) -> f32 {
        let code = self.codes[row * self.cols + k] as f32;
        self.scale_at(row, k) * (code - self.zero)
    }

    /// Dequantizes one row into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != cols` or `row >= rows`.
    pub fn dequantize_row(&self, row: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "dequantize_row output length");
        let gpr = self.groups_per_row();
        let codes = &self.codes[row * self.cols..(row + 1) * self.cols];
        let scales = &self.scales[row * gpr..(row + 1) * gpr];
        for (g, chunk) in codes.chunks(self.group_size).enumerate() {
            let s = scales[g];
            let base = g * self.group_size;
            for (j, &c) in chunk.iter().enumerate() {
                out[base + j] = s * (c as f32 - self.zero);
            }
        }
    }

    /// Dequantizes the whole matrix (row-major).
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            self.dequantize_row(r, &mut out[r * self.cols..(r + 1) * self.cols]);
        }
        out
    }

    /// Bytes this matrix occupies in *packed* deployment form
    /// (`bits` bits per weight plus one `f32` scale per group).
    pub fn packed_bytes(&self) -> usize {
        self.rows * self.cols * self.bits as usize / 8 + self.scales.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> QuantizedMatrix {
        QuantizedMatrix {
            rows: 2,
            cols: 8,
            bits: 2,
            group_size: 4,
            codes: vec![0, 1, 2, 3, 3, 2, 1, 0, 1, 1, 1, 1, 2, 2, 2, 2],
            scales: vec![1.0, 0.5, 2.0, 0.25],
            zero: 2.0,
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bits() {
        let mut q = tiny();
        q.bits = 5;
        assert_eq!(q.validate(), Err(QuantError::UnsupportedBits(5)));
    }

    #[test]
    fn validate_rejects_ragged_groups() {
        let mut q = tiny();
        q.group_size = 3;
        assert!(matches!(q.validate(), Err(QuantError::Shape(_))));
    }

    #[test]
    fn validate_rejects_code_overflow() {
        let mut q = tiny();
        q.codes[3] = 4; // 2-bit max is 3
        assert!(matches!(q.validate(), Err(QuantError::Shape(_))));
    }

    #[test]
    fn value_and_dequantize_agree() {
        let q = tiny();
        let d = q.dequantize();
        for r in 0..q.rows {
            for k in 0..q.cols {
                assert_eq!(d[r * q.cols + k], q.value(r, k));
            }
        }
        // Spot-check: row 0, k 0: code 0, scale 1.0, zero 2 -> -2.0.
        assert_eq!(q.value(0, 0), -2.0);
        // Row 1, k 4: code 2, group 1 scale 0.25 -> 0.0.
        assert_eq!(q.value(1, 4), 0.0);
    }

    #[test]
    fn default_zero_convention() {
        assert_eq!(QuantizedMatrix::default_zero(1), 0.5);
        assert_eq!(QuantizedMatrix::default_zero(2), 2.0);
        assert_eq!(QuantizedMatrix::default_zero(3), 4.0);
        assert_eq!(QuantizedMatrix::default_zero(4), 8.0);
    }

    #[test]
    fn packed_bytes_counts_bits() {
        let q = tiny();
        // 16 codes at 2 bits = 4 bytes, 4 scales = 16 bytes.
        assert_eq!(q.packed_bytes(), 20);
    }

    #[test]
    fn error_display() {
        let e = QuantError::UnsupportedBits(7);
        assert!(e.to_string().contains('7'));
    }
}
