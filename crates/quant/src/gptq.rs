//! Error-feedback group quantization (pseudo-GPTQ).
//!
//! GPTQ quantizes weights column-by-column, updating not-yet-quantized
//! columns to compensate the error using second-order (Hessian) information
//! gathered from calibration activations. Without calibration data, this
//! module implements the same *error-feedback* structure with an identity
//! Hessian: each element's rounding error is diffused into the next element
//! of the group before it is quantized. On smooth weight rows this measurably
//! reduces the *sum* error that a GEMV accumulates, which is the quantity
//! that matters for kernel-level accuracy experiments (paper Table 3).
//!
//! The output is bit-exact in format with [`crate::rtn`], so every kernel
//! consumes it unchanged.

use crate::{QuantError, QuantizedMatrix};

/// Quantizes with per-group scales and within-group error feedback.
///
/// # Errors
///
/// Same contract as [`crate::rtn::quantize`].
pub fn quantize(
    weights: &[f32],
    rows: usize,
    cols: usize,
    bits: u8,
    group_size: usize,
) -> Result<QuantizedMatrix, QuantError> {
    if !(1..=4).contains(&bits) {
        return Err(QuantError::UnsupportedBits(bits));
    }
    if weights.len() != rows * cols {
        return Err(QuantError::Shape(format!(
            "weights len {} != rows*cols {}",
            weights.len(),
            rows * cols
        )));
    }
    if group_size == 0 || !cols.is_multiple_of(group_size) {
        return Err(QuantError::Shape(format!(
            "cols {cols} not divisible by group_size {group_size}"
        )));
    }
    let zero = QuantizedMatrix::default_zero(bits);
    let max_code = ((1u16 << bits) - 1) as f32;
    let mut codes = vec![0u8; rows * cols];
    let mut scales = vec![0f32; rows * cols / group_size];
    let gpr = cols / group_size;
    for r in 0..rows {
        let wrow = &weights[r * cols..(r + 1) * cols];
        for g in 0..gpr {
            let grp = &wrow[g * group_size..(g + 1) * group_size];
            let amax = grp.iter().fold(0f32, |m, &x| m.max(x.abs()));
            let scale = if amax == 0.0 { 1e-8 } else { amax / zero };
            scales[r * gpr + g] = scale;
            let inv = 1.0 / scale;
            let mut carry = 0.0f32;
            for (j, &w) in grp.iter().enumerate() {
                // Quantize the error-compensated value.
                let target = w + carry;
                let q = (target * inv + zero).round().clamp(0.0, max_code);
                let recon = scale * (q - zero);
                // Diffuse this element's full error into the next one
                // (identity-Hessian GPTQ step). The carry is bounded by half
                // a quantization step except at the clamped range edges.
                carry = target - recon;
                codes[r * cols + g * group_size + j] = q as u8;
            }
        }
    }
    let qm = QuantizedMatrix {
        rows,
        cols,
        bits,
        group_size,
        codes,
        scales,
        zero,
    };
    debug_assert!(qm.validate().is_ok());
    Ok(qm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_row(cols: usize) -> Vec<f32> {
        (0..cols).map(|i| (i as f32 * 0.05).sin() * 0.8).collect()
    }

    #[test]
    fn format_matches_rtn() {
        let w = smooth_row(64);
        let a = quantize(&w, 1, 64, 4, 32).unwrap();
        let b = crate::rtn::quantize(&w, 1, 64, 4, 32).unwrap();
        assert_eq!(a.bits, b.bits);
        assert_eq!(a.zero, b.zero);
        assert_eq!(a.scales, b.scales); // identical scale selection
    }

    #[test]
    fn aggregate_group_sum_error_beats_rtn() {
        // Error feedback keeps the *running sum* of reconstruction errors
        // near zero inside each group, which is what a GEMV accumulates.
        // Compare the total |group-sum error| over many groups; feedback
        // must win in aggregate (individual groups may tie or lose).
        let cols = 2048;
        let w = smooth_row(cols);
        for bits in 2..=4u8 {
            let g = quantize(&w, 1, cols, bits, 32).unwrap();
            let r = crate::rtn::quantize(&w, 1, cols, bits, 32).unwrap();
            let gd = g.dequantize();
            let rd = r.dequantize();
            let group_sum_err = |d: &[f32]| -> f32 {
                d.chunks(32)
                    .zip(w.chunks(32))
                    .map(|(dq, orig)| (dq.iter().sum::<f32>() - orig.iter().sum::<f32>()).abs())
                    .sum()
            };
            let ge = group_sum_err(&gd);
            let re = group_sum_err(&rd);
            assert!(
                ge <= re,
                "bits={bits}: feedback aggregate {ge} not better than rtn {re}"
            );
        }
    }

    #[test]
    fn elementwise_error_stays_bounded() {
        let w = smooth_row(128);
        let q = quantize(&w, 1, 128, 4, 32).unwrap();
        let d = q.dequantize();
        for (k, (&x, &y)) in w.iter().zip(&d).enumerate() {
            let s = q.scale_at(0, k);
            // Rounding (±0.5 step) plus a carried error of up to one step
            // and clamp effects: two steps bounds the element-wise error.
            assert!((x - y).abs() <= 2.0 * s + 1e-6, "k={k}");
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(quantize(&[0.0; 8], 1, 8, 0, 4).is_err());
        assert!(quantize(&[0.0; 8], 1, 8, 4, 3).is_err());
    }
}
