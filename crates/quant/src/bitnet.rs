//! BitNet b1.58 ternary quantization.
//!
//! BitNet b1.58 trains LLMs with ternary weights `{-1, 0, +1}` scaled by a
//! per-tensor (here: per-group) factor computed from the mean magnitude
//! ("absmean" quantization). The paper evaluates BitNet-b1.58-3B by
//! *interpreting ternary weights as 2-bit* and decomposing them into two
//! one-bit matrices (§5.1, "Kernels and models"), which is exactly what
//! T-MAC's bit-serial pipeline does with the [`QuantizedMatrix`] this module
//! produces.

use crate::{QuantError, QuantizedMatrix};

/// Quantizes to ternary `{-1, 0, +1}` codes stored as 2-bit values
/// `{1, 2, 3} - zero` with `zero = 2.0`.
///
/// Per group, the scale is the absmean `mean(|w|)` (BitNet b1.58's
/// quantizer); weights round to `scale * t` for `t ∈ {-1, 0, 1}`.
///
/// The returned matrix has `bits == 2` and codes restricted to `{1, 2, 3}`
/// (never 0), so every downstream 2-bit kernel runs unmodified.
///
/// # Errors
///
/// Returns [`QuantError::Shape`] on dimension mismatches.
///
/// # Examples
///
/// ```
/// let w = vec![0.9f32, -1.1, 0.02, 0.7, -0.8, 0.0, 1.3, -0.05];
/// let q = tmac_quant::bitnet::quantize(&w, 1, 8, 8).unwrap();
/// assert_eq!(q.bits, 2);
/// assert!(q.codes.iter().all(|&c| (1..=3).contains(&c)));
/// ```
pub fn quantize(
    weights: &[f32],
    rows: usize,
    cols: usize,
    group_size: usize,
) -> Result<QuantizedMatrix, QuantError> {
    if weights.len() != rows * cols {
        return Err(QuantError::Shape(format!(
            "weights len {} != rows*cols {}",
            weights.len(),
            rows * cols
        )));
    }
    if group_size == 0 || !cols.is_multiple_of(group_size) {
        return Err(QuantError::Shape(format!(
            "cols {cols} not divisible by group_size {group_size}"
        )));
    }
    let zero = 2.0f32;
    let mut codes = vec![0u8; rows * cols];
    let mut scales = vec![0f32; rows * cols / group_size];
    let gpr = cols / group_size;
    for r in 0..rows {
        let wrow = &weights[r * cols..(r + 1) * cols];
        for g in 0..gpr {
            let grp = &wrow[g * group_size..(g + 1) * group_size];
            let absmean = grp.iter().map(|x| x.abs()).sum::<f32>() / group_size as f32;
            let scale = if absmean == 0.0 { 1e-8 } else { absmean };
            scales[r * gpr + g] = scale;
            for (j, &w) in grp.iter().enumerate() {
                // Round w/scale to the nearest of {-1, 0, 1}.
                let t = (w / scale).round().clamp(-1.0, 1.0);
                codes[r * cols + g * group_size + j] = (t + zero) as u8;
            }
        }
    }
    let qm = QuantizedMatrix {
        rows,
        cols,
        bits: 2,
        group_size,
        codes,
        scales,
        zero,
    };
    debug_assert!(qm.validate().is_ok());
    Ok(qm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_values_only() {
        let w: Vec<f32> = (0..128)
            .map(|i| ((i * 31) % 17) as f32 * 0.2 - 1.6)
            .collect();
        let q = quantize(&w, 2, 64, 32).unwrap();
        let d = q.dequantize();
        for r in 0..2 {
            for k in 0..64 {
                let s = q.scale_at(r, k);
                let v = d[r * 64 + k];
                let t = v / s;
                assert!(
                    (t - t.round()).abs() < 1e-5 && (-1.0..=1.0).contains(&t.round()),
                    "non-ternary value {v} (t={t})"
                );
            }
        }
    }

    #[test]
    fn near_zero_maps_to_zero_code() {
        let w = vec![1.0f32, -1.0, 0.001, 1.0, -1.0, 0.0, 1.0, -1.0];
        let q = quantize(&w, 1, 8, 8).unwrap();
        assert_eq!(q.codes[2], 2); // 0.001 / absmean rounds to 0 -> code 2
        assert_eq!(q.codes[5], 2);
    }

    #[test]
    fn absmean_scale() {
        let w = vec![2.0f32; 8];
        let q = quantize(&w, 1, 8, 8).unwrap();
        assert!((q.scales[0] - 2.0).abs() < 1e-6);
        let d = q.dequantize();
        for &v in &d {
            assert!((v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(quantize(&[0.0; 8], 1, 8, 3).is_err());
        assert!(quantize(&[0.0; 8], 2, 8, 4).is_err());
    }
}
