//! Round-to-nearest (RTN) group quantization.
//!
//! The storage arithmetic shared by GPTQ, AWQ and llama.cpp's `Q*_0`
//! formats: per-group symmetric scale chosen from the group's max
//! magnitude, codes rounded to nearest.

use crate::{QuantError, QuantizedMatrix};

/// Quantizes a row-major `rows × cols` matrix to `bits` with per-`group_size`
/// scales.
///
/// The scale maps the group's maximum magnitude to the most negative code
/// (`-zero`), matching llama.cpp's `Q4_0` convention, so the representable
/// range is `[-amax, amax * (2^bits - 1 - zero) / zero]`.
///
/// # Errors
///
/// Returns [`QuantError`] if `bits ∉ 1..=4`, dimensions don't match
/// `weights.len()`, or `cols` is not divisible by `group_size`.
///
/// # Examples
///
/// ```
/// let w: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 0.1).collect();
/// let q = tmac_quant::rtn::quantize(&w, 2, 32, 4, 32).unwrap();
/// let d = q.dequantize();
/// for (x, y) in w.iter().zip(&d) {
///     // Worst-case error is one step (scale = amax/8 = 0.4 here).
///     assert!((x - y).abs() <= 0.4 + 1e-6);
/// }
/// ```
pub fn quantize(
    weights: &[f32],
    rows: usize,
    cols: usize,
    bits: u8,
    group_size: usize,
) -> Result<QuantizedMatrix, QuantError> {
    if !(1..=4).contains(&bits) {
        return Err(QuantError::UnsupportedBits(bits));
    }
    if weights.len() != rows * cols {
        return Err(QuantError::Shape(format!(
            "weights len {} != rows*cols {}",
            weights.len(),
            rows * cols
        )));
    }
    if group_size == 0 || !cols.is_multiple_of(group_size) {
        return Err(QuantError::Shape(format!(
            "cols {cols} not divisible by group_size {group_size}"
        )));
    }
    let zero = QuantizedMatrix::default_zero(bits);
    let max_code = ((1u16 << bits) - 1) as f32;
    let mut codes = vec![0u8; rows * cols];
    let mut scales = vec![0f32; rows * cols / group_size];
    let gpr = cols / group_size;
    for r in 0..rows {
        let wrow = &weights[r * cols..(r + 1) * cols];
        for g in 0..gpr {
            let grp = &wrow[g * group_size..(g + 1) * group_size];
            let amax = grp.iter().fold(0f32, |m, &x| m.max(x.abs()));
            let scale = if amax == 0.0 { 1e-8 } else { amax / zero };
            scales[r * gpr + g] = scale;
            let inv = 1.0 / scale;
            for (j, &w) in grp.iter().enumerate() {
                let q = (w * inv + zero).round().clamp(0.0, max_code);
                codes[r * cols + g * group_size + j] = q as u8;
            }
        }
    }
    let qm = QuantizedMatrix {
        rows,
        cols,
        bits,
        group_size,
        codes,
        scales,
        zero,
    };
    debug_assert!(qm.validate().is_ok());
    Ok(qm)
}

/// Maximum absolute reconstruction error of RTN at a given scale: half a
/// quantization step.
pub fn step_error_bound(scale: f32) -> f32 {
    scale * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| ((i as f32 * 0.618).sin()) * (1.0 + (i % 7) as f32 * 0.3))
            .collect()
    }

    #[test]
    fn roundtrip_error_bounded_all_bitwidths() {
        let (rows, cols, gs) = (4, 64, 32);
        let w = ramp(rows, cols);
        for bits in 1..=4u8 {
            let q = quantize(&w, rows, cols, bits, gs).unwrap();
            let d = q.dequantize();
            for r in 0..rows {
                for k in 0..cols {
                    let s = q.scale_at(r, k);
                    let err = (w[r * cols + k] - d[r * cols + k]).abs();
                    // Codes at the clamped positive edge can carry up to one
                    // full step of error (range asymmetry), otherwise half.
                    assert!(
                        err <= s * 1.0 + 1e-6,
                        "bits={bits} r={r} k={k} err={err} s={s}"
                    );
                }
            }
        }
    }

    #[test]
    fn four_bit_is_more_accurate_than_one_bit() {
        let (rows, cols, gs) = (2, 128, 32);
        let w = ramp(rows, cols);
        let errs: Vec<f32> = [1u8, 4]
            .iter()
            .map(|&bits| {
                let q = quantize(&w, rows, cols, bits, gs).unwrap();
                let d = q.dequantize();
                w.iter()
                    .zip(&d)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
            })
            .collect();
        assert!(
            errs[1] < errs[0] * 0.25,
            "4-bit {} vs 1-bit {}",
            errs[1],
            errs[0]
        );
    }

    #[test]
    fn zero_group_is_stable() {
        let w = vec![0.0f32; 64];
        let q = quantize(&w, 1, 64, 4, 32).unwrap();
        let d = q.dequantize();
        assert!(d.iter().all(|&x| x.abs() < 1e-6));
    }

    #[test]
    fn rejects_bad_shapes() {
        let w = vec![0.0f32; 64];
        assert!(quantize(&w, 1, 64, 5, 32).is_err());
        assert!(quantize(&w, 1, 64, 4, 33).is_err());
        assert!(quantize(&w, 2, 64, 4, 32).is_err()); // len mismatch
    }

    #[test]
    fn one_bit_codes_are_signs() {
        let w: Vec<f32> = (0..32)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let q = quantize(&w, 1, 32, 1, 32).unwrap();
        for (i, &c) in q.codes.iter().enumerate() {
            assert_eq!(c, if i % 2 == 0 { 1 } else { 0 });
        }
        let d = q.dequantize();
        for (x, y) in w.iter().zip(&d) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
