//! llama.cpp-style packed block formats.
//!
//! The baseline system (`tmac-baseline`) mirrors llama.cpp's mixed-precision
//! path: activations are quantized on the fly to 32-element `Q8_0` blocks and
//! weights are stored in per-bit-width packed blocks, each carrying one `f32`
//! scale per 32 weights. The packings reproduce the *layout properties* that
//! drive llama.cpp's performance behaviour:
//!
//! * [`BlockQ4_0`] — nibble `j` of the 16 data bytes holds weight `j` (low)
//!   and weight `j + 16` (high), llama.cpp's split-halves convention that
//!   lets one `AND`/`SHR` pair unpack a whole register.
//! * [`BlockQ2_0`] — four 2-bit codes per byte, sequential.
//! * [`BlockQ3S`] — the **2+1 split** for 3-bit: low 2 bits packed like
//!   `Q2_0` plus a separate high-bit bitmask. "llama.cpp attempts to
//!   optimize it by separately packing 2 bits and the remaining 1 bit, but
//!   it still results in significant overhead" (paper §5.2) — this format
//!   exists precisely so that overhead is measurable here.
//! * [`BlockQ1_0`] — one sign bit per weight (llama.cpp has no 1-bit format;
//!   the paper deduces 1-bit baseline performance from 2-bit. This format
//!   lets us measure an actual 1-bit dequant kernel as well).
//!
//! All block formats hold exactly [`QK`] = 32 weights.

use crate::{QuantError, QuantizedMatrix};

/// Weights (and activation elements) per block, llama.cpp's `QK8_0`/`QK4_0`.
pub const QK: usize = 32;

/// One block of `Q8_0`-quantized activations: `x[i] ≈ d * qs[i]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockQ8_0 {
    /// Scale.
    pub d: f32,
    /// Codes in `-127..=127`.
    pub qs: [i8; QK],
}

/// One block of 4-bit weights: `w[j] ≈ d * (code_j - 8)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockQ4_0 {
    /// Scale.
    pub d: f32,
    /// Byte `j` holds weight `j` in its low nibble, weight `j + 16` high.
    pub qs: [u8; QK / 2],
}

/// One block of 2-bit weights: `w[j] ≈ d * (code_j - 2)`.
///
/// Plane-strided packing (as llama.cpp's `Q2_K` data bytes): byte `j` holds
/// codes `j`, `j + 8`, `j + 16`, `j + 24` in its four 2-bit fields, so a
/// SIMD unpack is four uniform `SHR`/`AND` passes over the same bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockQ2_0 {
    /// Scale.
    pub d: f32,
    /// Byte `j`, field `f` (bits `2f..2f+2`) holds code `8f + j`.
    pub qs: [u8; QK / 4],
}

/// One block of 3-bit weights in llama.cpp's 2+1 split: low two bits packed
/// like [`BlockQ2_0`], high bit in a 32-bit mask. `w[j] ≈ d * (code_j - 4)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockQ3S {
    /// Scale.
    pub d: f32,
    /// Low 2 bits of each code, plane-strided like [`BlockQ2_0::qs`].
    pub qlo: [u8; QK / 4],
    /// High (third) bit of each code: bit `j % 8` of byte `j / 8` for
    /// weight `j` (so byte `f` covers the same codes as field `f` of
    /// `qlo`).
    pub qhi: [u8; QK / 8],
}

/// One block of 1-bit weights: `w[j] ≈ d * (code_j - 0.5)`, i.e. `±d/2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockQ1_0 {
    /// Scale.
    pub d: f32,
    /// Sign bits, bit `j` of the mask for weight `j`.
    pub qs: [u8; QK / 8],
}

/// Quantizes a `f32` slice into `Q8_0` blocks (llama.cpp's activation path).
///
/// # Panics
///
/// Panics if `src.len()` is not a multiple of [`QK`].
pub fn quantize_q8_0(src: &[f32]) -> Vec<BlockQ8_0> {
    assert_eq!(src.len() % QK, 0, "Q8_0 needs a multiple of {QK} values");
    src.chunks(QK)
        .map(|chunk| {
            let mut qs = [0i8; QK];
            let d = tmac_simd::scalar::quantize_i8(chunk, &mut qs);
            BlockQ8_0 { d, qs }
        })
        .collect()
}

/// Dequantizes `Q8_0` blocks back to `f32` (testing/reference).
pub fn dequantize_q8_0(blocks: &[BlockQ8_0]) -> Vec<f32> {
    let mut out = Vec::with_capacity(blocks.len() * QK);
    for b in blocks {
        out.extend(b.qs.iter().map(|&q| b.d * q as f32));
    }
    out
}

fn row_groups(qm: &QuantizedMatrix, bits: u8) -> Result<(), QuantError> {
    if qm.bits != bits {
        return Err(QuantError::Shape(format!(
            "matrix is {}-bit, format needs {bits}-bit",
            qm.bits
        )));
    }
    if qm.group_size != QK {
        return Err(QuantError::Shape(format!(
            "block formats need group_size {QK}, got {}",
            qm.group_size
        )));
    }
    qm.validate()
}

/// Packs one row of a 4-bit [`QuantizedMatrix`] into `Q4_0` blocks.
///
/// # Errors
///
/// Fails unless `qm.bits == 4` and `qm.group_size == 32`.
pub fn pack_row_q4_0(qm: &QuantizedMatrix, row: usize) -> Result<Vec<BlockQ4_0>, QuantError> {
    row_groups(qm, 4)?;
    let gpr = qm.groups_per_row();
    let codes = &qm.codes[row * qm.cols..(row + 1) * qm.cols];
    Ok((0..gpr)
        .map(|g| {
            let c = &codes[g * QK..(g + 1) * QK];
            let mut qs = [0u8; QK / 2];
            for j in 0..QK / 2 {
                qs[j] = c[j] | (c[j + QK / 2] << 4);
            }
            BlockQ4_0 {
                d: qm.scales[row * gpr + g],
                qs,
            }
        })
        .collect())
}

/// Unpacks a `Q4_0` block to centered codes `code - 8 ∈ [-8, 7]`.
pub fn unpack_q4_0(b: &BlockQ4_0, out: &mut [i8; QK]) {
    for j in 0..QK / 2 {
        out[j] = (b.qs[j] & 0x0F) as i8 - 8;
        out[j + QK / 2] = (b.qs[j] >> 4) as i8 - 8;
    }
}

/// Packs one row of a 2-bit [`QuantizedMatrix`] into `Q2_0` blocks.
///
/// # Errors
///
/// Fails unless `qm.bits == 2` and `qm.group_size == 32`.
pub fn pack_row_q2_0(qm: &QuantizedMatrix, row: usize) -> Result<Vec<BlockQ2_0>, QuantError> {
    row_groups(qm, 2)?;
    let gpr = qm.groups_per_row();
    let codes = &qm.codes[row * qm.cols..(row + 1) * qm.cols];
    Ok((0..gpr)
        .map(|g| {
            let c = &codes[g * QK..(g + 1) * QK];
            let mut qs = [0u8; QK / 4];
            for (j, q) in qs.iter_mut().enumerate() {
                *q = c[j] | (c[8 + j] << 2) | (c[16 + j] << 4) | (c[24 + j] << 6);
            }
            BlockQ2_0 {
                d: qm.scales[row * gpr + g],
                qs,
            }
        })
        .collect())
}

/// Unpacks a `Q2_0` block to centered codes `code - 2 ∈ [-2, 1]`.
pub fn unpack_q2_0(b: &BlockQ2_0, out: &mut [i8; QK]) {
    for f in 0..4 {
        for j in 0..QK / 4 {
            out[8 * f + j] = ((b.qs[j] >> (2 * f)) & 0x3) as i8 - 2;
        }
    }
}

/// Packs one row of a 3-bit [`QuantizedMatrix`] into 2+1-split blocks.
///
/// # Errors
///
/// Fails unless `qm.bits == 3` and `qm.group_size == 32`.
pub fn pack_row_q3s(qm: &QuantizedMatrix, row: usize) -> Result<Vec<BlockQ3S>, QuantError> {
    row_groups(qm, 3)?;
    let gpr = qm.groups_per_row();
    let codes = &qm.codes[row * qm.cols..(row + 1) * qm.cols];
    Ok((0..gpr)
        .map(|g| {
            let c = &codes[g * QK..(g + 1) * QK];
            let mut qlo = [0u8; QK / 4];
            let mut qhi = [0u8; QK / 8];
            for (j, q) in qlo.iter_mut().enumerate() {
                *q = (c[j] & 0x3)
                    | ((c[8 + j] & 0x3) << 2)
                    | ((c[16 + j] & 0x3) << 4)
                    | ((c[24 + j] & 0x3) << 6);
            }
            for (j, &code) in c.iter().enumerate() {
                if code & 0x4 != 0 {
                    qhi[j / 8] |= 1 << (j % 8);
                }
            }
            BlockQ3S {
                d: qm.scales[row * gpr + g],
                qlo,
                qhi,
            }
        })
        .collect())
}

/// Unpacks a `Q3S` block to centered codes `code - 4 ∈ [-4, 3]`.
///
/// This is deliberately the multi-step decode (low bits, then OR in the high
/// bit from the mask) whose cost the paper attributes llama.cpp's 3-bit
/// slowdown to.
pub fn unpack_q3s(b: &BlockQ3S, out: &mut [i8; QK]) {
    for f in 0..4 {
        for j in 0..QK / 4 {
            out[8 * f + j] = ((b.qlo[j] >> (2 * f)) & 0x3) as i8;
        }
    }
    for (j, o) in out.iter_mut().enumerate() {
        let hi = (b.qhi[j / 8] >> (j % 8)) & 1;
        *o |= (hi << 2) as i8;
        *o -= 4;
    }
}

/// Packs one row of a 1-bit [`QuantizedMatrix`] into sign-bit blocks.
///
/// # Errors
///
/// Fails unless `qm.bits == 1` and `qm.group_size == 32`.
pub fn pack_row_q1_0(qm: &QuantizedMatrix, row: usize) -> Result<Vec<BlockQ1_0>, QuantError> {
    row_groups(qm, 1)?;
    let gpr = qm.groups_per_row();
    let codes = &qm.codes[row * qm.cols..(row + 1) * qm.cols];
    Ok((0..gpr)
        .map(|g| {
            let c = &codes[g * QK..(g + 1) * QK];
            let mut qs = [0u8; QK / 8];
            for (j, &code) in c.iter().enumerate() {
                if code != 0 {
                    qs[j / 8] |= 1 << (j % 8);
                }
            }
            BlockQ1_0 {
                d: qm.scales[row * gpr + g],
                qs,
            }
        })
        .collect())
}

/// Unpacks a `Q1_0` block to doubled centered codes `2*code - 1 ∈ {-1, 1}`.
///
/// Centered 1-bit codes are `±0.5`; doubling keeps them integral for `i8`
/// arithmetic, so callers must halve the scale (`d/2`) when accumulating.
pub fn unpack_q1_0(b: &BlockQ1_0, out: &mut [i8; QK]) {
    for (j, o) in out.iter_mut().enumerate() {
        let bit = (b.qs[j / 8] >> (j % 8)) & 1;
        *o = (2 * bit as i8) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn;

    fn weights(cols: usize) -> Vec<f32> {
        (0..cols).map(|i| ((i as f32) * 0.71).sin() * 1.4).collect()
    }

    fn check_roundtrip(bits: u8) {
        let cols = 128;
        let w = weights(cols);
        let qm = rtn::quantize(&w, 1, cols, bits, QK).unwrap();
        let reference = qm.dequantize();
        let mut got = vec![0.0f32; cols];
        match bits {
            4 => {
                for (g, b) in pack_row_q4_0(&qm, 0).unwrap().iter().enumerate() {
                    let mut codes = [0i8; QK];
                    unpack_q4_0(b, &mut codes);
                    for (j, &c) in codes.iter().enumerate() {
                        got[g * QK + j] = b.d * c as f32;
                    }
                }
            }
            3 => {
                for (g, b) in pack_row_q3s(&qm, 0).unwrap().iter().enumerate() {
                    let mut codes = [0i8; QK];
                    unpack_q3s(b, &mut codes);
                    for (j, &c) in codes.iter().enumerate() {
                        got[g * QK + j] = b.d * c as f32;
                    }
                }
            }
            2 => {
                for (g, b) in pack_row_q2_0(&qm, 0).unwrap().iter().enumerate() {
                    let mut codes = [0i8; QK];
                    unpack_q2_0(b, &mut codes);
                    for (j, &c) in codes.iter().enumerate() {
                        got[g * QK + j] = b.d * c as f32;
                    }
                }
            }
            1 => {
                for (g, b) in pack_row_q1_0(&qm, 0).unwrap().iter().enumerate() {
                    let mut codes = [0i8; QK];
                    unpack_q1_0(b, &mut codes);
                    for (j, &c) in codes.iter().enumerate() {
                        got[g * QK + j] = b.d * 0.5 * c as f32;
                    }
                }
            }
            _ => unreachable!(),
        }
        for (k, (&r, &g)) in reference.iter().zip(&got).enumerate() {
            assert!((r - g).abs() < 1e-6, "bits={bits} k={k}: {r} vs {g}");
        }
    }

    #[test]
    fn q4_pack_unpack_matches_dequant() {
        check_roundtrip(4);
    }

    #[test]
    fn q3_pack_unpack_matches_dequant() {
        check_roundtrip(3);
    }

    #[test]
    fn q2_pack_unpack_matches_dequant() {
        check_roundtrip(2);
    }

    #[test]
    fn q1_pack_unpack_matches_dequant() {
        check_roundtrip(1);
    }

    #[test]
    fn q8_roundtrip_error_bounded() {
        let src = weights(96);
        let blocks = quantize_q8_0(&src);
        assert_eq!(blocks.len(), 3);
        let back = dequantize_q8_0(&blocks);
        for (bi, b) in blocks.iter().enumerate() {
            for j in 0..QK {
                let i = bi * QK + j;
                assert!((src[i] - back[i]).abs() <= b.d * 0.5 + 1e-7);
            }
        }
    }

    #[test]
    fn format_bit_mismatch_rejected() {
        let w = weights(32);
        let qm = rtn::quantize(&w, 1, 32, 2, QK).unwrap();
        assert!(pack_row_q4_0(&qm, 0).is_err());
        assert!(pack_row_q3s(&qm, 0).is_err());
        assert!(pack_row_q1_0(&qm, 0).is_err());
        assert!(pack_row_q2_0(&qm, 0).is_ok());
    }

    #[test]
    fn group_size_mismatch_rejected() {
        let w = weights(64);
        let qm = rtn::quantize(&w, 1, 64, 4, 64).unwrap();
        assert!(pack_row_q4_0(&qm, 0).is_err());
    }
}
