//! Portable scalar reference implementations of the T-MAC SIMD primitives.
//!
//! These functions define the *semantics* that the AVX2/NEON backends must
//! match bit-for-bit (for integer ops) or within floating-point reassociation
//! tolerance (for `f32` reductions). They double as the fallback backend on
//! CPUs without SIMD support and as the oracle for backend unit tests.

/// Looks up `indices` in a 16-entry signed byte `table`, writing to `out`.
///
/// This is the portable equivalent of one `PSHUFB`/`TBL` lookup per element
/// (paper Table 1). Indices must be `< 16`; like `PSHUFB` with the high bit
/// clear, no masking is applied here and an out-of-range index is a caller
/// bug.
///
/// # Panics
///
/// Panics if `indices.len() != out.len()` or if any index is `>= 16`.
pub fn tbl16(table: &[i8; 16], indices: &[u8], out: &mut [i8]) {
    assert_eq!(indices.len(), out.len(), "tbl16 length mismatch");
    for (o, &i) in out.iter_mut().zip(indices) {
        assert!(i < 16, "tbl16 index {i} out of range");
        *o = table[i as usize];
    }
}

/// Rounding average of two unsigned bytes: `(a + b + 1) >> 1`.
///
/// Matches `_mm256_avg_epu8` / `vrhaddq_u8` exactly. This is the building
/// block of fast 8-bit aggregation (paper §4): a balanced binary tree of
/// `avg_u8` over `2^t` values computes `round(sum / 2^t)` up to an
/// accumulated rounding error of at most `t`.
#[inline]
pub fn avg_u8(a: u8, b: u8) -> u8 {
    ((a as u16 + b as u16 + 1) >> 1) as u8
}

/// Unpacks interleaved nibbles: low nibbles to `lo`, high nibbles to `hi`.
///
/// This is the unpack that T-MAC's *weight interleaving* (paper Figure 4)
/// enables: after the offline interleave, a plain `AND 0x0F` yields rows
/// `[0, n)` and a `SHR 4; AND 0x0F` yields rows `[n, 2n)`, already in order.
///
/// # Panics
///
/// Panics if `lo` or `hi` differ in length from `bytes`.
pub fn unpack_nibbles(bytes: &[u8], lo: &mut [u8], hi: &mut [u8]) {
    assert_eq!(bytes.len(), lo.len(), "unpack_nibbles lo length");
    assert_eq!(bytes.len(), hi.len(), "unpack_nibbles hi length");
    for ((&b, l), h) in bytes.iter().zip(lo.iter_mut()).zip(hi.iter_mut()) {
        *l = b & 0x0F;
        *h = b >> 4;
    }
}

/// Packs two nibble arrays into bytes (inverse of [`unpack_nibbles`]).
///
/// # Panics
///
/// Panics on length mismatch or if any nibble is `>= 16`.
pub fn pack_nibbles(lo: &[u8], hi: &[u8], out: &mut [u8]) {
    assert_eq!(lo.len(), hi.len(), "pack_nibbles length");
    assert_eq!(lo.len(), out.len(), "pack_nibbles out length");
    for ((&l, &h), o) in lo.iter().zip(hi).zip(out.iter_mut()) {
        assert!(l < 16 && h < 16, "pack_nibbles nibble out of range");
        *o = l | (h << 4);
    }
}

/// Dot product of two `f32` slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_f32 length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sum of an `f32` slice.
pub fn sum_f32(v: &[f32]) -> f32 {
    v.iter().sum()
}

/// Maximum absolute value of an `f32` slice (0.0 for an empty slice).
pub fn max_abs_f32(v: &[f32]) -> f32 {
    v.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// `y[i] += a * x[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy_f32(y: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy_f32 length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Maximum value of an `f32` slice (`-inf` for an empty slice).
pub fn max_f32(v: &[f32]) -> f32 {
    v.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))
}

/// `y[i] += x[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add_f32(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "add_f32 length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += xi;
    }
}

/// Elementwise product: `out[i] = a[i] * b[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_f32(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "mul_f32 length mismatch");
    assert_eq!(out.len(), a.len(), "mul_f32 out length mismatch");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// In-place elementwise product: `y[i] *= x[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_assign_f32(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "mul_assign_f32 length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi *= xi;
    }
}

/// Fused normalization apply: `out[i] = (x[i] * s) * g[i]` (the RMSNorm
/// inner loop; the evaluation order is part of the contract so SIMD
/// backends can match it bit-for-bit).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn scaled_mul_f32(out: &mut [f32], x: &[f32], g: &[f32], s: f32) {
    assert_eq!(x.len(), g.len(), "scaled_mul_f32 length mismatch");
    assert_eq!(out.len(), x.len(), "scaled_mul_f32 out length mismatch");
    for ((o, &xi), &gi) in out.iter_mut().zip(x).zip(g) {
        *o = (xi * s) * gi;
    }
}

/// `v[i] *= s` for all `i`.
pub fn scale_f32(v: &mut [f32], s: f32) {
    for x in v {
        *x *= s;
    }
}

/// Signed 8-bit dot product with `i32` accumulation.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8 length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as i32) * (y as i32))
        .sum()
}

/// `y[i] += a * (x[i] as f32)`: accumulates a scaled `i8` vector into an
/// `f32` accumulator (the attention value-gather over a quantized KV
/// cache). Per element this is one rounded multiply then one rounded add —
/// the evaluation order is part of the contract so the SIMD backends match
/// it bit-for-bit (no FMA contraction).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy_f32_i8(y: &mut [f32], a: f32, x: &[i8]) {
    assert_eq!(y.len(), x.len(), "axpy_f32_i8 length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * (xi as f32);
    }
}

/// `y[i] = (y[i] * c) + a * (x[i] as f32)`: the online-softmax rescale +
/// accumulate step in one sweep. When a streaming softmax meets a new
/// running maximum, the state accumulated so far must shrink by `c =
/// exp(m_old - m_new)` while the new value lands with weight `a`. Three
/// rounded multiplies/adds in this exact order (see [`axpy_f32_i8`] for the
/// bit-compatibility contract).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn scale_axpy_f32_i8(y: &mut [f32], c: f32, a: f32, x: &[i8]) {
    assert_eq!(y.len(), x.len(), "scale_axpy_f32_i8 length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = (*yi * c) + a * (xi as f32);
    }
}

/// Applies a rotary-embedding rotation to interleaved `(a, b)` pairs using
/// *duplicated-pair* tables: `cos_dup[2i] == cos_dup[2i+1] == cos θ_i`, and
/// `sin_dup` carries the sign pattern `[-sin θ_i, +sin θ_i]`. Each pair maps
/// to `(a·cos - b·sin, b·cos + a·sin)`, evaluated as `v[j]·cos_dup[j] +
/// v[j^1]·sin_dup[j]` — two rounded multiplies and one rounded add per
/// element, the order the SIMD backends replicate bit-for-bit.
///
/// # Panics
///
/// Panics on length mismatch or an odd vector length.
pub fn rope_apply_f32(v: &mut [f32], cos_dup: &[f32], sin_dup: &[f32]) {
    assert_eq!(v.len(), cos_dup.len(), "rope_apply_f32 cos length");
    assert_eq!(v.len(), sin_dup.len(), "rope_apply_f32 sin length");
    assert!(v.len().is_multiple_of(2), "rope_apply_f32 needs pairs");
    let mut i = 0;
    while i < v.len() {
        let (a, b) = (v[i], v[i + 1]);
        v[i] = a * cos_dup[i] + b * sin_dup[i];
        v[i + 1] = b * cos_dup[i + 1] + a * sin_dup[i + 1];
        i += 2;
    }
}

/// Quantizes a block of `f32` to `i8` with a symmetric scale `max|x| / 127`.
///
/// Returns the scale; `x ≈ scale * q`. A zero block returns scale `0.0` and
/// all-zero codes. This mirrors llama.cpp's `Q8_0` activation quantization
/// and T-MAC's dynamic *table quantization* (paper §3.3).
///
/// # Panics
///
/// Panics if `src.len() != dst.len()`.
pub fn quantize_i8(src: &[f32], dst: &mut [i8]) -> f32 {
    assert_eq!(src.len(), dst.len(), "quantize_i8 length mismatch");
    let amax = max_abs_f32(src);
    if amax == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    let scale = amax / 127.0;
    let inv = 127.0 / amax;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = (s * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tbl16_basic() {
        let mut table = [0i8; 16];
        for (i, t) in table.iter_mut().enumerate() {
            *t = (i as i8) - 8;
        }
        let idx = [0u8, 15, 7, 8];
        let mut out = [0i8; 4];
        tbl16(&table, &idx, &mut out);
        assert_eq!(out, [-8, 7, -1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tbl16_rejects_large_index() {
        let table = [0i8; 16];
        let mut out = [0i8; 1];
        tbl16(&table, &[16], &mut out);
    }

    #[test]
    fn avg_matches_definition() {
        assert_eq!(avg_u8(0, 0), 0);
        assert_eq!(avg_u8(0, 1), 1); // rounds up
        assert_eq!(avg_u8(255, 255), 255);
        assert_eq!(avg_u8(10, 20), 15);
        assert_eq!(avg_u8(10, 21), 16);
    }

    #[test]
    fn nibble_roundtrip() {
        let lo = [1u8, 2, 3, 15];
        let hi = [4u8, 5, 6, 0];
        let mut packed = [0u8; 4];
        pack_nibbles(&lo, &hi, &mut packed);
        let (mut l2, mut h2) = ([0u8; 4], [0u8; 4]);
        unpack_nibbles(&packed, &mut l2, &mut h2);
        assert_eq!(lo, l2);
        assert_eq!(hi, h2);
    }

    #[test]
    fn quantize_i8_roundtrip_error_bounded() {
        let src: Vec<f32> = (0..32).map(|i| (i as f32 - 16.0) * 0.37).collect();
        let mut q = vec![0i8; 32];
        let s = quantize_i8(&src, &mut q);
        for (x, &qi) in src.iter().zip(&q) {
            let r = s * qi as f32;
            assert!((x - r).abs() <= s * 0.5 + 1e-6, "x={x} r={r} s={s}");
        }
    }

    #[test]
    fn quantize_i8_zero_block() {
        let src = [0.0f32; 8];
        let mut q = [1i8; 8];
        let s = quantize_i8(&src, &mut q);
        assert_eq!(s, 0.0);
        assert!(q.iter().all(|&x| x == 0));
    }

    #[test]
    fn dot_and_axpy() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert_eq!(dot_f32(&a, &b), 32.0);
        let mut y = [1.0f32; 3];
        axpy_f32(&mut y, 2.0, &a);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn dot_i8_signs() {
        let a = [-128i8, 127, 1];
        let b = [1i8, -1, 0];
        assert_eq!(dot_i8(&a, &b), -128 - 127);
    }
}
