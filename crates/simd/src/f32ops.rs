//! Runtime-dispatched `f32` vector operations.
//!
//! These are the convenience entry points used outside the innermost GEMM
//! kernels (normalization layers, attention, reductions). Each call checks
//! the cached CPU-feature flag once and dispatches to the AVX2/NEON backend
//! or the scalar fallback.

use crate::scalar;

/// Dot product of two equal-length `f32` slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// assert_eq!(tmac_simd::f32ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2+FMA support verified by `available()`.
        return unsafe { crate::avx2::dot_f32(a, b) };
    }
    #[cfg(target_arch = "aarch64")]
    if crate::neon::available() {
        // SAFETY: NEON support verified by `available()`.
        return unsafe { crate::neon::dot_f32(a, b) };
    }
    scalar::dot_f32(a, b)
}

/// `y[i] += a * x[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2+FMA support verified by `available()`.
        unsafe { crate::avx2::axpy_f32(y, a, x) };
        return;
    }
    scalar::axpy_f32(y, a, x);
}

/// Sum of all elements.
pub fn sum(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        return unsafe { crate::avx2::sum_f32(v) };
    }
    scalar::sum_f32(v)
}

/// Maximum absolute value (0.0 for an empty slice).
pub fn max_abs(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        return unsafe { crate::avx2::max_abs_f32(v) };
    }
    scalar::max_abs_f32(v)
}

/// `y[i] += x[i]` for all `i` (residual adds). Bit-identical across the
/// SIMD and scalar paths (plain adds, no reassociation).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add(y: &mut [f32], x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::add_f32(y, x) };
        return;
    }
    scalar::add_f32(y, x);
}

/// Elementwise product `out[i] = a[i] * b[i]`. Bit-identical across paths.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul(out: &mut [f32], a: &[f32], b: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::mul_f32(out, a, b) };
        return;
    }
    scalar::mul_f32(out, a, b);
}

/// In-place elementwise product `y[i] *= x[i]`. Bit-identical across paths.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_assign(y: &mut [f32], x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::mul_assign_f32(y, x) };
        return;
    }
    scalar::mul_assign_f32(y, x);
}

/// Fused normalization apply `out[i] = (x[i] * s) * g[i]` (the RMSNorm
/// inner loop). Bit-identical across paths: both evaluate as two rounded
/// multiplies in that order.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn scaled_mul(out: &mut [f32], x: &[f32], g: &[f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::scaled_mul_f32(out, x, g, s) };
        return;
    }
    scalar::scaled_mul_f32(out, x, g, s);
}

/// Maximum element (`-inf` for an empty slice; assumes finite inputs —
/// softmax logits). Bit-identical across paths (max never rounds).
pub fn max(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        return unsafe { crate::avx2::max_f32(v) };
    }
    scalar::max_f32(v)
}

/// Scales every element in place: `v[i] *= s`. Bit-identical across paths.
pub fn scale(v: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::scale_f32(v, s) };
        return;
    }
    scalar::scale_f32(v, s);
}

/// Applies a rotary-embedding rotation to interleaved `(a, b)` pairs from
/// *duplicated-pair* cos/sin tables: `cos_dup` repeats each `cos θ_i` twice
/// and `sin_dup` carries `[-sin θ_i, +sin θ_i]` per pair, so the rotation is
/// three elementwise multiplies/adds with no per-call transcendentals. Bit-
/// identical across the SIMD and scalar paths.
///
/// # Panics
///
/// Panics on length mismatch or an odd vector length.
pub fn rope_apply(v: &mut [f32], cos_dup: &[f32], sin_dup: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::rope_apply_f32(v, cos_dup, sin_dup) };
        return;
    }
    scalar::rope_apply_f32(v, cos_dup, sin_dup);
}

/// Streaming (online) softmax state: the flash-decoding recurrence that
/// turns `softmax(scores) · V` into a single pass over the sequence.
///
/// Feed scores one at a time with [`OnlineSoftmax::push`]; it maintains the
/// running maximum `m` and the running denominator `Σ exp(s_t - m)`, and
/// tells the caller how to fold each new value into an accumulator that it
/// owns: `acc = acc * c + w * x_t`. After the last score, divide the
/// accumulator by [`OnlineSoftmax::denom`]. The result equals the two-pass
/// `softmax` + weighted sum up to floating-point reassociation — the point
/// is that no `seq`-sized score buffer and no second value sweep exist.
///
/// # Examples
///
/// ```
/// use tmac_simd::f32ops::OnlineSoftmax;
///
/// let scores = [0.5f32, 2.0, -1.0, 1.5];
/// let values = [10.0f32, 20.0, 30.0, 40.0];
/// let mut sm = OnlineSoftmax::new();
/// let mut acc = 0.0f32;
/// for (&s, &x) in scores.iter().zip(&values) {
///     let (w, c) = sm.push(s);
///     acc = acc * c + w * x;
/// }
/// let got = acc / sm.denom();
/// // Two-pass reference.
/// let m = 2.0f32;
/// let e: Vec<f32> = scores.iter().map(|s| (s - m).exp()).collect();
/// let want = e.iter().zip(&values).map(|(e, x)| e * x).sum::<f32>() / e.iter().sum::<f32>();
/// assert!((got - want).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OnlineSoftmax {
    max: f32,
    denom: f32,
}

impl OnlineSoftmax {
    /// Fresh state: no scores seen.
    pub fn new() -> Self {
        OnlineSoftmax {
            max: f32::NEG_INFINITY,
            denom: 0.0,
        }
    }

    /// Absorbs one score and returns `(w, c)`: the weight for the new
    /// value and the rescale factor for everything accumulated so far
    /// (`acc = acc * c + w * x`).
    ///
    /// Exactly one of the two is non-trivial per step: while the running
    /// maximum stands, `c == 1.0` and `w = exp(s - m)`; when `s` becomes
    /// the new maximum, `w == 1.0` and `c = exp(m_old - s)` shrinks the
    /// history (the first push takes this branch with `c == 0.0`).
    pub fn push(&mut self, s: f32) -> (f32, f32) {
        if s <= self.max {
            let w = (s - self.max).exp();
            self.denom += w;
            (w, 1.0)
        } else {
            let c = (self.max - s).exp();
            self.denom = self.denom * c + 1.0;
            self.max = s;
            (1.0, c)
        }
    }

    /// The running softmax denominator `Σ exp(s_t - m)` (≥ 1 once any
    /// score has been pushed).
    pub fn denom(&self) -> f32 {
        self.denom
    }

    /// The running maximum.
    pub fn max_seen(&self) -> f32 {
        self.max
    }
}

impl Default for OnlineSoftmax {
    fn default() -> Self {
        Self::new()
    }
}

/// Normalized mean squared error between `got` and a `reference`.
///
/// `NMSE = Σ (got - ref)^2 / Σ ref^2`. This is the error metric of the
/// paper's Table 3. Returns 0.0 when the reference is all zeros and the
/// outputs match; `f32::INFINITY` when the reference is all zeros but the
/// outputs differ.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn nmse(got: &[f32], reference: &[f32]) -> f64 {
    assert_eq!(got.len(), reference.len(), "nmse length mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&g, &r) in got.iter().zip(reference) {
        let d = (g - r) as f64;
        num += d * d;
        den += (r as f64) * (r as f64);
    }
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatched_ops_match_scalar_oracle() {
        let a: Vec<f32> = (0..257).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..257).map(|i| ((i * 5) % 11) as f32 - 5.0).collect();
        assert!((dot(&a, &b) - crate::scalar::dot_f32(&a, &b)).abs() < 1e-3);
        assert!((sum(&a) - crate::scalar::sum_f32(&a)).abs() < 1e-3);
        assert_eq!(max_abs(&a), crate::scalar::max_abs_f32(&a));
    }

    /// The elementwise ops promise *bit* compatibility between the
    /// dispatched (SIMD) and scalar paths — they are used in paths where
    /// batched and sequential execution must agree exactly.
    #[test]
    fn elementwise_ops_bit_identical_to_scalar() {
        let a: Vec<f32> = (0..133).map(|i| ((i as f32) * 0.37).sin() * 3.7).collect();
        let b: Vec<f32> = (0..133).map(|i| ((i as f32) * 0.61).cos() * 1.9).collect();
        let s = 0.731f32;

        let mut y1 = a.clone();
        let mut y2 = a.clone();
        add(&mut y1, &b);
        crate::scalar::add_f32(&mut y2, &b);
        assert_eq!(y1, y2, "add");

        let mut o1 = vec![0f32; a.len()];
        let mut o2 = vec![0f32; a.len()];
        mul(&mut o1, &a, &b);
        crate::scalar::mul_f32(&mut o2, &a, &b);
        assert_eq!(o1, o2, "mul");

        scaled_mul(&mut o1, &a, &b, s);
        crate::scalar::scaled_mul_f32(&mut o2, &a, &b, s);
        assert_eq!(o1, o2, "scaled_mul");

        let mut m1 = a.clone();
        let mut m2 = a.clone();
        mul_assign(&mut m1, &b);
        crate::scalar::mul_assign_f32(&mut m2, &b);
        assert_eq!(m1, m2, "mul_assign");

        let mut v1 = a.clone();
        let mut v2 = a.clone();
        scale(&mut v1, s);
        crate::scalar::scale_f32(&mut v2, s);
        assert_eq!(v1, v2, "scale");

        assert_eq!(max(&a), crate::scalar::max_f32(&a), "max");
        assert_eq!(max(&[]), f32::NEG_INFINITY);
        assert_eq!(max(&a[..3]), crate::scalar::max_f32(&a[..3]), "short max");
    }

    #[test]
    fn nmse_properties() {
        let r = [1.0f32, -2.0, 3.0];
        assert_eq!(nmse(&r, &r), 0.0);
        let worse = [1.5f32, -2.0, 3.0];
        let better = [1.1f32, -2.0, 3.0];
        assert!(nmse(&worse, &r) > nmse(&better, &r));
        assert_eq!(nmse(&[0.0], &[0.0]), 0.0);
        assert_eq!(nmse(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn online_softmax_matches_two_pass() {
        // A mix of ascending and descending runs exercises both branches.
        let scores: Vec<f32> = (0..47)
            .map(|i| ((i as f32) * 0.83).sin() * 4.0 + ((i as f32) * 0.11).cos())
            .collect();
        let values: Vec<f32> = (0..47).map(|i| ((i as f32) * 0.57).cos() * 3.0).collect();

        let mut sm = OnlineSoftmax::new();
        let mut acc = 0.0f32;
        for (&s, &x) in scores.iter().zip(&values) {
            let (w, c) = sm.push(s);
            acc = acc * c + w * x;
        }
        let got = acc / sm.denom();

        let m = crate::scalar::max_f32(&scores);
        let e: Vec<f32> = scores.iter().map(|s| (s - m).exp()).collect();
        let want = e.iter().zip(&values).map(|(e, x)| e * x).sum::<f32>() / e.iter().sum::<f32>();
        assert!((got - want).abs() < 1e-4, "got {got} want {want}");
        assert_eq!(sm.max_seen(), m);
        assert!(sm.denom() >= 1.0);
    }

    #[test]
    fn online_softmax_first_push_zeroes_history() {
        let mut sm = OnlineSoftmax::new();
        let (w, c) = sm.push(-3.0);
        assert_eq!((w, c), (1.0, 0.0));
        assert_eq!(sm.denom(), 1.0);
    }

    #[test]
    fn rope_apply_matches_legacy_pair_rotation() {
        // rope_apply with duplicated tables must equal the textbook
        // (a cos - b sin, a sin + b cos) rotation bit-for-bit.
        let n = 16;
        let v0: Vec<f32> = (0..n).map(|i| (i as f32) * 0.3 - 2.0).collect();
        let mut cos_dup = vec![0f32; n];
        let mut sin_dup = vec![0f32; n];
        let mut want = v0.clone();
        for i in 0..n / 2 {
            let (s, c) = ((i as f32) * 0.9 + 0.1).sin_cos();
            cos_dup[2 * i] = c;
            cos_dup[2 * i + 1] = c;
            sin_dup[2 * i] = -s;
            sin_dup[2 * i + 1] = s;
            let (a, b) = (want[2 * i], want[2 * i + 1]);
            want[2 * i] = a * c - b * s;
            want[2 * i + 1] = a * s + b * c;
        }
        let mut got = v0;
        rope_apply(&mut got, &cos_dup, &sin_dup);
        assert_eq!(got, want);
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0f32, -2.0, 0.5];
        scale(&mut v, 2.0);
        assert_eq!(v, vec![2.0, -4.0, 1.0]);
    }
}
