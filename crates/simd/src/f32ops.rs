//! Runtime-dispatched `f32` vector operations.
//!
//! These are the convenience entry points used outside the innermost GEMM
//! kernels (normalization layers, attention, reductions). Each call checks
//! the cached CPU-feature flag once and dispatches to the AVX2/NEON backend
//! or the scalar fallback.

use crate::scalar;

/// Dot product of two equal-length `f32` slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// assert_eq!(tmac_simd::f32ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2+FMA support verified by `available()`.
        return unsafe { crate::avx2::dot_f32(a, b) };
    }
    #[cfg(target_arch = "aarch64")]
    if crate::neon::available() {
        // SAFETY: NEON support verified by `available()`.
        return unsafe { crate::neon::dot_f32(a, b) };
    }
    scalar::dot_f32(a, b)
}

/// `y[i] += a * x[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2+FMA support verified by `available()`.
        unsafe { crate::avx2::axpy_f32(y, a, x) };
        return;
    }
    scalar::axpy_f32(y, a, x);
}

/// Sum of all elements.
pub fn sum(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        return unsafe { crate::avx2::sum_f32(v) };
    }
    scalar::sum_f32(v)
}

/// Maximum absolute value (0.0 for an empty slice).
pub fn max_abs(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        return unsafe { crate::avx2::max_abs_f32(v) };
    }
    scalar::max_abs_f32(v)
}

/// Scales every element in place: `v[i] *= s`.
pub fn scale(v: &mut [f32], s: f32) {
    for x in v {
        *x *= s;
    }
}

/// Normalized mean squared error between `got` and a `reference`.
///
/// `NMSE = Σ (got - ref)^2 / Σ ref^2`. This is the error metric of the
/// paper's Table 3. Returns 0.0 when the reference is all zeros and the
/// outputs match; `f32::INFINITY` when the reference is all zeros but the
/// outputs differ.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn nmse(got: &[f32], reference: &[f32]) -> f64 {
    assert_eq!(got.len(), reference.len(), "nmse length mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&g, &r) in got.iter().zip(reference) {
        let d = (g - r) as f64;
        num += d * d;
        den += (r as f64) * (r as f64);
    }
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatched_ops_match_scalar_oracle() {
        let a: Vec<f32> = (0..257).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..257).map(|i| ((i * 5) % 11) as f32 - 5.0).collect();
        assert!((dot(&a, &b) - crate::scalar::dot_f32(&a, &b)).abs() < 1e-3);
        assert!((sum(&a) - crate::scalar::sum_f32(&a)).abs() < 1e-3);
        assert_eq!(max_abs(&a), crate::scalar::max_abs_f32(&a));
    }

    #[test]
    fn nmse_properties() {
        let r = [1.0f32, -2.0, 3.0];
        assert_eq!(nmse(&r, &r), 0.0);
        let worse = [1.5f32, -2.0, 3.0];
        let better = [1.1f32, -2.0, 3.0];
        assert!(nmse(&worse, &r) > nmse(&better, &r));
        assert_eq!(nmse(&[0.0], &[0.0]), 0.0);
        assert_eq!(nmse(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0f32, -2.0, 0.5];
        scale(&mut v, 2.0);
        assert_eq!(v, vec![2.0, -4.0, 1.0]);
    }
}
