//! Runtime-dispatched `f32` vector operations.
//!
//! These are the convenience entry points used outside the innermost GEMM
//! kernels (normalization layers, attention, reductions). Each call checks
//! the cached CPU-feature flag once and dispatches to the AVX2/NEON backend
//! or the scalar fallback.

use crate::scalar;

/// Dot product of two equal-length `f32` slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// assert_eq!(tmac_simd::f32ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2+FMA support verified by `available()`.
        return unsafe { crate::avx2::dot_f32(a, b) };
    }
    #[cfg(target_arch = "aarch64")]
    if crate::neon::available() {
        // SAFETY: NEON support verified by `available()`.
        return unsafe { crate::neon::dot_f32(a, b) };
    }
    scalar::dot_f32(a, b)
}

/// `y[i] += a * x[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2+FMA support verified by `available()`.
        unsafe { crate::avx2::axpy_f32(y, a, x) };
        return;
    }
    scalar::axpy_f32(y, a, x);
}

/// Sum of all elements.
pub fn sum(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        return unsafe { crate::avx2::sum_f32(v) };
    }
    scalar::sum_f32(v)
}

/// Maximum absolute value (0.0 for an empty slice).
pub fn max_abs(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        return unsafe { crate::avx2::max_abs_f32(v) };
    }
    scalar::max_abs_f32(v)
}

/// `y[i] += x[i]` for all `i` (residual adds). Bit-identical across the
/// SIMD and scalar paths (plain adds, no reassociation).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add(y: &mut [f32], x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::add_f32(y, x) };
        return;
    }
    scalar::add_f32(y, x);
}

/// Elementwise product `out[i] = a[i] * b[i]`. Bit-identical across paths.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul(out: &mut [f32], a: &[f32], b: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::mul_f32(out, a, b) };
        return;
    }
    scalar::mul_f32(out, a, b);
}

/// In-place elementwise product `y[i] *= x[i]`. Bit-identical across paths.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mul_assign(y: &mut [f32], x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::mul_assign_f32(y, x) };
        return;
    }
    scalar::mul_assign_f32(y, x);
}

/// Fused normalization apply `out[i] = (x[i] * s) * g[i]` (the RMSNorm
/// inner loop). Bit-identical across paths: both evaluate as two rounded
/// multiplies in that order.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn scaled_mul(out: &mut [f32], x: &[f32], g: &[f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::scaled_mul_f32(out, x, g, s) };
        return;
    }
    scalar::scaled_mul_f32(out, x, g, s);
}

/// Maximum element (`-inf` for an empty slice; assumes finite inputs —
/// softmax logits). Bit-identical across paths (max never rounds).
pub fn max(v: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        return unsafe { crate::avx2::max_f32(v) };
    }
    scalar::max_f32(v)
}

/// Scales every element in place: `v[i] *= s`. Bit-identical across paths.
pub fn scale(v: &mut [f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::scale_f32(v, s) };
        return;
    }
    scalar::scale_f32(v, s);
}

/// Normalized mean squared error between `got` and a `reference`.
///
/// `NMSE = Σ (got - ref)^2 / Σ ref^2`. This is the error metric of the
/// paper's Table 3. Returns 0.0 when the reference is all zeros and the
/// outputs match; `f32::INFINITY` when the reference is all zeros but the
/// outputs differ.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn nmse(got: &[f32], reference: &[f32]) -> f64 {
    assert_eq!(got.len(), reference.len(), "nmse length mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&g, &r) in got.iter().zip(reference) {
        let d = (g - r) as f64;
        num += d * d;
        den += (r as f64) * (r as f64);
    }
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatched_ops_match_scalar_oracle() {
        let a: Vec<f32> = (0..257).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..257).map(|i| ((i * 5) % 11) as f32 - 5.0).collect();
        assert!((dot(&a, &b) - crate::scalar::dot_f32(&a, &b)).abs() < 1e-3);
        assert!((sum(&a) - crate::scalar::sum_f32(&a)).abs() < 1e-3);
        assert_eq!(max_abs(&a), crate::scalar::max_abs_f32(&a));
    }

    /// The elementwise ops promise *bit* compatibility between the
    /// dispatched (SIMD) and scalar paths — they are used in paths where
    /// batched and sequential execution must agree exactly.
    #[test]
    fn elementwise_ops_bit_identical_to_scalar() {
        let a: Vec<f32> = (0..133).map(|i| ((i as f32) * 0.37).sin() * 3.7).collect();
        let b: Vec<f32> = (0..133).map(|i| ((i as f32) * 0.61).cos() * 1.9).collect();
        let s = 0.731f32;

        let mut y1 = a.clone();
        let mut y2 = a.clone();
        add(&mut y1, &b);
        crate::scalar::add_f32(&mut y2, &b);
        assert_eq!(y1, y2, "add");

        let mut o1 = vec![0f32; a.len()];
        let mut o2 = vec![0f32; a.len()];
        mul(&mut o1, &a, &b);
        crate::scalar::mul_f32(&mut o2, &a, &b);
        assert_eq!(o1, o2, "mul");

        scaled_mul(&mut o1, &a, &b, s);
        crate::scalar::scaled_mul_f32(&mut o2, &a, &b, s);
        assert_eq!(o1, o2, "scaled_mul");

        let mut m1 = a.clone();
        let mut m2 = a.clone();
        mul_assign(&mut m1, &b);
        crate::scalar::mul_assign_f32(&mut m2, &b);
        assert_eq!(m1, m2, "mul_assign");

        let mut v1 = a.clone();
        let mut v2 = a.clone();
        scale(&mut v1, s);
        crate::scalar::scale_f32(&mut v2, s);
        assert_eq!(v1, v2, "scale");

        assert_eq!(max(&a), crate::scalar::max_f32(&a), "max");
        assert_eq!(max(&[]), f32::NEG_INFINITY);
        assert_eq!(max(&a[..3]), crate::scalar::max_f32(&a[..3]), "short max");
    }

    #[test]
    fn nmse_properties() {
        let r = [1.0f32, -2.0, 3.0];
        assert_eq!(nmse(&r, &r), 0.0);
        let worse = [1.5f32, -2.0, 3.0];
        let better = [1.1f32, -2.0, 3.0];
        assert!(nmse(&worse, &r) > nmse(&better, &r));
        assert_eq!(nmse(&[0.0], &[0.0]), 0.0);
        assert_eq!(nmse(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0f32, -2.0, 0.5];
        scale(&mut v, 2.0);
        assert_eq!(v, vec![2.0, -4.0, 1.0]);
    }
}
