//! AArch64 NEON backend.
//!
//! Implements the paper's Table 1 mapping for ARM: table look-up via
//! `vqtbl1q_u8` (`TBL`) and fast aggregation via `vrhaddq_u8`. NEON registers
//! are 128 bits wide, so a 16-entry `i8` table fits exactly in one register
//! and one `TBL` performs 16 lookups (paper §4: "The bit width of ARM NEON is
//! 128, which can precisely accommodate the entire table of g = 4").
//!
//! This module compiles only on `aarch64` targets. The x86-64 evaluation host
//! exercises the AVX2 backend; this code path carries the identical kernel
//! structure for ARM edge devices (Raspberry Pi 5, Jetson, Apple Silicon).

use std::arch::aarch64::*;
use std::sync::OnceLock;

/// Number of parallel byte lanes of this backend.
pub const LANES: usize = 16;

/// Returns `true` if the running CPU supports NEON.
pub fn available() -> bool {
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| std::arch::is_aarch64_feature_detected!("neon"))
}

/// Loads a 16-entry signed byte table into a register.
#[inline]
#[target_feature(enable = "neon")]
pub fn load_table16(table: &[i8; 16]) -> int8x16_t {
    // SAFETY: `table` is exactly 16 readable bytes.
    unsafe { vld1q_s8(table.as_ptr()) }
}

/// 16-way parallel 8-bit table lookup (`TBL`).
#[inline]
#[target_feature(enable = "neon")]
pub fn tbl16(table: int8x16_t, idx: uint8x16_t) -> int8x16_t {
    vreinterpretq_s8_u8(vqtbl1q_u8(vreinterpretq_u8_s8(table), idx))
}

/// Unpacks 16 nibble-packed bytes into two index vectors (low, high).
///
/// With T-MAC's interleaved layout (paper Figure 4), `lo` holds rows
/// `0..16` and `hi` rows `16..32` directly.
#[inline]
#[target_feature(enable = "neon")]
pub fn unpack_nibbles_interleaved(bytes: uint8x16_t) -> (uint8x16_t, uint8x16_t) {
    let mask = vdupq_n_u8(0x0F);
    (vandq_u8(bytes, mask), vshrq_n_u8(bytes, 4))
}

/// Rounding average of unsigned bytes (`vrhaddq_u8`), the fast aggregation
/// primitive (paper Table 1).
#[inline]
#[target_feature(enable = "neon")]
pub fn avg_u8(a: uint8x16_t, b: uint8x16_t) -> uint8x16_t {
    vrhaddq_u8(a, b)
}

/// Widens 16 `i8` lanes and adds them into two 8-lane `i16` accumulators.
#[inline]
#[target_feature(enable = "neon")]
pub fn accumulate_i8_into_i16(
    acc: (int16x8_t, int16x8_t),
    vals: int8x16_t,
) -> (int16x8_t, int16x8_t) {
    (
        vaddw_s8(acc.0, vget_low_s8(vals)),
        vaddw_high_s8(acc.1, vals),
    )
}

/// Dot product of two equal-length `f32` slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[target_feature(enable = "neon")]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_f32 length mismatch");
    let n = a.len();
    let mut acc = vdupq_n_f32(0.0);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: both slices have at least `i + 4` elements.
        let (x, y) = unsafe { (vld1q_f32(a.as_ptr().add(i)), vld1q_f32(b.as_ptr().add(i))) };
        acc = vfmaq_f32(acc, x, y);
        i += 4;
    }
    let mut sum = vaddvq_f32(acc);
    while i < n {
        sum += a[i] * b[i];
        i += 1;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar;

    #[test]
    fn tbl16_matches_scalar() {
        if !available() {
            return;
        }
        let mut table = [0i8; 16];
        for (i, t) in table.iter_mut().enumerate() {
            *t = (i as i8) * 5 - 40;
        }
        let idx: Vec<u8> = (0..16).map(|i| (i * 7) % 16).collect();
        // SAFETY: NEON checked above.
        let got = unsafe {
            let t = load_table16(&table);
            let iv = vld1q_u8(idx.as_ptr());
            let r = tbl16(t, iv);
            let mut out = [0i8; 16];
            vst1q_s8(out.as_mut_ptr(), r);
            out
        };
        let mut want = vec![0i8; 16];
        scalar::tbl16(&table, &idx, &mut want);
        assert_eq!(got.to_vec(), want);
    }
}
