//! Runtime-dispatched `i8` vector operations.
//!
//! Used by the llama.cpp-style baseline (`tmac-baseline`): activation
//! quantization to `Q8_0`-style blocks and signed 8-bit dot products, and by
//! T-MAC's table quantization (paper §3.3).

use crate::scalar;

/// Signed 8-bit dot product with `i32` accumulation.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// assert_eq!(tmac_simd::i8ops::dot(&[2, -3], &[4, 5]), -7);
/// ```
pub fn dot(a: &[i8], b: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        return unsafe { crate::avx2::dot_i8(a, b) };
    }
    scalar::dot_i8(a, b)
}

/// Signed 8-bit dot product via the `maddubs` sign trick where available.
///
/// Faster than [`dot`] on AVX2 hosts but requires every element of both
/// slices to be `> -128` — quantized codes from [`quantize`] are clamped to
/// `-127..=127`, so attention over a quantized KV cache always satisfies
/// this. The scalar fallback computes the identical integer sum, so the
/// result does not depend on the host ISA.
///
/// # Panics
///
/// Panics if the slices differ in length; AVX2 debug builds also panic on
/// `-128` inputs.
pub fn dot_maddubs(a: &[i8], b: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        return unsafe { crate::avx2::dot_i8_maddubs(a, b) };
    }
    scalar::dot_i8(a, b)
}

/// `y[i] += a * (x[i] as f32)`: scaled `i8` accumulate into `f32` (the
/// attention value-gather over a quantized KV cache). Bit-identical across
/// the SIMD and scalar paths (multiply then add, no FMA).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(y: &mut [f32], a: f32, x: &[i8]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::axpy_f32_i8(y, a, x) };
        return;
    }
    scalar::axpy_f32_i8(y, a, x);
}

/// `y[i] = (y[i] * c) + a * (x[i] as f32)`: the streaming-softmax rescale +
/// accumulate step (see [`crate::f32ops::OnlineSoftmax`]), fused into one
/// sweep. Bit-identical across the SIMD and scalar paths.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn scale_axpy(y: &mut [f32], c: f32, a: f32, x: &[i8]) {
    #[cfg(target_arch = "x86_64")]
    if crate::avx2::available() {
        // SAFETY: AVX2 support verified by `available()`.
        unsafe { crate::avx2::scale_axpy_f32_i8(y, c, a, x) };
        return;
    }
    scalar::scale_axpy_f32_i8(y, c, a, x);
}

/// Quantizes `src` to `i8` with symmetric scale `max|x| / 127`.
///
/// Returns the scale such that `src[i] ≈ scale * dst[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn quantize(src: &[f32], dst: &mut [i8]) -> f32 {
    scalar::quantize_i8(src, dst)
}

/// Quantizes `src` into blocks of `block` values, producing per-block scales.
///
/// The layout matches llama.cpp's `Q8_0`: `dst` holds `src.len()` codes,
/// `scales` holds `src.len() / block` scales.
///
/// # Panics
///
/// Panics if `src.len()` is not a multiple of `block`, or output sizes
/// mismatch.
pub fn quantize_blocks(src: &[f32], block: usize, dst: &mut [i8], scales: &mut [f32]) {
    assert!(block > 0, "block size must be positive");
    assert_eq!(src.len() % block, 0, "src not a multiple of block");
    assert_eq!(dst.len(), src.len(), "dst length mismatch");
    assert_eq!(scales.len(), src.len() / block, "scales length mismatch");
    for (bi, (s_chunk, d_chunk)) in src.chunks(block).zip(dst.chunks_mut(block)).enumerate() {
        scales[bi] = scalar::quantize_i8(s_chunk, d_chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatched_dot_matches_scalar() {
        let a: Vec<i8> = (0..300).map(|i| ((i * 13) % 251) as i8).collect();
        let b: Vec<i8> = (0..300).map(|i| ((i * 17) % 249) as i8).collect();
        assert_eq!(dot(&a, &b), scalar::dot_i8(&a, &b));
    }

    #[test]
    fn maddubs_dot_matches_exact_dot_on_clamped_codes() {
        // The full clamped code range (-127..=127), odd length for the tail.
        let a: Vec<i8> = (0..333).map(|i| ((i * 37) % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..333).map(|i| ((i * 91) % 255 - 127) as i8).collect();
        assert_eq!(dot_maddubs(&a, &b), scalar::dot_i8(&a, &b));
    }

    #[test]
    fn i8_accumulates_match_scalar_bitwise() {
        let x: Vec<i8> = (0..100).map(|i| ((i * 29) % 255 - 127) as i8).collect();
        let y0: Vec<f32> = (0..100).map(|i| ((i as f32) * 0.3).cos()).collect();
        let mut y1 = y0.clone();
        let mut y2 = y0.clone();
        axpy(&mut y1, 1.37, &x);
        scalar::axpy_f32_i8(&mut y2, 1.37, &x);
        assert_eq!(y1, y2);
        let mut y1 = y0.clone();
        let mut y2 = y0;
        scale_axpy(&mut y1, 0.25, -2.1, &x);
        scalar::scale_axpy_f32_i8(&mut y2, 0.25, -2.1, &x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn block_quantization_reconstructs() {
        let src: Vec<f32> = (0..64).map(|i| (i as f32 - 31.5) * 0.23).collect();
        let mut q = vec![0i8; 64];
        let mut sc = vec![0f32; 2];
        quantize_blocks(&src, 32, &mut q, &mut sc);
        for (i, &x) in src.iter().enumerate() {
            let r = sc[i / 32] * q[i] as f32;
            assert!((x - r).abs() <= sc[i / 32] * 0.5 + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn block_quantization_rejects_ragged() {
        let src = vec![0.0f32; 33];
        let mut q = vec![0i8; 33];
        let mut sc = vec![0f32; 1];
        quantize_blocks(&src, 32, &mut q, &mut sc);
    }
}
