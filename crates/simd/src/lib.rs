//! SIMD substrate for the T-MAC reproduction.
//!
//! T-MAC's kernels (EuroSys'25, §4) are built around three hardware
//! capabilities:
//!
//! 1. **Parallel 8-bit table lookup** — `PSHUFB`/`_mm256_shuffle_epi8` on x86
//!    AVX2, `TBL`/`vqtbl1q_u8` on ARM NEON (paper Table 1). A 16-entry `i8`
//!    table fits exactly in one 128-bit lane, so one instruction performs 16
//!    (NEON) or 32 (AVX2, table duplicated per lane) lookups.
//! 2. **Widening accumulation** — `i8` lookup results are summed into `i16`
//!    accumulators without overflow.
//! 3. **Fast 8-bit aggregation** — `_mm256_avg_epu8`/`vrhaddq_u8` rounding
//!    averages, used by the optional lossy aggregation mode (paper §4,
//!    "Fast 8-bit aggregation").
//!
//! This crate provides those primitives plus the generic `f32`/`i8` vector
//! helpers used by the rest of the workspace, with three backends:
//!
//! * [`scalar`] — portable reference implementations. Always available; also
//!   the oracle for the SIMD backends' unit tests.
//! * `avx2` — x86-64 AVX2 implementations (runtime-detected).
//! * `neon` — AArch64 NEON implementations (compiled only on aarch64).
//!
//! # Safety policy
//!
//! All `unsafe` in the workspace's hot paths is confined to this crate and to
//! `tmac-core`'s AVX2 kernels. Every `unsafe` block carries a `// SAFETY:`
//! comment. SIMD entry points are `#[target_feature]` functions; callers must
//! verify support once (see [`Isa::detect`]) and are then allowed to call the
//! whole kernel family.
//!
//! # Examples
//!
//! ```
//! use tmac_simd::{f32ops, Isa};
//!
//! let isa = Isa::detect();
//! println!("dispatching to {}", isa.name());
//! let a = vec![1.0f32; 64];
//! let b = vec![2.0f32; 64];
//! assert_eq!(f32ops::dot(&a, &b), 128.0);
//! ```

pub mod f32ops;
pub mod i8ops;
pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub mod avx2;

#[cfg(target_arch = "aarch64")]
pub mod neon;

/// Instruction-set architecture selected at runtime.
///
/// Mirrors the paper's Table 1: each ISA maps to a *look-up* and a *fast
/// aggregation* instruction. [`Isa::lookup_intrinsic`] and
/// [`Isa::aggregation_intrinsic`] report that mapping (used by the
/// `table1_intrinsics` experiment binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Portable scalar fallback.
    Scalar,
    /// x86-64 AVX2 (256-bit, `PSHUFB`-class lookups).
    Avx2,
    /// AArch64 NEON (128-bit, `TBL` lookups).
    Neon,
}

impl Isa {
    /// Detects the best available ISA on the current CPU.
    ///
    /// Detection is a runtime check (`is_x86_feature_detected!`), so binaries
    /// remain portable: running on a CPU without AVX2 falls back to scalar
    /// code instead of executing illegal instructions (which would be
    /// undefined behavior).
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            // FMA is required alongside AVX2: the f32 kernels use fused
            // multiply-adds. Every AVX2-era core (Haswell+) provides both.
            if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
                return Isa::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return Isa::Neon;
            }
        }
        Isa::Scalar
    }

    /// Human-readable backend name.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
        }
    }

    /// The hardware look-up intrinsic this ISA dispatches to (paper Table 1).
    pub fn lookup_intrinsic(self) -> &'static str {
        match self {
            Isa::Scalar => "array index (portable)",
            Isa::Avx2 => "_mm256_shuffle_epi8",
            Isa::Neon => "vqtbl1q_u8",
        }
    }

    /// The fast-aggregation intrinsic this ISA dispatches to (paper Table 1).
    pub fn aggregation_intrinsic(self) -> &'static str {
        match self {
            Isa::Scalar => "(a + b + 1) >> 1 (portable)",
            Isa::Avx2 => "_mm256_avg_epu8",
            Isa::Neon => "vrhaddq_u8",
        }
    }

    /// SIMD register width in bytes (1 for scalar).
    pub fn width_bytes(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 32,
            Isa::Neon => 16,
        }
    }

    /// Number of simultaneous 8-bit table lookups per lookup instruction.
    pub fn lookups_per_instr(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 32,
            Isa::Neon => 16,
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable() {
        let a = Isa::detect();
        let b = Isa::detect();
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_distinct() {
        let all = [Isa::Scalar, Isa::Avx2, Isa::Neon];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x.name(), y.name());
                assert_ne!(x.lookup_intrinsic(), y.lookup_intrinsic());
            }
        }
    }

    #[test]
    fn widths_match_lookups() {
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Neon] {
            assert_eq!(isa.width_bytes(), isa.lookups_per_instr());
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn x86_detects_at_least_scalar() {
        // On the CI host AVX2 is available; elsewhere scalar is fine.
        let isa = Isa::detect();
        assert!(matches!(isa, Isa::Avx2 | Isa::Scalar));
    }
}
