//! x86-64 AVX2 backend.
//!
//! Implements the paper's Table 1 mapping for x86: table look-up via
//! `_mm256_shuffle_epi8` (`PSHUFB`) and fast aggregation via
//! `_mm256_avg_epu8`. AVX2 is 256 bits wide but `PSHUFB` shuffles within each
//! 128-bit lane, so — exactly as §4 of the paper describes — the 16-entry
//! table is *duplicated* into both lanes and one instruction then looks up 32
//! independent `u8` indices.
//!
//! Every function here is `#[target_feature(enable = "avx2")]`: it is a safe
//! call from another function with the same feature set, and an `unsafe` call
//! otherwise (the caller must have checked [`available`]). Raw-pointer loads
//! and stores are the only `unsafe` operations inside, each justified with a
//! `// SAFETY:` comment and guarded by slice-length assertions.

#![allow(clippy::missing_safety_doc)] // Safety contract is the module-level target-feature rule.

use std::arch::x86_64::*;
use std::sync::OnceLock;

/// Number of parallel byte lanes of this backend.
pub const LANES: usize = 32;

/// Returns `true` if the running CPU supports AVX2 *and* FMA.
///
/// The result is computed once and cached. All other functions in this
/// module may only be invoked when this returns `true`.
pub fn available() -> bool {
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    })
}

// ---------------------------------------------------------------------------
// Loads / stores (length-checked slice wrappers around unaligned intrinsics).
// ---------------------------------------------------------------------------

/// Loads 32 bytes from `src` (unaligned).
///
/// # Panics
///
/// Panics if `src.len() < 32`.
#[inline]
#[target_feature(enable = "avx2")]
pub fn loadu_256(src: &[u8]) -> __m256i {
    assert!(src.len() >= 32, "loadu_256 needs 32 bytes");
    // SAFETY: `src` has at least 32 readable bytes; unaligned load allowed.
    unsafe { _mm256_loadu_si256(src.as_ptr() as *const __m256i) }
}

/// Loads 16 bytes from `src` (unaligned) into an `__m128i`.
///
/// # Panics
///
/// Panics if `src.len() < 16`.
#[inline]
#[target_feature(enable = "avx2")]
pub fn loadu_128(src: &[u8]) -> __m128i {
    assert!(src.len() >= 16, "loadu_128 needs 16 bytes");
    // SAFETY: `src` has at least 16 readable bytes; unaligned load allowed.
    unsafe { _mm_loadu_si128(src.as_ptr() as *const __m128i) }
}

/// Stores 32 bytes to `dst` (unaligned).
///
/// # Panics
///
/// Panics if `dst.len() < 32`.
#[inline]
#[target_feature(enable = "avx2")]
pub fn storeu_256(dst: &mut [u8], v: __m256i) {
    assert!(dst.len() >= 32, "storeu_256 needs 32 bytes");
    // SAFETY: `dst` has at least 32 writable bytes; unaligned store allowed.
    unsafe { _mm256_storeu_si256(dst.as_mut_ptr() as *mut __m256i, v) }
}

/// Loads 8 `f32` from `src` (unaligned).
///
/// # Panics
///
/// Panics if `src.len() < 8`.
#[inline]
#[target_feature(enable = "avx2")]
pub fn loadu_ps(src: &[f32]) -> __m256 {
    assert!(src.len() >= 8, "loadu_ps needs 8 floats");
    // SAFETY: `src` has at least 8 readable floats; unaligned load allowed.
    unsafe { _mm256_loadu_ps(src.as_ptr()) }
}

/// Stores 8 `f32` to `dst` (unaligned).
///
/// # Panics
///
/// Panics if `dst.len() < 8`.
#[inline]
#[target_feature(enable = "avx2")]
pub fn storeu_ps(dst: &mut [f32], v: __m256) {
    assert!(dst.len() >= 8, "storeu_ps needs 8 floats");
    // SAFETY: `dst` has at least 8 writable floats; unaligned store allowed.
    unsafe { _mm256_storeu_ps(dst.as_mut_ptr(), v) }
}

// ---------------------------------------------------------------------------
// Table lookup (the T-MAC core primitive).
// ---------------------------------------------------------------------------

/// Duplicates a 16-entry `i8` table into both 128-bit lanes of a register.
///
/// Paper §4: "we duplicate the table to fill the 256-bit LUT register and
/// look up 32 different int8 weight indices with a single instruction".
#[inline]
#[target_feature(enable = "avx2")]
pub fn dup_table16(table: &[i8; 16]) -> __m256i {
    // SAFETY: `table` is exactly 16 readable bytes.
    let t = unsafe { _mm_loadu_si128(table.as_ptr() as *const __m128i) };
    _mm256_broadcastsi128_si256(t)
}

/// 32-way parallel 8-bit table lookup (`PSHUFB`).
///
/// `table` must hold the same 16 entries in both lanes (see
/// [`dup_table16`]); `idx` holds 32 indices, each `< 16` (high bit clear).
#[inline]
#[target_feature(enable = "avx2")]
pub fn tbl32(table: __m256i, idx: __m256i) -> __m256i {
    _mm256_shuffle_epi8(table, idx)
}

/// Unpacks 16 nibble-packed bytes into 32 byte indices.
///
/// Input byte `j` holds row `j` in its low nibble and row `j + 16` in its
/// high nibble (T-MAC's interleaved weight layout, paper Figure 4), so the
/// result places rows `0..16` in the low lane and rows `16..32` in the high
/// lane with nothing but `AND`/`SHR` — no reordering shuffle is needed.
#[inline]
#[target_feature(enable = "avx2")]
pub fn unpack_nibbles_interleaved(bytes: __m128i) -> __m256i {
    let mask = _mm_set1_epi8(0x0F);
    let lo = _mm_and_si128(bytes, mask);
    let hi = _mm_and_si128(_mm_srli_epi16(bytes, 4), mask);
    _mm256_inserti128_si256(_mm256_castsi128_si256(lo), hi, 1)
}

/// Unpacks 16 *sequentially* packed bytes into 32 byte indices in row order.
///
/// Without the offline interleave, byte `j` holds rows `2j` (low nibble) and
/// `2j + 1` (high nibble). Restoring row order costs an extra per-lane
/// interleave (`punpcklbw`/`punpckhbw`) on top of the `AND`/`SHR` — this is
/// the overhead the interleaving optimization removes, kept here so the
/// ablation (Figure 10, "IL") measures something real.
#[inline]
#[target_feature(enable = "avx2")]
pub fn unpack_nibbles_sequential(bytes: __m128i) -> __m256i {
    let mask = _mm_set1_epi8(0x0F);
    let lo = _mm_and_si128(bytes, mask); // rows 0,2,4,..,30
    let hi = _mm_and_si128(_mm_srli_epi16(bytes, 4), mask); // rows 1,3,5,..,31
                                                            // Interleave to restore row order: [r0 r1 r2 r3 ...].
    let even_odd_lo = _mm_unpacklo_epi8(lo, hi); // rows 0..16
    let even_odd_hi = _mm_unpackhi_epi8(lo, hi); // rows 16..32
    _mm256_inserti128_si256(_mm256_castsi128_si256(even_odd_lo), even_odd_hi, 1)
}

/// Transforms raw indices for a mirror-consolidated table.
///
/// Returns `(idx', ctrl)`: `idx' = idx ^ 0x0F` where `idx >= 8` (folding the
/// upper half of the table onto the lower, paper Figure 5), and a sign
/// control vector for [`apply_sign`] that is negative exactly where the
/// looked-up value must be negated (and never zero).
#[inline]
#[target_feature(enable = "avx2")]
pub fn mirror_fold(idx: __m256i) -> (__m256i, __m256i) {
    let seven = _mm256_set1_epi8(7);
    let low_mask = _mm256_set1_epi8(0x0F);
    // Bytes with idx >= 8 compare greater-than 7 -> 0xFF.
    let neg = _mm256_cmpgt_epi8(idx, seven);
    let folded = _mm256_xor_si256(idx, _mm256_and_si256(neg, low_mask));
    // ctrl: 0xFF (negative) where mirrored, 0x01 (positive) elsewhere; never 0
    // because `_mm256_sign_epi8` zeroes its output where ctrl == 0.
    let ctrl = _mm256_or_si256(neg, _mm256_set1_epi8(1));
    (folded, ctrl)
}

/// Applies a sign control to looked-up values (`_mm256_sign_epi8`).
///
/// `ctrl` bytes must be non-zero: negative negates, positive passes through.
#[inline]
#[target_feature(enable = "avx2")]
pub fn apply_sign(vals: __m256i, ctrl: __m256i) -> __m256i {
    _mm256_sign_epi8(vals, ctrl)
}

// ---------------------------------------------------------------------------
// Accumulation.
// ---------------------------------------------------------------------------

/// Widens 32 `i8` lanes and adds them into two 16-lane `i16` accumulators.
///
/// `acc.0` accumulates bytes `0..16` (rows `m..m+16`), `acc.1` bytes
/// `16..32`. This is the exact-precision aggregation path: `i8` values sum
/// into `i16` without overflow for up to 256 addends.
#[inline]
#[target_feature(enable = "avx2")]
pub fn accumulate_i8_into_i16(acc: (__m256i, __m256i), vals: __m256i) -> (__m256i, __m256i) {
    let lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vals));
    let hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vals, 1));
    (_mm256_add_epi16(acc.0, lo), _mm256_add_epi16(acc.1, hi))
}

/// Rounding average of unsigned bytes (`_mm256_avg_epu8`), the fast
/// aggregation primitive (paper Table 1).
#[inline]
#[target_feature(enable = "avx2")]
pub fn avg_u8(a: __m256i, b: __m256i) -> __m256i {
    _mm256_avg_epu8(a, b)
}

/// Converts 16 `i16` lanes to two 8-lane `f32` vectors (low, high).
#[inline]
#[target_feature(enable = "avx2")]
pub fn i16_to_f32x2(v: __m256i) -> (__m256, __m256) {
    let lo = _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(_mm256_castsi256_si128(v)));
    let hi = _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(_mm256_extracti128_si256(v, 1)));
    (lo, hi)
}

/// Horizontal sum of 8 `f32` lanes.
#[inline]
#[target_feature(enable = "avx2")]
pub fn hsum_ps(v: __m256) -> f32 {
    let hi = _mm256_extractf128_ps(v, 1);
    let lo = _mm256_castps256_ps128(v);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
    _mm_cvtss_f32(s)
}

/// Horizontal sum of 8 `i32` lanes.
#[inline]
#[target_feature(enable = "avx2")]
pub fn hsum_epi32(v: __m256i) -> i32 {
    let hi = _mm256_extracti128_si256(v, 1);
    let lo = _mm256_castsi256_si128(v);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_11_10));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
    _mm_cvtsi128_si32(s)
}

/// Gathers 8 `f32` values `table[idx[i]]` (TM-base lookup path).
///
/// This is the *unoptimized* table access that the paper's breakdown starts
/// from: a hardware gather from an in-memory `f32` table, before table
/// quantization makes in-register `PSHUFB` lookups possible.
///
/// # Panics
///
/// Panics in debug builds if any index is out of bounds.
///
/// The caller must guarantee every `idx` lane indexes within `table`.
#[inline]
#[target_feature(enable = "avx2")]
pub fn gather_f32(table: &[f32], idx: __m256i) -> __m256 {
    #[cfg(debug_assertions)]
    {
        let mut lanes = [0i32; 8];
        // SAFETY: `lanes` is exactly 32 writable bytes.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, idx) };
        for &l in &lanes {
            assert!((l as usize) < table.len(), "gather_f32 index out of range");
        }
    }
    // SAFETY: all 8 indices address valid `f32` elements of `table` (asserted
    // above in debug builds; guaranteed by kernel construction in release:
    // indices are 4-bit values < 16 == table length).
    unsafe { _mm256_i32gather_ps::<4>(table.as_ptr(), idx) }
}

/// Widens the low/high 8 bytes of a 16-byte vector to `i32` lanes.
#[inline]
#[target_feature(enable = "avx2")]
pub fn widen_u8_to_i32(v: __m128i) -> (__m256i, __m256i) {
    let lo = _mm256_cvtepu8_epi32(v);
    let hi = _mm256_cvtepu8_epi32(_mm_srli_si128(v, 8));
    (lo, hi)
}

// ---------------------------------------------------------------------------
// f32 vector helpers (AVX2 + FMA).
// ---------------------------------------------------------------------------

/// Dot product of two equal-length `f32` slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[target_feature(enable = "avx2,fma")]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_f32 length mismatch");
    let n = a.len();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 16 <= n {
        let x0 = loadu_ps(&a[i..]);
        let y0 = loadu_ps(&b[i..]);
        let x1 = loadu_ps(&a[i + 8..]);
        let y1 = loadu_ps(&b[i + 8..]);
        acc0 = _mm256_fmadd_ps(x0, y0, acc0);
        acc1 = _mm256_fmadd_ps(x1, y1, acc1);
        i += 16;
    }
    while i + 8 <= n {
        let x = loadu_ps(&a[i..]);
        let y = loadu_ps(&b[i..]);
        acc0 = _mm256_fmadd_ps(x, y, acc0);
        i += 8;
    }
    let mut sum = hsum_ps(_mm256_add_ps(acc0, acc1));
    while i < n {
        sum += a[i] * b[i];
        i += 1;
    }
    sum
}

/// `y[i] += a * x[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
#[target_feature(enable = "avx2,fma")]
pub fn axpy_f32(y: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy_f32 length mismatch");
    let n = y.len();
    let av = _mm256_set1_ps(a);
    let mut i = 0;
    while i + 8 <= n {
        let xv = loadu_ps(&x[i..]);
        let yv = loadu_ps(&y[i..]);
        storeu_ps(&mut y[i..], _mm256_fmadd_ps(av, xv, yv));
        i += 8;
    }
    while i < n {
        y[i] += a * x[i];
        i += 1;
    }
}

/// Sum of a `f32` slice.
#[target_feature(enable = "avx2")]
pub fn sum_f32(v: &[f32]) -> f32 {
    let n = v.len();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        acc = _mm256_add_ps(acc, loadu_ps(&v[i..]));
        i += 8;
    }
    let mut s = hsum_ps(acc);
    while i < n {
        s += v[i];
        i += 1;
    }
    s
}

/// `y[i] += x[i]` (plain add, no FMA — bit-identical to the scalar path).
///
/// # Panics
///
/// Panics if lengths differ.
#[target_feature(enable = "avx2")]
pub fn add_f32(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "add_f32 length mismatch");
    let n = y.len();
    let mut i = 0;
    while i + 8 <= n {
        let yv = loadu_ps(&y[i..]);
        let xv = loadu_ps(&x[i..]);
        storeu_ps(&mut y[i..], _mm256_add_ps(yv, xv));
        i += 8;
    }
    while i < n {
        y[i] += x[i];
        i += 1;
    }
}

/// Elementwise product `out[i] = a[i] * b[i]` (bit-identical to scalar).
///
/// # Panics
///
/// Panics if lengths differ.
#[target_feature(enable = "avx2")]
pub fn mul_f32(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "mul_f32 length mismatch");
    assert_eq!(out.len(), a.len(), "mul_f32 out length mismatch");
    let n = out.len();
    let mut i = 0;
    while i + 8 <= n {
        let av = loadu_ps(&a[i..]);
        let bv = loadu_ps(&b[i..]);
        storeu_ps(&mut out[i..], _mm256_mul_ps(av, bv));
        i += 8;
    }
    while i < n {
        out[i] = a[i] * b[i];
        i += 1;
    }
}

/// In-place elementwise product `y[i] *= x[i]` (bit-identical to scalar).
///
/// # Panics
///
/// Panics if lengths differ.
#[target_feature(enable = "avx2")]
pub fn mul_assign_f32(y: &mut [f32], x: &[f32]) {
    assert_eq!(y.len(), x.len(), "mul_assign_f32 length mismatch");
    let n = y.len();
    let mut i = 0;
    while i + 8 <= n {
        let yv = loadu_ps(&y[i..]);
        let xv = loadu_ps(&x[i..]);
        storeu_ps(&mut y[i..], _mm256_mul_ps(yv, xv));
        i += 8;
    }
    while i < n {
        y[i] *= x[i];
        i += 1;
    }
}

/// `out[i] = (x[i] * s) * g[i]` with the same evaluation order as
/// [`crate::scalar::scaled_mul_f32`] (two rounded multiplies, no FMA), so
/// the two paths agree bit-for-bit.
///
/// # Panics
///
/// Panics if lengths differ.
#[target_feature(enable = "avx2")]
pub fn scaled_mul_f32(out: &mut [f32], x: &[f32], g: &[f32], s: f32) {
    assert_eq!(x.len(), g.len(), "scaled_mul_f32 length mismatch");
    assert_eq!(out.len(), x.len(), "scaled_mul_f32 out length mismatch");
    let sv = _mm256_set1_ps(s);
    let n = out.len();
    let mut i = 0;
    while i + 8 <= n {
        let xv = loadu_ps(&x[i..]);
        let gv = loadu_ps(&g[i..]);
        storeu_ps(&mut out[i..], _mm256_mul_ps(_mm256_mul_ps(xv, sv), gv));
        i += 8;
    }
    while i < n {
        out[i] = (x[i] * s) * g[i];
        i += 1;
    }
}

/// `v[i] *= s` (bit-identical to scalar).
#[target_feature(enable = "avx2")]
pub fn scale_f32(v: &mut [f32], s: f32) {
    let sv = _mm256_set1_ps(s);
    let n = v.len();
    let mut i = 0;
    while i + 8 <= n {
        let xv = loadu_ps(&v[i..]);
        storeu_ps(&mut v[i..], _mm256_mul_ps(xv, sv));
        i += 8;
    }
    while i < n {
        v[i] *= s;
        i += 1;
    }
}

/// Maximum value of a `f32` slice (`-inf` if empty).
#[target_feature(enable = "avx2")]
pub fn max_f32(v: &[f32]) -> f32 {
    let n = v.len();
    let mut i = 0;
    let mut best = f32::NEG_INFINITY;
    if n >= 8 {
        let mut acc = loadu_ps(v);
        i = 8;
        while i + 8 <= n {
            acc = _mm256_max_ps(acc, loadu_ps(&v[i..]));
            i += 8;
        }
        let hi = _mm256_extractf128_ps(acc, 1);
        let lo = _mm256_castps256_ps128(acc);
        let m = _mm_max_ps(lo, hi);
        let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        let m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0x55));
        best = _mm_cvtss_f32(m);
    }
    while i < n {
        best = best.max(v[i]);
        i += 1;
    }
    best
}

/// Maximum absolute value of a `f32` slice (0.0 if empty).
#[target_feature(enable = "avx2")]
pub fn max_abs_f32(v: &[f32]) -> f32 {
    let n = v.len();
    let signmask = _mm256_set1_ps(-0.0);
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let x = _mm256_andnot_ps(signmask, loadu_ps(&v[i..]));
        acc = _mm256_max_ps(acc, x);
        i += 8;
    }
    let hi = _mm256_extractf128_ps(acc, 1);
    let lo = _mm256_castps256_ps128(acc);
    let m = _mm_max_ps(lo, hi);
    let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    let m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0x55));
    let mut best = _mm_cvtss_f32(m);
    while i < n {
        best = best.max(v[i].abs());
        i += 1;
    }
    best
}

// ---------------------------------------------------------------------------
// i8 helpers (baseline dequant kernels).
// ---------------------------------------------------------------------------

/// Signed 8-bit dot product with `i32` accumulation.
///
/// Widens both operands to `i16` and uses `_mm256_madd_epi16`. This is exact
/// for the full `i8` range including `-128` (the llama.cpp `maddubs` sign
/// trick wraps on `a = b = -128`, so it is reserved for
/// [`dot_i8_maddubs`], whose inputs are clamped quantized codes).
///
/// # Panics
///
/// Panics if lengths differ.
#[target_feature(enable = "avx2")]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8 length mismatch");
    let n = a.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 32 <= n {
        // SAFETY: both slices have at least `i + 32` elements, and `i8` has
        // the same layout as `u8` for raw loads.
        let (va, vb) = unsafe {
            (
                _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i),
                _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i),
            )
        };
        let a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
        let a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
        let b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
        let b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
        i += 32;
    }
    let mut sum = hsum_epi32(acc);
    while i < n {
        sum += (a[i] as i32) * (b[i] as i32);
        i += 1;
    }
    sum
}

/// Signed 8-bit dot product via the `maddubs` sign trick (llama.cpp style).
///
/// Faster than [`dot_i8`] but requires every element of both slices to be
/// `> -128` (quantized codes are clamped to `-127..=127`, so this holds for
/// all baseline kernels). Violating that wraps the sign of `(-128)·(-128)`
/// terms.
///
/// # Panics
///
/// Panics if lengths differ; debug builds also panic on `-128` inputs.
#[target_feature(enable = "avx2")]
pub fn dot_i8_maddubs(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8_maddubs length mismatch");
    debug_assert!(
        a.iter().chain(b).all(|&x| x != i8::MIN),
        "dot_i8_maddubs requires values > -128"
    );
    let n = a.len();
    let ones = _mm256_set1_epi16(1);
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 32 <= n {
        // SAFETY: both slices have at least `i + 32` elements, and `i8` has
        // the same layout as `u8` for raw loads.
        let (va, vb) = unsafe {
            (
                _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i),
                _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i),
            )
        };
        let abs_a = _mm256_sign_epi8(va, va);
        let sgn_b = _mm256_sign_epi8(vb, va);
        let prod = _mm256_maddubs_epi16(abs_a, sgn_b);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(prod, ones));
        i += 32;
    }
    let mut sum = hsum_epi32(acc);
    while i < n {
        sum += (a[i] as i32) * (b[i] as i32);
        i += 1;
    }
    sum
}

/// `y[i] += a * (x[i] as f32)`: scaled `i8` accumulate into `f32`.
///
/// Widens 8 codes per step (`cvtepi8_epi32` → `cvtepi32_ps`, both exact)
/// and combines with a separate multiply and add — *not* an FMA — so the
/// per-element rounding matches [`crate::scalar::axpy_f32_i8`] bit-for-bit.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[target_feature(enable = "avx2")]
pub fn axpy_f32_i8(y: &mut [f32], a: f32, x: &[i8]) {
    assert_eq!(y.len(), x.len(), "axpy_f32_i8 length mismatch");
    let n = y.len();
    let av = _mm256_set1_ps(a);
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `x` has at least `i + 8` readable bytes (`i8` loads as raw
        // bytes); only the low 8 bytes of the vector are consumed.
        let raw = unsafe { _mm_loadl_epi64(x.as_ptr().add(i) as *const __m128i) };
        let xf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
        let yv = loadu_ps(&y[i..]);
        storeu_ps(&mut y[i..], _mm256_add_ps(yv, _mm256_mul_ps(av, xf)));
        i += 8;
    }
    while i < n {
        y[i] += a * (x[i] as f32);
        i += 1;
    }
}

/// `y[i] = (y[i] * c) + a * (x[i] as f32)`: fused online-softmax rescale +
/// `i8` accumulate, bit-identical to [`crate::scalar::scale_axpy_f32_i8`]
/// (three rounded multiply/add steps in the same order, no FMA).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[target_feature(enable = "avx2")]
pub fn scale_axpy_f32_i8(y: &mut [f32], c: f32, a: f32, x: &[i8]) {
    assert_eq!(y.len(), x.len(), "scale_axpy_f32_i8 length mismatch");
    let n = y.len();
    let av = _mm256_set1_ps(a);
    let cv = _mm256_set1_ps(c);
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: `x` has at least `i + 8` readable bytes.
        let raw = unsafe { _mm_loadl_epi64(x.as_ptr().add(i) as *const __m128i) };
        let xf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
        let yv = loadu_ps(&y[i..]);
        storeu_ps(
            &mut y[i..],
            _mm256_add_ps(_mm256_mul_ps(yv, cv), _mm256_mul_ps(av, xf)),
        );
        i += 8;
    }
    while i < n {
        y[i] = (y[i] * c) + a * (x[i] as f32);
        i += 1;
    }
}

/// RoPE rotation over interleaved pairs with duplicated-pair tables (see
/// [`crate::scalar::rope_apply_f32`] for the table layout). The pair swap is
/// one in-lane `permute`; the combine is multiply/multiply/add in the scalar
/// path's exact order, so the two paths agree bit-for-bit.
///
/// # Panics
///
/// Panics on length mismatch or an odd vector length.
#[target_feature(enable = "avx2")]
pub fn rope_apply_f32(v: &mut [f32], cos_dup: &[f32], sin_dup: &[f32]) {
    assert_eq!(v.len(), cos_dup.len(), "rope_apply_f32 cos length");
    assert_eq!(v.len(), sin_dup.len(), "rope_apply_f32 sin length");
    assert!(v.len().is_multiple_of(2), "rope_apply_f32 needs pairs");
    let n = v.len();
    let mut i = 0;
    while i + 8 <= n {
        let xv = loadu_ps(&v[i..]);
        let cv = loadu_ps(&cos_dup[i..]);
        let sv = loadu_ps(&sin_dup[i..]);
        // Swap each (a, b) pair: lane selector [1, 0, 3, 2] per 128-bit half.
        let sw = _mm256_permute_ps(xv, 0b10_11_00_01);
        storeu_ps(
            &mut v[i..],
            _mm256_add_ps(_mm256_mul_ps(xv, cv), _mm256_mul_ps(sw, sv)),
        );
        i += 8;
    }
    while i < n {
        let (a, b) = (v[i], v[i + 1]);
        v[i] = a * cos_dup[i] + b * sin_dup[i];
        v[i + 1] = b * cos_dup[i + 1] + a * sin_dup[i + 1];
        i += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar;

    fn skip() -> bool {
        !available()
    }

    fn to_bytes(v: __m256i) -> [u8; 32] {
        let mut out = [0u8; 32];
        // SAFETY: out is 32 writable bytes; test runs only when AVX2 exists.
        unsafe { _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, v) };
        out
    }

    #[test]
    fn tbl32_matches_scalar() {
        if skip() {
            return;
        }
        let mut table = [0i8; 16];
        for (i, t) in table.iter_mut().enumerate() {
            *t = (i as i8).wrapping_mul(7) - 50;
        }
        let idx: Vec<u8> = (0..32).map(|i| (i * 5) % 16).collect();
        // SAFETY: AVX2 checked by `skip`.
        let got = unsafe {
            let t = dup_table16(&table);
            let iv = loadu_256(&idx);
            to_bytes(tbl32(t, iv))
        };
        let mut want = vec![0i8; 32];
        scalar::tbl16(&table, &idx, &mut want);
        assert_eq!(got.map(|b| b as i8).to_vec(), want);
    }

    #[test]
    fn unpack_interleaved_matches_scalar() {
        if skip() {
            return;
        }
        let packed: Vec<u8> = (0..16).map(|i| (i * 37 + 11) as u8).collect();
        // SAFETY: AVX2 checked by `skip`.
        let got = unsafe {
            let b = loadu_128(&packed);
            to_bytes(unpack_nibbles_interleaved(b))
        };
        let (mut lo, mut hi) = (vec![0u8; 16], vec![0u8; 16]);
        scalar::unpack_nibbles(&packed, &mut lo, &mut hi);
        assert_eq!(&got[..16], &lo[..]);
        assert_eq!(&got[16..], &hi[..]);
    }

    #[test]
    fn unpack_sequential_restores_row_order() {
        if skip() {
            return;
        }
        // Rows 0..32 packed sequentially: byte j = row 2j | row 2j+1 << 4.
        let rows: Vec<u8> = (0..32).map(|r| (r * 3) % 16).collect();
        let packed: Vec<u8> = (0..16)
            .map(|j| rows[2 * j] | (rows[2 * j + 1] << 4))
            .collect();
        // SAFETY: AVX2 checked by `skip`.
        let got = unsafe {
            let b = loadu_128(&packed);
            to_bytes(unpack_nibbles_sequential(b))
        };
        assert_eq!(got.to_vec(), rows);
    }

    #[test]
    fn mirror_fold_sign_identity() {
        if skip() {
            return;
        }
        // A mirrored table stores s(0..8); folding idx then applying the sign
        // must reproduce a full 16-entry antisymmetric table lookup.
        let mut full = [0i8; 16];
        for (i, t) in full.iter_mut().enumerate() {
            *t = (i as i8) * 3 - 45; // antisymmetric-ish around the midpoint
        }
        // Force true mirror antisymmetry: full[15 - i] = -full[i].
        for i in 0..8 {
            full[15 - i] = -full[i];
        }
        let mut half = [0i8; 16];
        half[..8].copy_from_slice(&full[..8]);
        let idx: Vec<u8> = (0..32).map(|i| (i % 16) as u8).collect();
        // SAFETY: AVX2 checked by `skip`.
        let got = unsafe {
            let t = dup_table16(&half);
            let iv = loadu_256(&idx);
            let (folded, ctrl) = mirror_fold(iv);
            to_bytes(apply_sign(tbl32(t, folded), ctrl))
        };
        let mut want = vec![0i8; 32];
        scalar::tbl16(&full, &idx, &mut want);
        assert_eq!(got.map(|b| b as i8).to_vec(), want);
    }

    #[test]
    fn accumulate_i16_exact() {
        if skip() {
            return;
        }
        let vals: Vec<i8> = (0..32).map(|i| (i as i8) - 16).collect();
        // SAFETY: AVX2 checked by `skip`.
        let (lo, hi) = unsafe {
            let v = loadu_256(&vals.iter().map(|&x| x as u8).collect::<Vec<_>>());
            let acc = (_mm256_setzero_si256(), _mm256_setzero_si256());
            let (a0, a1) = accumulate_i8_into_i16(acc, v);
            let (a0, a1) = accumulate_i8_into_i16((a0, a1), v);
            let mut lo16 = [0i16; 16];
            let mut hi16 = [0i16; 16];
            _mm256_storeu_si256(lo16.as_mut_ptr() as *mut __m256i, a0);
            _mm256_storeu_si256(hi16.as_mut_ptr() as *mut __m256i, a1);
            (lo16, hi16)
        };
        for i in 0..16 {
            assert_eq!(lo[i], 2 * (vals[i] as i16));
            assert_eq!(hi[i], 2 * (vals[16 + i] as i16));
        }
    }

    #[test]
    fn avg_matches_scalar() {
        if skip() {
            return;
        }
        let a: Vec<u8> = (0..32).map(|i| (i * 9 + 3) as u8).collect();
        let b: Vec<u8> = (0..32).map(|i| (255 - i * 7) as u8).collect();
        // SAFETY: AVX2 checked by `skip`.
        let got = unsafe { to_bytes(avg_u8(loadu_256(&a), loadu_256(&b))) };
        for i in 0..32 {
            assert_eq!(got[i], scalar::avg_u8(a[i], b[i]), "lane {i}");
        }
    }

    #[test]
    fn gather_matches_table() {
        if skip() {
            return;
        }
        let table: Vec<f32> = (0..16).map(|i| i as f32 * 1.5 - 8.0).collect();
        let idx8: Vec<u8> = (0..16).map(|i| ((i * 11) % 16) as u8).collect();
        // SAFETY: AVX2 checked by `skip`.
        let (g0, g1) = unsafe {
            let raw = loadu_128(&idx8);
            let (i0, i1) = widen_u8_to_i32(raw);
            let g0 = gather_f32(&table, i0);
            let g1 = gather_f32(&table, i1);
            let mut o0 = [0f32; 8];
            let mut o1 = [0f32; 8];
            _mm256_storeu_ps(o0.as_mut_ptr(), g0);
            _mm256_storeu_ps(o1.as_mut_ptr(), g1);
            (o0, o1)
        };
        for i in 0..8 {
            assert_eq!(g0[i], table[idx8[i] as usize]);
            assert_eq!(g1[i], table[idx8[8 + i] as usize]);
        }
    }

    #[test]
    fn f32_ops_match_scalar() {
        if skip() {
            return;
        }
        let a: Vec<f32> = (0..103).map(|i| (i as f32 * 0.7).sin()).collect();
        let b: Vec<f32> = (0..103).map(|i| (i as f32 * 0.3).cos()).collect();
        // SAFETY: AVX2+FMA checked by `skip`.
        let (d, s, m) = unsafe { (dot_f32(&a, &b), sum_f32(&a), max_abs_f32(&a)) };
        assert!((d - scalar::dot_f32(&a, &b)).abs() < 1e-3);
        assert!((s - scalar::sum_f32(&a)).abs() < 1e-3);
        assert_eq!(m, scalar::max_abs_f32(&a));
        let mut y1 = b.clone();
        let mut y2 = b.clone();
        // SAFETY: AVX2+FMA checked by `skip`.
        unsafe { axpy_f32(&mut y1, 1.37, &a) };
        scalar::axpy_f32(&mut y2, 1.37, &a);
        for (x, y) in y1.iter().zip(&y2) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_i8_matches_scalar() {
        if skip() {
            return;
        }
        let a: Vec<i8> = (0..131).map(|i| ((i * 37) % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..131).map(|i| ((i * 91) % 255 - 127) as i8).collect();
        // SAFETY: AVX2 checked by `skip`.
        let got = unsafe { dot_i8(&a, &b) };
        assert_eq!(got, scalar::dot_i8(&a, &b));
    }

    #[test]
    fn i8_accumulates_bit_match_scalar() {
        if skip() {
            return;
        }
        // Length 77 exercises both the 8-wide body and the scalar tail.
        let x: Vec<i8> = (0..77).map(|i| ((i * 53) % 255 - 127) as i8).collect();
        let y0: Vec<f32> = (0..77).map(|i| ((i as f32) * 0.41).sin() * 2.3).collect();

        let mut y1 = y0.clone();
        let mut y2 = y0.clone();
        // SAFETY: AVX2 checked by `skip`.
        unsafe { axpy_f32_i8(&mut y1, 0.173, &x) };
        scalar::axpy_f32_i8(&mut y2, 0.173, &x);
        assert_eq!(y1, y2, "axpy_f32_i8");

        let mut y1 = y0.clone();
        let mut y2 = y0;
        // SAFETY: AVX2 checked by `skip`.
        unsafe { scale_axpy_f32_i8(&mut y1, 0.61, -0.83, &x) };
        scalar::scale_axpy_f32_i8(&mut y2, 0.61, -0.83, &x);
        assert_eq!(y1, y2, "scale_axpy_f32_i8");
    }

    #[test]
    fn rope_apply_bit_matches_scalar() {
        if skip() {
            return;
        }
        // 22 elements: one 8-wide body step plus a 6-element pair tail.
        for n in [8usize, 22, 64] {
            let mut v1: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.7).sin() * 1.9).collect();
            let mut v2 = v1.clone();
            let mut cos_dup = vec![0f32; n];
            let mut sin_dup = vec![0f32; n];
            for i in 0..n / 2 {
                let (s, c) = ((i as f32) * 0.37 + 0.2).sin_cos();
                cos_dup[2 * i] = c;
                cos_dup[2 * i + 1] = c;
                sin_dup[2 * i] = -s;
                sin_dup[2 * i + 1] = s;
            }
            // SAFETY: AVX2 checked by `skip`.
            unsafe { rope_apply_f32(&mut v1, &cos_dup, &sin_dup) };
            scalar::rope_apply_f32(&mut v2, &cos_dup, &sin_dup);
            assert_eq!(v1, v2, "n = {n}");
        }
    }
}
