//! Figure 7 bench: mpGEMM (batched sequence), T-MAC vs llama.cpp (BLAS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tmac_baseline::{sgemm, DequantLinear};
use tmac_bench::{gaussian, quantized, BENCH_K, BENCH_M};
use tmac_core::{KernelOpts, TmacLinear};
use tmac_threadpool::ThreadPool;

fn bench_mpgemm(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let pool = ThreadPool::new(threads);
    let n = 32usize;
    let act = gaussian(n * BENCH_K, 7);
    let mut out = vec![0f32; n * BENCH_M];
    let mut group = c.benchmark_group("fig7_mpgemm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for bits in [2u8, 4] {
        let qm = quantized(BENCH_M, BENCH_K, bits, 9);
        let tl = TmacLinear::new(&qm, KernelOpts::tmac()).expect("plan");
        let bl = DequantLinear::new(&qm).expect("pack");
        group.bench_with_input(BenchmarkId::new("tmac", bits), &bits, |b, _| {
            b.iter(|| tl.gemm(&act, n, &mut out, &pool).expect("gemm"));
        });
        group.bench_with_input(BenchmarkId::new("llama_cpp_blas", bits), &bits, |b, _| {
            b.iter(|| sgemm::gemm_blas(&bl, &act, n, &mut out, &pool).expect("gemm"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mpgemm);
criterion_main!(benches);
