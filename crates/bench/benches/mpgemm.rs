//! Figure 7 bench: mpGEMM (batched sequence), T-MAC vs llama.cpp (BLAS).

use std::time::Duration;
use tmac_baseline::{sgemm, DequantLinear};
use tmac_bench::{gaussian, quantized, BenchGroup, BENCH_K, BENCH_M};
use tmac_core::{ExecCtx, KernelOpts, TmacLinear};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let ctx = ExecCtx::new(threads);
    let n = 32usize;
    let act = gaussian(n * BENCH_K, 7);
    let mut out = vec![0f32; n * BENCH_M];
    let mut group = BenchGroup::new("fig7_mpgemm");
    group.measurement_time(Duration::from_secs(2));
    for bits in [2u8, 4] {
        let qm = quantized(BENCH_M, BENCH_K, bits, 9);
        let tl = TmacLinear::new(&qm, KernelOpts::tmac()).expect("plan");
        let bl = DequantLinear::new(&qm).expect("pack");
        group.bench(&format!("tmac/{bits}"), || {
            tl.gemm(&act, n, &mut out, &ctx).expect("gemm");
        });
        group.bench(&format!("llama_cpp_blas/{bits}"), || {
            sgemm::gemm_blas(&bl, &act, n, &mut out, &ctx).expect("gemm");
        });
    }
    group.finish();
}
