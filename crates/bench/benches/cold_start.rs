//! Cold start: quantize-from-scratch vs prepacked `.tmac` mmap load.
//!
//! The startup-cost axis the rest of the suite is blind to. Every decode
//! bench measures steady state; this one measures what happens *before*
//! the first token: the legacy path regenerates synthetic `f32` weights,
//! re-quantizes and re-packs them on every process start
//! (`Model::synthetic` — generate+quantize+pack), while the container path
//! maps a `.tmac` file and borrows the already-transformed weight tiles
//! zero-copy (`Model::from_tmac`, including the full checksum sweep).
//!
//! Shape: one full Llama-2-7B layer (dim 4096, FFN 11008, 2-bit) — the
//! per-layer shape the acceptance gate names. The measured ratio
//! `load_vs_quantize` is written to `TMAC_PERF_OUT` (merge-write, shared
//! with `batched_decode`) and gated at ≥ 10x in `perf_thresholds.json`.
//!
//! Environment: `TMAC_BENCH_QUICK=1` (fewer load repetitions),
//! `TMAC_PERF_OUT=path.json`, `TMAC_BENCH_THREADS=n`.

use std::time::Instant;
use tmac_core::{ExecCtx, KernelOpts};
use tmac_llm::{BackendKind, KvCache, LoadMode, Model, ModelConfig, Scratch, WeightQuant};

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v != "0" && !v.is_empty())
}

fn main() {
    let quick = env_flag("TMAC_BENCH_QUICK");
    let threads: usize = std::env::var("TMAC_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    // The acceptance shape: full 7B per-layer matrices, one layer, small
    // vocab so the head does not dominate either path.
    let cfg = ModelConfig::llama2_7b().scaled(1, 64, 128);
    let quant = WeightQuant::Rtn(2);
    let kind = BackendKind::Tmac(KernelOpts::tmac());
    let ctx = ExecCtx::new(threads);

    println!(
        "cold_start: {} (dim {}, ffn {}, {} layer(s), 2-bit)\n",
        cfg.name, cfg.dim, cfg.ffn_dim, cfg.n_layers
    );

    // Path 1: the legacy startup — generate + quantize + pack, in-process.
    let t0 = Instant::now();
    let model = Model::synthetic(&cfg, quant, kind, 7).expect("model");
    let synth_s = t0.elapsed().as_secs_f64();
    println!(
        "{:<36} {:>9.3} s",
        "generate+quantize+pack (synthetic)", synth_s
    );

    // Convert once (the offline step; reported, not gated).
    let path = std::env::temp_dir().join(format!("tmac-cold-start-{}.tmac", std::process::id()));
    let t0 = Instant::now();
    model.save_tmac(&path).expect("save container");
    let save_s = t0.elapsed().as_secs_f64();
    let mib = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0) as f64 / (1024.0 * 1024.0);
    println!(
        "{:<36} {:>9.3} s   ({mib:.1} MiB)",
        "serialize .tmac (offline, once)", save_s
    );

    // Path 2: prepacked mmap load, including the integrity sweep. Best of
    // a few runs (page cache warm — the serving-restart scenario).
    let reps = if quick { 3 } else { 5 };
    let mut load_s = f64::INFINITY;
    let mut loaded = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let m = Model::from_tmac(&path, &kind, LoadMode::Mmap).expect("load container");
        load_s = load_s.min(t0.elapsed().as_secs_f64());
        loaded = Some(m);
    }
    println!(
        "{:<36} {:>9.3} s   (best of {reps}, checksums verified)",
        ".tmac mmap load (prepacked)", load_s
    );

    // The loaded model must be the model: one decode step, bit-exact.
    let loaded = loaded.expect("at least one load");
    let logits = |m: &Model| -> Vec<f32> {
        let mut cache = KvCache::new(&m.cfg);
        let mut s = Scratch::new(&m.cfg);
        m.forward(1, 0, &mut cache, &mut s, &ctx).expect("forward");
        s.logits.clone()
    };
    assert_eq!(
        logits(&model),
        logits(&loaded),
        "mmap-loaded model must decode bit-identically"
    );

    let ratio = synth_s / load_s.max(1e-9);
    println!(
        "\n{:<36} {:>8.1}x  (gated >= 10x)",
        "load_vs_quantize", ratio
    );

    let _ = std::fs::remove_file(&path);
    if let Ok(out) = std::env::var("TMAC_PERF_OUT") {
        tmac_bench::write_perf_out(
            &out,
            &[
                ("cold_synth_s", synth_s),
                ("cold_save_s", save_s),
                ("cold_load_s", load_s),
                ("load_vs_quantize", ratio),
            ],
        );
    }
}
