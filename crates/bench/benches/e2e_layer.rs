//! Figure 8 bench: one transformer decode step (tiny config) per backend —
//! the end-to-end path the throughput experiments integrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tmac_llm::{BackendKind, Engine, Model, ModelConfig, WeightQuant};
use tmac_threadpool::ThreadPool;

fn bench_decode_step(c: &mut Criterion) {
    let pool = ThreadPool::new(1);
    let cfg = ModelConfig {
        name: "bench-mini".into(),
        dim: 256,
        n_layers: 2,
        n_heads: 4,
        n_kv_heads: 4,
        ffn_dim: 704,
        vocab: 512,
        seq_max: 64,
        rope_theta: 10000.0,
    };
    let mut group = c.benchmark_group("fig8_decode_step");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, kind) in [
        ("f32", BackendKind::F32),
        ("llama_cpp", BackendKind::Dequant),
        ("tmac", BackendKind::Tmac(tmac_core::KernelOpts::tmac())),
    ] {
        let model = Model::synthetic(&cfg, WeightQuant::Rtn(2), kind, 3).expect("model");
        let mut engine = Engine::new(model);
        group.bench_with_input(BenchmarkId::new("backend", name), &name, |b, _| {
            let mut pos = 0usize;
            b.iter(|| {
                if pos + 1 >= cfg.seq_max {
                    engine.reset();
                    pos = 0;
                }
                let _ = engine.step(1 + (pos as u32 % 100), pos, &pool).expect("step");
                pos += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decode_step);
criterion_main!(benches);
