//! Figure 8 bench: one transformer decode step (tiny config) per backend —
//! the end-to-end path the throughput experiments integrate.

use std::time::Duration;
use tmac_bench::BenchGroup;
use tmac_core::ExecCtx;
use tmac_llm::{BackendKind, Engine, KvPrecision, Model, ModelConfig, WeightQuant};

fn main() {
    let ctx = ExecCtx::new(1);
    let cfg = ModelConfig {
        name: "bench-mini".into(),
        dim: 256,
        n_layers: 2,
        n_heads: 4,
        n_kv_heads: 4,
        ffn_dim: 704,
        vocab: 512,
        seq_max: 64,
        rope_theta: 10000.0,
        kv_precision: KvPrecision::F32,
    };
    let mut group = BenchGroup::new("fig8_decode_step");
    group.measurement_time(Duration::from_secs(1));
    for (name, kind) in [
        ("f32", BackendKind::F32),
        ("llama_cpp", BackendKind::Dequant),
        ("tmac", BackendKind::Tmac(tmac_core::KernelOpts::tmac())),
    ] {
        let model = Model::synthetic(&cfg, WeightQuant::Rtn(2), kind, 3).expect("model");
        let mut engine = Engine::new(model);
        let mut pos = 0usize;
        group.bench(name, || {
            if pos + 1 >= cfg.seq_max {
                engine.reset();
                pos = 0;
            }
            let _ = engine
                .step(1 + (pos as u32 % 100), pos, &ctx)
                .expect("step");
            pos += 1;
        });
    }
    group.finish();
}
