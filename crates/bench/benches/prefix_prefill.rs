//! Shared-prefix prefill: N requests reusing a common system prompt
//! through the radix prompt cache versus N private (cache-opted-out)
//! prefills, at N = 2 / 8 / 16.
//!
//! Each request is the shared prefix plus a short distinct tail; with the
//! cache warm, the scheduler skips the prefix's prefill entirely and only
//! forwards the tail, so the burst should complete in roughly 1/N the
//! unshared wall clock while holding strictly fewer KV pages than N dense
//! sequences. Both sides decode through the same paged cache, and the
//! bench asserts the shared burst's tokens are bit-exact vs the private
//! one before reporting any number.
//!
//! Environment:
//! * `TMAC_BENCH_QUICK=1` — smaller model and fewer repeats (CI smoke).
//! * `TMAC_PERF_OUT=path.json` — merge-write `prefix_prefill_speedup` and
//!   `kv_bytes_ratio` (both at N = 8) for the `perf-smoke` CI gate.
//! * `TMAC_BENCH_THREADS=n` — thread-pool size (default 1).

use std::time::Instant;
use tmac_core::ExecCtx;
use tmac_llm::batch::{Scheduler, SchedulerConfig, SubmitRequest};
use tmac_llm::{BackendKind, KvPrecision, Model, ModelConfig, WeightQuant, PAGE_POSITIONS};

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v != "0" && !v.is_empty())
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// The shared system prompt spans four KV pages, so the cached path skips
/// a multi-page prefill rather than a trivial one.
const PREFIX_LEN: usize = 4 * PAGE_POSITIONS;

fn bench_cfg(quick: bool) -> ModelConfig {
    if quick {
        ModelConfig {
            name: "prefix-quick".into(),
            dim: 1024,
            n_layers: 1,
            n_heads: 8,
            n_kv_heads: 8,
            ffn_dim: 2816,
            vocab: 64,
            seq_max: PREFIX_LEN + 2 * PAGE_POSITIONS,
            rope_theta: 10000.0,
            kv_precision: KvPrecision::F32,
        }
    } else {
        ModelConfig::llama2_7b().scaled(1, 64, PREFIX_LEN + 2 * PAGE_POSITIONS)
    }
}

fn prompts_for(n: usize, vocab: usize) -> Vec<Vec<u32>> {
    let prefix: Vec<u32> = (0..PREFIX_LEN as u32)
        .map(|i| (i * 7 + 3) % vocab as u32)
        .collect();
    (0..n as u32)
        .map(|i| {
            let mut p = prefix.clone();
            p.extend_from_slice(&[(i * 5 + 2) % vocab as u32, (i * 11 + 1) % vocab as u32]);
            p
        })
        .collect()
}

/// Decode length per request: long enough that every sequence in a burst
/// stays active until all have prefilled, so the dense side's measured
/// arena really is N concurrent slots (a `max_new` of 1 would retire each
/// sequence at its own prefill, hiding the dense footprint).
const N_NEW: usize = 8;

/// Submits every prompt and runs the batch to completion, returning each
/// request's tokens in prompt order.
fn run_burst(
    sched: &mut Scheduler,
    prompts: &[Vec<u32>],
    cache_prompt: bool,
    ctx: &ExecCtx,
) -> Vec<Vec<u32>> {
    let ids: Vec<_> = prompts
        .iter()
        .map(|p| {
            sched
                .submit(SubmitRequest::greedy(p, N_NEW).with_cache_prompt(cache_prompt))
                .expect("submit")
        })
        .collect();
    let done = sched.run_to_completion(ctx).expect("run");
    ids.iter()
        .map(|id| {
            let f = done.iter().find(|f| f.id == *id).expect("finished");
            assert!(!f.reason.is_error(), "burst request failed: {:?}", f.reason);
            f.tokens.clone()
        })
        .collect()
}

fn main() {
    let quick = env_flag("TMAC_BENCH_QUICK");
    let threads = env_usize("TMAC_BENCH_THREADS", 1);
    let iters = if quick { 2 } else { 3 };
    let cfg = bench_cfg(quick);
    let model = Model::synthetic(
        &cfg,
        WeightQuant::Rtn(2),
        BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
        7,
    )
    .expect("model");
    let ctx = ExecCtx::new(threads);

    println!(
        "prefix_prefill: {} (dim {}, {} layer(s), 2-bit), shared prefix {} tokens ({} pages), {} thread(s)\n",
        cfg.name,
        cfg.dim,
        cfg.n_layers,
        PREFIX_LEN,
        PREFIX_LEN / PAGE_POSITIONS,
        threads
    );

    let mut gated: Vec<(&str, f64)> = Vec::new();
    for n in [2usize, 8, 16] {
        let prompts = prompts_for(n, cfg.vocab);
        let sched_cfg = SchedulerConfig {
            max_batch: n,
            ..SchedulerConfig::default()
        };

        // Memory + correctness pass on fresh schedulers: arena size after
        // one burst is the peak page footprint of N concurrent sequences.
        let mut dense = Scheduler::new(model.clone(), sched_cfg);
        let dense_tokens = run_burst(&mut dense, &prompts, false, &ctx);
        let dense_bytes = dense.kv_stats().resident_bytes;

        let mut shared = Scheduler::new(model.clone(), sched_cfg);
        // Warm the radix index with the bare prefix, as a deployed server
        // would after its first request.
        let _ = run_burst(
            &mut shared,
            &[prompts[0][..PREFIX_LEN].to_vec()],
            true,
            &ctx,
        );
        let shared_tokens = run_burst(&mut shared, &prompts, true, &ctx);
        let shared_bytes = shared.kv_stats().resident_bytes;
        assert_eq!(
            shared_tokens, dense_tokens,
            "shared-prefix burst must be bit-exact vs private prefill at N={n}"
        );
        let hits = shared.kv_stats().prefix_hits;
        assert!(hits >= n as u64, "warm burst must hit the cache at N={n}");

        // Timing pass: schedulers are reused, so the shared side stays
        // warm and the dense side re-prefills everything each iteration.
        let mut dense_s = f64::INFINITY;
        let mut shared_s = f64::INFINITY;
        for _ in 0..iters {
            let t0 = Instant::now();
            let _ = run_burst(&mut dense, &prompts, false, &ctx);
            dense_s = dense_s.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            let _ = run_burst(&mut shared, &prompts, true, &ctx);
            shared_s = shared_s.min(t0.elapsed().as_secs_f64());
        }
        let speedup = dense_s / shared_s;
        let bytes_ratio = shared_bytes as f64 / dense_bytes as f64;
        println!(
            "N={n:<3} dense {:>9} shared {:>9}  speedup {speedup:>6.2}x   kv bytes {:>10} vs {:>10} (ratio {bytes_ratio:.3})",
            tmac_bench::format_secs(dense_s),
            tmac_bench::format_secs(shared_s),
            shared_bytes,
            dense_bytes,
        );
        if n == 8 {
            gated.push(("prefix_prefill_speedup", speedup));
            gated.push(("kv_bytes_ratio", bytes_ratio));
        }
    }

    if let Ok(path) = std::env::var("TMAC_PERF_OUT") {
        tmac_bench::write_perf_out(&path, &gated);
    }
}
