//! Ablation benches for the design choices DESIGN.md calls out:
//! mirror consolidation, interleaving, fast aggregation, and `tile_k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tmac_bench::{gaussian, quantized, BENCH_K, BENCH_M};
use tmac_core::{gemv, KernelOpts, WeightPlan};
use tmac_threadpool::ThreadPool;

fn bench_ablations(c: &mut Criterion) {
    let pool = ThreadPool::new(1);
    let act = gaussian(BENCH_K, 19);
    let mut out = vec![0f32; BENCH_M];
    let qm = quantized(BENCH_M, BENCH_K, 2, 21);
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));

    let mut no_il = KernelOpts::tmac();
    no_il.interleave = false;
    let mut tk128 = KernelOpts::tmac();
    tk128.tile_k = 128;
    let mut tk1024 = KernelOpts::tmac();
    tk1024.tile_k = 1024;
    let cases: [(&str, KernelOpts); 6] = [
        ("tmac_default", KernelOpts::tmac()),
        ("mirror_on", KernelOpts::tmac_mirror()),
        ("interleave_off", no_il),
        ("fast_aggregation", KernelOpts::tmac_fast_aggregation()),
        ("tile_k_128", tk128),
        ("tile_k_1024", tk1024),
    ];
    for (name, opts) in cases {
        let plan = WeightPlan::new(&qm, opts).expect("plan");
        group.bench_with_input(BenchmarkId::new("variant", name), &name, |b, _| {
            b.iter(|| gemv::mpgemv(&plan, &act, &mut out, &pool).expect("gemv"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
