//! Ablation benches for the design choices DESIGN.md calls out:
//! mirror consolidation, interleaving, fast aggregation, and `tile_k`.

use tmac_bench::{gaussian, quantized, BenchGroup, BENCH_K, BENCH_M};
use tmac_core::{gemv, ExecCtx, KernelOpts, WeightPlan};

fn main() {
    let ctx = ExecCtx::new(1);
    let act = gaussian(BENCH_K, 19);
    let mut out = vec![0f32; BENCH_M];
    let qm = quantized(BENCH_M, BENCH_K, 2, 21);
    let mut group = BenchGroup::new("ablations");

    let mut no_il = KernelOpts::tmac();
    no_il.interleave = false;
    let mut tk128 = KernelOpts::tmac();
    tk128.tile_k = 128;
    let mut tk1024 = KernelOpts::tmac();
    tk1024.tile_k = 1024;
    let cases: [(&str, KernelOpts); 6] = [
        ("tmac_default", KernelOpts::tmac()),
        ("mirror_on", KernelOpts::tmac_mirror()),
        ("interleave_off", no_il),
        ("fast_aggregation", KernelOpts::tmac_fast_aggregation()),
        ("tile_k_128", tk128),
        ("tile_k_1024", tk1024),
    ];
    for (name, opts) in cases {
        let plan = WeightPlan::new(&qm, opts).expect("plan");
        group.bench(name, || {
            gemv::mpgemv(&plan, &act, &mut out, &ctx).expect("gemv");
        });
    }
    group.finish();
}
