//! Shared-table caching bench: per-layer decode with and without the
//! `ExecCtx` activation-table cache.
//!
//! One decode step of a llama-style layer runs five projections over two
//! distinct activations — QKV over the attention-normed input, gate/up over
//! the FFN-normed input (wo and w2 consume their own activations and are
//! kept out so the bench isolates the *sharable* work). Without the cache
//! each projection rebuilds its tables (5 builds); with it, the layer does
//! 2 builds and 3 lookups. The delta is the decode-path win of the unified
//! execution-context API.

use std::time::Duration;
use tmac_bench::{gaussian, quantized, BenchGroup};
use tmac_core::{ExecCtx, KernelOpts, TmacLinear};

fn main() {
    // Llama-7B-shaped layer, scaled down 2x to keep the suite fast:
    // dim 2048, ffn 5504, 2-bit weights.
    let (dim, ffn, bits) = (2048usize, 5504usize, 2u8);
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let ctx = ExecCtx::new(threads);

    let opts = KernelOpts::tmac();
    let wq = TmacLinear::new(&quantized(dim, dim, bits, 1), opts).expect("wq");
    let wk = TmacLinear::new(&quantized(dim, dim, bits, 2), opts).expect("wk");
    let wv = TmacLinear::new(&quantized(dim, dim, bits, 3), opts).expect("wv");
    let w1 = TmacLinear::new(&quantized(ffn, dim, bits, 4), opts).expect("w1");
    let w3 = TmacLinear::new(&quantized(ffn, dim, bits, 5), opts).expect("w3");

    let attn_in = gaussian(dim, 10);
    let ffn_in = gaussian(dim, 11);
    let mut q = vec![0f32; dim];
    let mut k = vec![0f32; dim];
    let mut v = vec![0f32; dim];
    let mut gate = vec![0f32; ffn];
    let mut up = vec![0f32; ffn];

    let mut group = BenchGroup::new("table_reuse");
    group.measurement_time(Duration::from_secs(2));

    let fresh = group.bench("layer_fresh_tables", || {
        // The pre-redesign path: every projection rebuilds its tables.
        wq.gemv(&attn_in, &mut q, &ctx).expect("wq");
        wk.gemv(&attn_in, &mut k, &ctx).expect("wk");
        wv.gemv(&attn_in, &mut v, &ctx).expect("wv");
        w1.gemv(&ffn_in, &mut gate, &ctx).expect("w1");
        w3.gemv(&ffn_in, &mut up, &ctx).expect("w3");
    });

    let shared = group.bench("layer_shared_tables", || {
        // The ExecCtx hot path: QKV share one build, gate/up share another.
        ctx.next_activation();
        wq.gemv_cached(&attn_in, &mut q, &ctx).expect("wq");
        wk.gemv_cached(&attn_in, &mut k, &ctx).expect("wk");
        wv.gemv_cached(&attn_in, &mut v, &ctx).expect("wv");
        ctx.next_activation();
        w1.gemv_cached(&ffn_in, &mut gate, &ctx).expect("w1");
        w3.gemv_cached(&ffn_in, &mut up, &ctx).expect("w3");
    });

    // Isolate the precompute itself for context: one table build.
    let plan_only = TmacLinear::new(&quantized(dim, dim, bits, 6), opts).expect("plan");
    group.bench("single_table_build", || {
        let t = plan_only.tables(&attn_in).expect("tables");
        std::hint::black_box(t);
    });
    group.finish();

    let stats = ctx.table_stats();
    println!(
        "table cache: {} hits / {} misses over the shared-path iterations",
        stats.hits, stats.misses
    );
    println!(
        "per-layer decode (5 sharable projections): fresh {} -> shared {}  ({:.1}% faster)",
        tmac_bench::format_secs(fresh.best),
        tmac_bench::format_secs(shared.best),
        100.0 * (fresh.best - shared.best) / fresh.best
    );
}
