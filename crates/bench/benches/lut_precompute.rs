//! Bench of the online stage (Alg. 1 `Precompute`): table construction with
//! and without the §3.3 compressions — mirror consolidation halves the
//! entries built, table quantization adds the i8 rounding pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tmac_bench::gaussian;
use tmac_core::{ActTables, KernelOpts};

fn bench_precompute(c: &mut Criterion) {
    let act = gaussian(4096, 17);
    let mut group = c.benchmark_group("lut_precompute");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let cases: [(&str, KernelOpts); 4] = [
        ("f32_tables", KernelOpts::tm_base()),
        ("quantized", KernelOpts::plus_table_quant()),
        ("quantized_mirror", KernelOpts::tmac_mirror()),
        ("quantized_fa", KernelOpts::tmac_fast_aggregation()),
    ];
    for (name, opts) in cases {
        group.bench_with_input(BenchmarkId::new("build", name), &name, |b, _| {
            b.iter(|| ActTables::build(&act, 32, &opts).expect("tables"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_precompute);
criterion_main!(benches);
