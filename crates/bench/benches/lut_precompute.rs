//! Bench of the online stage (Alg. 1 `Precompute`): table construction with
//! and without the §3.3 compressions — mirror consolidation halves the
//! entries built, table quantization adds the i8 rounding pass.

use std::time::Duration;
use tmac_bench::{black_box, gaussian, BenchGroup};
use tmac_core::{ActTables, KernelOpts};

fn main() {
    let act = gaussian(4096, 17);
    let mut group = BenchGroup::new("lut_precompute");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let cases: [(&str, KernelOpts); 4] = [
        ("f32_tables", KernelOpts::tm_base()),
        ("quantized", KernelOpts::plus_table_quant()),
        ("quantized_mirror", KernelOpts::tmac_mirror()),
        ("quantized_fa", KernelOpts::tmac_fast_aggregation()),
    ];
    for (name, opts) in cases {
        group.bench(name, || {
            black_box(ActTables::build(&act, 32, &opts).expect("tables"));
        });
    }
    group.finish();
}
