//! Figure 6 bench: mpGEMV latency across bit-widths, T-MAC vs llama.cpp.

use tmac_baseline::DequantLinear;
use tmac_bench::{gaussian, quantized, BenchGroup, BENCH_K, BENCH_M};
use tmac_core::{ExecCtx, KernelOpts, TmacLinear};

fn main() {
    let ctx = ExecCtx::new(1);
    let act = gaussian(BENCH_K, 3);
    let mut out = vec![0f32; BENCH_M];
    let mut group = BenchGroup::new("fig6_mpgemv");
    for bits in 1..=4u8 {
        let qm = quantized(BENCH_M, BENCH_K, bits, 5);
        let tl = TmacLinear::new(&qm, KernelOpts::tmac()).expect("plan");
        let bl = DequantLinear::new(&qm).expect("pack");
        group.bench(&format!("tmac/{bits}"), || {
            tl.gemv(&act, &mut out, &ctx).expect("gemv");
        });
        group.bench(&format!("llama_cpp/{bits}"), || {
            bl.gemv(&act, &mut out, &ctx).expect("gemv");
        });
    }
    group.finish();
}
