//! Figure 6 bench: mpGEMV latency across bit-widths, T-MAC vs llama.cpp.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tmac_baseline::DequantLinear;
use tmac_bench::{gaussian, quantized, BENCH_K, BENCH_M};
use tmac_core::{KernelOpts, TmacLinear};
use tmac_threadpool::ThreadPool;

fn bench_mpgemv(c: &mut Criterion) {
    let pool = ThreadPool::new(1);
    let act = gaussian(BENCH_K, 3);
    let mut out = vec![0f32; BENCH_M];
    let mut group = c.benchmark_group("fig6_mpgemv");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    for bits in 1..=4u8 {
        let qm = quantized(BENCH_M, BENCH_K, bits, 5);
        let tl = TmacLinear::new(&qm, KernelOpts::tmac()).expect("plan");
        let bl = DequantLinear::new(&qm).expect("pack");
        group.bench_with_input(BenchmarkId::new("tmac", bits), &bits, |b, _| {
            b.iter(|| tl.gemv(&act, &mut out, &pool).expect("gemv"));
        });
        group.bench_with_input(BenchmarkId::new("llama_cpp", bits), &bits, |b, _| {
            b.iter(|| bl.gemv(&act, &mut out, &pool).expect("gemv"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mpgemv);
criterion_main!(benches);
