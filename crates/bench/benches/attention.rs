//! Long-context attention: the per-layer attention primitive (f32 two-pass
//! vs i8 fused streaming-softmax over the head-major KV cache) and
//! end-to-end decode throughput *at* seq ∈ {128, 512, 2048}.
//!
//! Decode attention is a memory stream — every token reads the whole K/V
//! history — so at long contexts the i8 cache's 4× traffic cut translates
//! almost directly into time, while at short contexts both paths fit in
//! cache and the gap narrows. The end-to-end rows show how much of a full
//! decode step each ratio is worth at a 1-layer Llama-7B shape.
//!
//! Environment:
//! * `TMAC_BENCH_QUICK=1` — smaller head geometry and fewer iterations
//!   (CI smoke mode; the seq sweep is kept, including 2048).
//! * `TMAC_BENCH_THREADS=n` — thread-pool size (default 1).

use tmac_core::ExecCtx;
use tmac_eval::attn::{attn_seconds, decode_at_seq_tok_s};
use tmac_llm::{BackendKind, KvPrecision, Model, WeightQuant};

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v != "0" && !v.is_empty())
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

const SEQS: [usize; 3] = [128, 512, 2048];

fn main() {
    let quick = env_flag("TMAC_BENCH_QUICK");
    let threads = env_usize("TMAC_BENCH_THREADS", 1);
    let ctx = ExecCtx::new(threads);
    // The shared bench geometry (tmac_eval::attn::bench_cfg): Llama-2-7B
    // heads in full mode, 8×128 in quick mode, seq_max past 2048 so the
    // decode-at-depth rows fit.
    let cfg = tmac_eval::attn::bench_cfg(quick, 16);
    let (warmup, iters) = if quick { (1, 3) } else { (2, 10) };

    println!(
        "attention: {} heads x {} head_dim ({} kv heads), {} thread(s){}\n",
        cfg.n_heads,
        cfg.head_dim(),
        cfg.n_kv_heads,
        threads,
        if quick { " [quick]" } else { "" }
    );

    println!(
        "{:>6}  {:>12}  {:>12}  {:>8}",
        "seq", "f32 two-pass", "i8 fused", "speedup"
    );
    for seq in SEQS {
        let f = attn_seconds(&cfg, KvPrecision::F32, seq, &ctx, warmup, iters);
        let i = attn_seconds(&cfg, KvPrecision::I8, seq, &ctx, warmup, iters);
        println!(
            "{:>6}  {:>9.3} ms  {:>9.3} ms  {:>7.2}x",
            seq,
            f * 1e3,
            i * 1e3,
            f / i
        );
    }

    // End-to-end decode at depth: one full 2-bit T-MAC layer + head, cache
    // pre-filled to `seq`, decode continuing from there. Both models are
    // built once (the 7B-shape quantization dominates bench startup).
    println!("\ndecode-at-seq (1 layer, 2-bit T-MAC weights):");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>8}",
        "seq", "f32-kv tok/s", "i8-kv tok/s", "speedup"
    );
    let n_tokens = if quick { 4 } else { 8 };
    let models: Vec<Model> = [KvPrecision::F32, KvPrecision::I8]
        .into_iter()
        .map(|prec| {
            Model::synthetic(
                &cfg.clone().with_kv(prec),
                WeightQuant::Rtn(2),
                BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
                7,
            )
            .expect("model")
        })
        .collect();
    for seq in SEQS {
        let tok_s: Vec<f64> = models
            .iter()
            .map(|m| decode_at_seq_tok_s(m, seq, n_tokens, &ctx))
            .collect();
        println!(
            "{:>6}  {:>12.2}  {:>12.2}  {:>7.2}x",
            seq,
            tok_s[0],
            tok_s[1],
            tok_s[1] / tok_s[0]
        );
    }
}
