//! Figure 10 bench: the cumulative optimization ladder
//! (TM-base → +TQ → +Tiling → +Perm. → +Tuning → T-MAC → TM+FA).

use tmac_bench::{gaussian, quantized, BenchGroup, BENCH_K, BENCH_M};
use tmac_core::{gemv, ExecCtx, KernelOpts, WeightPlan};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let ctx = ExecCtx::new(threads);
    let act = gaussian(BENCH_K, 11);
    let mut out = vec![0f32; BENCH_M];
    let qm = quantized(BENCH_M, BENCH_K, 4, 13);
    let mut group = BenchGroup::new("fig10_breakdown");
    for (name, opts) in KernelOpts::breakdown_ladder() {
        let plan = WeightPlan::new(&qm, opts).expect("plan");
        group.bench(name, || {
            gemv::mpgemv(&plan, &act, &mut out, &ctx).expect("gemv");
        });
    }
    group.finish();
}
