//! Figure 10 bench: the cumulative optimization ladder
//! (TM-base → +TQ → +Tiling → +Perm. → +Tuning → T-MAC → TM+FA).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tmac_bench::{gaussian, quantized, BENCH_K, BENCH_M};
use tmac_core::{gemv, KernelOpts, WeightPlan};
use tmac_threadpool::ThreadPool;

fn bench_breakdown(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let pool = ThreadPool::new(threads);
    let act = gaussian(BENCH_K, 11);
    let mut out = vec![0f32; BENCH_M];
    let qm = quantized(BENCH_M, BENCH_K, 4, 13);
    let mut group = c.benchmark_group("fig10_breakdown");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    for (name, opts) in KernelOpts::breakdown_ladder() {
        let plan = WeightPlan::new(&qm, opts).expect("plan");
        group.bench_with_input(BenchmarkId::new("ladder", name), &name, |b, _| {
            b.iter(|| gemv::mpgemv(&plan, &act, &mut out, &pool).expect("gemv"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);
