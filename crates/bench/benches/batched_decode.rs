//! Batched serving throughput: aggregate tokens/sec of the continuous-
//! batching scheduler at B = 1 / 4 / 16 versus 16 sequential single-stream
//! decodes on the same layer shapes.
//!
//! The batched path routes every projection through `mpgemm` (one weight-
//! tile stream per row block instead of one per sequence, §3.2), so the
//! speedup over sequential decoding measures how memory-bound decode is on
//! the host: on bandwidth-starved edge cores it approaches `n_block`, on a
//! compute-bound desktop core it is bounded by the LUT arithmetic that
//! batching cannot amortize (measured ~1.1–1.25x at B=16 on the 1-core dev
//! hosts; see DESIGN.md §3).
//!
//! The measurement loops live in `tmac_eval::serving` and are shared with
//! the `serve_batch` eval binary so the two report comparable numbers.
//!
//! Environment:
//! * `TMAC_BENCH_QUICK=1` — smaller model and fewer tokens (CI smoke mode).
//! * `TMAC_PERF_OUT=path.json` — write the measured metrics as a flat JSON
//!   object (consumed by the `perf-smoke` CI job via `perf_check`).
//! * `TMAC_BENCH_THREADS=n` — thread-pool size (default 1).

use tmac_core::{ExecCtx, KernelOpts, TmacLinear};
use tmac_eval::serving::{batched_tok_s, sequential_tok_s, ServeWorkload};
use tmac_llm::{BackendKind, KvPrecision, Model, ModelConfig, WeightQuant};

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v != "0" && !v.is_empty())
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Kernel-level mpGEMM gate at `n = 16`: one FFN-shaped 2-bit layer, the
/// multi-row mpGEMM against (a) 16 sequential GEMVs and (b) the per-row
/// sweep the mpGEMM driver used before register blocking (`row_block = 1`).
/// Returns `(mpgemm_vs_gemv16, multirow_vs_perrow16)` as speedup ratios.
fn mpgemm_gate(cfg: &ModelConfig, ctx: &ExecCtx, iters: usize) -> (f64, f64) {
    let (m, k, n) = (cfg.ffn_dim, cfg.dim, 16usize);
    let w: Vec<f32> = (0..m * k)
        .map(|i| ((i as f32) * 0.19).sin() * 0.5)
        .collect();
    let act: Vec<f32> = (0..n * k).map(|i| ((i as f32) * 0.31).cos()).collect();
    let multi = TmacLinear::from_f32(&w, m, k, 2, 32, KernelOpts::tmac()).expect("plan");
    let mut per_row_opts = KernelOpts::tmac();
    per_row_opts.row_block = 1; // the PR 2 sweep: rows innermost, no register block
    let per_row = TmacLinear::from_f32(&w, m, k, 2, 32, per_row_opts).expect("plan");

    let mut out = vec![0f32; n * m];
    let seq = tmac_eval::time_best(
        || {
            for ni in 0..n {
                multi
                    .gemv(
                        &act[ni * k..(ni + 1) * k],
                        &mut out[ni * m..(ni + 1) * m],
                        ctx,
                    )
                    .expect("gemv");
            }
        },
        1,
        iters,
    );
    let gemm_multi = tmac_eval::time_best(
        || multi.gemm(&act, n, &mut out, ctx).expect("gemm"),
        1,
        iters,
    );
    let gemm_per_row = tmac_eval::time_best(
        || per_row.gemm(&act, n, &mut out, ctx).expect("gemm"),
        1,
        iters,
    );
    (seq / gemm_multi, gemm_per_row / gemm_multi)
}

fn main() {
    let quick = env_flag("TMAC_BENCH_QUICK");
    let threads = env_usize("TMAC_BENCH_THREADS", 1);
    // Full mode uses the Llama-2-7B per-layer shapes (one layer, shrunken
    // vocab/seq so the GEMM work dominates); quick mode shrinks everything
    // for CI smoke runs.
    let cfg = if quick {
        ModelConfig {
            name: "bench-quick".into(),
            dim: 1024,
            n_layers: 1,
            n_heads: 8,
            n_kv_heads: 8,
            ffn_dim: 2816,
            vocab: 64,
            seq_max: 64,
            rope_theta: 10000.0,
            kv_precision: KvPrecision::F32,
        }
    } else {
        ModelConfig::llama2_7b().scaled(1, 64, 128)
    };
    let w = ServeWorkload {
        streams: 16,
        prompt_len: 4,
        n_new: if quick { 6 } else { 16 },
    };
    let model = Model::synthetic(
        &cfg,
        WeightQuant::Rtn(2),
        BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
        7,
    )
    .expect("model");
    let ctx = ExecCtx::new(threads);

    println!(
        "batched_decode: {} (dim {}, ffn {}, {} layer(s), 2-bit), {} streams x {} tokens, {} thread(s)\n",
        cfg.name, cfg.dim, cfg.ffn_dim, cfg.n_layers, w.streams, w.n_new, threads
    );

    let seq = sequential_tok_s(&model, &w, &ctx);
    println!("{:<28} {:>10.2} tok/s (aggregate)", "sequential x16", seq);

    let mut metrics: Vec<(&str, f64)> = vec![("seq16_tok_s", seq)];
    let mut b16 = seq;
    for b in [1usize, 4, 16] {
        let tok_s = batched_tok_s(&model, &w, b, &ctx);
        let speedup = tok_s / seq;
        println!(
            "{:<28} {:>10.2} tok/s (aggregate)   {:>5.2}x vs sequential",
            format!("scheduler B={b}"),
            tok_s,
            speedup
        );
        metrics.push(match b {
            1 => ("b1_tok_s", tok_s),
            4 => ("b4_tok_s", tok_s),
            _ => ("b16_tok_s", tok_s),
        });
        if b == 16 {
            b16 = tok_s;
        }
    }
    metrics.push(("speedup_b16", b16 / seq));

    let gate_iters = if quick { 3 } else { 10 };
    let (vs_gemv, vs_perrow) = mpgemm_gate(&cfg, &ctx, gate_iters);
    println!(
        "\n{:<28} {:>10.2}x (16 GEMVs / one 16-row mpGEMM, {}x{} 2-bit)",
        "mpgemm vs sequential gemv", vs_gemv, cfg.ffn_dim, cfg.dim
    );
    println!(
        "{:<28} {:>10.2}x (per-row sweep / multi-row kernel)",
        "multi-row vs per-row sweep", vs_perrow
    );
    metrics.push(("mpgemm_vs_gemv16", vs_gemv));
    metrics.push(("multirow_vs_perrow16", vs_perrow));

    // Long-context attention gate: i8 fused streaming-softmax vs f32
    // two-pass at seq 2048 over the head-major KV cache, plus a
    // decode-at-depth liveness floor. The geometry is shared with
    // `benches/attention.rs` (tmac_eval::attn::bench_cfg) so the gated
    // ratio and the logged sweep measure the same shape.
    let attn_cfg = tmac_eval::attn::bench_cfg(quick, 8);
    let (aw, ai) = if quick { (1, 3) } else { (2, 8) };
    let attn_ratio = tmac_eval::attn::attn_ratio(&attn_cfg, 2048, &ctx, aw, ai);
    println!(
        "\n{:<28} {:>10.2}x (f32 two-pass / i8 fused, seq 2048, {} heads x {})",
        "i8 attention vs f32",
        attn_ratio,
        attn_cfg.n_heads,
        attn_cfg.head_dim()
    );
    metrics.push(("i8_attn_vs_f32_attn", attn_ratio));

    let i8_model = Model::synthetic(
        &attn_cfg.clone().with_kv(KvPrecision::I8),
        WeightQuant::Rtn(2),
        BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
        7,
    )
    .expect("model");
    let decode2048 =
        tmac_eval::attn::decode_at_seq_tok_s(&i8_model, 2048, if quick { 4 } else { 8 }, &ctx);
    println!(
        "{:<28} {:>10.2} tok/s (i8 KV, 1-layer decode at seq 2048)",
        "decode @ 2048", decode2048
    );
    metrics.push(("decode2048_tok_s", decode2048));

    if let Ok(path) = std::env::var("TMAC_PERF_OUT") {
        // Merge-write: `cold_start` contributes its metrics to the same
        // file in the perf-smoke pipeline.
        tmac_bench::write_perf_out(&path, &metrics);
    }
}
