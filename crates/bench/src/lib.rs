//! Shared helpers for the Criterion benchmark suite.
//!
//! Each bench target regenerates one table/figure of the paper (see
//! `DESIGN.md` §4); this library provides the deterministic inputs and a
//! fast Criterion configuration suitable for the full-workspace bench run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-Gaussian data.
pub fn gaussian(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..4).map(|_| rng.gen_range(-0.5f32..0.5)).sum::<f32>())
        .collect()
}

/// Quantizes a fresh weight matrix for a bench case.
pub fn quantized(m: usize, k: usize, bits: u8, seed: u64) -> tmac_quant::QuantizedMatrix {
    let w = gaussian(m * k, seed);
    tmac_quant::rtn::quantize(&w, m, k, bits, 32).expect("quantize")
}

/// The bench shape used everywhere (modest so the suite finishes quickly;
/// the eval binaries run the full Figure 6 grid).
pub const BENCH_M: usize = 1024;
/// Bench reduction length.
pub const BENCH_K: usize = 4096;
