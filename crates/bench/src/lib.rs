//! Shared helpers for the micro-benchmark suite.
//!
//! Each bench target regenerates one table/figure of the paper (see
//! `DESIGN.md` §5); this library provides the deterministic inputs and a
//! small self-contained Criterion-style harness — the `criterion` crate is
//! unavailable on the offline evaluation host, so the benches are plain
//! `harness = false` binaries built on [`BenchGroup`]: calibrated iteration
//! counts, warm-up, and best/mean wall-clock reporting.

use std::time::{Duration, Instant};
use tmac_rng::Rng;

/// Deterministic pseudo-Gaussian data.
pub fn gaussian(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gaussian_ish()).collect()
}

/// Quantizes a fresh weight matrix for a bench case.
pub fn quantized(m: usize, k: usize, bits: u8, seed: u64) -> tmac_quant::QuantizedMatrix {
    let w = gaussian(m * k, seed);
    tmac_quant::rtn::quantize(&w, m, k, bits, 32).expect("quantize")
}

/// The bench shape used everywhere (modest so the suite finishes quickly;
/// the eval binaries run the full Figure 6 grid).
pub const BENCH_M: usize = 1024;
/// Bench reduction length.
pub const BENCH_K: usize = 4096;

/// One measurement: best and mean seconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Fastest observed iteration (noise-robust point estimate).
    pub best: f64,
    /// Mean over all timed iterations.
    pub mean: f64,
    /// Timed iterations.
    pub iters: usize,
}

/// A named group of benchmark cases with aligned reporting, mirroring the
/// `criterion` group API closely enough that bench targets read the same.
pub struct BenchGroup {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    results: Vec<(String, Measurement)>,
}

impl BenchGroup {
    /// Creates a group with default budgets (300 ms warm-up, 900 ms
    /// measurement per case — the same budgets the criterion config used).
    pub fn new(name: &str) -> Self {
        BenchGroup {
            name: name.to_string(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(900),
            results: Vec::new(),
        }
    }

    /// Overrides the per-case warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Overrides the per-case measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one case: warms up for the warm-up budget, then times
    /// iterations until the measurement budget is spent. Prints and records
    /// the result.
    pub fn bench<F: FnMut()>(&mut self, label: &str, mut f: F) -> Measurement {
        // Warm-up, also calibrating a per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0usize;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            f();
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = (self.measurement.as_secs_f64() / est.max(1e-9)).ceil() as usize;
        let iters = target.clamp(5, 1_000_000);

        let mut best = f64::INFINITY;
        let mut total = 0f64;
        for _ in 0..iters {
            let t0 = Instant::now();
            f();
            let dt = t0.elapsed().as_secs_f64();
            best = best.min(dt);
            total += dt;
        }
        let m = Measurement {
            best,
            mean: total / iters as f64,
            iters,
        };
        println!(
            "{:<40} time: [best {:>10} mean {:>10}]  ({} iters)",
            format!("{}/{}", self.name, label),
            format_secs(m.best),
            format_secs(m.mean),
            m.iters
        );
        self.results.push((label.to_string(), m));
        m
    }

    /// All recorded results, in run order.
    pub fn results(&self) -> &[(String, Measurement)] {
        &self.results
    }

    /// Prints a closing separator (criterion-style `finish`).
    pub fn finish(&self) {
        println!();
    }
}

/// Formats seconds with an auto-selected unit.
pub fn format_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Opaque value sink (stand-in for `criterion::black_box` on stable).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Resolves a relative output path against the *workspace* root (cargo
/// runs bench binaries with the package directory as CWD, which would
/// otherwise scatter `results/` under `crates/bench/`).
pub fn resolve_out(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        return p.to_path_buf();
    }
    let mut dir = std::env::var("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().expect("cwd"));
    while !dir.join("Cargo.lock").exists() {
        if !dir.pop() {
            return p.to_path_buf();
        }
    }
    dir.join(p)
}

/// Parses a flat `{"key": number, ...}` JSON object — the only shape the
/// perf pipeline uses (serde is unavailable offline). The one parser for
/// the whole pipeline: the bench merge-writer and the `perf_check` CI
/// gate both go through it, so the wire format cannot silently fork.
///
/// # Errors
///
/// Returns a message naming the malformed construct.
pub fn parse_flat_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let body = text
        .trim()
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("expected a {...} object")?;
    let mut out = Vec::new();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("expected \"key\": value, got {pair:?}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad number for {key:?}: {e}"))?;
        out.push((key, value));
    }
    Ok(out)
}

/// Writes (or **merges into**) the `TMAC_PERF_OUT`-style flat JSON metrics
/// file: existing keys are kept unless this call overwrites them, so
/// several bench binaries (`batched_decode`, `cold_start`) can contribute
/// to one `ci_perf.json` that `perf_check` gates.
pub fn write_perf_out(path: &str, metrics: &[(&str, f64)]) {
    let out = resolve_out(path);
    let mut all: Vec<(String, f64)> = std::fs::read_to_string(&out)
        .ok()
        .and_then(|t| parse_flat_json(&t).ok())
        .unwrap_or_default();
    for (k, v) in metrics {
        // Non-finite values would produce invalid JSON; write 0 so a
        // broken measurement fails the min-gates loudly downstream.
        let v = if v.is_finite() { *v } else { 0.0 };
        if let Some(slot) = all.iter_mut().find(|(key, _)| key == k) {
            slot.1 = v;
        } else {
            all.push((k.to_string(), v));
        }
    }
    let body: Vec<String> = all
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v:.4}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out, json).expect("write perf json");
    println!("wrote {}", out.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_deterministic() {
        assert_eq!(gaussian(64, 7), gaussian(64, 7));
        assert_ne!(gaussian(64, 7), gaussian(64, 8));
    }

    #[test]
    fn bench_group_measures() {
        let mut g = BenchGroup::new("t");
        g.warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut x = 0u64;
        let m = g.bench("noop", || {
            x = black_box(x.wrapping_add(1));
        });
        assert!(m.best >= 0.0 && m.mean >= m.best);
        assert!(m.iters >= 5);
        assert_eq!(g.results().len(), 1);
    }

    #[test]
    fn flat_json_roundtrip_and_merge() {
        let parsed = parse_flat_json("{\n  \"a\": 1.5,\n  \"b\": 2\n}\n").unwrap();
        assert_eq!(parsed, vec![("a".into(), 1.5), ("b".into(), 2.0)]);
        assert!(parse_flat_json("not json").is_err());

        let dir = std::env::temp_dir().join(format!("tmac-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perf.json");
        let path_s = path.to_str().unwrap();
        write_perf_out(path_s, &[("a", 1.0), ("b", 2.0)]);
        // Merge: overwrite one key, add another, keep the rest.
        write_perf_out(path_s, &[("b", 3.0), ("c", 4.0)]);
        let merged = parse_flat_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            merged,
            vec![("a".into(), 1.0), ("b".into(), 3.0), ("c".into(), 4.0)]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn format_units() {
        assert!(format_secs(5e-9).ends_with("ns"));
        assert!(format_secs(5e-6).ends_with("µs"));
        assert!(format_secs(5e-3).ends_with("ms"));
        assert!(format_secs(5.0).ends_with(" s"));
    }
}
