//! The serving front-end: listener, request routing, and the
//! thread-per-connection fallback driver.
//!
//! Two connection drivers share all routing/response logic:
//!
//! * **Epoll** (`event_loop`, Linux): one thread multiplexes every
//!   connection through a non-blocking state machine.
//! * **Threads** (portable): one OS thread per connection with blocking
//!   reads under a short timeout, so drain/disconnect checks stay
//!   responsive.
//!
//! Both submit work over the [`crate::bridge`], answer `429 + Retry-After`
//! on queue-full, honor per-request deadlines with typed 504s, cancel the
//! sequence when the client goes away, and stop accepting during a
//! graceful drain while in-flight requests run to completion.

use crate::bridge::{
    self, BridgeHandle, EndReason, HealthState, SeqEvent, Submission, SubmitError, SupervisorOpts,
    TokenSink,
};
use crate::http::{self, HttpError, Limits, Request, Response};
use crate::json::Json;
use crate::metrics::Metrics;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tmac_core::failpoint::{self, FailAction};
use tmac_core::ExecCtx;
use tmac_llm::batch::{Scheduler, SeqTiming};
use tmac_llm::sampling::SamplingParams;

/// How connections are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnMode {
    /// Epoll on Linux, threads elsewhere.
    Auto,
    /// Single-threaded epoll event loop (Linux only).
    Epoll,
    /// One blocking OS thread per connection (portable).
    Threads,
}

impl ConnMode {
    /// Resolves `Auto` for the current platform.
    pub fn resolve(self) -> ConnMode {
        match self {
            ConnMode::Auto => {
                if cfg!(target_os = "linux") {
                    ConnMode::Epoll
                } else {
                    ConnMode::Threads
                }
            }
            m => m,
        }
    }
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Connection driver.
    pub mode: ConnMode,
    /// HTTP parsing limits.
    pub limits: Limits,
    /// `max_tokens` when the request omits it.
    pub default_max_tokens: usize,
    /// Deadline applied when the request omits `deadline_ms` (0 = none).
    pub default_deadline_ms: u64,
    /// Idle connection reaper threshold.
    pub idle_conn_timeout: Duration,
    /// Step-loop watchdog policy (restart budget, backoff, stall age).
    pub supervisor: SupervisorOpts,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            mode: ConnMode::Auto,
            limits: Limits::default(),
            default_max_tokens: 16,
            default_deadline_ms: 0,
            idle_conn_timeout: Duration::from_secs(10),
            supervisor: SupervisorOpts::default(),
        }
    }
}

/// State shared by the listener, connection drivers, and handle.
pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) bridge: BridgeHandle,
    pub(crate) metrics: Arc<Metrics>,
    req_counter: AtomicU64,
    pub(crate) draining: AtomicBool,
    pub(crate) stop: AtomicBool,
}

impl Shared {
    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// An admitted completion the connection driver must see through to its
/// terminal event.
pub(crate) struct PendingCompletion {
    pub(crate) rx: Receiver<SeqEvent>,
    pub(crate) cancel: Arc<AtomicBool>,
    pub(crate) stream: bool,
    pub(crate) id: u64,
    pub(crate) prompt_len: usize,
    /// Effective sampling params (request fields over server defaults),
    /// echoed back so clients can audit what ran.
    pub(crate) sampling: SamplingParams,
    /// Trace timestamp at submission; closes the request-lifecycle span.
    pub(crate) submit_ns: u64,
}

/// Closes the request-lifecycle span (submit → terminal event). Both
/// connection drivers call this when the `Done` event arrives.
pub(crate) fn trace_request_done(pc: &PendingCompletion, tokens: usize) {
    tmac_trace::complete(
        "serve",
        "request",
        pc.id,
        tokens as u64,
        pc.submit_ns,
        tmac_trace::now_ns(),
    );
}

/// What routing decided for one request.
pub(crate) enum Outcome {
    /// Write this response (connection may stay open).
    Respond(Response),
    /// A completion was admitted; drive its event stream.
    Completion(PendingCompletion),
}

/// Routes one parsed request. Mode-independent: the driver passes its
/// waker (epoll) or `None` (blocking threads).
pub(crate) fn handle_request(
    shared: &Shared,
    req: &Request,
    waker: Option<bridge::WakeFn>,
) -> Outcome {
    let m = &shared.metrics;
    match (
        req.method.as_str(),
        req.path.split('?').next().unwrap_or(""),
    ) {
        ("GET", "/healthz") => {
            m.req_healthz.inc();
            if shared.is_draining() {
                Outcome::Respond(Response::text(503, "draining\n"))
            } else {
                // The watchdog verdict: a stalled or dead step loop turns
                // the probe into a 503 so orchestrators stop routing here.
                match shared.bridge.health() {
                    HealthState::Ok => Outcome::Respond(Response::text(200, "ok\n")),
                    HealthState::Stalled { age } => Outcome::Respond(Response::text(
                        503,
                        &format!("stalled: no step for {:.3}s\n", age.as_secs_f64()),
                    )),
                    HealthState::Dead => {
                        Outcome::Respond(Response::text(503, "dead: step loop not running\n"))
                    }
                }
            }
        }
        ("GET", "/metrics") => {
            m.req_metrics.inc();
            Outcome::Respond(Response::text(200, &m.render()))
        }
        ("GET", "/debug/trace") => {
            // The in-memory span rings as a Chrome Trace Event Format
            // document (Perfetto-loadable). Valid-but-empty when the
            // `trace` feature is compiled out.
            m.req_other.inc();
            Outcome::Respond(Response::json_raw(200, tmac_trace::chrome_trace_json()))
        }
        ("POST", "/v1/completions") => {
            m.req_completions.inc();
            match submit_completion(shared, req, waker) {
                Ok(pc) => Outcome::Completion(pc),
                Err(resp) => Outcome::Respond(resp),
            }
        }
        (_, "/v1/completions") | (_, "/healthz") | (_, "/metrics") | (_, "/debug/trace") => {
            m.req_other.inc();
            let allow = if req.path.starts_with("/v1/") {
                "POST"
            } else {
                "GET"
            };
            Outcome::Respond(
                Response::error(405, "method_not_allowed", "wrong method for this route")
                    .with_header("Allow", allow),
            )
        }
        _ => {
            m.req_other.inc();
            Outcome::Respond(Response::error(404, "not_found", "no such route"))
        }
    }
}

/// Validates a completions body and admits it to the scheduler.
fn submit_completion(
    shared: &Shared,
    req: &Request,
    waker: Option<bridge::WakeFn>,
) -> Result<PendingCompletion, Response> {
    let info = &shared.bridge.info;
    let bad = |kind: &str, msg: &str| Err(Response::error(400, kind, msg));

    let Ok(text) = std::str::from_utf8(&req.body) else {
        return bad("invalid_json", "body is not UTF-8");
    };
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => return bad("invalid_json", &e.to_string()),
    };
    if !matches!(doc, Json::Obj(_)) {
        return bad("invalid_request", "body must be a JSON object");
    }

    let prompt = match doc.get("prompt") {
        Some(Json::Arr(items)) => {
            let mut ids = Vec::with_capacity(items.len());
            for it in items {
                match it.as_u64() {
                    Some(id) if (id as usize) < info.vocab => ids.push(id as u32),
                    Some(id) => {
                        return bad(
                            "invalid_request",
                            &format!("prompt token {id} out of vocab (size {})", info.vocab),
                        )
                    }
                    None => return bad("invalid_request", "prompt must be integer token ids"),
                }
            }
            ids
        }
        Some(Json::Str(_)) => {
            return bad(
                "invalid_request",
                "string prompts are unsupported; pass an array of token ids",
            )
        }
        Some(_) => return bad("invalid_request", "prompt must be an array of token ids"),
        None => return bad("invalid_request", "missing required field: prompt"),
    };
    if prompt.is_empty() {
        return bad("invalid_request", "prompt must not be empty");
    }

    let max_new = match doc.get("max_tokens") {
        None => shared.cfg.default_max_tokens,
        Some(v) => match v.as_u64() {
            Some(n) if n >= 1 => n as usize,
            _ => return bad("invalid_request", "max_tokens must be a positive integer"),
        },
    };
    if prompt.len() + max_new > info.seq_max {
        return bad(
            "context_length_exceeded",
            &format!(
                "prompt ({}) + max_tokens ({max_new}) exceeds model context {}",
                prompt.len(),
                info.seq_max
            ),
        );
    }

    let stream = match doc.get("stream") {
        None => false,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return bad("invalid_request", "stream must be a boolean"),
        },
    };

    let mut sampling = SamplingParams::default();
    match doc.get("temperature") {
        None => {}
        Some(v) => match v.as_f64() {
            Some(t) if (t as f32).is_finite() && t >= 0.0 => sampling.temperature = t as f32,
            _ => {
                return bad(
                    "invalid_request",
                    "temperature must be a finite number >= 0",
                )
            }
        },
    }
    match doc.get("top_k") {
        None => {}
        Some(v) => match v.as_u64() {
            Some(k) => sampling.top_k = k as usize,
            None => return bad("invalid_request", "top_k must be a non-negative integer"),
        },
    }
    match doc.get("top_p") {
        None => {}
        Some(v) => match v.as_f64() {
            Some(p) if p > 0.0 && p <= 1.0 => sampling.top_p = p as f32,
            _ => return bad("invalid_request", "top_p must be a number in (0, 1]"),
        },
    }
    match doc.get("repetition_penalty") {
        None => {}
        Some(v) => match v.as_f64() {
            Some(p) if (p as f32).is_finite() && p > 0.0 => {
                sampling.repetition_penalty = p as f32;
            }
            _ => {
                return bad(
                    "invalid_request",
                    "repetition_penalty must be a finite number > 0",
                )
            }
        },
    }
    match doc.get("seed") {
        None => {}
        Some(v) => match v.as_u64() {
            Some(s) => sampling.seed = s,
            None => return bad("invalid_request", "seed must be a non-negative integer"),
        },
    }
    match doc.get("logit_bias") {
        None => {}
        // OpenAI-style map: {"<token id>": bias, ...}.
        Some(Json::Obj(members)) => {
            for (key, v) in members {
                let Ok(id) = key.parse::<u32>() else {
                    return bad(
                        "invalid_request",
                        &format!("logit_bias key {key:?} is not a token id"),
                    );
                };
                if id as usize >= info.vocab {
                    return bad(
                        "invalid_request",
                        &format!("logit_bias token {id} out of vocab (size {})", info.vocab),
                    );
                }
                match v.as_f64() {
                    Some(b) if (b as f32).is_finite() => sampling.logit_bias.push((id, b as f32)),
                    _ => {
                        return bad(
                            "invalid_request",
                            &format!("logit_bias value for token {id} must be a finite number"),
                        )
                    }
                }
            }
        }
        Some(_) => {
            return bad(
                "invalid_request",
                "logit_bias must be an object mapping token ids to numbers",
            )
        }
    }

    // `stop`: an array of token-id sequences ([[1, 2], [7]]), with a flat
    // array of ids ([1, 2]) accepted as shorthand for one sequence.
    let mut stop: Vec<Vec<u32>> = Vec::new();
    match doc.get("stop") {
        None => {}
        Some(Json::Arr(items)) if !items.is_empty() => {
            let parse_seq = |items: &[Json]| -> Result<Vec<u32>, Response> {
                let mut seq = Vec::with_capacity(items.len());
                for it in items {
                    match it.as_u64() {
                        Some(id) if (id as usize) < info.vocab => seq.push(id as u32),
                        Some(id) => {
                            return Err(Response::error(
                                400,
                                "invalid_request",
                                &format!("stop token {id} out of vocab (size {})", info.vocab),
                            ))
                        }
                        None => {
                            return Err(Response::error(
                                400,
                                "invalid_request",
                                "stop must be an array of token ids or of id arrays",
                            ))
                        }
                    }
                }
                Ok(seq)
            };
            if items.iter().all(|it| matches!(it, Json::Arr(_))) {
                for it in items {
                    let Json::Arr(inner) = it else { unreachable!() };
                    if inner.is_empty() {
                        return bad("invalid_request", "stop sequences must be non-empty");
                    }
                    stop.push(parse_seq(inner)?);
                }
            } else {
                stop.push(parse_seq(items)?);
            }
        }
        Some(Json::Arr(_)) => {} // empty array == no stop sequences
        Some(_) => {
            return bad(
                "invalid_request",
                "stop must be an array of token ids or of id arrays",
            )
        }
    }

    let cache_prompt = match doc.get("cache_prompt") {
        None => true,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return bad("invalid_request", "cache_prompt must be a boolean"),
        },
    };

    let deadline_ms = match doc.get("deadline_ms") {
        None => shared.cfg.default_deadline_ms,
        Some(v) => match v.as_u64() {
            Some(n) => n,
            None => {
                return bad(
                    "invalid_request",
                    "deadline_ms must be a non-negative integer",
                )
            }
        },
    };
    let deadline = (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));

    let (sink, rx) = TokenSink::channel(waker);
    let cancel = Arc::new(AtomicBool::new(false));
    let prompt_len = prompt.len();
    let sub = Submission {
        prompt,
        max_new,
        sampling: sampling.clone(),
        stop,
        cache_prompt,
        deadline,
        cancel: Arc::clone(&cancel),
        sink,
        submitted_at: Instant::now(),
    };
    let submit_ns = tmac_trace::now_ns();
    match shared.bridge.try_submit(sub) {
        Ok(()) => {
            let id = shared.req_counter.fetch_add(1, Ordering::Relaxed);
            tmac_trace::instant("serve", "submit", id, prompt_len as u64);
            Ok(PendingCompletion {
                rx,
                cancel,
                stream,
                id,
                prompt_len,
                sampling,
                submit_ns,
            })
        }
        Err(SubmitError::QueueFull { pending }) => Err(Response::error(
            429,
            "queue_full",
            &format!("{pending} requests already queued; retry later"),
        )
        .with_header("Retry-After", "1")),
        Err(SubmitError::Draining) | Err(SubmitError::Stopped) => Err(Response::error(
            503,
            "server_draining",
            "server is draining and not accepting new work",
        )),
    }
}

/// The *effective* sampling params of a request (request fields over
/// server defaults), echoed in non-streaming responses and the final SSE
/// frame so clients can audit what actually ran.
pub(crate) fn sampling_json(s: &SamplingParams) -> Json {
    Json::obj(vec![
        ("temperature", Json::num(s.temperature as f64)),
        ("top_k", Json::num(s.top_k as f64)),
        ("top_p", Json::num(s.top_p as f64)),
        ("repetition_penalty", Json::num(s.repetition_penalty as f64)),
        ("seed", Json::num(s.seed as f64)),
    ])
}

/// The per-request timing breakdown embedded in non-streaming responses
/// and the final SSE frame. Milliseconds per phase (queue wait, prefill,
/// decode), decode+prefill throughput, and how many prompt positions the
/// radix prefix cache served without recompute.
pub(crate) fn timings_json(t: &SeqTiming, completion_tokens: usize) -> Json {
    let busy_s = (t.prefill_us + t.decode_us) as f64 / 1e6;
    let tok_s = if busy_s > 0.0 {
        completion_tokens as f64 / busy_s
    } else {
        0.0
    };
    Json::obj(vec![
        ("queue_ms", Json::num(t.queue_us as f64 / 1e3)),
        ("prefill_ms", Json::num(t.prefill_us as f64 / 1e3)),
        ("decode_ms", Json::num(t.decode_us as f64 / 1e3)),
        ("tokens_per_s", Json::num(tok_s)),
        (
            "prefix_hit_positions",
            Json::num(t.prefix_hit_positions as f64),
        ),
    ])
}

/// The non-streaming completion body (or typed error) for a finished
/// sequence.
pub(crate) fn completion_response(
    shared: &Shared,
    pc: &PendingCompletion,
    tokens: &[u32],
    reason: &EndReason,
    timing: &SeqTiming,
) -> Response {
    let ids = Json::Arr(tokens.iter().map(|&t| Json::num(t as f64)).collect());
    match reason {
        EndReason::Length | EndReason::Stop | EndReason::Cancelled => Response::json(
            200,
            &Json::obj(vec![
                ("id", Json::str(&format!("cmpl-{}", pc.id))),
                ("object", Json::str("text_completion")),
                ("model", Json::str(&shared.bridge.info.name)),
                (
                    "choices",
                    Json::Arr(vec![Json::obj(vec![
                        ("index", Json::num(0.0)),
                        ("token_ids", ids),
                        ("finish_reason", Json::str(reason.as_str())),
                    ])]),
                ),
                ("sampling", sampling_json(&pc.sampling)),
                (
                    "usage",
                    Json::obj(vec![
                        ("prompt_tokens", Json::num(pc.prompt_len as f64)),
                        ("completion_tokens", Json::num(tokens.len() as f64)),
                    ]),
                ),
                ("timings", timings_json(timing, tokens.len())),
            ]),
        ),
        EndReason::Deadline => Response::json(
            504,
            &Json::obj(vec![(
                "error",
                Json::obj(vec![
                    ("type", Json::str("deadline_exceeded")),
                    ("message", Json::str("deadline expired before completion")),
                    ("partial_token_ids", ids),
                ]),
            )]),
        ),
        EndReason::Error(msg) => Response::error(500, "model_error", msg),
    }
}

/// One streamed token chunk.
pub(crate) fn stream_chunk(shared: &Shared, pc: &PendingCompletion, token: u32) -> Vec<u8> {
    http::sse_event(&Json::obj(vec![
        ("id", Json::str(&format!("cmpl-{}", pc.id))),
        ("object", Json::str("text_completion.chunk")),
        ("model", Json::str(&shared.bridge.info.name)),
        (
            "choices",
            Json::Arr(vec![Json::obj(vec![
                ("index", Json::num(0.0)),
                ("token_id", Json::num(token as f64)),
            ])]),
        ),
    ]))
}

/// The final stream frame carrying `finish_reason` and usage, followed by
/// the `[DONE]` sentinel.
pub(crate) fn stream_tail(
    shared: &Shared,
    pc: &PendingCompletion,
    tokens: &[u32],
    reason: &EndReason,
    timing: &SeqTiming,
) -> Vec<u8> {
    let mut out = http::sse_event(&Json::obj(vec![
        ("id", Json::str(&format!("cmpl-{}", pc.id))),
        ("object", Json::str("text_completion.chunk")),
        ("model", Json::str(&shared.bridge.info.name)),
        (
            "choices",
            Json::Arr(vec![Json::obj(vec![
                ("index", Json::num(0.0)),
                ("finish_reason", Json::str(reason.as_str())),
            ])]),
        ),
        ("sampling", sampling_json(&pc.sampling)),
        (
            "usage",
            Json::obj(vec![
                ("prompt_tokens", Json::num(pc.prompt_len as f64)),
                ("completion_tokens", Json::num(tokens.len() as f64)),
            ]),
        ),
        ("timings", timings_json(timing, tokens.len())),
    ]));
    out.extend_from_slice(http::sse_done());
    out
}

/// The response for a request-side protocol violation.
pub(crate) fn protocol_error_response(e: &HttpError) -> Response {
    Response::error(e.status, "protocol_error", &e.msg)
}

/// A running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    joins: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Begins graceful drain: the listener stops accepting, queued and
    /// active sequences finish, then the step loop and drivers exit.
    /// Returns immediately; follow with [`ServerHandle::join`].
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.bridge.drain();
    }

    /// Waits for the drivers and step loop to exit (after
    /// [`ServerHandle::drain`] or [`ServerHandle::abort`]).
    pub fn join(mut self) {
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
        // Threads-mode connection handlers are detached; wait for the open
        // connection gauge to empty (bounded).
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.metrics.connections.get() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Graceful shutdown: drain then join.
    pub fn shutdown(self) {
        self.drain();
        self.join();
    }

    /// Immediate abort: in-flight sequences are cancelled.
    pub fn abort(self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.draining.store(true, Ordering::Release);
        self.shared.bridge.abort();
        self.join();
    }
}

/// Builds the bridge + listener and spawns the configured connection
/// driver.
///
/// # Errors
///
/// I/O errors from binding the listener or creating the poller.
pub fn start(sched: Scheduler, ctx: ExecCtx, cfg: ServerConfig) -> io::Result<ServerHandle> {
    let metrics = Arc::new(Metrics::new());
    let (bridge, step_join) = bridge::start_with(
        sched,
        ctx,
        Arc::clone(&metrics),
        Duration::from_millis(10),
        cfg.supervisor,
    );
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    // Both drivers poll a non-blocking listener; failing here (instead of
    // inside the driver thread) propagates a real io::Error to the caller.
    listener.set_nonblocking(true)?;
    let mode = cfg.mode.resolve();
    let shared = Arc::new(Shared {
        cfg,
        bridge,
        metrics,
        req_counter: AtomicU64::new(0),
        draining: AtomicBool::new(false),
        stop: AtomicBool::new(false),
    });
    let driver = match mode {
        ConnMode::Threads => {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tmac-accept".into())
                .spawn(move || accept_loop_threads(listener, s))
                .expect("spawn accept loop")
        }
        #[cfg(target_os = "linux")]
        ConnMode::Epoll | ConnMode::Auto => {
            let s = Arc::clone(&shared);
            let poller = crate::poll::Poller::new()?;
            std::thread::Builder::new()
                .name("tmac-event-loop".into())
                .spawn(move || crate::event_loop::run(listener, s, poller))
                .expect("spawn event loop")
        }
        #[cfg(not(target_os = "linux"))]
        ConnMode::Epoll | ConnMode::Auto => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll mode requires Linux; use ConnMode::Threads",
            ));
        }
    };
    Ok(ServerHandle {
        addr,
        shared,
        joins: vec![driver, step_join],
    })
}

// ---------------------------------------------------------------------------
// Threads mode
// ---------------------------------------------------------------------------

fn accept_loop_threads(listener: TcpListener, shared: Arc<Shared>) {
    // The listener was made non-blocking by `start` before spawning us.
    loop {
        if shared.is_stopped() || shared.is_draining() {
            return; // dropping the listener closes it
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Chaos: an armed `serve/accept=error` hangs up on the
                // client right after the TCP handshake.
                if failpoint::fire("serve/accept") == Some(FailAction::Error) {
                    drop(stream);
                    continue;
                }
                tmac_trace::instant("serve", "accept", 0, 0);
                let s = Arc::clone(&shared);
                s.metrics.connections.inc();
                let _ = std::thread::Builder::new()
                    .name("tmac-conn".into())
                    .spawn(move || {
                        serve_conn_blocking(stream, &s);
                        s.metrics.connections.dec();
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// `write_all` through the `serve/write` failpoint: `Short` tears the
/// response after one byte, `Again`/`Error` fail outright — either way
/// the caller treats the client as gone (cancel + close), which is
/// exactly what a real mid-write disconnect produces.
fn write_all_fp(stream: &mut TcpStream, bytes: &[u8]) -> io::Result<()> {
    match failpoint::fire("serve/write") {
        Some(FailAction::Short) => {
            if !bytes.is_empty() {
                let _ = stream.write_all(&bytes[..1]);
            }
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected short write",
            ));
        }
        Some(FailAction::Error) | Some(FailAction::Again) => {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected write error",
            ));
        }
        _ => {}
    }
    stream.write_all(bytes)
}

/// Drains whatever the client already sent (bounded) so closing sends a
/// clean FIN instead of an RST that could destroy the in-flight error
/// response.
fn lingering_close(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_millis(500);
    while Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
}

/// True when the peer has closed its end (a zero-byte peek).
fn client_gone(stream: &TcpStream) -> bool {
    let mut b = [0u8; 1];
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let gone = matches!(stream.peek(&mut b), Ok(0));
    let _ = stream.set_nonblocking(false);
    gone
}

fn serve_conn_blocking(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let limits = shared.cfg.limits;
    let mut buf: Vec<u8> = Vec::new();
    let mut last_data = Instant::now();
    loop {
        // Serve every fully buffered (possibly pipelined) request.
        loop {
            let parse_started = tmac_trace::now_ns();
            match http::parse_request(&buf, &limits) {
                Ok(Some((req, used))) => {
                    tmac_trace::complete(
                        "serve",
                        "parse",
                        0,
                        used as u64,
                        parse_started,
                        tmac_trace::now_ns(),
                    );
                    buf.drain(..used);
                    last_data = Instant::now();
                    let keep = req.keep_alive() && !shared.is_draining();
                    if !serve_one_blocking(&mut stream, shared, &req, keep) || !keep {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let resp = protocol_error_response(&e);
                    shared.metrics.count_status(resp.status);
                    let _ = stream.write_all(&resp.encode(false));
                    lingering_close(&mut stream);
                    return;
                }
            }
        }
        if shared.is_stopped() {
            return;
        }
        let mut tmp = [0u8; 4096];
        // `serve/read` chaos: Error drops the connection, Again turns the
        // read into a timeout tick, Short delivers a single byte.
        let read = match failpoint::fire("serve/read") {
            Some(FailAction::Error) => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected read error",
            )),
            Some(FailAction::Again) => {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "injected eagain"))
            }
            Some(FailAction::Short) => stream.read(&mut tmp[..1]),
            _ => stream.read(&mut tmp),
        };
        match read {
            Ok(0) => return,
            Ok(n) => {
                buf.extend_from_slice(&tmp[..n]);
                last_data = Instant::now();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.is_draining() && buf.is_empty() {
                    return; // idle keep-alive connection during drain
                }
                if last_data.elapsed() > shared.cfg.idle_conn_timeout {
                    if !buf.is_empty() {
                        let resp = Response::error(408, "timeout", "request incomplete");
                        shared.metrics.count_status(408);
                        let _ = stream.write_all(&resp.encode(false));
                    }
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Serves one request; returns false when the connection must close.
fn serve_one_blocking(stream: &mut TcpStream, shared: &Shared, req: &Request, keep: bool) -> bool {
    match handle_request(shared, req, None) {
        Outcome::Respond(resp) => {
            shared.metrics.count_status(resp.status);
            write_all_fp(stream, &resp.encode(keep)).is_ok() && keep
        }
        Outcome::Completion(pc) if pc.stream => {
            shared.metrics.count_status(200);
            if write_all_fp(stream, http::sse_head()).is_err() {
                pc.cancel.store(true, Ordering::Release);
                return false;
            }
            stream_events_blocking(stream, shared, &pc);
            false // SSE responses are close-delimited
        }
        Outcome::Completion(pc) => {
            let Some((tokens, reason, timing)) = wait_done_blocking(stream, &pc) else {
                return false; // client vanished; sequence already cancelled
            };
            let resp = completion_response(shared, &pc, &tokens, &reason, &timing);
            shared.metrics.count_status(resp.status);
            write_all_fp(stream, &resp.encode(keep)).is_ok() && keep
        }
    }
}

/// Blocks until the sequence finishes, watching for client disconnect.
/// `None` means the client went away (the sequence was cancelled and its
/// terminal event consumed).
fn wait_done_blocking(
    stream: &TcpStream,
    pc: &PendingCompletion,
) -> Option<(Vec<u32>, EndReason, SeqTiming)> {
    let mut abandoned = false;
    loop {
        match pc.rx.recv_timeout(Duration::from_millis(100)) {
            Ok(SeqEvent::Token(_)) => {}
            Ok(SeqEvent::Done {
                tokens,
                reason,
                timing,
            }) => {
                trace_request_done(pc, tokens.len());
                return (!abandoned).then_some((tokens, reason, timing));
            }
            Err(RecvTimeoutError::Timeout) => {
                if !abandoned && client_gone(stream) {
                    pc.cancel.store(true, Ordering::Release);
                    abandoned = true; // keep waiting for Done so the slot is freed
                }
            }
            // The step loop died beyond recovery (sink dropped): surface a
            // terminal error instead of silently closing the connection.
            Err(RecvTimeoutError::Disconnected) => {
                return (!abandoned).then(|| {
                    (
                        Vec::new(),
                        EndReason::Error("step loop exited".into()),
                        SeqTiming::default(),
                    )
                });
            }
        }
    }
}

fn stream_events_blocking(stream: &mut TcpStream, shared: &Shared, pc: &PendingCompletion) {
    let mut sent = 0usize;
    let mut abandoned = false;
    loop {
        match pc.rx.recv_timeout(Duration::from_millis(100)) {
            Ok(SeqEvent::Token(t)) => {
                if abandoned {
                    continue;
                }
                let _w = tmac_trace::span("serve", "sse_write", pc.id, t as u64);
                if write_all_fp(stream, &stream_chunk(shared, pc, t)).is_err() {
                    pc.cancel.store(true, Ordering::Release);
                    abandoned = true;
                } else {
                    sent += 1;
                }
            }
            Ok(SeqEvent::Done {
                tokens,
                reason,
                timing,
            }) => {
                let _ = sent;
                trace_request_done(pc, tokens.len());
                if !abandoned {
                    let tail = stream_tail(shared, pc, &tokens, &reason, &timing);
                    let _ = write_all_fp(stream, &tail);
                }
                return;
            }
            Err(RecvTimeoutError::Timeout) => {
                if !abandoned && client_gone(stream) {
                    pc.cancel.store(true, Ordering::Release);
                    abandoned = true;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Step loop gone: give the SSE client a terminal error
                // frame so it can tell a fault from a finished stream.
                if !abandoned {
                    let tail = stream_tail(
                        shared,
                        pc,
                        &[],
                        &EndReason::Error("step loop exited".into()),
                        &SeqTiming::default(),
                    );
                    let _ = write_all_fp(stream, &tail);
                }
                return;
            }
        }
    }
}
