//! The scheduler bridge: a dedicated step-loop thread owns the
//! [`Scheduler`] and connections talk to it through a bounded submission
//! channel.
//!
//! ```text
//!  connection ──try_submit──► [bounded channel] ──► step loop (this thread)
//!   handlers  ◄──SeqEvent────  per-request mpsc ◄──   submit / cancel /
//!     429 ◄─ QueueFull                                step_batch / drain
//! ```
//!
//! The loop interleaves four duties every iteration: drain the submission
//! channel into [`Scheduler::submit`]; enforce per-request deadlines and
//! client-disconnect cancellation via [`Scheduler::cancel`]; run one
//! [`Scheduler::step_batch`] and fan its tokens out to the per-request
//! event channels; and retire finished sequences with their
//! [`FinishReason`]. Admission backpressure is synchronous: `try_submit`
//! reserves a queue slot against `SchedulerConfig::max_pending` *before*
//! sending, so a full queue turns into an HTTP 429 without waiting for the
//! loop.
//!
//! The loop thread runs under a **supervisor** ([`SupervisorOpts`]): every
//! iteration beats a heartbeat ([`BridgeHandle::health`]), and if the
//! thread ever dies by panic the supervisor errors out the in-flight
//! requests, resets the scheduler, and respawns the loop with bounded
//! exponential backoff — after `max_restarts` failures the bridge is
//! [`HealthState::Dead`] and every client fails fast.

use crate::metrics::Metrics;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tmac_core::failpoint::{self, FailAction};
use tmac_core::ExecCtx;
use tmac_llm::batch::{FinishReason, Scheduler, SeqId, SeqTiming, SubmitRequest};
use tmac_llm::sampling::SamplingParams;

/// Wakes a connection driver (the epoll loop's eventfd/pipe) after events
/// are queued; thread-per-connection handlers block on the channel and
/// need no waker.
pub type WakeFn = Arc<dyn Fn() + Send + Sync>;

/// Why a served sequence ended (the bridge-level refinement of
/// [`FinishReason`]: deadline expiry is a cancellation whose cause the
/// bridge knows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndReason {
    /// All requested tokens were generated.
    Length,
    /// A stop sequence ended the request (matched tokens included).
    Stop,
    /// Cancelled (client disconnect or explicit cancel).
    Cancelled,
    /// The per-request deadline expired mid-flight.
    Deadline,
    /// A model failure retired the sequence.
    Error(String),
}

impl EndReason {
    /// Wire name for the completions API.
    pub fn as_str(&self) -> &'static str {
        match self {
            EndReason::Length => "length",
            EndReason::Stop => "stop",
            EndReason::Cancelled => "cancelled",
            EndReason::Deadline => "deadline",
            EndReason::Error(_) => "error",
        }
    }
}

/// One event on a request's stream.
#[derive(Debug, Clone)]
pub enum SeqEvent {
    /// The next generated token.
    Token(u32),
    /// The sequence is over; `tokens` is the complete (possibly partial on
    /// cancel/deadline/error) output.
    Done {
        /// All generated tokens in order.
        tokens: Vec<u32>,
        /// Why it ended.
        reason: EndReason,
        /// The scheduler's phase breakdown (zeroed when the sequence never
        /// reached the scheduler — pre-intake cancel, step-loop death).
        timing: SeqTiming,
    },
}

/// The consumer half of a request: an event channel plus the waker that
/// nudges whoever drives the connection.
#[derive(Clone)]
pub struct TokenSink {
    tx: Sender<SeqEvent>,
    waker: Option<WakeFn>,
}

impl TokenSink {
    /// Pairs a sink with its receiving channel.
    pub fn channel(waker: Option<WakeFn>) -> (TokenSink, Receiver<SeqEvent>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (TokenSink { tx, waker }, rx)
    }

    fn send(&self, ev: SeqEvent) {
        // A dead receiver means the connection is gone; its cancel flag
        // (checked every loop iteration) reclaims the slot.
        let _ = self.tx.send(ev);
        if let Some(w) = &self.waker {
            w();
        }
    }
}

impl std::fmt::Debug for TokenSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenSink")
            .field("waker", &self.waker.is_some())
            .finish()
    }
}

/// A request travelling from a connection to the step loop.
#[derive(Debug)]
pub struct Submission {
    /// Prompt tokens (already validated by the HTTP layer; the scheduler
    /// re-validates).
    pub prompt: Vec<u32>,
    /// Tokens to generate.
    pub max_new: usize,
    /// Per-request sampling params (greedy by default).
    pub sampling: SamplingParams,
    /// Stop token-id sequences.
    pub stop: Vec<Vec<u32>>,
    /// Whether the scheduler may serve this prompt from the shared radix
    /// prompt cache and publish its pages (the API's `cache_prompt`
    /// field; defaults to `true`).
    pub cache_prompt: bool,
    /// Absolute deadline; the loop cancels the sequence when it passes.
    pub deadline: Option<Instant>,
    /// Client-disconnect flag; the loop cancels when it turns true.
    pub cancel: Arc<AtomicBool>,
    /// Where tokens and the final result go.
    pub sink: TokenSink,
    /// When the request was admitted (TTFT base).
    pub submitted_at: Instant,
}

/// Synchronous admission failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// `max_pending` requests already queued: shed load (HTTP 429).
    QueueFull {
        /// Queued requests at rejection time.
        pending: usize,
    },
    /// The server is draining and admits nothing new (HTTP 503).
    Draining,
    /// The step loop has exited (HTTP 503).
    Stopped,
}

/// Watchdog policy for the step-loop supervisor.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorOpts {
    /// Loop-thread restarts allowed after panics before the bridge is
    /// declared [`HealthState::Dead`].
    pub max_restarts: u32,
    /// Sleep before the first restart; doubles per consecutive restart.
    pub backoff: Duration,
    /// Heartbeat age past which [`BridgeHandle::health`] reports
    /// [`HealthState::Stalled`] (the loop beats every iteration, so an
    /// idle loop still beats roughly every `idle_wait`).
    pub stall_after: Duration,
}

impl Default for SupervisorOpts {
    fn default() -> Self {
        SupervisorOpts {
            max_restarts: 3,
            backoff: Duration::from_millis(100),
            stall_after: Duration::from_secs(5),
        }
    }
}

/// Step-loop liveness as seen by health probes (`/healthz` maps anything
/// but `Ok` to 503).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// The loop has beaten recently.
    Ok,
    /// No heartbeat for longer than [`SupervisorOpts::stall_after`].
    Stalled {
        /// Time since the last heartbeat.
        age: Duration,
    },
    /// The loop exhausted its restart budget (or could not be spawned);
    /// the server will never serve again.
    Dead,
}

/// The heartbeat/liveness channel between the step loop, the supervisor,
/// and health probes.
struct Health {
    /// Heartbeat origin (micros below are measured from here).
    start: Instant,
    /// Micros since `start` at the last loop iteration.
    beat_us: AtomicU64,
    /// Set by the supervisor when the restart budget is spent.
    dead: AtomicBool,
    stall_after: Duration,
}

impl Health {
    fn new(stall_after: Duration) -> Self {
        Health {
            start: Instant::now(),
            beat_us: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            stall_after,
        }
    }

    fn beat(&self) {
        self.beat_us
            .store(self.start.elapsed().as_micros() as u64, Ordering::Release);
    }

    fn state(&self) -> HealthState {
        if self.dead.load(Ordering::Acquire) {
            return HealthState::Dead;
        }
        let beat = Duration::from_micros(self.beat_us.load(Ordering::Acquire));
        let age = self.start.elapsed().saturating_sub(beat);
        if age > self.stall_after {
            HealthState::Stalled { age }
        } else {
            HealthState::Ok
        }
    }
}

/// Cloneable handle connections use to reach the step loop.
#[derive(Clone)]
pub struct BridgeHandle {
    tx: Sender<Submission>,
    queued: Arc<AtomicUsize>,
    max_pending: usize,
    draining: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    health: Arc<Health>,
    /// Serving-wide metrics (shared with the HTTP layer).
    pub metrics: Arc<Metrics>,
    /// Model facts the HTTP layer validates against.
    pub info: ModelInfo,
}

/// What the HTTP layer needs to know about the served model.
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// Model display name (the API's `model` field).
    pub name: String,
    /// Vocabulary size (prompt token bound).
    pub vocab: usize,
    /// Max total sequence length (prompt + completion bound).
    pub seq_max: usize,
    /// Concurrent KV slots.
    pub max_batch: usize,
}

impl BridgeHandle {
    /// Admission with queue-depth backpressure: reserves one of
    /// `max_pending` queue slots or fails synchronously.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::Draining`]
    /// after [`BridgeHandle::drain`], [`SubmitError::Stopped`] once the
    /// loop has exited.
    pub fn try_submit(&self, sub: Submission) -> Result<(), SubmitError> {
        if self.health.dead.load(Ordering::Acquire) {
            return Err(SubmitError::Stopped);
        }
        if self.draining.load(Ordering::Acquire) || self.stop.load(Ordering::Acquire) {
            return Err(SubmitError::Draining);
        }
        if self.max_pending > 0 {
            let reserve = self
                .queued
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                    (cur < self.max_pending).then_some(cur + 1)
                });
            if let Err(cur) = reserve {
                return Err(SubmitError::QueueFull { pending: cur });
            }
        } else {
            self.queued.fetch_add(1, Ordering::AcqRel);
        }
        self.metrics
            .queue_depth
            .set(self.queued.load(Ordering::Relaxed) as u64);
        if self.tx.send(sub).is_err() {
            self.queued.fetch_sub(1, Ordering::AcqRel);
            return Err(SubmitError::Stopped);
        }
        Ok(())
    }

    /// Begins graceful drain: every future `try_submit` fails, the loop
    /// finishes in-flight sequences, then exits.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// True once [`BridgeHandle::drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Immediate abort: in-flight sequences are cancelled and the loop
    /// exits without finishing them.
    pub fn abort(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Step-loop liveness for health probes: [`HealthState::Ok`] while
    /// the loop beats, [`HealthState::Stalled`] past
    /// [`SupervisorOpts::stall_after`], [`HealthState::Dead`] once the
    /// supervisor gave up restarting it.
    pub fn health(&self) -> HealthState {
        self.health.state()
    }
}

/// In-flight bookkeeping for one sequence.
struct Tracked {
    sink: TokenSink,
    cancel: Arc<AtomicBool>,
    deadline: Option<Instant>,
    deadline_hit: bool,
    submitted_at: Instant,
    /// Still holding a `queued` reservation (released on first token or
    /// retirement, whichever first).
    queued_counted: bool,
}

/// Everything the step loop owns, parked behind a mutex so the
/// supervisor can reclaim it after a panic. The loop thread takes the
/// lock once for its whole lifetime (zero per-iteration cost); the
/// supervisor only touches it between loop-thread incarnations.
struct LoopCore {
    sched: Scheduler,
    ctx: ExecCtx,
    rx: Receiver<Submission>,
    tracked: HashMap<u64, Tracked>,
    channel_open: bool,
}

/// Spawns the supervised step loop over `sched` with default
/// [`SupervisorOpts`] and returns the connection handle plus the
/// supervisor's join handle.
///
/// `idle_wait` bounds how long the loop sleeps when there is no work (and
/// therefore how late a drain/shutdown is noticed at idle).
pub fn start(
    sched: Scheduler,
    ctx: ExecCtx,
    metrics: Arc<Metrics>,
    idle_wait: Duration,
) -> (BridgeHandle, std::thread::JoinHandle<()>) {
    start_with(sched, ctx, metrics, idle_wait, SupervisorOpts::default())
}

/// [`start`] with an explicit watchdog policy.
pub fn start_with(
    sched: Scheduler,
    ctx: ExecCtx,
    metrics: Arc<Metrics>,
    idle_wait: Duration,
    opts: SupervisorOpts,
) -> (BridgeHandle, std::thread::JoinHandle<()>) {
    let (tx, rx) = std::sync::mpsc::channel::<Submission>();
    let cfg = *sched.config();
    let info = ModelInfo {
        name: sched.model().cfg.name.clone(),
        vocab: sched.model().cfg.vocab,
        seq_max: sched.model().cfg.seq_max,
        max_batch: cfg.max_batch,
    };
    let handle = BridgeHandle {
        tx,
        queued: Arc::new(AtomicUsize::new(0)),
        max_pending: cfg.max_pending,
        draining: Arc::new(AtomicBool::new(false)),
        stop: Arc::new(AtomicBool::new(false)),
        health: Arc::new(Health::new(opts.stall_after)),
        metrics: Arc::clone(&metrics),
        info,
    };
    metrics.kv_slots_total.set(cfg.max_batch as u64);
    handle.health.beat();
    metrics.mark_heartbeat();
    let core = Arc::new(Mutex::new(LoopCore {
        sched,
        ctx,
        rx,
        tracked: HashMap::new(),
        channel_open: true,
    }));
    let sup_handle = handle.clone();
    let join = std::thread::Builder::new()
        .name("tmac-supervisor".into())
        .spawn(move || supervise(core, sup_handle, idle_wait, opts))
        // Not reachable from network input: thread creation at server
        // startup only fails on resource exhaustion, where dying loudly
        // beats serving without a step loop.
        .expect("spawn step-loop supervisor");
    (handle, join)
}

/// The watchdog: runs the step loop in a named thread, and when that
/// thread dies by panic — something escaped the scheduler's in-step
/// quarantine — scrubs the in-flight state (every tracked request gets a
/// terminal error event, the scheduler is reset, gauges are corrected)
/// and respawns it after an exponential backoff, at most
/// [`SupervisorOpts::max_restarts`] times. A clean loop exit (drain or
/// abort) ends supervision; an exhausted restart budget marks the bridge
/// [`HealthState::Dead`] and drops the submission channel so every
/// waiting or future client fails fast instead of hanging.
fn supervise(
    core: Arc<Mutex<LoopCore>>,
    h: BridgeHandle,
    idle_wait: Duration,
    opts: SupervisorOpts,
) {
    let mut restarts = 0u32;
    loop {
        let loop_core = Arc::clone(&core);
        let loop_h = h.clone();
        let spawned = std::thread::Builder::new()
            .name("tmac-step-loop".into())
            .spawn(move || {
                // Hold the core for the thread's whole life; a panic poisons
                // the mutex, which the supervisor clears on reclaim.
                let mut guard = loop_core.lock().unwrap_or_else(|p| p.into_inner());
                step_loop(&mut guard, &loop_h, idle_wait);
            });
        let join = match spawned {
            Ok(j) => j,
            Err(_) => {
                h.health.dead.store(true, Ordering::Release);
                let mut guard = core.lock().unwrap_or_else(|p| p.into_inner());
                scrub_after_panic(&mut guard, &h);
                return;
            }
        };
        match join.join() {
            // Clean exit: drain finished or abort completed.
            Ok(()) => return,
            Err(_) => {
                restarts += 1;
                h.metrics.step_loop_restarts.inc();
                tmac_trace::instant("serve", "step_loop_restart", 0, u64::from(restarts));
                {
                    let mut guard = core.lock().unwrap_or_else(|p| p.into_inner());
                    scrub_after_panic(&mut guard, &h);
                }
                if restarts > opts.max_restarts {
                    h.health.dead.store(true, Ordering::Release);
                    // Dropping `core` drops the channel receiver: buffered
                    // submissions vanish, their sinks close, and handlers
                    // turn the disconnect into a 503.
                    return;
                }
                std::thread::sleep(opts.backoff * 2u32.saturating_pow(restarts - 1));
                // Don't let the backoff itself read as a stall.
                h.health.beat();
            }
        }
    }
}

/// Post-panic cleanup, run by the supervisor while no loop thread exists:
/// tracked requests (already inside the scheduler when it died) get a
/// terminal error event — their partial tokens died with the loop — and
/// the scheduler drops every sequence. Submissions still buffered in the
/// channel are untouched: the next incarnation serves them normally.
fn scrub_after_panic(core: &mut LoopCore, h: &BridgeHandle) {
    for (_, t) in core.tracked.drain() {
        if t.queued_counted {
            h.queued.fetch_sub(1, Ordering::AcqRel);
        }
        h.metrics.finished_error.inc();
        h.metrics
            .request_latency
            .observe(t.submitted_at.elapsed().as_secs_f64());
        t.sink.send(SeqEvent::Done {
            tokens: Vec::new(),
            reason: EndReason::Error("step loop restarted after a panic".into()),
            timing: SeqTiming::default(),
        });
    }
    core.sched.reset();
    h.metrics
        .queue_depth
        .set(h.queued.load(Ordering::Relaxed) as u64);
    h.metrics.active_seqs.set(0);
    h.metrics.kv_slots_used.set(0);
    h.metrics.quarantined.set(core.sched.quarantined_total());
}

fn step_loop(core: &mut LoopCore, h: &BridgeHandle, idle_wait: Duration) {
    loop {
        h.health.beat();
        h.metrics.mark_heartbeat();
        // Deliberately un-quarantined: an armed `bridge/loop=panic` kills
        // the loop thread itself, exercising the supervisor (and, in CI,
        // proving the chaos harness trips when containment is absent).
        if failpoint::fire("bridge/loop") == Some(FailAction::Panic) {
            panic!("injected failpoint bridge/loop");
        }
        if h.stop.load(Ordering::Acquire) {
            // Abort: cancel everything in flight so every connection gets a
            // terminal event instead of a hang.
            let ids: Vec<u64> = core.tracked.keys().copied().collect();
            for id in ids {
                core.sched.cancel(SeqId(id));
            }
            route_finished(&mut core.sched, &mut core.tracked, h);
            return;
        }

        // 1. Intake: drain the submission channel into the scheduler.
        loop {
            match core.rx.try_recv() {
                Ok(sub) => intake(&mut core.sched, &mut core.tracked, h, sub),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    core.channel_open = false;
                    break;
                }
            }
        }

        // 2. Cancellation and deadlines.
        let now = Instant::now();
        let expired: Vec<(u64, bool)> = core
            .tracked
            .iter()
            .filter_map(|(&id, t)| {
                if t.cancel.load(Ordering::Acquire) {
                    Some((id, false))
                } else if t.deadline.is_some_and(|d| now >= d) {
                    Some((id, true))
                } else {
                    None
                }
            })
            .collect();
        for (id, was_deadline) in expired {
            if core.sched.cancel(SeqId(id)) {
                if let Some(t) = core.tracked.get_mut(&id) {
                    t.deadline_hit = was_deadline;
                }
            }
        }
        route_finished(&mut core.sched, &mut core.tracked, h);

        // 3. One serving step.
        if !core.sched.is_idle() {
            let step_started = Instant::now();
            match core.sched.step_batch(&core.ctx) {
                Ok(tokens) => {
                    for st in tokens {
                        route_token(&mut core.tracked, h, st.id, st.token);
                    }
                }
                Err(_) => {
                    // Per-sequence faults were quarantined inside
                    // step_batch (routed below as finished errors); the
                    // only Err left is an injected step-level fault, which
                    // emitted nothing — the next iteration retries.
                }
            }
            h.metrics
                .step_duration
                .observe(step_started.elapsed().as_secs_f64());
            // Occupancy at step end: sequences still holding batch slots
            // (finished ones already retired inside step_batch).
            h.metrics
                .batch_occupancy
                .observe(core.sched.active_len() as f64);
            route_finished(&mut core.sched, &mut core.tracked, h);
        } else if h.draining.load(Ordering::Acquire) || !core.channel_open {
            // Idle + no new work possible → exit (graceful drain complete).
            return;
        } else {
            // Idle: sleep until the next submission (or a drain/stop nudge
            // at worst `idle_wait` late).
            match core.rx.recv_timeout(idle_wait) {
                Ok(sub) => intake(&mut core.sched, &mut core.tracked, h, sub),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => core.channel_open = false,
            }
        }

        // 4. Gauges.
        h.metrics
            .queue_depth
            .set(h.queued.load(Ordering::Relaxed) as u64);
        h.metrics.active_seqs.set(core.sched.active_len() as u64);
        h.metrics.kv_slots_used.set(core.sched.active_len() as u64);
        h.metrics.quarantined.set(core.sched.quarantined_total());
        let kv = core.sched.kv_stats();
        h.metrics.kv_pages_used.set(kv.pages_in_use as u64);
        h.metrics.kv_pages_total.set(kv.pages_allocated as u64);
        h.metrics.kv_resident_bytes.set(kv.resident_bytes as u64);
        h.metrics.prefix_hits.set(kv.prefix_hits);
        h.metrics.prefix_hit_positions.set(kv.prefix_hit_positions);
        h.metrics.kv_cow_forks.set(kv.cow_forks);
        h.metrics.kv_evictions.set(kv.evictions);
    }
}

fn intake(
    sched: &mut Scheduler,
    tracked: &mut HashMap<u64, Tracked>,
    h: &BridgeHandle,
    sub: Submission,
) {
    // Skip sequences whose client vanished while queued in the channel.
    if sub.cancel.load(Ordering::Acquire) {
        h.queued.fetch_sub(1, Ordering::AcqRel);
        sub.sink.send(SeqEvent::Done {
            tokens: Vec::new(),
            reason: EndReason::Cancelled,
            timing: SeqTiming::default(),
        });
        h.metrics.finished_cancelled.inc();
        return;
    }
    let req = SubmitRequest {
        prompt: sub.prompt,
        max_new: sub.max_new,
        sampling: sub.sampling,
        stop: sub.stop,
        cache_prompt: sub.cache_prompt,
    };
    match sched.submit(req) {
        Ok(id) => {
            tracked.insert(
                id.0,
                Tracked {
                    sink: sub.sink,
                    cancel: sub.cancel,
                    deadline: sub.deadline,
                    deadline_hit: false,
                    submitted_at: sub.submitted_at,
                    queued_counted: true,
                },
            );
        }
        Err(e) => {
            // The HTTP layer pre-validates, so this is either a race on the
            // scheduler's own queue bound or a genuine model failure.
            h.queued.fetch_sub(1, Ordering::AcqRel);
            h.metrics.finished_error.inc();
            sub.sink.send(SeqEvent::Done {
                tokens: Vec::new(),
                reason: EndReason::Error(e.to_string()),
                timing: SeqTiming::default(),
            });
        }
    }
}

fn route_token(tracked: &mut HashMap<u64, Tracked>, h: &BridgeHandle, id: SeqId, token: u32) {
    let Some(t) = tracked.get_mut(&id.0) else {
        return;
    };
    if t.queued_counted {
        // First token: the sequence left the queue for a batch slot.
        t.queued_counted = false;
        h.queued.fetch_sub(1, Ordering::AcqRel);
        h.metrics
            .ttft
            .observe(t.submitted_at.elapsed().as_secs_f64());
        tmac_trace::instant("serve", "ttft", id.0, 0);
    }
    h.metrics.tokens_out.inc();
    t.sink.send(SeqEvent::Token(token));
}

fn route_finished(sched: &mut Scheduler, tracked: &mut HashMap<u64, Tracked>, h: &BridgeHandle) {
    for f in sched.take_finished() {
        let Some(t) = tracked.remove(&f.id.0) else {
            continue;
        };
        if t.queued_counted {
            h.queued.fetch_sub(1, Ordering::AcqRel);
        }
        let reason = match f.reason {
            FinishReason::Length => {
                h.metrics.finished_length.inc();
                EndReason::Length
            }
            FinishReason::Stop => {
                h.metrics.finished_stop.inc();
                EndReason::Stop
            }
            FinishReason::Cancelled if t.deadline_hit => {
                h.metrics.finished_cancelled.inc();
                h.metrics.finished_deadline.inc();
                EndReason::Deadline
            }
            FinishReason::Cancelled => {
                h.metrics.finished_cancelled.inc();
                EndReason::Cancelled
            }
            FinishReason::Error(msg) => {
                h.metrics.finished_error.inc();
                EndReason::Error(msg)
            }
        };
        h.metrics
            .request_latency
            .observe(t.submitted_at.elapsed().as_secs_f64());
        h.metrics.queue_wait.observe(f.timing.queue_us as f64 / 1e6);
        t.sink.send(SeqEvent::Done {
            tokens: f.tokens,
            reason,
            timing: f.timing,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmac_llm::batch::SchedulerConfig;
    use tmac_llm::{BackendKind, Model, ModelConfig, WeightQuant};

    fn sched(max_batch: usize, max_pending: usize) -> Scheduler {
        let model = Model::synthetic(
            &ModelConfig::tiny(),
            WeightQuant::Rtn(2),
            BackendKind::Tmac(tmac_core::KernelOpts::tmac()),
            11,
        )
        .unwrap();
        Scheduler::new(
            model,
            SchedulerConfig {
                max_batch,
                max_pending,
                ..SchedulerConfig::default()
            },
        )
    }

    fn submission(prompt: &[u32], max_new: usize) -> (Submission, Receiver<SeqEvent>) {
        let (sink, rx) = TokenSink::channel(None);
        (
            Submission {
                prompt: prompt.to_vec(),
                max_new,
                sampling: SamplingParams::default(),
                stop: Vec::new(),
                cache_prompt: true,
                deadline: None,
                cancel: Arc::new(AtomicBool::new(false)),
                sink,
                submitted_at: Instant::now(),
            },
            rx,
        )
    }

    fn collect_done(rx: &Receiver<SeqEvent>) -> (Vec<u32>, Vec<u32>, EndReason) {
        let mut streamed = Vec::new();
        loop {
            match rx.recv_timeout(Duration::from_secs(30)).expect("event") {
                SeqEvent::Token(t) => streamed.push(t),
                SeqEvent::Done { tokens, reason, .. } => return (streamed, tokens, reason),
            }
        }
    }

    #[test]
    fn bridge_serves_and_streams_matching_tokens() {
        let metrics = Arc::new(Metrics::new());
        let (h, join) = start(
            sched(2, 8),
            ExecCtx::new(1),
            Arc::clone(&metrics),
            Duration::from_millis(5),
        );
        let (sub_a, rx_a) = submission(&[1, 2, 3], 4);
        let (sub_b, rx_b) = submission(&[7], 5);
        h.try_submit(sub_a).unwrap();
        h.try_submit(sub_b).unwrap();
        let (streamed_a, tokens_a, reason_a) = collect_done(&rx_a);
        let (streamed_b, tokens_b, reason_b) = collect_done(&rx_b);
        assert_eq!(reason_a, EndReason::Length);
        assert_eq!(reason_b, EndReason::Length);
        assert_eq!(streamed_a, tokens_a);
        assert_eq!(streamed_b, tokens_b);
        assert_eq!(tokens_a.len(), 4);
        assert_eq!(tokens_b.len(), 5);
        assert_eq!(metrics.tokens_out.get(), 9);
        assert_eq!(metrics.finished_length.get(), 2);
        h.drain();
        join.join().unwrap();
    }

    #[test]
    fn queue_full_is_synchronous_and_recovers() {
        let metrics = Arc::new(Metrics::new());
        // One slot, one queue seat: the third concurrent request sheds.
        let (h, join) = start(
            sched(1, 1),
            ExecCtx::new(1),
            Arc::clone(&metrics),
            Duration::from_millis(5),
        );
        let mut rxs = Vec::new();
        let mut shed = 0;
        for i in 0..6u32 {
            let (sub, rx) = submission(&[i + 1], 6);
            match h.try_submit(sub) {
                Ok(()) => rxs.push(rx),
                Err(SubmitError::QueueFull { .. }) => shed += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(shed > 0, "bounded queue never shed under burst");
        for rx in &rxs {
            let (_, tokens, reason) = collect_done(rx);
            assert_eq!(reason, EndReason::Length);
            assert_eq!(tokens.len(), 6);
        }
        // Capacity freed: new submissions are admitted again.
        let (sub, rx) = submission(&[9], 2);
        h.try_submit(sub).unwrap();
        let (_, tokens, reason) = collect_done(&rx);
        assert_eq!(reason, EndReason::Length);
        assert_eq!(tokens.len(), 2);
        h.drain();
        join.join().unwrap();
    }

    #[test]
    fn cancel_flag_frees_slot_and_reports_partial() {
        let metrics = Arc::new(Metrics::new());
        let (h, join) = start(
            sched(1, 8),
            ExecCtx::new(1),
            Arc::clone(&metrics),
            Duration::from_millis(5),
        );
        let (sub, rx) = submission(&[1, 2], 40);
        let cancel = Arc::clone(&sub.cancel);
        h.try_submit(sub).unwrap();
        // Let a few tokens arrive, then simulate the client vanishing.
        let first = rx.recv_timeout(Duration::from_secs(30)).expect("token");
        assert!(matches!(first, SeqEvent::Token(_)));
        cancel.store(true, Ordering::Release);
        let (streamed, tokens, reason) = collect_done(&rx);
        assert_eq!(reason, EndReason::Cancelled);
        assert!(tokens.len() < 40, "cancel must cut the sequence short");
        assert_eq!(
            streamed.len() + 1,
            tokens.len(),
            "one token was read before collect_done"
        );
        // The slot is free again: a fresh request completes.
        let (sub2, rx2) = submission(&[5], 3);
        h.try_submit(sub2).unwrap();
        let (_, tokens2, reason2) = collect_done(&rx2);
        assert_eq!(reason2, EndReason::Length);
        assert_eq!(tokens2.len(), 3);
        assert_eq!(metrics.finished_cancelled.get(), 1);
        h.drain();
        join.join().unwrap();
    }

    #[test]
    fn deadline_expires_mid_flight_with_typed_reason() {
        let metrics = Arc::new(Metrics::new());
        let (h, join) = start(
            sched(1, 8),
            ExecCtx::new(1),
            Arc::clone(&metrics),
            Duration::from_millis(5),
        );
        let (mut sub, rx) = submission(&[3, 4], 10_000);
        sub.deadline = Some(Instant::now() + Duration::from_millis(30));
        // A 10k-token request can't fit seq_max; use a long-but-legal one.
        sub.max_new = 50;
        h.try_submit(sub).unwrap();
        let (_, tokens, reason) = collect_done(&rx);
        assert_eq!(reason, EndReason::Deadline);
        assert!(tokens.len() < 50);
        assert_eq!(metrics.finished_deadline.get(), 1);
        h.drain();
        join.join().unwrap();
    }

    #[test]
    fn drain_refuses_new_work_and_finishes_in_flight() {
        let metrics = Arc::new(Metrics::new());
        let (h, join) = start(
            sched(2, 8),
            ExecCtx::new(1),
            Arc::clone(&metrics),
            Duration::from_millis(5),
        );
        let (sub, rx) = submission(&[1, 2, 3], 12);
        h.try_submit(sub).unwrap();
        h.drain();
        let (sub2, _rx2) = submission(&[4], 2);
        assert_eq!(h.try_submit(sub2), Err(SubmitError::Draining));
        let (_, tokens, reason) = collect_done(&rx);
        assert_eq!(reason, EndReason::Length);
        assert_eq!(tokens.len(), 12, "drain must finish in-flight work");
        join.join().unwrap();
        // After exit, submission fails as stopped/draining, not panic.
        let (sub3, _rx3) = submission(&[5], 2);
        assert!(h.try_submit(sub3).is_err());
    }

    #[test]
    fn health_is_ok_and_heartbeat_advances_while_serving() {
        let metrics = Arc::new(Metrics::new());
        let (h, join) = start(
            sched(1, 8),
            ExecCtx::new(1),
            Arc::clone(&metrics),
            Duration::from_millis(5),
        );
        assert_eq!(h.health(), HealthState::Ok, "fresh bridge must be live");
        let beat0 = metrics.heartbeat_us.get();
        let (sub, rx) = submission(&[1, 2], 6);
        h.try_submit(sub).unwrap();
        let (_, tokens, reason) = collect_done(&rx);
        assert_eq!(reason, EndReason::Length);
        assert_eq!(tokens.len(), 6);
        assert_eq!(h.health(), HealthState::Ok);
        assert!(
            metrics.heartbeat_us.get() > beat0,
            "serving iterations must advance the heartbeat"
        );
        assert_eq!(metrics.step_loop_restarts.get(), 0);
        h.drain();
        join.join().unwrap();
    }

    #[test]
    fn abort_cancels_everything_quickly() {
        let metrics = Arc::new(Metrics::new());
        let (h, join) = start(
            sched(1, 8),
            ExecCtx::new(1),
            Arc::clone(&metrics),
            Duration::from_millis(5),
        );
        let (sub, rx) = submission(&[1], 50);
        h.try_submit(sub).unwrap();
        let _ = rx.recv_timeout(Duration::from_secs(30)).expect("started");
        h.abort();
        let (_, _, reason) = collect_done(&rx);
        assert_eq!(reason, EndReason::Cancelled);
        join.join().unwrap();
    }
}
