//! Minimal HTTP/1.1 wire layer: incremental request parsing with hard
//! limits, response encoding, and SSE framing.
//!
//! The parser is incremental so both connection models share it: the epoll
//! event loop feeds it whatever bytes arrived (it answers "need more" with
//! `Ok(None)`), and the thread-per-connection loop calls it after every
//! blocking read. Every limit violation and grammar error maps to a typed
//! [`HttpError`] carrying the right 4xx status, so malformed traffic
//! produces a clean error response instead of a panic or a wedged
//! connection.

use crate::json::Json;

/// Parsing limits (defense against oversized/adversarial requests).
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (terminator included).
    pub max_head: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 8 * 1024,
            max_body: 1024 * 1024,
        }
    }
}

/// A fully received request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query, undecoded).
    pub path: String,
    /// Header name/value pairs in arrival order (names as sent).
    pub headers: Vec<(String, String)>,
    /// The body (exactly `Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A request-side protocol violation, with the status the response must
/// carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status (4xx/5xx).
    pub status: u16,
    /// Human-readable detail (safe to echo to the client).
    pub msg: String,
}

impl HttpError {
    /// A 400 Bad Request.
    pub fn bad_request(msg: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.msg)
    }
}

impl std::error::Error for HttpError {}

/// Tries to parse one request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a complete request is
/// buffered (the caller drains `consumed` bytes — pipelined bytes after it
/// stay in the buffer), `Ok(None)` when more bytes are needed.
///
/// # Errors
///
/// [`HttpError`] with status 400 (malformed), 413 (body too large), 431
/// (headers too large), 501 (chunked transfer encoding), or 505 (wrong
/// HTTP version). All are terminal for the connection's current request.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(head_end) = find_terminator(buf, limits.max_head)? else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::bad_request("non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(HttpError::bad_request("malformed request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::bad_request("malformed method"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError {
            status: 505,
            msg: format!("unsupported version {version:?}"),
        });
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad_request("malformed header line"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::bad_request("malformed header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let req = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError {
            status: 501,
            msg: "chunked transfer encoding not supported".into(),
        });
    }
    let content_len = match req.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::bad_request("malformed Content-Length"))?,
    };
    if content_len > limits.max_body {
        return Err(HttpError {
            status: 413,
            msg: format!(
                "body of {content_len} bytes exceeds limit {}",
                limits.max_body
            ),
        });
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_len {
        return Ok(None);
    }
    let mut req = req;
    req.body = buf[body_start..body_start + content_len].to_vec();
    Ok(Some((req, body_start + content_len)))
}

/// Locates the `\r\n\r\n` head terminator within the head-size limit.
fn find_terminator(buf: &[u8], max_head: usize) -> Result<Option<usize>, HttpError> {
    let window = buf.len().min(max_head + 4);
    if let Some(pos) = buf[..window].windows(4).position(|w| w == b"\r\n\r\n") {
        if pos > max_head {
            return Err(HttpError {
                status: 431,
                msg: "request head too large".into(),
            });
        }
        return Ok(Some(pos));
    }
    if buf.len() > max_head {
        return Err(HttpError {
            status: 431,
            msg: "request head too large".into(),
        });
    }
    Ok(None)
}

/// Reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// A buffered (non-streaming) response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (Content-Type/Length and Connection are added by
    /// [`Response::encode`]).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    content_type: &'static str,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: &Json) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.encode().into_bytes(),
            content_type: "application/json",
        }
    }

    /// A response whose body is already-serialized JSON (e.g. a trace dump
    /// produced outside the [`Json`] tree).
    pub fn json_raw(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A JSON error body in the OpenAI-ish `{"error": {...}}` shape.
    pub fn error(status: u16, kind: &str, msg: &str) -> Self {
        Response::json(
            status,
            &Json::obj(vec![(
                "error",
                Json::obj(vec![("type", Json::str(kind)), ("message", Json::str(msg))]),
            )]),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes status line, headers, and body. `keep_alive` controls the
    /// `Connection` header (the caller closes after writing when false).
    pub fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .into_bytes();
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// The response head that opens an SSE stream (close-delimited body:
/// streaming length is unknown up front).
pub fn sse_head() -> &'static [u8] {
    b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n"
}

/// One SSE frame carrying a JSON payload.
pub fn sse_event(payload: &Json) -> Vec<u8> {
    format!("data: {}\n\n", payload.encode()).into_bytes()
}

/// The stream-terminating sentinel frame (OpenAI convention).
pub fn sse_done() -> &'static [u8] {
    b"data: [DONE]\n\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(text: &str) -> (Request, usize) {
        parse_request(text.as_bytes(), &Limits::default())
            .unwrap()
            .unwrap()
    }

    #[test]
    fn parses_request_with_body_and_pipelined_rest() {
        let text =
            "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcdGET /h";
        let (req, used) = parse_ok(text);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/completions");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert_eq!(&text.as_bytes()[used..], b"GET /h");
        assert!(req.keep_alive());
    }

    #[test]
    fn partial_requests_ask_for_more() {
        let full = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        for cut in 0..full.len() {
            let r = parse_request(&full.as_bytes()[..cut], &Limits::default()).unwrap();
            assert!(r.is_none(), "cut at {cut} should be partial");
        }
        let (req, used) = parse_ok(full);
        assert_eq!(req.method, "GET");
        assert_eq!(used, full.len());
        // Body bytes still pending → partial.
        let post = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(parse_request(post.as_bytes(), &Limits::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn malformed_requests_fail_with_4xx() {
        for (bad, status) in [
            ("GARBAGE\r\n\r\n", 400),
            ("GET /\r\n\r\n", 400),
            ("GET / HTTP/2.0\r\n\r\n", 505),
            ("get / HTTP/1.1\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nBad Header Name: x\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nNoColon\r\n\r\n", 400),
            ("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            ("POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", 413),
            ("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
        ] {
            let e = parse_request(bad.as_bytes(), &Limits::default()).unwrap_err();
            assert_eq!(e.status, status, "{bad:?}");
        }
    }

    #[test]
    fn oversized_heads_are_rejected_even_unterminated() {
        let limits = Limits {
            max_head: 64,
            max_body: 64,
        };
        // Terminated but too big.
        let big = format!("GET / HTTP/1.1\r\nX: {}\r\n\r\n", "a".repeat(100));
        assert_eq!(
            parse_request(big.as_bytes(), &limits).unwrap_err().status,
            431
        );
        // A flood with no terminator must not buffer forever.
        let flood = vec![b'a'; 65];
        assert_eq!(parse_request(&flood, &limits).unwrap_err().status, 431);
    }

    #[test]
    fn response_encoding_is_complete() {
        let r = Response::json(429, &Json::obj(vec![("ok", Json::Bool(false))]))
            .with_header("Retry-After", "1");
        let text = String::from_utf8(r.encode(false)).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":false}"));
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(len, "{\"ok\":false}".len());
    }

    #[test]
    fn sse_frames_are_well_formed() {
        let ev = sse_event(&Json::obj(vec![("token", Json::num(7.0))]));
        assert_eq!(ev, b"data: {\"token\":7}\n\n");
        assert_eq!(sse_done(), b"data: [DONE]\n\n");
        assert!(sse_head().ends_with(b"\r\n\r\n"));
    }
}
