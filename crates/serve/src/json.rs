//! Minimal self-contained JSON encode/parse (no external crates are
//! available offline — this is the serving API's wire codec, like
//! `tmac-rng` replaced `rand`).
//!
//! The value model is deliberately small: numbers are `f64` (the API only
//! carries token ids, counts and millisecond budgets, all exactly
//! representable), objects preserve insertion order, and the parser is a
//! strict recursive-descent over the RFC 8259 grammar with a depth limit so
//! adversarial bodies cannot blow the stack.

use std::fmt;

/// Nesting depth beyond which [`Json::parse`] rejects the document.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// [`Json::get`] lookups is NOT guaranteed — first match is returned).
    Obj(Vec<(String, Json)>),
}

/// A parse failure with a byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on any grammar violation, invalid escape,
    /// non-UTF-8-expressible escape, or nesting deeper than a fixed limit.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let b = text.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.i != b.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(v)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience constructor: an object from key/value pairs.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor: a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Convenience constructor: a number from any integer-ish count.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Serializes to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; serve null rather than invalid text.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.b.get(self.i) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        self.eat(b'-');
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        // Unreachable panic: the loop above only consumed ASCII bytes
        // (digits, sign, dot, exponent), so the slice is valid UTF-8 no
        // matter what the client sent.
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii slice");
        // Reject forms f64::parse accepts but JSON does not.
        if text.is_empty()
            || text == "-"
            || text.starts_with('.')
            || text.starts_with("-.")
            || text.ends_with('.')
            || (text.len() > 1 && text.starts_with('0') && text.as_bytes()[1].is_ascii_digit())
        {
            return Err(self.err("invalid number"));
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        let opened = self.eat(b'"');
        debug_assert!(opened);
        let mut s = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("lone surrogate"))?
                            };
                            s.push(c);
                            // hex4 leaves `i` one past the last digit; the
                            // outer loop's increment below is skipped.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(&c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar. Unreachable panics even on
                    // hostile input: the parser's input is `&str` (already
                    // valid UTF-8) and every advance of `i` is by a whole
                    // ASCII byte or `len_utf8()`, so `i` is always on a
                    // char boundary; `get(self.i)` returned `Some`, so the
                    // tail is non-empty.
                    let rest = std::str::from_utf8(&self.b[self.i..]).expect("valid utf8 input");
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = *self
                .b
                .get(self.i)
                .ok_or_else(|| self.err("short \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        let opened = self.eat(b'[');
        debug_assert!(opened);
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']'"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        let opened = self.eat(b'{');
        debug_assert!(opened);
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.b.get(self.i) != Some(&b'"') {
                return Err(self.err("expected string key"));
            }
            let k = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':'"));
            }
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((k, v));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(members));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}'"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let text = r#"{"a":1,"b":[true,false,null],"c":"x\"y\n","d":-2.5,"e":{"f":[]}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-2.5));
        let re = Json::parse(&v.encode()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
        assert!(Json::parse(r#""\uZZZZ""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "-",
            "\"",
            "[1 2]",
            "{\"a\":1,}",
            "nul",
            "+1",
            "1e",
            "\u{0007}",
            "[1]x",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_stops_recursion() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(32) + &"]".repeat(32);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn encodes_numbers_cleanly() {
        assert_eq!(Json::Num(3.0).encode(), "3");
        assert_eq!(Json::Num(3.5).encode(), "3.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(-0.0).encode(), "0");
    }
}
