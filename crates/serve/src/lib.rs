//! `tmac-serve`: an HTTP/SSE serving front-end over the continuous-batching
//! [`Scheduler`](tmac_llm::batch::Scheduler).
//!
//! The T-MAC stack so far ends at the scheduler: callers hand it token
//! prompts and drive `step_batch` themselves. This crate puts a production
//! shaped front door on top — an OpenAI-style `POST /v1/completions`
//! endpoint (JSON in, JSON or SSE out), `GET /metrics`, and `GET /healthz`
//! — while keeping the scheduler single-threaded on a dedicated step-loop
//! thread, exactly as the batching design assumes.
//!
//! Everything is hand-rolled on `std`, matching the repo's no-external-
//! crates rule: [`json`] is the wire codec, [`http`] the HTTP/1.1 + SSE
//! layer, [`poll`] a thin epoll wrapper (Linux), [`bridge`] the bounded
//! submission channel into the step loop, and [`server`] the listener plus
//! the two connection drivers (epoll event loop, thread-per-connection
//! fallback).
//!
//! Serving semantics:
//!
//! * **Backpressure** — admission reserves one of
//!   `SchedulerConfig::max_pending` queue seats synchronously; a full
//!   queue is an HTTP 429 with `Retry-After`.
//! * **Deadlines** — `deadline_ms` (or a server default) cancels the
//!   sequence mid-flight and returns a typed `deadline_exceeded` error
//!   (504) with the partial output.
//! * **Cancellation** — a client disconnect flips the request's cancel
//!   flag; the step loop frees the KV slot on its next iteration.
//! * **Graceful drain** — `ServerHandle::drain` stops accepting, lets
//!   in-flight sequences finish, then the step loop and drivers exit.
//! * **Supervision** — a watchdog thread respawns the step loop after a
//!   panic (bounded restarts with exponential backoff); `GET /healthz`
//!   degrades to 503 when the loop stalls or dies. See
//!   [`bridge::SupervisorOpts`].
//!
//! ```no_run
//! use tmac_llm::batch::{Scheduler, SchedulerConfig};
//! use tmac_llm::{BackendKind, Model, ModelConfig, WeightQuant};
//!
//! let model = Model::synthetic(
//!     &ModelConfig::tiny(),
//!     WeightQuant::Rtn(2),
//!     BackendKind::F32,
//!     7,
//! )
//! .unwrap();
//! let sched = Scheduler::new(model, SchedulerConfig::default());
//! let server = tmac_serve::start(
//!     sched,
//!     tmac_core::ExecCtx::new(1),
//!     tmac_serve::ServerConfig::default(),
//! )
//! .unwrap();
//! println!("listening on http://{}", server.addr());
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod bridge;
mod event_loop;
pub mod http;
pub mod json;
pub mod metrics;
pub mod poll;
pub mod server;

pub use bridge::{BridgeHandle, EndReason, HealthState, SeqEvent, SubmitError, SupervisorOpts};
pub use http::Limits;
pub use json::Json;
pub use metrics::Metrics;
pub use server::{start, ConnMode, ServerConfig, ServerHandle};
