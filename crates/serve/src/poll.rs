//! Thin epoll wrapper (Linux only) for the event-loop connection mode.
//!
//! Like `tmac-io`'s mmap module, this declares the handful of libc symbols
//! it needs locally instead of pulling in a bindings crate — std already
//! links libc, so the symbols resolve at link time. Everything here is
//! level-triggered: the loop re-polls until the fd would block, so missed
//! wakeups cannot wedge a connection.
//!
//! The [`Waker`] is a non-blocking self-pipe registered in the same epoll
//! set; scheduler-side threads write a byte to nudge `epoll_wait` out of
//! its sleep when tokens arrive for a connection.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::RawFd;
use std::sync::Arc;

mod sys {
    use std::os::raw::{c_int, c_void};

    // x86-64 packs epoll_event to 12 bytes; every other Linux arch uses
    // natural (16-byte) layout.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0o4000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// What a single `epoll_wait` entry reported for one registered token.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `u64` token the fd was registered with.
    pub token: u64,
    /// Readable (or a hangup, which reads as EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hangup condition; the connection should be torn down after a
    /// final read attempt.
    pub closed: bool,
}

/// Interest set for registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable.
    pub read: bool,
    /// Wake on writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };

    fn mask(self) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if self.read {
            m |= sys::EPOLLIN;
        }
        if self.write {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// An epoll instance plus its self-pipe waker.
pub struct Poller {
    epfd: RawFd,
    wake_rx: RawFd,
    waker: Arc<WakerInner>,
}

struct WakerInner {
    wake_tx: RawFd,
}

/// Cheap cloneable handle other threads use to interrupt
/// [`Poller::wait`].
#[derive(Clone)]
pub struct Waker(Arc<WakerInner>);

impl Waker {
    /// Nudges the poller; safe to call from any thread, coalesces when the
    /// pipe is already full.
    pub fn wake(&self) {
        let b = [1u8];
        // EAGAIN (pipe full) still means the poller has a pending wakeup.
        unsafe { sys::write(self.0.wake_tx, b.as_ptr().cast(), 1) };
    }
}

impl Drop for WakerInner {
    fn drop(&mut self) {
        unsafe { sys::close(self.wake_tx) };
    }
}

/// Token reserved for the internal waker pipe; user registrations must use
/// other values.
pub const WAKE_TOKEN: u64 = u64::MAX;

fn last_err(what: &str) -> io::Error {
    io::Error::new(io::Error::last_os_error().kind(), what.to_string())
}

/// Puts `fd` into non-blocking mode.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    unsafe {
        let flags = sys::fcntl(fd, sys::F_GETFL, 0);
        if flags < 0 {
            return Err(last_err("fcntl(F_GETFL)"));
        }
        if sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) < 0 {
            return Err(last_err("fcntl(F_SETFL, O_NONBLOCK)"));
        }
    }
    Ok(())
}

impl Poller {
    /// Creates the epoll set and registers the waker pipe under
    /// [`WAKE_TOKEN`].
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(0) };
        if epfd < 0 {
            return Err(last_err("epoll_create1"));
        }
        let mut fds = [0i32; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            unsafe { sys::close(epfd) };
            return Err(last_err("pipe"));
        }
        let (rx, tx) = (fds[0], fds[1]);
        for fd in [rx, tx] {
            if let Err(e) = set_nonblocking(fd) {
                unsafe {
                    sys::close(epfd);
                    sys::close(rx);
                    sys::close(tx);
                }
                return Err(e);
            }
        }
        let poller = Poller {
            epfd,
            wake_rx: rx,
            waker: Arc::new(WakerInner { wake_tx: tx }),
        };
        poller.ctl(sys::EPOLL_CTL_ADD, rx, WAKE_TOKEN, Interest::READ.mask())?;
        Ok(poller)
    }

    /// Handle for cross-thread wakeups.
    pub fn waker(&self) -> Waker {
        Waker(Arc::clone(&self.waker))
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, mask: u32) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: mask,
            data: token,
        };
        let evp = if op == sys::EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut _
        };
        if unsafe { sys::epoll_ctl(self.epfd, op, fd, evp) } < 0 {
            return Err(last_err("epoll_ctl"));
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest.mask())
    }

    /// Updates the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest.mask())
    }

    /// Removes `fd` from the set (best-effort; closing the fd also
    /// removes it).
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits up to `timeout_ms` (−1 = forever) and appends ready events to
    /// `out`. Waker nudges are drained internally and reported as a plain
    /// wakeup (no event entry), so `out` only ever holds user tokens.
    ///
    /// Returns `true` when the waker fired.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<bool> {
        const CAP: usize = 64;
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; CAP];
        let n = unsafe { sys::epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(false);
            }
            return Err(e);
        }
        let mut woke = false;
        for ev in raw.iter().take(n as usize) {
            let (events, data) = (ev.events, ev.data);
            if data == WAKE_TOKEN {
                woke = true;
                // Drain the pipe so the next wait can sleep.
                let mut buf = [0u8; 64];
                while unsafe { sys::read(self.wake_rx, buf.as_mut_ptr().cast(), buf.len()) } > 0 {}
                continue;
            }
            out.push(Event {
                token: data,
                readable: events & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                writable: events & sys::EPOLLOUT != 0,
                closed: events & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(woke)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.wake_rx);
            sys::close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_interrupts_wait_and_sockets_report_readable() {
        let poller = Poller::new().unwrap();
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            waker.wake();
        });
        let mut evs = Vec::new();
        let woke = poller.wait(&mut evs, 5_000).unwrap();
        assert!(woke, "waker failed to interrupt epoll_wait");
        assert!(evs.is_empty());
        t.join().unwrap();

        // A readable socket surfaces under its token.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        set_nonblocking(server_side.as_raw_fd()).unwrap();
        poller
            .add(server_side.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let mut evs = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while evs.is_empty() && std::time::Instant::now() < deadline {
            poller.wait(&mut evs, 100).unwrap();
        }
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].token, 7);
        assert!(evs[0].readable);
        poller.delete(server_side.as_raw_fd());
    }
}
