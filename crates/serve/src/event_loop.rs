//! Epoll connection driver (Linux): one thread multiplexes the listener
//! and every connection as non-blocking state machines.
//!
//! Each connection is `Idle` (parsing buffered bytes into requests),
//! `Waiting` (a non-streaming completion in flight), or `Streaming` (an
//! SSE response in flight). The scheduler's step loop nudges the poller
//! through its self-pipe waker whenever it queues events for a
//! connection, so the loop sleeps in `epoll_wait` instead of spinning.
//! Responses accumulate in a per-connection write buffer that is flushed
//! as the socket accepts bytes; a slow consumer whose buffer passes a hard
//! cap is cancelled and dropped rather than allowed to pin memory.

#![cfg(target_os = "linux")]

use crate::bridge::{EndReason, SeqEvent, WakeFn};
use crate::http;
use crate::poll::{Event, Interest, Poller};
use crate::server::{
    completion_response, handle_request, protocol_error_response, stream_chunk, stream_tail,
    trace_request_done, Outcome, PendingCompletion, Shared,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use tmac_core::failpoint::{self, FailAction};
use tmac_llm::batch::SeqTiming;

/// Pending response bytes beyond which a consumer is too slow to keep.
const WRITE_CAP: usize = 4 * 1024 * 1024;

const LISTEN_TOKEN: u64 = 0;

enum State {
    Idle,
    Waiting(PendingCompletion),
    Streaming(PendingCompletion),
}

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    state: State,
    keep: bool,
    last_data: Instant,
    want_write: bool,
    gone: bool,
}

impl Conn {
    fn push(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }

    fn cancel_inflight(&self) {
        match &self.state {
            State::Waiting(pc) | State::Streaming(pc) => {
                pc.cancel.store(true, Ordering::Release);
            }
            State::Idle => {}
        }
    }
}

/// Runs the event loop until stop, or drain completes.
pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>, poller: Poller) {
    // The listener was made non-blocking by `server::start` before this
    // thread was spawned. Registering a fresh fd with a fresh epoll
    // instance only fails on fd/memory exhaustion at startup, before any
    // request is accepted — failing fast there beats serving blind.
    poller
        .add(listener.as_raw_fd(), LISTEN_TOKEN, Interest::READ)
        .expect("register listener");
    let waker = poller.waker();
    let wake: WakeFn = Arc::new(move || waker.wake());

    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut events: Vec<Event> = Vec::new();

    loop {
        events.clear();
        let _ = poller.wait(&mut events, 100);
        if shared.is_stopped() {
            break;
        }
        if shared.is_draining() {
            if let Some(l) = listener.take() {
                poller.delete(l.as_raw_fd());
            }
        }

        for ev in &events {
            if ev.token == LISTEN_TOKEN {
                if let Some(l) = &listener {
                    accept_ready(l, &poller, &shared, &mut conns, &mut next_token);
                }
                continue;
            }
            let Some(c) = conns.get_mut(&ev.token) else {
                continue;
            };
            if ev.readable {
                read_ready(c, &shared);
            }
            if ev.writable {
                flush(c);
            }
            if ev.closed {
                c.gone = true;
            }
        }

        // Service every connection: parse requests, pump completion
        // events, flush, reap. The bridge's waker lands here too.
        let now = Instant::now();
        let mut dead: Vec<u64> = Vec::new();
        for (&tok, c) in conns.iter_mut() {
            if c.gone {
                c.cancel_inflight();
                dead.push(tok);
                continue;
            }
            loop {
                let again = if matches!(c.state, State::Idle) {
                    process_idle(c, &shared, &wake)
                } else {
                    pump_completion(c, &shared)
                };
                if !again {
                    break;
                }
            }
            flush(c);
            if c.gone || c.out_pending() > WRITE_CAP {
                c.cancel_inflight();
                dead.push(tok);
                continue;
            }
            let flushed = c.out_pending() == 0;
            if flushed && matches!(c.state, State::Idle) {
                let idle_cut = now.duration_since(c.last_data) > shared.cfg.idle_conn_timeout;
                if !c.keep || shared.is_draining() || (idle_cut && c.buf.is_empty()) {
                    dead.push(tok);
                    continue;
                }
                if idle_cut {
                    // A half-sent request that stalled: answer and close.
                    let resp = http::Response::error(408, "timeout", "request incomplete");
                    shared.metrics.count_status(408);
                    c.push(&resp.encode(false));
                    c.keep = false;
                    c.buf.clear();
                    flush(c);
                }
            }
            // Keep EPOLLOUT interest in sync with buffered output.
            let needs_write = c.out_pending() > 0;
            if needs_write != c.want_write {
                let interest = if needs_write {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                if poller.modify(c.stream.as_raw_fd(), tok, interest).is_ok() {
                    c.want_write = needs_write;
                }
            }
        }
        for tok in dead {
            if let Some(c) = conns.remove(&tok) {
                poller.delete(c.stream.as_raw_fd());
                shared.metrics.connections.dec();
            }
        }

        if shared.is_draining() && listener.is_none() && conns.is_empty() {
            break;
        }
    }

    for (_, c) in conns.drain() {
        c.cancel_inflight();
        poller.delete(c.stream.as_raw_fd());
        shared.metrics.connections.dec();
    }
}

fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    shared: &Shared,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if failpoint::fire("serve/accept") == Some(FailAction::Error) {
                    drop(stream); // injected accept failure: client sees RST
                    continue;
                }
                tmac_trace::instant("serve", "accept", 0, 0);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let tok = *next_token;
                // Skip the reserved tokens on wrap (practically unreachable).
                *next_token = next_token.wrapping_add(1).max(1);
                if poller.add(stream.as_raw_fd(), tok, Interest::READ).is_ok() {
                    shared.metrics.connections.inc();
                    conns.insert(
                        tok,
                        Conn {
                            stream,
                            buf: Vec::new(),
                            out: Vec::new(),
                            out_pos: 0,
                            state: State::Idle,
                            keep: true,
                            last_data: Instant::now(),
                            want_write: false,
                            gone: false,
                        },
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

fn read_ready(c: &mut Conn, shared: &Shared) {
    let hard_cap = shared.cfg.limits.max_head + shared.cfg.limits.max_body + 4;
    loop {
        let mut tmp = [0u8; 8192];
        let read = match failpoint::fire("serve/read") {
            Some(FailAction::Error) => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected read error",
            )),
            Some(FailAction::Again) => Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "injected eagain",
            )),
            Some(FailAction::Short) => c.stream.read(&mut tmp[..1]),
            _ => c.stream.read(&mut tmp),
        };
        match read {
            Ok(0) => {
                c.gone = true;
                return;
            }
            Ok(n) => {
                c.buf.extend_from_slice(&tmp[..n]);
                c.last_data = Instant::now();
                if c.buf.len() > hard_cap {
                    // The parser turns this into a 431/413 on the next
                    // process pass; stop buffering more.
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.gone = true;
                return;
            }
        }
    }
}

/// Parses one buffered request and routes it. Returns true when the state
/// machine should run again immediately.
fn process_idle(c: &mut Conn, shared: &Shared, wake: &WakeFn) -> bool {
    let parse_started = tmac_trace::now_ns();
    match http::parse_request(&c.buf, &shared.cfg.limits) {
        Ok(Some((req, used))) => {
            tmac_trace::complete(
                "serve",
                "parse",
                0,
                used as u64,
                parse_started,
                tmac_trace::now_ns(),
            );
            c.buf.drain(..used);
            c.last_data = Instant::now();
            let keep = req.keep_alive() && !shared.is_draining();
            c.keep = keep;
            match handle_request(shared, &req, Some(Arc::clone(wake))) {
                Outcome::Respond(resp) => {
                    shared.metrics.count_status(resp.status);
                    let bytes = resp.encode(keep);
                    c.push(&bytes);
                    keep
                }
                Outcome::Completion(pc) if pc.stream => {
                    shared.metrics.count_status(200);
                    c.push(http::sse_head());
                    c.keep = false;
                    c.state = State::Streaming(pc);
                    true
                }
                Outcome::Completion(pc) => {
                    c.state = State::Waiting(pc);
                    true
                }
            }
        }
        Ok(None) => false,
        Err(e) => {
            let resp = protocol_error_response(&e);
            shared.metrics.count_status(resp.status);
            c.push(&resp.encode(false));
            c.keep = false;
            c.buf.clear();
            false
        }
    }
}

/// Drains the completion's event channel into the write buffer. Returns
/// true when the connection went back to `Idle` with parsing still to do.
fn pump_completion(c: &mut Conn, shared: &Shared) -> bool {
    match std::mem::replace(&mut c.state, State::Idle) {
        State::Idle => false,
        State::Waiting(pc) => loop {
            match pc.rx.try_recv() {
                Ok(SeqEvent::Token(_)) => continue,
                Ok(SeqEvent::Done {
                    tokens,
                    reason,
                    timing,
                }) => {
                    trace_request_done(&pc, tokens.len());
                    let resp = completion_response(shared, &pc, &tokens, &reason, &timing);
                    shared.metrics.count_status(resp.status);
                    let bytes = resp.encode(c.keep);
                    c.push(&bytes);
                    return true; // back to Idle; serve pipelined requests
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => {
                    c.state = State::Waiting(pc);
                    return false;
                }
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    let resp = http::Response::error(503, "server_stopped", "step loop exited");
                    shared.metrics.count_status(503);
                    c.push(&resp.encode(false));
                    c.keep = false;
                    return false;
                }
            }
        },
        State::Streaming(pc) => loop {
            match pc.rx.try_recv() {
                Ok(SeqEvent::Token(t)) => {
                    let _w = tmac_trace::span("serve", "sse_write", pc.id, t as u64);
                    let bytes = stream_chunk(shared, &pc, t);
                    c.push(&bytes);
                }
                Ok(SeqEvent::Done {
                    tokens,
                    reason,
                    timing,
                }) => {
                    trace_request_done(&pc, tokens.len());
                    let bytes = stream_tail(shared, &pc, &tokens, &reason, &timing);
                    c.push(&bytes);
                    c.keep = false;
                    return false; // Idle + !keep → close once flushed
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => {
                    c.state = State::Streaming(pc);
                    return false;
                }
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    // Step loop gone: terminal error frame so the SSE
                    // client can tell a fault from a finished stream.
                    let bytes = stream_tail(
                        shared,
                        &pc,
                        &[],
                        &EndReason::Error("step loop exited".into()),
                        &SeqTiming::default(),
                    );
                    c.push(&bytes);
                    c.keep = false;
                    return false;
                }
            }
        },
    }
}

fn flush(c: &mut Conn) {
    while c.out_pos < c.out.len() {
        match failpoint::fire("serve/write") {
            // One byte of progress, then the peer "vanishes".
            Some(FailAction::Short) => {
                if let Ok(n) = c.stream.write(&c.out[c.out_pos..c.out_pos + 1]) {
                    c.out_pos += n;
                }
                c.gone = true;
                break;
            }
            Some(FailAction::Error) => {
                c.gone = true;
                break;
            }
            // EAGAIN storm: stop flushing this pass, retry on the next
            // writable event (output stays buffered, capped by WRITE_CAP).
            Some(FailAction::Again) => break,
            _ => {}
        }
        match c.stream.write(&c.out[c.out_pos..]) {
            Ok(0) => {
                c.gone = true;
                break;
            }
            Ok(n) => c.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.gone = true;
                break;
            }
        }
    }
    if c.out_pos == c.out.len() {
        c.out.clear();
        c.out_pos = 0;
    } else if c.out_pos > 64 * 1024 {
        c.out.drain(..c.out_pos);
        c.out_pos = 0;
    }
}
